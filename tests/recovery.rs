//! Recovery-path integration tests: reconstruction vs crash recovery,
//! journal rollback of torn splits, allocator rebuild, and recovery
//! idempotence (paper §5.4).

use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree, SplitJournal, LEAF_BLOCK};

fn cfg() -> RnConfig {
    RnConfig {
        journal_slots: 4,
        ..RnConfig::default()
    }
}

fn pool() -> Arc<PmemPool> {
    Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)))
}

#[test]
fn reconstruction_equals_crash_recovery_result() {
    // Whatever the path, the recovered trees must serve identically.
    let p1 = pool();
    let p2 = pool();
    for p in [&p1, &p2] {
        let tree = RnTree::create(Arc::clone(p), cfg());
        for k in 1..=3_000u64 {
            tree.insert(k, k * 5).unwrap();
        }
        for k in (1..=3_000u64).step_by(5) {
            tree.remove(k).unwrap();
        }
        tree.close();
        drop(tree);
    }
    let clean = RnTree::reopen_clean(Arc::clone(&p1), cfg());
    p2.simulate_crash();
    let crashed = RnTree::recover(Arc::clone(&p2), cfg());
    for k in 1..=3_000u64 {
        assert_eq!(clean.find(k), crashed.find(k), "divergence at key {k}");
    }
    clean.verify_invariants().unwrap();
    crashed.verify_invariants().unwrap();
}

#[test]
fn torn_split_rolls_back_through_journal() {
    let p = pool();
    let tree = RnTree::create(Arc::clone(&p), cfg());
    for k in 1..=2_000u64 {
        tree.insert(k, k).unwrap();
    }
    let victim = tree.leftmost();
    drop(tree);

    // Forge a crash in the middle of a split: journal the pre-image, then
    // shred the leaf's KV area and slot line (persisted, as a partially
    // executed split rewrite would be).
    let journal = SplitJournal::new(64, 4);
    let slot = journal.acquire();
    journal.log(&p, slot, victim);
    for w in 0..(LEAF_BLOCK / 8) {
        p.store_u64(victim + w * 8, 0xDEAD_0000 + w);
    }
    p.persist(victim, LEAF_BLOCK);
    p.simulate_crash();

    let tree = RnTree::recover(Arc::clone(&p), cfg());
    tree.verify_invariants().unwrap();
    for k in 1..=2_000u64 {
        assert_eq!(tree.find(k), Some(k), "key {k} lost to torn split");
    }
}

#[test]
fn allocator_rebuild_reuses_orphaned_blocks() {
    let p = pool();
    let tree = RnTree::create(Arc::clone(&p), cfg());
    for k in 1..=2_000u64 {
        tree.insert(k, k).unwrap();
    }
    let leaves_before = tree.stats().leaves;
    drop(tree);
    p.simulate_crash();
    let tree = RnTree::recover(Arc::clone(&p), cfg());
    assert_eq!(tree.stats().leaves, leaves_before);
    // The tree keeps growing after recovery — allocator must have sound
    // state (no double allocation of live leaves).
    for k in 2_001..=6_000u64 {
        tree.insert(k, k).unwrap();
    }
    for k in 1..=6_000u64 {
        assert_eq!(tree.find(k), Some(k));
    }
    tree.verify_invariants().unwrap();
}

#[test]
fn recovery_is_idempotent() {
    let p = pool();
    let tree = RnTree::create(Arc::clone(&p), cfg());
    for k in 1..=1_500u64 {
        tree.insert(k, k).unwrap();
    }
    drop(tree);
    p.simulate_crash();
    // Recover, crash again *without* doing anything, recover again.
    let tree = RnTree::recover(Arc::clone(&p), cfg());
    drop(tree);
    p.simulate_crash();
    let tree = RnTree::recover(Arc::clone(&p), cfg());
    for k in 1..=1_500u64 {
        assert_eq!(tree.find(k), Some(k));
    }
    tree.verify_invariants().unwrap();
}

#[test]
fn empty_leaves_from_removals_survive_recovery() {
    let p = pool();
    let tree = RnTree::create(Arc::clone(&p), cfg());
    for k in 1..=1_000u64 {
        tree.insert(k, k).unwrap();
    }
    // Drain a middle band entirely: some leaves end up empty.
    for k in 200..=600u64 {
        tree.remove(k).unwrap();
    }
    drop(tree);
    p.simulate_crash();
    let tree = RnTree::recover(Arc::clone(&p), cfg());
    tree.verify_invariants().unwrap();
    for k in 1..=1_000u64 {
        let expect = if (200..=600).contains(&k) { None } else { Some(k) };
        assert_eq!(tree.find(k), expect, "key {k}");
    }
    // Keys in the drained band can be reinserted.
    for k in 200..=600u64 {
        tree.insert(k, k + 1).unwrap();
    }
    tree.verify_invariants().unwrap();
}

#[test]
fn scan_after_recovery_matches_prefix_order() {
    let p = pool();
    let tree = RnTree::create(Arc::clone(&p), cfg());
    for k in (1..=4_000u64).rev() {
        tree.insert(k, k).unwrap();
    }
    drop(tree);
    p.simulate_crash();
    let tree = RnTree::recover(Arc::clone(&p), cfg());
    let mut out = Vec::new();
    assert_eq!(tree.scan_n(1_000, 500, &mut out), 500);
    for (i, &(k, v)) in out.iter().enumerate() {
        assert_eq!(k, 1_000 + i as u64);
        assert_eq!(v, k);
    }
}

#[test]
#[should_panic(expected = "not an RNTree")]
fn recover_rejects_foreign_pool() {
    let p = pool();
    let _ = RnTree::recover(p, cfg());
}

#[test]
#[should_panic(expected = "journal_slots mismatch")]
fn recover_rejects_mismatched_journal_geometry() {
    let p = pool();
    let tree = RnTree::create(Arc::clone(&p), cfg());
    drop(tree);
    p.simulate_crash();
    let wrong = RnConfig {
        journal_slots: 8,
        ..RnConfig::default()
    };
    let _ = RnTree::recover(p, wrong);
}

#[test]
fn close_is_usable_after_more_writes() {
    // close() then continue writing, then crash: the clean flag must not
    // make stale headers trusted.
    let p = pool();
    let tree = RnTree::create(Arc::clone(&p), cfg());
    for k in 1..=500u64 {
        tree.insert(k, k).unwrap();
    }
    tree.close();
    for k in 501..=900u64 {
        tree.insert(k, k).unwrap();
    }
    drop(tree);
    p.simulate_crash();
    // The clean flag was persisted before the extra writes, so
    // reopen_clean would be wrong here — the implementation clears the
    // flag on open; after a crash the flag state reflects close() only.
    // Crash recovery must still produce the full acknowledged state.
    let tree = RnTree::recover(Arc::clone(&p), cfg());
    for k in 1..=900u64 {
        assert_eq!(tree.find(k), Some(k), "key {k}");
    }
    tree.verify_invariants().unwrap();
}
