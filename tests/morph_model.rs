//! Adaptive-leaf-morphing model tests: a pool-wide hash-leaf tree must
//! behave exactly like a `BTreeMap<u64, u64>` (point ops AND ordered
//! scans — hash leaves materialize-and-sort per leaf), the adaptive
//! policy must converge each leaf to the layout its op mix wants and
//! morph back when the mix flips, readers must never observe a torn
//! layout while leaves morph under them, and a crash at **every**
//! persist point of a script that forces morphs mid-churn must recover
//! to the oracle — the morph is a journaled whole-node rewrite, so a
//! crash inside one rolls the leaf back to its pre-morph image with all
//! its content.

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use index_common::{OpError, PersistentIndex};
use nvm::{PmemConfig, PmemPool, SplitMix64};
use obs::{ObsSource, Section};
use rntree::{LeafPolicy, RnConfig, RnTree};

fn cfg(policy: LeafPolicy) -> RnConfig {
    RnConfig {
        leaf_policy: policy,
        journal_slots: 4,
        ..RnConfig::default()
    }
}

fn new_pool(bytes: usize) -> Arc<PmemPool> {
    Arc::new(PmemPool::new(PmemConfig::for_testing(bytes)))
}

/// The `leaf` obs section as a name → value map (layout census + morph
/// counters).
fn leaf_counters(tree: &RnTree) -> BTreeMap<String, u64> {
    for (name, sec) in tree.obs_sections() {
        if name == "leaf" {
            if let Section::Counters(c) = sec {
                return c.into_iter().collect();
            }
        }
    }
    panic!("tree exports no `leaf` obs section");
}

#[test]
fn hash_policy_matches_u64_oracle_with_scans() {
    let tree = RnTree::create(new_pool(1 << 24), cfg(LeafPolicy::Hash));
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = SplitMix64::new(0x4A54_1EAF);

    for step in 0..12_000u64 {
        let k = rng.next_below(3_000) * 7 + 1;
        let v = rng.next_u64() >> 1;
        match rng.next_below(12) {
            0..=2 => {
                let r = tree.insert(k, v);
                match oracle.entry(k) {
                    std::collections::btree_map::Entry::Occupied(_) => {
                        assert_eq!(r, Err(OpError::AlreadyExists), "insert dup {k}");
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        r.unwrap();
                        e.insert(v);
                    }
                }
            }
            3..=4 => {
                tree.upsert(k, v).unwrap();
                oracle.insert(k, v);
            }
            5 => {
                let r = tree.update(k, v);
                match oracle.entry(k) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        r.unwrap();
                        e.insert(v);
                    }
                    std::collections::btree_map::Entry::Vacant(_) => {
                        assert_eq!(r, Err(OpError::NotFound), "update missing {k}");
                    }
                }
            }
            6..=7 => {
                let r = tree.remove(k);
                if oracle.remove(&k).is_some() {
                    r.unwrap();
                } else {
                    assert_eq!(r, Err(OpError::NotFound), "remove missing {k}");
                }
            }
            8..=9 => {
                assert_eq!(tree.find(k), oracle.get(&k).copied(), "find {k}");
            }
            _ => {
                // Ordered scans out of unordered leaves, across leaf
                // boundaries (hash leaves sort their materialized range).
                let n = rng.next_below(80) as usize;
                let mut out = Vec::new();
                let got = tree.scan_n(k, n, &mut out);
                let want: Vec<(u64, u64)> =
                    oracle.range(k..).take(n).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want.len(), "scan_n({k}, {n}) count at step {step}");
                assert_eq!(out, want, "scan_n({k}, {n}) at step {step}");
            }
        }
    }

    assert!(tree.rn_stats().splits > 0, "stream must split hash leaves");
    tree.verify_invariants().unwrap();
    let census = leaf_counters(&tree);
    assert_eq!(census["sorted_leaves"], 0, "hash policy grew a sorted leaf");
    assert!(census["hash_leaves"] > 1, "expected a multi-leaf tree");
}

#[test]
fn adaptive_converges_to_the_layout_the_op_mix_wants() {
    let tree = RnTree::create(new_pool(1 << 22), cfg(LeafPolicy::Adaptive));
    for k in 1..=50u64 {
        tree.insert(k, k * 3).unwrap();
    }
    let census = leaf_counters(&tree);
    assert_eq!(census["hash_leaves"], 0, "adaptive leaves are born sorted");

    // Point-only traffic: the window closes on a pure-lookup mix and the
    // leaf must morph to the hash layout.
    for round in 0..600u64 {
        let k = round % 50 + 1;
        assert_eq!(tree.find(k), Some(k * 3));
    }
    let census = leaf_counters(&tree);
    assert!(census["morphs_to_hash"] >= 1, "no morph to hash: {census:?}");
    assert_eq!(census["hash_leaves"], 1, "census after point phase: {census:?}");
    tree.verify_invariants().unwrap();

    // Scan-heavy traffic: the mix flips past the 1/4 scan-share
    // threshold and the same leaf must morph back.
    let mut out = Vec::new();
    for round in 0..900u64 {
        let n = tree.scan_n(round % 40 + 1, 5, &mut out);
        assert_eq!(n, 5);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "scan unsorted");
    }
    let census = leaf_counters(&tree);
    assert!(census["morphs_to_sorted"] >= 1, "no morph back: {census:?}");
    assert_eq!(census["sorted_leaves"], 1, "census after scan phase: {census:?}");
    tree.verify_invariants().unwrap();
    for k in 1..=50u64 {
        assert_eq!(tree.find(k), Some(k * 3), "key {k} after both morphs");
    }
}

/// Readers running full tilt while leaves morph under them: the
/// Adaptive-gated mid-validation must make every snapshot either a
/// consistent sorted view or a consistent hash view — a torn mix decodes
/// garbage entries and fails the assertions here.
#[test]
fn concurrent_readers_survive_a_morph_storm() {
    let tree = Arc::new(RnTree::create(new_pool(1 << 24), cfg(LeafPolicy::Adaptive)));
    const KEYS: u64 = 1_000;
    for k in 1..=KEYS {
        tree.insert(k, k * 3).unwrap();
    }

    let readers: Vec<_> = (0..4)
        .map(|t| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0xF00D + t as u64);
                let mut out = Vec::new();
                for _ in 0..20_000 {
                    let k = rng.next_below(KEYS) + 1;
                    if rng.next_below(8) == 0 {
                        let take = (KEYS - k + 1).min(10) as usize;
                        assert_eq!(tree.scan_n(k, 10, &mut out), take);
                        assert_eq!(out[0].0, k, "scan start");
                        assert!(out.windows(2).all(|w| w[0].0 + 1 == w[1].0), "scan order");
                    } else {
                        assert_eq!(tree.find(k), Some(k * 3), "find {k}");
                    }
                }
            })
        })
        .collect();

    // Morph every leaf back and forth while the readers run.
    let mut rng = SplitMix64::new(0x57084);
    for i in 0..400u64 {
        tree.force_morph(rng.next_below(KEYS) + 1, i % 2 == 0);
    }
    for r in readers {
        r.join().unwrap();
    }
    tree.verify_invariants().unwrap();
    let census = leaf_counters(&tree);
    assert!(
        census["morphs_to_hash"] + census["morphs_to_sorted"] >= 100,
        "storm barely morphed: {census:?}"
    );
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
    Morph(u64, bool),
}

/// Deterministic script: build a multi-leaf tree, churn it, and force
/// morphs in both directions between (and inside) the churn phases so
/// the persist-point sweep crosses whole-node rewrites of leaves that
/// already hold live data, plus splits of already-hashed leaves.
fn script() -> Vec<Op> {
    let mut rng = SplitMix64::new(0x4A54_C4A5);
    let mut ops = Vec::new();
    for i in 0..150u64 {
        ops.push(Op::Insert(i * 13 + 1, i));
    }
    for m in 0..6u64 {
        ops.push(Op::Morph(m * 331 + 1, true));
    }
    for i in 0..80u64 {
        let k = rng.next_below(150) * 13 + 1;
        match i % 3 {
            0 => ops.push(Op::Upsert(k, 10_000 + i)),
            1 => ops.push(Op::Remove(k)),
            _ => ops.push(Op::Insert(k + 5, 20_000 + i)),
        }
    }
    for m in 0..6u64 {
        ops.push(Op::Morph(m * 331 + 1, m % 2 == 0));
    }
    // Grow hashed leaves past capacity: splits must carry the tag.
    for i in 150..260u64 {
        ops.push(Op::Insert(i * 13 + 1, i));
    }
    ops
}

fn apply(tree: &RnTree, ops: &[Op], model: &mut BTreeMap<u64, u64>) -> Option<Op> {
    for op in ops {
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| match op {
            Op::Insert(k, v) => tree.insert(*k, *v).map(|_| Some((*k, Some(*v)))),
            Op::Upsert(k, v) => tree.upsert(*k, *v).map(|_| Some((*k, Some(*v)))),
            Op::Remove(k) => tree.remove(*k).map(|_| Some((*k, None))),
            Op::Morph(k, to_hash) => {
                tree.force_morph(*k, *to_hash);
                Ok(None)
            }
        }));
        match r {
            Ok(Ok(Some((k, Some(v))))) => {
                model.insert(k, v);
            }
            Ok(Ok(Some((k, None)))) => {
                model.remove(&k);
            }
            Ok(Ok(None)) => { /* morph: no logical change */ }
            Ok(Err(_)) => { /* conditional rejection: no state change */ }
            Err(_) => return Some(op.clone()),
        }
    }
    None
}

#[test]
fn every_persist_crash_point_recovers_through_morphs() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let ops = script();
    let c = cfg(LeafPolicy::Adaptive);

    // Count the script's total persists on an untrapped run.
    let total = {
        let pool = new_pool(1 << 23);
        let tree = RnTree::create(Arc::clone(&pool), c);
        let base = pool.stats().snapshot().persists;
        let mut model = BTreeMap::new();
        assert!(apply(&tree, &ops, &mut model).is_none());
        tree.verify_invariants().unwrap();
        pool.stats().snapshot().persists - base
    };
    assert!(total > 400, "script too small: {total} persists");

    // Step coprime with the 2-persist op pattern and the 4-persist morph
    // pattern so every intra-op position is hit over the sweep; always
    // include the first and last few points.
    let mut points: Vec<u64> = (1..=total).step_by(5).collect();
    points.extend(total.saturating_sub(4)..=total);
    points.sort_unstable();
    points.dedup();

    for &trap_at in &points {
        let pool = new_pool(1 << 23);
        let tree = RnTree::create(Arc::clone(&pool), c);
        pool.arm_persist_trap(trap_at);
        let mut model = BTreeMap::new();
        let in_flight = apply(&tree, &ops, &mut model);
        pool.disarm_persist_trap();
        drop(tree);
        pool.simulate_crash();

        let tree = RnTree::recover(Arc::clone(&pool), c);
        tree.verify_invariants()
            .unwrap_or_else(|e| panic!("trap@{trap_at}: invariants: {e}"));

        // A morph changes no logical content — whether it completed or
        // rolled back, every acknowledged pair must read back. Only a
        // key-modifying op may be ambiguously in flight.
        let in_flight_key = match &in_flight {
            Some(Op::Insert(k, _)) | Some(Op::Upsert(k, _)) | Some(Op::Remove(k)) => Some(*k),
            _ => None,
        };
        for (k, v) in &model {
            if Some(*k) == in_flight_key {
                continue;
            }
            assert_eq!(
                tree.find(*k),
                Some(*v),
                "trap@{trap_at}: acked key {k} wrong after crash"
            );
        }
        if let Some(Op::Insert(k, v) | Op::Upsert(k, v)) = &in_flight {
            let found = tree.find(*k);
            let old = model.get(k).copied();
            assert!(
                found == old || found == Some(*v),
                "trap@{trap_at}: in-flight op on {k} left torn state {found:?}"
            );
        }

        // No phantoms beyond model ∪ in-flight, and the scan comes back
        // sorted regardless of which leaves recovered as hash.
        let mut out = Vec::new();
        tree.scan_n(0, usize::MAX >> 1, &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "trap@{trap_at}: scan order");
        for (k, _) in out {
            assert!(
                model.contains_key(&k) || Some(k) == in_flight_key,
                "trap@{trap_at}: phantom key {k}"
            );
        }

        // The recovered tree keeps working, including fresh morphs.
        tree.insert(u64::MAX - 1, 1)
            .unwrap_or_else(|e| panic!("trap@{trap_at}: post-recovery insert: {e:?}"));
        tree.force_morph(1, true);
    }

    std::panic::set_hook(default_hook);
}
