//! Heat-sketch accuracy and attribution tests (PR 9).
//!
//! Three angles:
//! 1. **Zipfian top-K accuracy** — a space-saving sketch fed a skewed
//!    stream must agree with an exact-count oracle on the head of the
//!    distribution, and every reported count must respect the
//!    overestimate bound (`true ≤ count ≤ true + err`).
//! 2. **Merge** — merging stripe-wise from disjoint sketches is exact
//!    and order-independent when nothing decays.
//! 3. **Planted-hot-leaf attribution stress** — four threads hammer a
//!    64-key window of a warmed `RnTree`; the per-leaf conflict sketch
//!    must attribute the contention to the planted leaves and nowhere
//!    else.

use std::collections::HashMap;
use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use obs::HeatSketch;
use rntree::{RnConfig, RnTree};

/// xorshift64* — deterministic, seedable, no deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Samples Zipf-ish ranks in `1..=n` by inverse-CDF over precomputed
/// cumulative weights (θ = 1).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / r as f64;
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> u64 {
        let u = (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
        (self.cdf.partition_point(|&c| c < u) + 1) as u64
    }
}

#[test]
fn zipfian_top_k_matches_exact_oracle() {
    let sketch = HeatSketch::new(256);
    let zipf = Zipf::new(1_000);
    let mut rng = Rng(0x9E3779B97F4A7C15);
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for _ in 0..200_000 {
        let key = zipf.sample(&mut rng);
        sketch.record(key, 1);
        *oracle.entry(key).or_insert(0) += 1;
    }

    let mut exact: Vec<(u64, u64)> = oracle.iter().map(|(&k, &c)| (k, c)).collect();
    exact.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    let top = sketch.top_k(8);
    assert_eq!(top.len(), 8, "a 256-slot sketch over 1000 keys keeps a full top-8");
    // The unambiguous head: rank 1 carries ~13% of a θ=1 stream and can
    // never be displaced by decay noise.
    assert_eq!(top[0].key, exact[0].0, "sketch rank-1 must be the true hottest key");
    // Every reported entry respects the Misra-Gries bound: resident
    // counters only lose weight to decay, so they underestimate, and
    // the total decayed budget caps how much any one key can have lost.
    let budget = sketch.decayed();
    for e in &top {
        let truth = oracle.get(&e.key).copied().unwrap_or(0);
        assert!(e.count <= truth, "key {}: sketch {} > true {}", e.key, e.count, truth);
        assert!(
            e.count + budget >= truth,
            "key {}: count {} + decay budget {} below true {}",
            e.key,
            e.count,
            budget,
            truth
        );
    }
    // The sketch head stays inside the true head: a top-8 entry that is
    // not a true top-64 key would mean decay noise beat real mass.
    let head: Vec<u64> = exact.iter().take(64).map(|&(k, _)| k).collect();
    for e in &top {
        assert!(head.contains(&e.key), "sketch top-8 key {} is outside the true top-64", e.key);
    }
}

#[test]
fn merge_of_disjoint_sketches_is_exact_and_order_independent() {
    let mk = |base: u64| {
        let s = HeatSketch::new(256);
        for i in 0..20u64 {
            s.record(base + i, i + 1);
        }
        s
    };
    let (a, b, c) = (mk(0), mk(1_000), mk(2_000));

    let m1 = HeatSketch::new(256);
    m1.merge_from(&a, |k| k);
    m1.merge_from(&b, |k| k);
    m1.merge_from(&c, |k| k);
    let m2 = HeatSketch::new(256);
    m2.merge_from(&c, |k| k);
    m2.merge_from(&a, |k| k);
    m2.merge_from(&b, |k| k);

    let sorted = |s: &HeatSketch| {
        let mut v = s.snapshot();
        v.sort_by_key(|e| e.key);
        v
    };
    let (v1, v2) = (sorted(&m1), sorted(&m2));
    assert_eq!(v1, v2, "merge result must not depend on merge order");
    assert_eq!(v1.len(), 60, "disjoint keys under capacity merge without decay");
    for e in &v1 {
        let expected = (e.key % 1_000) + 1;
        assert_eq!(e.count, expected, "key {} count", e.key);
        assert_eq!(e.err, 0, "nothing decays below capacity");
    }
    assert_eq!(m1.decayed(), 0);
}

#[test]
fn merge_applies_the_key_map() {
    let src = HeatSketch::new(64);
    src.record(7, 5);
    let dst = HeatSketch::new(64);
    dst.merge_from(&src, |k| (3 << 56) | k);
    let top = dst.top_k(1);
    assert_eq!(top[0].key, (3 << 56) | 7, "shard tagging must survive the merge");
    assert_eq!(top[0].count, 5);
}

#[test]
fn four_thread_planted_hot_leaf_attribution() {
    const WARM_N: u64 = 4_096;
    const HOT_KEYS: u64 = 64;
    const THREADS: u64 = 4;
    const OPS_PER_ROUND: u64 = 20_000;
    const MAX_ROUNDS: usize = 10;

    let mut cfg = PmemConfig::fast(0);
    cfg.size = 64 << 20;
    let pool = Arc::new(PmemPool::new(cfg));
    // Plain RNTree (no dual slot array): the leaf version changes on
    // every modification, so readers' optimistic snapshots abort against
    // concurrent writers — the paper's §6.3 conflict pathology, and the
    // signal this sketch exists to attribute. (Writers alone serialise
    // on the leaf lock and produce almost no HTM conflicts.)
    let tree = Arc::new(RnTree::create(pool, RnConfig { dual_slot: false, ..RnConfig::default() }));
    let pairs: Vec<(u64, u64)> = (1..=WARM_N).map(|k| (k, k)).collect();
    tree.load_sorted(&pairs).unwrap();

    // Conflicts need two atomic sections overlapping in time; a fast or
    // lightly-scheduled host may need more than one round to see any.
    // Attribution correctness is judged on whatever heat exists.
    for round in 0..MAX_ROUNDS {
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    let mut rng = Rng(0xABCD ^ ((round as u64 + 1) * 0x1000 + t));
                    for _ in 0..OPS_PER_ROUND {
                        let key = 1 + rng.next() % HOT_KEYS;
                        if rng.next().is_multiple_of(2) {
                            tree.update(key, rng.next()).unwrap();
                        } else {
                            assert!(tree.find(key).is_some());
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        if !tree.leaf_heat().conflicts.top_k(1).is_empty() {
            break;
        }
    }

    let top = tree.leaf_heat().conflicts.top_k(16);
    assert!(
        !top.is_empty(),
        "{THREADS} threads × {MAX_ROUNDS} rounds of colliding updates attributed no conflicts"
    );
    // Every op hit keys 1..=HOT_KEYS, so every attributed leaf must be a
    // planted one (updates never split, so the covering set is stable).
    let hot: Vec<u64> = (1..=HOT_KEYS).map(|k| tree.leaf_of(k)).collect();
    for e in &top {
        assert!(
            hot.contains(&e.key),
            "conflict heat attributed to leaf {:#x}, outside the planted set {hot:#x?}",
            e.key
        );
    }
    tree.verify_invariants().unwrap();
}

#[test]
fn split_heat_attributes_the_splitting_leaf() {
    let mut cfg = PmemConfig::fast(0);
    cfg.size = 64 << 20;
    let pool = Arc::new(PmemPool::new(cfg));
    let tree = RnTree::create(pool, RnConfig::default());
    for k in 1..=20_000u64 {
        tree.insert(k, k).unwrap();
    }
    let splits = tree.leaf_heat().splits.top_k(16);
    assert!(!splits.is_empty(), "20k sequential inserts must split and be attributed");
    let total: u64 = splits.iter().map(|e| e.count).sum();
    assert!(total > 0);
}
