//! Batched-write correctness: `insert_batch` and `load_sorted` against a
//! `BTreeMap` oracle.
//!
//! Covers the contract corners the unit tests can't reach in one place:
//! duplicate keys *within* one batch (first pre-sort occurrence wins, the
//! rest report `AlreadyExists`), batches colliding with existing keys,
//! split-forcing runs much longer than one leaf, every slot/traversal
//! config variant, and `ShardedIndex` batches spanning shard boundaries
//! with the shard-major result alignment.

use std::collections::BTreeMap;
use std::sync::Arc;

use index_common::{OpError, PersistentIndex, ShardedIndex};
use nvm::{PmemConfig, PmemPool, PoolSet, SplitMix64};
use rntree::{RnConfig, RnTree};

/// What `insert_batch` must report and leave behind: replay the stable
/// sort + first-wins rule on the oracle, returning the expected per-slot
/// results aligned with the sorted batch.
#[allow(clippy::type_complexity)]
fn oracle_apply(
    model: &mut BTreeMap<u64, u64>,
    batch: &[(u64, u64)],
) -> (Vec<(u64, u64)>, Vec<Result<(), OpError>>) {
    let mut sorted = batch.to_vec();
    sorted.sort_by_key(|p| p.0);
    let results = sorted
        .iter()
        .map(|&(k, v)| {
            if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                e.insert(v);
                Ok(())
            } else {
                Err(OpError::AlreadyExists)
            }
        })
        .collect();
    (sorted, results)
}

fn assert_matches_model(tree: &dyn PersistentIndex, model: &BTreeMap<u64, u64>, tag: &str) {
    let mut out = Vec::new();
    tree.scan_n(0, model.len() + 100, &mut out);
    let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(out, want, "{tag}: full scan");
    assert_eq!(tree.stats().entries, model.len() as u64, "{tag}: entries");
}

#[test]
fn randomized_insert_batch_matches_oracle_in_every_variant() {
    for dual in [true, false] {
        for seq in [true, false] {
            let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
            let cfg = RnConfig {
                dual_slot: dual,
                seq_traversal: seq,
                ..RnConfig::default()
            };
            let tree = RnTree::create(Arc::clone(&pool), cfg);
            let tag = format!("dual={dual} seq={seq}");
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut rng = SplitMix64::new(0xBA7C4 ^ (dual as u64) << 1 ^ seq as u64);

            for round in 0..40u64 {
                let len = 1 + rng.next_below(300) as usize;
                let batch: Vec<(u64, u64)> =
                    (0..len).map(|_| (rng.next_below(1_500) + 1, rng.next_u64())).collect();
                let (want_batch, want_results) = oracle_apply(&mut model, &batch);

                let mut got_batch = batch.clone();
                let got_results = tree.insert_batch(&mut got_batch);
                assert_eq!(got_batch, want_batch, "{tag} round {round}: sorted batch");
                assert_eq!(got_results, want_results, "{tag} round {round}: results");

                // Stir the pot between batches: removes free slots mid-leaf,
                // upserts overwrite values the next batch must then reject.
                for _ in 0..10 {
                    let k = rng.next_below(1_500) + 1;
                    match rng.next_below(3) {
                        0 => {
                            let r = tree.remove(k);
                            assert_eq!(r.is_ok(), model.remove(&k).is_some(), "{tag} rm {k}");
                        }
                        1 => {
                            tree.upsert(k, round).unwrap();
                            model.insert(k, round);
                        }
                        _ => {
                            assert_eq!(tree.find(k), model.get(&k).copied(), "{tag} find {k}");
                        }
                    }
                }
            }
            assert_matches_model(&tree, &model, &tag);
            tree.verify_invariants().unwrap();
        }
    }
}

#[test]
fn one_batch_can_split_an_empty_tree_many_times() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
    let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());
    // One run covering the whole (empty, fence = MAX) tree: the batch path
    // must repeatedly fill a leaf, split it under the same protocol as the
    // per-op path, and resume the run on the new sibling.
    let mut batch: Vec<(u64, u64)> = (1..=2_000u64).map(|k| (k, k + 7)).collect();
    assert!(tree.insert_batch(&mut batch).into_iter().all(|r| r.is_ok()));
    assert!(tree.stats().splits >= 30, "got {} splits", tree.stats().splits);
    for k in 1..=2_000u64 {
        assert_eq!(tree.find(k), Some(k + 7), "key {k}");
    }
    tree.verify_invariants().unwrap();

    // The same giant run again: every key must now be rejected, unchanged.
    let mut again: Vec<(u64, u64)> = (1..=2_000u64).map(|k| (k, 0)).collect();
    assert!(tree
        .insert_batch(&mut again)
        .into_iter()
        .all(|r| r == Err(OpError::AlreadyExists)));
    assert_eq!(tree.find(555), Some(562));
}

#[test]
fn duplicate_keys_within_one_batch_first_wins() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());
    // Key 5 three times, key 9 twice — stable sort keeps pre-sort order
    // among equal keys, so value 100 and 300 must win.
    let mut batch = vec![(5u64, 100u64), (9, 300), (5, 101), (1, 7), (5, 102), (9, 301)];
    let results = tree.insert_batch(&mut batch);
    assert_eq!(
        batch,
        vec![(1, 7), (5, 100), (5, 101), (5, 102), (9, 300), (9, 301)],
        "sorted batch order"
    );
    assert_eq!(
        results,
        vec![
            Ok(()),
            Ok(()),
            Err(OpError::AlreadyExists),
            Err(OpError::AlreadyExists),
            Ok(()),
            Err(OpError::AlreadyExists),
        ]
    );
    assert_eq!(tree.find(5), Some(100));
    assert_eq!(tree.find(9), Some(300));
    assert_eq!(tree.stats().entries, 3);
}

#[test]
fn load_sorted_matches_upsert_replay_oracle() {
    let mut rng = SplitMix64::new(0x10AD);
    for trial in 0..6 {
        let len = [0usize, 1, 63, 64, 500, 3_000][trial];
        // Unsorted input with duplicates: last occurrence must win.
        let pairs: Vec<(u64, u64)> =
            (0..len).map(|_| (rng.next_below(2_000) + 1, rng.next_u64())).collect();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for &(k, v) in &pairs {
            model.insert(k, v);
        }

        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
        let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());
        tree.load_sorted(&pairs).unwrap();
        assert_matches_model(&tree, &model, &format!("load_sorted len={len}"));
        tree.verify_invariants().unwrap();

        // The loaded tree must keep behaving: conditional ops see the
        // loaded keys exactly like individually-inserted ones.
        if let Some((&k, &v)) = model.iter().next() {
            assert_eq!(tree.insert(k, 0), Err(OpError::AlreadyExists));
            assert_eq!(tree.find(k), Some(v));
            tree.remove(k).unwrap();
            assert_eq!(tree.find(k), None);
        }
    }
}

#[test]
fn sharded_insert_batch_spans_shards_and_matches_oracle() {
    for shards in [1usize, 3, 4] {
        let set = PoolSet::new(PmemConfig::for_testing(shards << 22), shards);
        let idx = ShardedIndex::<RnTree>::create(&set.handles(), RnConfig::default());
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = SplitMix64::new(0x5AD ^ shards as u64);

        for round in 0..20u64 {
            // Dense sequential spans hash-scatter across every shard, plus
            // random repeats for duplicate coverage.
            let base = rng.next_below(5_000);
            let mut batch: Vec<(u64, u64)> =
                (0..200u64).map(|i| (base + i, round * 1_000 + i)).collect();
            for _ in 0..20 {
                batch.push((rng.next_below(6_000), rng.next_u64()));
            }

            let before: Vec<(u64, u64)> = batch.clone();
            let results = idx.insert_batch(&mut batch);
            assert_eq!(results.len(), before.len(), "shards={shards} round {round}");

            // Results align with the post-call (shard-major) batch order;
            // within that order each key's first occurrence wins. Walk the
            // pairs in returned order against the oracle.
            for (i, (&(k, v), r)) in batch.iter().zip(&results).enumerate() {
                match r {
                    Ok(()) => {
                        assert!(
                            !model.contains_key(&k),
                            "shards={shards} round {round} slot {i}: Ok on existing key {k}"
                        );
                        model.insert(k, v);
                    }
                    Err(OpError::AlreadyExists) => assert!(
                        model.contains_key(&k),
                        "shards={shards} round {round} slot {i}: dup-reject on absent key {k}"
                    ),
                    Err(e) => panic!("shards={shards} round {round}: unexpected {e}"),
                }
            }
            // The call must only permute the caller's pairs, never alter them.
            let mut a = before;
            let mut b = batch.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "shards={shards} round {round}: batch contents changed");
        }

        assert_matches_model(&idx, &model, &format!("shards={shards}"));
        for i in 0..idx.shard_count() {
            idx.shard(i).verify_invariants().unwrap_or_else(|e| panic!("shard {i}: {e}"));
        }
    }
}

#[test]
fn sharded_load_sorted_partitions_and_matches_oracle() {
    for shards in [1usize, 4] {
        let set = PoolSet::new(PmemConfig::for_testing(shards << 22), shards);
        let idx = ShardedIndex::<RnTree>::create(&set.handles(), RnConfig::default());
        // Duplicates included: last occurrence wins across the whole input,
        // which the order-preserving partition must keep per shard.
        let mut pairs: Vec<(u64, u64)> = (1..=4_000u64).map(|k| (k, k)).collect();
        pairs.extend((1..=500u64).map(|k| (k * 8, k)));
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for &(k, v) in &pairs {
            model.insert(k, v);
        }

        idx.load_sorted(&pairs).unwrap();
        assert_matches_model(&idx, &model, &format!("sharded load, {shards} shards"));
        for i in 0..idx.shard_count() {
            idx.shard(i).verify_invariants().unwrap_or_else(|e| panic!("shard {i}: {e}"));
        }
    }
}
