//! Crash-point sweep with a *warm* DRAM page cache (PR 6): the cache is
//! volatile by design — recovery must rebuild routing from the NVM
//! capacity tier alone and start a cold cache, no matter how much DRAM
//! state was live at the crash. This re-runs the durable-linearizability
//! sweep of `crash_points.rs` with two twists: finds are interleaved
//! into the op stream so the cache is hot (full of now-doomed frames) at
//! every trap point, and after each recovery the test asserts the new
//! cache starts empty *and* the recovered tree answers from persistent
//! state only.
//!
//! The invariant that makes this cheap to state: `RnTree::recover`
//! always constructs a fresh `PageCache` (DESIGN.md §5g) — there is no
//! cache persistence to test, only the absence of any dependence on the
//! pre-crash cache.

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
}

/// The crash_points.rs script: inserts, updates, removes, and enough
/// volume to split leaves while the trap is armed.
fn script() -> Vec<Op> {
    let mut ops = Vec::new();
    for k in 1..=90u64 {
        ops.push(Op::Insert(k * 3, k));
    }
    for k in (1..=90u64).step_by(2) {
        ops.push(Op::Upsert(k * 3, k + 1_000));
    }
    for k in (1..=90u64).step_by(4) {
        ops.push(Op::Remove(k * 3));
    }
    for k in 200..=260u64 {
        ops.push(Op::Insert(k * 5 + 1, k));
    }
    ops
}

/// Applies ops, interleaving a burst of finds after every op so the
/// page cache stays hot at whichever persist the trap fires on. Finds
/// never persist, so the trap schedule is identical to the uncached
/// sweep. Returns the in-flight op if the trap fired.
fn apply_with_hot_cache(
    tree: &RnTree,
    ops: &[Op],
    model: &mut BTreeMap<u64, u64>,
) -> Option<Op> {
    for &op in ops {
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| match op {
            Op::Insert(k, v) => tree.insert(k, v).map(|_| (k, Some(v))),
            Op::Upsert(k, v) => tree.upsert(k, v).map(|_| (k, Some(v))),
            Op::Remove(k) => tree.remove(k).map(|_| (k, None)),
        }));
        match r {
            Ok(Ok((k, Some(v)))) => {
                model.insert(k, v);
            }
            Ok(Ok((k, None))) => {
                model.remove(&k);
            }
            Ok(Err(_)) => {}
            Err(_) => return Some(op),
        }
        // Re-descend to a spread of acknowledged keys: refills whatever
        // the op's invalidations dropped, keeping DRAM full of frames
        // the crash is about to orphan.
        for (i, &k) in model.keys().enumerate() {
            if i % 7 == 0 {
                let _ = tree.find(k);
            }
        }
    }
    None
}

#[test]
fn every_crash_point_recovers_from_nvm_alone_despite_a_warm_cache() {
    let default_hook = std::panic::take_hook();
    if std::env::var_os("CACHE_CRASH_LOUD").is_none() {
        std::panic::set_hook(Box::new(|_| {}));
    }

    let ops = script();
    let cfg = RnConfig {
        journal_slots: 2,
        // Small budget: maximal fill/evict/invalidate churn per op, so
        // trap points land inside every cache protocol phase too.
        cache_frames: 8,
        ..RnConfig::default()
    };
    assert!(cfg.cache_frames > 0, "this sweep must run cached");

    // Count total persists of an untrapped run (finds add none).
    let total = {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        let base = pool.stats().snapshot().persists;
        let mut model = BTreeMap::new();
        assert!(apply_with_hot_cache(&tree, &ops, &mut model).is_none());
        let s = tree.cache_stats().unwrap();
        assert!(s.hits > 0 && s.fills > 0, "sweep would run with a cold cache: {s:?}");
        pool.stats().snapshot().persists - base
    };
    assert!(total > 300, "script too small: {total} persists");

    // Every 7th point (coprime with the 2- and 3-persist op patterns),
    // plus the edges.
    let mut points: Vec<u64> = (1..=total).step_by(7).collect();
    points.extend(total.saturating_sub(3)..=total);
    points.sort_unstable();
    points.dedup();

    for &trap_at in &points {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        pool.arm_persist_trap(trap_at);
        let mut model = BTreeMap::new();
        let in_flight = apply_with_hot_cache(&tree, &ops, &mut model);
        pool.disarm_persist_trap();
        drop(tree); // the warm cache dies here — recovery never sees it
        pool.simulate_crash();

        let tree = RnTree::recover(Arc::clone(&pool), cfg);

        // Recovery must begin cold: zero hits, zero fills, zero of
        // everything (checked before any operation that could descend).
        // Any nonzero counter would mean recovery consulted DRAM state
        // that did not survive the crash.
        let s = tree.cache_stats().expect("recovered tree must re-attach a cache");
        assert_eq!(s, Default::default(), "trap@{trap_at}: recovered cache not cold: {s:?}");

        tree.verify_invariants()
            .unwrap_or_else(|e| panic!("trap@{trap_at}: invariants: {e}"));

        let in_flight_key = match in_flight {
            Some(Op::Insert(k, _)) | Some(Op::Upsert(k, _)) | Some(Op::Remove(k)) => Some(k),
            None => None,
        };
        for (k, v) in &model {
            if Some(*k) == in_flight_key {
                continue;
            }
            assert_eq!(
                tree.find(*k),
                Some(*v),
                "trap@{trap_at}: acked key {k} wrong after crash"
            );
        }
        if let Some(op) = in_flight {
            let (k, new_v) = match op {
                Op::Insert(k, v) | Op::Upsert(k, v) => (k, Some(v)),
                Op::Remove(k) => (k, None),
            };
            let old_v = model.get(&k).copied();
            let found = tree.find(k);
            assert!(
                found == old_v || found == new_v,
                "trap@{trap_at}: in-flight op on {k} left torn state {found:?}"
            );
        }

        // And those post-recovery finds ran the cached descent: the
        // fresh cache fills from recovered NVM state, proving the cache
        // rebuilds from the capacity tier rather than surviving DRAM.
        // Early trap points recover a single-leaf tree (root == leaf, no
        // inner level for the cache to serve), which is the only way the
        // descent can legitimately never consult the cache — so demand
        // fills exactly when any cached lookup happened at all.
        if !model.is_empty() {
            let s = tree.cache_stats().unwrap();
            assert!(
                s.fills > 0 || (s.hits == 0 && s.misses == 0),
                "trap@{trap_at}: cache consulted but never refilled: {s:?}"
            );
        }
        tree.insert(999_999, 1)
            .unwrap_or_else(|e| panic!("trap@{trap_at}: post-recovery insert: {e}"));
    }

    std::panic::set_hook(default_hook);
}

/// Clean-shutdown variant: even without a crash, a reopened tree starts
/// with a cold cache — the cache is a per-process structure, never
/// carried across instances.
#[test]
fn clean_reopen_starts_with_a_cold_cache() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig {
        journal_slots: 2,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    for k in 1..=2_000u64 {
        tree.insert(k, k * 11).unwrap();
    }
    for k in 1..=2_000u64 {
        assert_eq!(tree.find(k), Some(k * 11));
    }
    assert!(tree.cache_stats().unwrap().hits > 0, "cache never warmed");
    tree.close();
    drop(tree);
    pool.simulate_crash();

    let tree = RnTree::reopen_clean(Arc::clone(&pool), cfg);
    assert_eq!(
        tree.cache_stats().unwrap(),
        Default::default(),
        "reopened cache must start cold"
    );
    for k in 1..=2_000u64 {
        assert_eq!(tree.find(k), Some(k * 11));
    }
    tree.verify_invariants().unwrap();
}
