//! Exhaustive crash-point sweep: for a fixed operation sequence, crash at
//! **every persistent instruction** (via the pmem persist trap) and verify
//! durable linearizability after recovery each time.
//!
//! This covers exactly the intra-operation windows that the quiescent
//! crash tests cannot: between the KV flush and the slot flush, between a
//! split's journal write and its rewrites, etc. The contract checked at
//! each point (paper §3.5):
//!
//! * every operation acknowledged before the crash is fully visible;
//! * the (at most one) in-flight operation is atomically present or
//!   absent — conditional semantics included;
//! * all structural invariants hold and the tree remains writable.

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
}

/// A deterministic op sequence exercising inserts, updates, removes,
/// splits (more than one leaf's worth of keys) and log-area churn.
fn script() -> Vec<Op> {
    let mut ops = Vec::new();
    for k in 1..=90u64 {
        ops.push(Op::Insert(k * 3, k));
    }
    for k in (1..=90u64).step_by(2) {
        ops.push(Op::Upsert(k * 3, k + 1_000));
    }
    for k in (1..=90u64).step_by(4) {
        ops.push(Op::Remove(k * 3));
    }
    for k in 200..=260u64 {
        ops.push(Op::Insert(k * 5 + 1, k));
    }
    ops
}

/// Applies ops; returns the model of acknowledged state, or (on trap
/// panic) the model as of the last acknowledged op plus the in-flight op.
fn apply(tree: &RnTree, ops: &[Op], model: &mut BTreeMap<u64, u64>) -> Option<Op> {
    for &op in ops {
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| match op {
            Op::Insert(k, v) => tree.insert(k, v).map(|_| (k, Some(v))),
            Op::Upsert(k, v) => tree.upsert(k, v).map(|_| (k, Some(v))),
            Op::Remove(k) => tree.remove(k).map(|_| (k, None)),
        }));
        match r {
            Ok(Ok((k, Some(v)))) => {
                model.insert(k, v);
            }
            Ok(Ok((k, None))) => {
                model.remove(&k);
            }
            Ok(Err(_)) => { /* conditional rejection: no state change */ }
            Err(_) => return Some(op), // trap fired inside this op
        }
    }
    None
}

fn total_persists(ops: &[Op]) -> u64 {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig {
        journal_slots: 2,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    let base = pool.stats().snapshot().persists;
    let mut model = BTreeMap::new();
    assert!(apply(&tree, ops, &mut model).is_none());
    pool.stats().snapshot().persists - base
}

#[test]
fn every_persist_crash_point_preserves_durable_linearizability() {
    // Silence the expected panic spew from every trap firing.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let ops = script();
    let total = total_persists(&ops);
    assert!(total > 300, "script too small: {total} persists");

    // Sweep every 3rd crash point (plus the first and last few) to keep
    // runtime bounded while still covering hundreds of distinct points;
    // the step is coprime with the 2- and 3-persist op patterns so all
    // intra-op positions are hit.
    let mut points: Vec<u64> = (1..=total).step_by(3).collect();
    points.extend(total.saturating_sub(4)..=total);
    points.sort_unstable();
    points.dedup();

    for &trap_at in &points {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
        let cfg = RnConfig {
            journal_slots: 2,
            ..RnConfig::default()
        };
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        pool.arm_persist_trap(trap_at);
        let mut model = BTreeMap::new();
        let in_flight = apply(&tree, &ops, &mut model);
        pool.disarm_persist_trap();
        drop(tree);
        pool.simulate_crash();

        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        tree.verify_invariants()
            .unwrap_or_else(|e| panic!("trap@{trap_at}: invariants: {e}"));

        // All acknowledged state must be present and exact, except for the
        // single key the in-flight op was touching, which may hold either
        // its pre- or post-op value (atomically).
        let in_flight_key = match in_flight {
            Some(Op::Insert(k, _)) | Some(Op::Upsert(k, _)) | Some(Op::Remove(k)) => Some(k),
            None => None,
        };
        for (k, v) in &model {
            if Some(*k) == in_flight_key {
                continue;
            }
            assert_eq!(
                tree.find(*k),
                Some(*v),
                "trap@{trap_at}: acked key {k} wrong after crash"
            );
        }
        if let Some(op) = in_flight {
            let (k, new_v) = match op {
                Op::Insert(k, v) | Op::Upsert(k, v) => (k, Some(v)),
                Op::Remove(k) => (k, None),
            };
            let old_v = model.get(&k).copied();
            let found = tree.find(k);
            assert!(
                found == old_v || found == new_v,
                "trap@{trap_at}: in-flight op on {k} left torn state {found:?} (old {old_v:?} new {new_v:?})"
            );
        }

        // No phantoms beyond model ∪ in-flight.
        let mut out = Vec::new();
        tree.scan_n(0, usize::MAX >> 1, &mut out);
        for (k, _) in out {
            assert!(
                model.contains_key(&k) || Some(k) == in_flight_key,
                "trap@{trap_at}: phantom key {k}"
            );
        }

        // The recovered tree keeps working.
        tree.insert(999_999, 1).unwrap_or_else(|e| panic!("trap@{trap_at}: post-recovery insert: {e}"));
    }

    std::panic::set_hook(default_hook);
}

#[test]
fn trap_in_single_slot_variant_too() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let ops = script();
    let cfg = RnConfig {
        dual_slot: false,
        journal_slots: 2,
        ..RnConfig::default()
    };
    // Spot-check a spread of crash points on the single-slot variant.
    for trap_at in [1u64, 7, 33, 100, 201, 333, 480] {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        pool.arm_persist_trap(trap_at);
        let mut model = BTreeMap::new();
        let in_flight = apply(&tree, &ops, &mut model);
        pool.disarm_persist_trap();
        drop(tree);
        pool.simulate_crash();
        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        tree.verify_invariants().unwrap();
        let skip = match in_flight {
            Some(Op::Insert(k, _)) | Some(Op::Upsert(k, _)) | Some(Op::Remove(k)) => Some(k),
            None => None,
        };
        for (k, v) in &model {
            if Some(*k) != skip {
                assert_eq!(tree.find(*k), Some(*v), "trap@{trap_at} key {k}");
            }
        }
    }

    std::panic::set_hook(default_hook);
}
