//! End-to-end crash forensics through the event ring: run an RNTree
//! workload with splits, fire a persist trap mid-operation, simulate a
//! crash, recover — and verify the pool's event ring tells the whole
//! story: structural events before the crash, the trap and crash
//! injection, and every recovery step afterwards, in order.
//!
//! This is the workflow ISSUE 4 calls "crash forensics": after an
//! injected failure, `repro obs-report` (and `simulate_crash` users
//! generally) can dump a timeline instead of re-deriving what happened
//! from counters.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use index_common::PersistentIndex;
use obs::{EventKind, ObsSource, Phase, Section};
use rntree::{RnConfig, RnTree};

fn pool() -> Arc<nvm::PmemPool> {
    Arc::new(nvm::PmemPool::new(nvm::PmemConfig::for_testing(1 << 25)))
}

#[test]
fn event_ring_captures_crash_and_recovery_timeline() {
    // The trap panics on the N-th persist; silence the expected spew.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(run_timeline);
    std::panic::set_hook(default_hook);
    if let Err(e) = result {
        let msg = e
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| e.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        panic!("{msg}");
    }
}

fn run_timeline() {
    let pool = pool();
    let cfg = RnConfig::default();
    let tree = RnTree::create(Arc::clone(&pool), cfg);

    // Enough inserts to split repeatedly: structural events land in the
    // ring as they happen.
    for k in 0..2_000u64 {
        tree.insert(k * 7 + 1, k).unwrap();
    }
    let pre_crash = pool.events().dump();
    assert!(
        pre_crash.iter().any(|e| e.kind == EventKind::Split),
        "2000 inserts must have recorded split events"
    );

    // Fire a persist trap inside a later insert, then crash.
    pool.arm_persist_trap(7);
    let mut trapped = false;
    for k in 2_000..2_100u64 {
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| tree.insert(k * 7 + 1, k)));
        if r.is_err() {
            trapped = true;
            break;
        }
    }
    assert!(trapped, "persist trap never fired");
    pool.disarm_persist_trap();
    drop(tree);
    pool.simulate_crash();

    let tree = RnTree::recover(Arc::clone(&pool), cfg);
    tree.verify_invariants().expect("recovered tree invariants");

    // The ring survives tree teardown (it lives in the pool) and now
    // holds the full timeline: oldest-first, strictly ordered.
    let events = pool.events().dump();
    assert!(!events.is_empty());
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "dump must be strictly seq-ordered");
    }

    let has = |k: EventKind| events.iter().any(|e| e.kind == k);
    assert!(has(EventKind::TrapFired), "trap firing must be on the timeline");
    assert!(has(EventKind::CrashInjection), "simulate_crash must be on the timeline");
    assert!(has(EventKind::RecoveryJournal), "journal scan step missing");
    assert!(has(EventKind::RecoveryLeafChain), "leaf-chain walk step missing");
    assert!(has(EventKind::RecoveryAlloc), "allocator rebuild step missing");
    assert!(has(EventKind::RecoveryIndex), "index rebuild step missing");

    // Recovery steps come after the crash injection.
    let crash_seq =
        events.iter().find(|e| e.kind == EventKind::CrashInjection).map(|e| e.seq).unwrap();
    for e in &events {
        if matches!(
            e.kind,
            EventKind::RecoveryJournal
                | EventKind::RecoveryLeafChain
                | EventKind::RecoveryAlloc
                | EventKind::RecoveryIndex
        ) {
            assert!(e.seq > crash_seq, "recovery step {e:?} precedes the crash");
        }
    }

    // The leaf-chain step reports how much structure survived: `a` is
    // chain-reachable leaves, `b` the (max key, leaf) index pairs — at
    // most one per leaf, and 2000 inserts span many leaves.
    let chain =
        events.iter().find(|e| e.kind == EventKind::RecoveryLeafChain).expect("checked above");
    assert!(chain.a >= 10, "suspiciously few reachable leaves: {}", chain.a);
    assert!(chain.b >= 10 && chain.b <= chain.a, "index pairs {} vs leaves {}", chain.b, chain.a);

    // The same timeline is exported through the ObsSource snapshot.
    let sections = tree.obs_sections();
    let names: Vec<&str> = sections.iter().map(|(n, _)| n.as_str()).collect();
    for expect in ["tree", "pmem", "htm", "htm_retries", "events"] {
        assert!(names.contains(&expect), "section {expect} missing from {names:?}");
    }
    assert!(!names.contains(&"phases"), "phase section must be absent while timers are off");
    let ring_len = events.len();
    let exported = sections
        .iter()
        .find_map(|(n, s)| match (n.as_str(), s) {
            ("events", Section::Events(evs)) => Some(evs.len()),
            _ => None,
        })
        .expect("events section present");
    assert_eq!(exported, ring_len, "ObsSource must export the full ring");
}

#[test]
fn phase_timers_appear_only_when_enabled_and_cover_the_modify_path() {
    let pool = pool();
    let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());

    tree.phase_timers().set_enabled(true);
    tree.phase_timers().set_sample_shift(0); // sample every op
    for k in 0..500u64 {
        tree.insert(k + 1, k).unwrap();
    }

    // SlotPersist fires exactly once per applied modify; Descent and
    // LeafCs also fire on retry iterations (splits), so they are lower-
    // bounded by the op count and ordered Descent ≥ LeafCs (an iteration
    // can bail before locking but never locks without descending).
    let descent = tree.phase_timers().snapshot(Phase::Descent);
    let cs = tree.phase_timers().snapshot(Phase::LeafCs);
    let slot = tree.phase_timers().snapshot(Phase::SlotPersist);
    assert_eq!(slot.count(), 500, "one slot persist per applied op at shift 0");
    assert!(descent.count() >= 500, "descent {} below op count", descent.count());
    assert!(cs.count() >= 500, "leaf CS {} below op count", cs.count());
    assert!(cs.count() <= descent.count());

    let names: Vec<String> = tree.obs_sections().into_iter().map(|(n, _)| n).collect();
    assert!(names.iter().any(|n| n == "phases"), "phases section missing while enabled");

    tree.phase_timers().set_enabled(false);
    let before = tree.phase_timers().snapshot(Phase::Descent).count();
    for k in 500..600u64 {
        tree.insert(k + 1, k).unwrap();
    }
    assert_eq!(
        tree.phase_timers().snapshot(Phase::Descent).count(),
        before,
        "disabled timers must record nothing"
    );
}
