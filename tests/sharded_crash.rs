//! Sharded crash consistency: arm the persist trap in **exactly one**
//! shard of a `PoolSet`, crash the whole set mid-modify, recover all
//! shards in parallel, and verify against a `BTreeMap` oracle that
//!
//! * shards that were *not* trapped recover every acknowledged key exactly
//!   (their regions are independent — a neighbour's crash point must not
//!   perturb them), and
//! * the trapped shard is atomic for its single in-flight operation: the
//!   key holds either its pre- or post-op value, never a torn state.
//!
//! This is the sharded analogue of `crash_points.rs`, plus the new claim
//! that matters here: per-shard fault isolation across the composite.

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;

use index_common::{shard_of, PersistentIndex, ShardedIndex};
use nvm::{PmemConfig, PoolSet, SplitMix64};
use rntree::{RnConfig, RnTree};

const SHARDS: usize = 3;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
}

impl Op {
    fn key(self) -> u64 {
        match self {
            Op::Insert(k, _) | Op::Upsert(k, _) | Op::Remove(k) => k,
        }
    }
}

/// Deterministic mixed script; dense enough that every shard splits leaves
/// and churns its journal.
fn script() -> Vec<Op> {
    let mut ops = Vec::new();
    let mut rng = SplitMix64::new(0x5EED);
    for k in 1..=240u64 {
        ops.push(Op::Insert(k * 3, k));
    }
    for _ in 0..200 {
        let k = (rng.next_below(240) + 1) * 3;
        ops.push(Op::Upsert(k, rng.next_below(1 << 20)));
    }
    for _ in 0..80 {
        let k = (rng.next_below(240) + 1) * 3;
        ops.push(Op::Remove(k));
    }
    ops
}

/// Applies ops, maintaining the acknowledged-state oracle; returns the
/// in-flight op if the persist trap fires.
fn apply(idx: &ShardedIndex<RnTree>, ops: &[Op], model: &mut BTreeMap<u64, u64>) -> Option<Op> {
    for &op in ops {
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| match op {
            Op::Insert(k, v) => idx.insert(k, v).map(|_| Some(v)),
            Op::Upsert(k, v) => idx.upsert(k, v).map(|_| Some(v)),
            Op::Remove(k) => idx.remove(k).map(|_| None),
        }));
        match r {
            Ok(Ok(Some(v))) => {
                model.insert(op.key(), v);
            }
            Ok(Ok(None)) => {
                model.remove(&op.key());
            }
            Ok(Err(_)) => {}
            Err(_) => return Some(op),
        }
    }
    None
}

#[test]
fn single_shard_trap_leaves_other_shards_untouched() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let ops = script();
    let cfg = RnConfig { journal_slots: 2, ..RnConfig::default() };

    for target in 0..SHARDS {
        // A spread of crash points inside the target shard's persist
        // stream: early (first leaf writes), mid (splits/journal), late.
        for trap_at in [1u64, 5, 23, 60, 121, 240] {
            let set = PoolSet::new(PmemConfig::for_testing(SHARDS << 22), SHARDS);
            let idx = ShardedIndex::<RnTree>::create(&set.handles(), cfg);
            set.shard(target).arm_persist_trap(trap_at);

            let mut model = BTreeMap::new();
            let in_flight = apply(&idx, &ops, &mut model);
            set.shard(target).disarm_persist_trap();

            // The trap must have fired inside an op homed on `target`.
            let in_flight = in_flight.unwrap_or_else(|| {
                panic!("trap {trap_at}@shard{target} never fired — script too small")
            });
            assert_eq!(
                shard_of(in_flight.key(), SHARDS),
                target,
                "trap fired on an op homed elsewhere"
            );

            drop(idx);
            set.simulate_crash();

            let idx = ShardedIndex::<RnTree>::recover(&set.handles(), cfg);
            for i in 0..SHARDS {
                idx.shard(i)
                    .verify_invariants()
                    .unwrap_or_else(|e| panic!("trap {trap_at}@shard{target}: shard {i}: {e}"));
            }

            // Every acknowledged key — on any shard — is exact; only the
            // trapped shard's single in-flight key may be pre- or post-op.
            for (k, v) in &model {
                if *k == in_flight.key() {
                    continue;
                }
                assert_eq!(
                    idx.find(*k),
                    Some(*v),
                    "trap {trap_at}@shard{target}: acked key {k} (shard {}) wrong",
                    shard_of(*k, SHARDS)
                );
            }
            let k = in_flight.key();
            let old_v = model.get(&k).copied();
            let new_v = match in_flight {
                Op::Insert(_, v) | Op::Upsert(_, v) => Some(v),
                Op::Remove(_) => None,
            };
            let found = idx.find(k);
            assert!(
                found == old_v || found == new_v,
                "trap {trap_at}@shard{target}: in-flight key {k} torn: {found:?} (old {old_v:?} new {new_v:?})"
            );

            // No phantoms anywhere in the composite.
            let mut out = Vec::new();
            idx.scan_n(0, usize::MAX >> 1, &mut out);
            for (k2, _) in out {
                assert!(
                    model.contains_key(&k2) || k2 == k,
                    "trap {trap_at}@shard{target}: phantom key {k2}"
                );
            }

            // The recovered composite keeps serving writes on every shard.
            for probe in 0..(SHARDS as u64 * 4) {
                idx.upsert(1_000_000 + probe, probe).unwrap_or_else(|e| {
                    panic!("trap {trap_at}@shard{target}: post-recovery write: {e}")
                });
            }
        }
    }

    std::panic::set_hook(default_hook);
}

#[test]
fn quiescent_poolset_crash_recovers_everything() {
    // No trap: crash the whole set between operations; every acknowledged
    // key must survive parallel recovery bit-exact.
    let cfg = RnConfig::default();
    let set = PoolSet::new(PmemConfig::for_testing(SHARDS << 22), SHARDS);
    let idx = ShardedIndex::<RnTree>::create(&set.handles(), cfg);
    let mut model = BTreeMap::new();
    assert!(apply(&idx, &script(), &mut model).is_none());
    drop(idx);
    set.simulate_crash();

    let (idx, times) = ShardedIndex::<RnTree>::recover_timed(&set.handles(), cfg);
    assert_eq!(times.len(), SHARDS);
    assert_eq!(idx.stats().entries, model.len() as u64);
    for (k, v) in &model {
        assert_eq!(idx.find(*k), Some(*v), "key {k}");
    }
}
