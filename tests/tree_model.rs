//! Model-based testing: RNTree (both variants, both traversal modes)
//! against `BTreeMap` over randomized operation sequences.

use std::collections::BTreeMap;
use std::sync::Arc;

use index_common::{OpError, PersistentIndex};
use nvm::{PmemConfig, PmemPool, SplitMix64};
use rntree::{RnConfig, RnTree};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Update(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
    Find(u64),
    Scan(u64, usize),
}

/// Deterministic randomized op sequence (replaces the proptest strategy so
/// the workspace tests run with zero external deps).
fn gen_ops(rng: &mut SplitMix64, key_max: u64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let k = rng.next_key(key_max);
            match rng.next_below(6) {
                0 => Op::Insert(k, rng.next_u64()),
                1 => Op::Update(k, rng.next_u64()),
                2 => Op::Upsert(k, rng.next_u64()),
                3 => Op::Remove(k),
                4 => Op::Find(k),
                _ => Op::Scan(k, rng.next_below(20) as usize),
            }
        })
        .collect()
}

fn check_against_model(tree: &dyn PersistentIndex, ops: &[Op]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let expect = if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                    e.insert(v);
                    Ok(())
                } else {
                    Err(OpError::AlreadyExists)
                };
                assert_eq!(tree.insert(k, v), expect, "insert {k}");
            }
            Op::Update(k, v) => {
                let expect = if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(k) {
                    e.insert(v);
                    Ok(())
                } else {
                    Err(OpError::NotFound)
                };
                assert_eq!(tree.update(k, v), expect, "update {k}");
            }
            Op::Upsert(k, v) => {
                model.insert(k, v);
                assert_eq!(tree.upsert(k, v), Ok(()), "upsert {k}");
            }
            Op::Remove(k) => {
                let expect = if model.remove(&k).is_some() {
                    Ok(())
                } else {
                    Err(OpError::NotFound)
                };
                assert_eq!(tree.remove(k), expect, "remove {k}");
            }
            Op::Find(k) => {
                assert_eq!(tree.find(k), model.get(&k).copied(), "find {k}");
            }
            Op::Scan(k, n) => {
                tree.scan_n(k, n, &mut out);
                let expect: Vec<(u64, u64)> =
                    model.range(k..).take(n).map(|(a, b)| (*a, *b)).collect();
                assert_eq!(out, expect, "scan {k}+{n}");
            }
        }
    }
    // Final full sweep.
    tree.scan_n(0, usize::MAX >> 1, &mut out);
    let expect: Vec<(u64, u64)> = model.iter().map(|(a, b)| (*a, *b)).collect();
    assert_eq!(out, expect, "final full scan");
}

fn new_tree(dual: bool, seq: bool) -> RnTree {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
    RnTree::create(
        pool,
        RnConfig {
            dual_slot: dual,
            seq_traversal: seq,
            journal_slots: 4,
            ..RnConfig::default()
        },
    )
}

fn run_cases(cases: u64, seed: u64, key_max: u64, max_len: usize, mk: impl Fn() -> RnTree) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(seed ^ case.wrapping_mul(0x9E37_79B9));
        let len = 1 + rng.next_below(max_len as u64 - 1) as usize;
        let ops = gen_ops(&mut rng, key_max, len);
        let tree = mk();
        check_against_model(&tree, &ops);
        tree.verify_invariants().unwrap();
    }
}

#[test]
fn rntree_ds_matches_model() {
    run_cases(24, 0xD5, 300, 400, || new_tree(true, false));
}

#[test]
fn rntree_single_slot_matches_model() {
    run_cases(24, 0x51, 300, 400, || new_tree(false, false));
}

#[test]
fn rntree_seq_mode_matches_model() {
    run_cases(24, 0x5E, 300, 400, || new_tree(true, true));
}

#[test]
fn dense_small_keyspace_churn() {
    // A 20-key space forces heavy log churn, compactions and
    // obsolete-entry recycling within a single leaf.
    run_cases(24, 0xDE, 20, 600, || new_tree(true, false));
}

#[test]
fn ascending_and_descending_bulk_loads() {
    for dual in [true, false] {
        let tree = new_tree(dual, false);
        for k in 1..=2_000u64 {
            tree.insert(k, k).unwrap();
        }
        for k in (2_001..=4_000u64).rev() {
            tree.insert(k, k).unwrap();
        }
        for k in 1..=4_000u64 {
            assert_eq!(tree.find(k), Some(k));
        }
        tree.verify_invariants().unwrap();
        assert!(tree.rn_stats().splits > 30);
    }
}

#[test]
fn full_drain_and_refill() {
    let tree = new_tree(true, false);
    for k in 1..=1_000u64 {
        tree.insert(k, k).unwrap();
    }
    for k in 1..=1_000u64 {
        tree.remove(k).unwrap();
    }
    let mut out = Vec::new();
    assert_eq!(tree.scan_n(0, 10, &mut out), 0, "tree must be empty");
    for k in 1..=1_000u64 {
        tree.insert(k, k + 1).unwrap();
    }
    for k in 1..=1_000u64 {
        assert_eq!(tree.find(k), Some(k + 1));
    }
    tree.verify_invariants().unwrap();
}
