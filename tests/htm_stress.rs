//! Torture tests for the software-HTM substrate: multi-threaded invariant
//! preservation under conflicts, fallback interleavings, and mixed
//! transactional / non-transactional access — the access patterns the
//! trees rely on, distilled.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use htm::{HtmDomain, RetryPolicy, TmWord, TxnOptions};

// ------------------------------------------------------------------------
// Counting allocator: lets tests assert that a code path performs zero
// heap allocations. The counter is thread-local, so concurrently running
// tests in this binary cannot disturb each other's counts. `Cell<u64>` has
// no destructor and const-init, so reading it never allocates itself.

struct CountingAlloc;

std::thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bank-transfer invariant: concurrent transfers between random accounts
/// must preserve the total, and no reader may ever observe a different
/// total (snapshot atomicity).
#[test]
fn transfers_preserve_total_under_contention() {
    const ACCOUNTS: usize = 32;
    const TOTAL: u64 = 32_000;
    let domain = Arc::new(HtmDomain::new());
    let accounts: Arc<Vec<TmWord>> =
        Arc::new((0..ACCOUNTS).map(|_| TmWord::new(TOTAL / ACCOUNTS as u64)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let mut writers = Vec::new();
    for t in 0..3u64 {
        let domain = Arc::clone(&domain);
        let accounts = Arc::clone(&accounts);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut x = t + 1;
            let mut moved = 0u64;
            while !stop.load(Ordering::Relaxed) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let from = (x % ACCOUNTS as u64) as usize;
                let to = ((x >> 16) % ACCOUNTS as u64) as usize;
                if from == to {
                    continue;
                }
                let amount = x % 10;
                domain.atomic(|txn| {
                    let f = txn.read(&accounts[from])?;
                    if f < amount {
                        return Ok(());
                    }
                    let g = txn.read(&accounts[to])?;
                    txn.write(&accounts[from], f - amount)?;
                    txn.write(&accounts[to], g + amount)
                });
                moved += 1;
            }
            moved
        }));
    }

    // Reader: transactional snapshot of all accounts must always sum to
    // TOTAL (the whole point of atomic multi-word visibility).
    for _ in 0..2_000 {
        let sum = domain.atomic(|txn| {
            let mut s = 0u64;
            for a in accounts.iter() {
                s += txn.read(a)?;
            }
            Ok(s)
        });
        assert_eq!(sum, TOTAL, "torn transfer snapshot");
    }
    stop.store(true, Ordering::Relaxed);
    let moved: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(moved > 0);
    // Final non-transactional sum agrees too (quiescent).
    let sum: u64 = accounts.iter().map(|a| a.load_direct()).sum();
    assert_eq!(sum, TOTAL);
}

/// Tiny capacity + aggressive fallback: correctness must survive constant
/// irrevocable execution mixed with optimistic commits.
#[test]
fn fallback_heavy_execution_is_still_atomic() {
    const N: usize = 24;
    let domain = Arc::new(HtmDomain::with_options(
        TxnOptions {
            read_cap_lines: 2,
            write_cap_lines: 2,
        },
        RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        },
    ));
    let words: Arc<Vec<TmWord>> = Arc::new((0..N).map(|_| TmWord::new(0)).collect());

    let mut handles = Vec::new();
    for _ in 0..3 {
        let domain = Arc::clone(&domain);
        let words = Arc::clone(&words);
        handles.push(std::thread::spawn(move || {
            for _ in 0..500 {
                // Oversized txn: always capacity-aborts → fallback.
                domain.atomic(|txn| {
                    for w in words.iter() {
                        let v = txn.read(w)?;
                        txn.write(w, v + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for w in words.iter() {
        assert_eq!(w.load_direct(), 1_500, "lost increment under fallback");
    }
    let s = domain.stats().snapshot();
    assert!(s.fallbacks >= 1_000, "fallbacks: {}", s.fallbacks);
}

/// Non-transactional CAS/store mixed with transactions on the same words:
/// the version-lock bumps must keep both sides conflict-coherent.
#[test]
fn mixed_tx_and_nontx_counters_are_exact() {
    let domain = Arc::new(HtmDomain::new());
    let word = Arc::new(TmWord::new(0));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let domain = Arc::clone(&domain);
        let word = Arc::clone(&word);
        handles.push(std::thread::spawn(move || {
            for _ in 0..2_000 {
                if t % 2 == 0 {
                    word.fetch_add_nontx(1);
                } else {
                    domain.atomic(|txn| {
                        let v = txn.read(&word)?;
                        txn.write(&word, v + 1)
                    });
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(word.load_direct(), 8_000);
}

/// Read-only transactions are consistent even while a writer keeps two
/// words in lockstep through the fallback path.
#[test]
fn read_only_snapshots_respect_fallback_writers() {
    let domain = Arc::new(HtmDomain::with_options(
        TxnOptions {
            read_cap_lines: 512,
            write_cap_lines: 1, // writer's 2-word txn capacity-aborts → irrevocable
        },
        RetryPolicy::default(),
    ));
    let a = Arc::new(TmWord::new(0));
    let b = Arc::new(TmWord::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (domain, a, b, stop) =
            (Arc::clone(&domain), Arc::clone(&a), Arc::clone(&b), Arc::clone(&stop));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                domain.atomic(|txn| {
                    let x = txn.read(&a)?;
                    txn.write(&a, x + 1)?;
                    let y = txn.read(&b)?;
                    txn.write(&b, y + 1)
                });
            }
        })
    };
    for _ in 0..2_000 {
        let (x, y) = domain.atomic(|txn| {
            let x = txn.read(&a)?;
            let y = txn.read(&b)?;
            Ok((x, y))
        });
        assert_eq!(x, y, "lockstep broken across fallback boundary");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

/// Explicit aborts never leak partial writes, from either execution mode.
#[test]
fn explicit_abort_discards_buffered_state() {
    let domain = HtmDomain::new();
    let w = TmWord::new(10);
    let mut attempts = 0;
    let out = domain.atomic(|txn| {
        attempts += 1;
        txn.write(&w, 99)?;
        if attempts < 4 {
            return Err(txn.abort(1));
        }
        txn.read(&w)
    });
    assert_eq!(out, 99, "read-own-write on final attempt");
    assert_eq!(w.load_direct(), 99);
    assert_eq!(attempts, 4);
    assert!(domain.stats().snapshot().aborts_explicit >= 3);
}

/// Words inside a pmem arena are just as transactional as heap words —
/// the overlay the trees rely on.
#[test]
fn pmem_resident_words_are_transactional() {
    use nvm::{PmemConfig, PmemPool};
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 16)));
    let domain = Arc::new(HtmDomain::new());
    let offs: Vec<u64> = (0..8u64).map(|i| 4096 + i * 8).collect();

    let mut handles = Vec::new();
    for _ in 0..3 {
        let pool = Arc::clone(&pool);
        let domain = Arc::clone(&domain);
        let offs = offs.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..2_000 {
                domain.atomic(|txn| {
                    // Increment all 8 words atomically.
                    for &o in &offs {
                        let w = TmWord::from_atomic(pool.atomic_u64(o));
                        let v = txn.read(w)?;
                        txn.write(w, v + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for &o in &offs {
        assert_eq!(pool.load_u64(o), 6_000);
    }
    // And the committed state persists like any other arena data.
    pool.persist(4096, 64);
    pool.simulate_crash();
    for &o in &offs {
        assert_eq!(pool.load_u64(o), 6_000);
    }
}

/// High-iteration hammer on the weakened (Acquire/Release) lock-table and
/// clock orderings: 4 writer threads increment 16 words in lockstep while
/// 2 reader threads take transactional snapshots. Any missing publication
/// edge shows up as a torn (non-uniform) snapshot; any missing exclusion
/// edge shows up as a lost increment in the exact final total.
#[test]
fn weakened_orderings_survive_concurrent_increments_and_snapshots() {
    const WRITERS: usize = 4;
    const ITERS: u64 = 15_000;
    const WORDS: usize = 16;
    let domain = Arc::new(HtmDomain::new());
    let words: Arc<Vec<TmWord>> = Arc::new((0..WORDS).map(|_| TmWord::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..2 {
        let domain = Arc::clone(&domain);
        let words = Arc::clone(&words);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut last = 0u64;
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let vals = domain.atomic(|txn| {
                    let mut v = [0u64; WORDS];
                    for (slot, w) in v.iter_mut().zip(words.iter()) {
                        *slot = txn.read(w)?;
                    }
                    Ok(v)
                });
                // Publication edge: a snapshot is all-or-nothing.
                assert!(
                    vals.iter().all(|&v| v == vals[0]),
                    "torn snapshot: {vals:?}"
                );
                // Committed history is monotone from any one observer.
                assert!(vals[0] >= last, "snapshot went backwards");
                last = vals[0];
                snapshots += 1;
            }
            snapshots
        }));
    }

    let mut writers = Vec::new();
    for _ in 0..WRITERS {
        let domain = Arc::clone(&domain);
        let words = Arc::clone(&words);
        writers.push(std::thread::spawn(move || {
            for _ in 0..ITERS {
                domain.atomic(|txn| {
                    for w in words.iter() {
                        let v = txn.read(w)?;
                        txn.write(w, v + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(snapshots > 0);
    // Exclusion edge: every increment must have landed exactly once.
    for w in words.iter() {
        assert_eq!(w.load_direct(), WRITERS as u64 * ITERS, "lost increment");
    }
}

/// Small transactions (within the inline read/write-set capacity) must not
/// touch the heap at all: the read set, write set, line sets, and commit's
/// acquired-locks set all live on the stack.
#[test]
fn small_transactions_do_not_heap_allocate() {
    let domain = HtmDomain::new();
    let words: Vec<TmWord> = (0..8).map(TmWord::new).collect();
    // Warm up: first use faults in the global lock table and any lazy
    // thread-local state.
    for _ in 0..8 {
        domain.atomic(|txn| {
            let v = txn.read(&words[0])?;
            txn.write(&words[0], v)
        });
    }
    let before = thread_allocs();
    for round in 0..1_000u64 {
        let sum = domain.atomic(|txn| {
            let mut s = 0u64;
            for w in words.iter() {
                s += txn.read(w)?;
            }
            for w in words.iter().take(4) {
                let v = txn.read(w)?;
                txn.write(w, v + 1)?;
            }
            Ok(s)
        });
        std::hint::black_box((sum, round));
    }
    assert_eq!(
        thread_allocs() - before,
        0,
        "small transactions hit the heap"
    );
}

/// Oversized transactions spill to the per-thread scratch arena, which
/// recycles its buffers: after the first (allocating) spill, steady-state
/// large transactions are also allocation-free.
#[test]
fn spilled_transactions_recycle_scratch_buffers() {
    let domain = HtmDomain::new();
    let words: Vec<TmWord> = (0..64).map(TmWord::new).collect();
    let touch_all = |domain: &HtmDomain| {
        domain.atomic(|txn| {
            for w in words.iter() {
                let v = txn.read(w)?;
                txn.write(w, v + 1)?;
            }
            Ok(())
        });
    };
    // First spill allocates the scratch buffers and grows them to size.
    for _ in 0..4 {
        touch_all(&domain);
    }
    let before = thread_allocs();
    for _ in 0..200 {
        touch_all(&domain);
    }
    assert_eq!(
        thread_allocs() - before,
        0,
        "steady-state spilled transactions hit the heap"
    );
    for (i, w) in words.iter().enumerate() {
        assert_eq!(w.load_direct(), i as u64 + 204);
    }
}
