//! Torture tests for the software-HTM substrate: multi-threaded invariant
//! preservation under conflicts, fallback interleavings, and mixed
//! transactional / non-transactional access — the access patterns the
//! trees rely on, distilled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use htm::{HtmDomain, RetryPolicy, TmWord, TxnOptions};

/// Bank-transfer invariant: concurrent transfers between random accounts
/// must preserve the total, and no reader may ever observe a different
/// total (snapshot atomicity).
#[test]
fn transfers_preserve_total_under_contention() {
    const ACCOUNTS: usize = 32;
    const TOTAL: u64 = 32_000;
    let domain = Arc::new(HtmDomain::new());
    let accounts: Arc<Vec<TmWord>> =
        Arc::new((0..ACCOUNTS).map(|_| TmWord::new(TOTAL / ACCOUNTS as u64)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let mut writers = Vec::new();
    for t in 0..3u64 {
        let domain = Arc::clone(&domain);
        let accounts = Arc::clone(&accounts);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut x = t + 1;
            let mut moved = 0u64;
            while !stop.load(Ordering::Relaxed) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let from = (x % ACCOUNTS as u64) as usize;
                let to = ((x >> 16) % ACCOUNTS as u64) as usize;
                if from == to {
                    continue;
                }
                let amount = x % 10;
                domain.atomic(|txn| {
                    let f = txn.read(&accounts[from])?;
                    if f < amount {
                        return Ok(());
                    }
                    let g = txn.read(&accounts[to])?;
                    txn.write(&accounts[from], f - amount)?;
                    txn.write(&accounts[to], g + amount)
                });
                moved += 1;
            }
            moved
        }));
    }

    // Reader: transactional snapshot of all accounts must always sum to
    // TOTAL (the whole point of atomic multi-word visibility).
    for _ in 0..2_000 {
        let sum = domain.atomic(|txn| {
            let mut s = 0u64;
            for a in accounts.iter() {
                s += txn.read(a)?;
            }
            Ok(s)
        });
        assert_eq!(sum, TOTAL, "torn transfer snapshot");
    }
    stop.store(true, Ordering::Relaxed);
    let moved: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(moved > 0);
    // Final non-transactional sum agrees too (quiescent).
    let sum: u64 = accounts.iter().map(|a| a.load_direct()).sum();
    assert_eq!(sum, TOTAL);
}

/// Tiny capacity + aggressive fallback: correctness must survive constant
/// irrevocable execution mixed with optimistic commits.
#[test]
fn fallback_heavy_execution_is_still_atomic() {
    const N: usize = 24;
    let domain = Arc::new(HtmDomain::with_options(
        TxnOptions {
            read_cap_lines: 2,
            write_cap_lines: 2,
        },
        RetryPolicy { max_retries: 1 },
    ));
    let words: Arc<Vec<TmWord>> = Arc::new((0..N).map(|_| TmWord::new(0)).collect());

    let mut handles = Vec::new();
    for _ in 0..3 {
        let domain = Arc::clone(&domain);
        let words = Arc::clone(&words);
        handles.push(std::thread::spawn(move || {
            for _ in 0..500 {
                // Oversized txn: always capacity-aborts → fallback.
                domain.atomic(|txn| {
                    for w in words.iter() {
                        let v = txn.read(w)?;
                        txn.write(w, v + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for w in words.iter() {
        assert_eq!(w.load_direct(), 1_500, "lost increment under fallback");
    }
    let s = domain.stats().snapshot();
    assert!(s.fallbacks >= 1_000, "fallbacks: {}", s.fallbacks);
}

/// Non-transactional CAS/store mixed with transactions on the same words:
/// the version-lock bumps must keep both sides conflict-coherent.
#[test]
fn mixed_tx_and_nontx_counters_are_exact() {
    let domain = Arc::new(HtmDomain::new());
    let word = Arc::new(TmWord::new(0));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let domain = Arc::clone(&domain);
        let word = Arc::clone(&word);
        handles.push(std::thread::spawn(move || {
            for _ in 0..2_000 {
                if t % 2 == 0 {
                    word.fetch_add_nontx(1);
                } else {
                    domain.atomic(|txn| {
                        let v = txn.read(&word)?;
                        txn.write(&word, v + 1)
                    });
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(word.load_direct(), 8_000);
}

/// Read-only transactions are consistent even while a writer keeps two
/// words in lockstep through the fallback path.
#[test]
fn read_only_snapshots_respect_fallback_writers() {
    let domain = Arc::new(HtmDomain::with_options(
        TxnOptions {
            read_cap_lines: 512,
            write_cap_lines: 1, // writer's 2-word txn capacity-aborts → irrevocable
        },
        RetryPolicy::default(),
    ));
    let a = Arc::new(TmWord::new(0));
    let b = Arc::new(TmWord::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (domain, a, b, stop) =
            (Arc::clone(&domain), Arc::clone(&a), Arc::clone(&b), Arc::clone(&stop));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                domain.atomic(|txn| {
                    let x = txn.read(&a)?;
                    txn.write(&a, x + 1)?;
                    let y = txn.read(&b)?;
                    txn.write(&b, y + 1)
                });
            }
        })
    };
    for _ in 0..2_000 {
        let (x, y) = domain.atomic(|txn| {
            let x = txn.read(&a)?;
            let y = txn.read(&b)?;
            Ok((x, y))
        });
        assert_eq!(x, y, "lockstep broken across fallback boundary");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

/// Explicit aborts never leak partial writes, from either execution mode.
#[test]
fn explicit_abort_discards_buffered_state() {
    let domain = HtmDomain::new();
    let w = TmWord::new(10);
    let mut attempts = 0;
    let out = domain.atomic(|txn| {
        attempts += 1;
        txn.write(&w, 99)?;
        if attempts < 4 {
            return Err(txn.abort(1));
        }
        txn.read(&w)
    });
    assert_eq!(out, 99, "read-own-write on final attempt");
    assert_eq!(w.load_direct(), 99);
    assert_eq!(attempts, 4);
    assert!(domain.stats().snapshot().aborts_explicit >= 3);
}

/// Words inside a pmem arena are just as transactional as heap words —
/// the overlay the trees rely on.
#[test]
fn pmem_resident_words_are_transactional() {
    use nvm::{PmemConfig, PmemPool};
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 16)));
    let domain = Arc::new(HtmDomain::new());
    let offs: Vec<u64> = (0..8u64).map(|i| 4096 + i * 8).collect();

    let mut handles = Vec::new();
    for _ in 0..3 {
        let pool = Arc::clone(&pool);
        let domain = Arc::clone(&domain);
        let offs = offs.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..2_000 {
                domain.atomic(|txn| {
                    // Increment all 8 words atomically.
                    for &o in &offs {
                        let w = TmWord::from_atomic(pool.atomic_u64(o));
                        let v = txn.read(w)?;
                        txn.write(w, v + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for &o in &offs {
        assert_eq!(pool.load_u64(o), 6_000);
    }
    // And the committed state persists like any other arena data.
    pool.persist(4096, 64);
    pool.simulate_crash();
    for &o in &offs {
        assert_eq!(pool.load_u64(o), 6_000);
    }
}
