//! Correctness of the `obs` histogram layer from the outside: bucket
//! boundary precision, merge associativity/commutativity, quantile
//! monotonicity, and a multi-thread concurrent record/snapshot stress on
//! the striped [`obs::AtomicHistogram`].
//!
//! The unit tests inside `obs` pin the bucket math; these integration
//! tests pin the *contracts* downstream consumers rely on — the bench
//! harness merges per-thread histograms in arbitrary order and reads
//! quantiles off live trees while workers are still recording.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use obs::{AtomicHistogram, Histogram};

/// Deterministic xorshift so every run sees the same distribution.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[test]
fn bucket_floors_stay_within_advertised_precision() {
    // 64 majors × 16 minors: within a major bucket [2^m, 2^{m+1}) the
    // minor width is 2^{m-4}, i.e. at most 1/16 of the bucket floor —
    // every value lands at most floor/8 above its floor (6.25% of v for
    // v ≥ 32, where the minor subdivision is fully in effect).
    let mut probes: Vec<u64> = vec![32, 33, 47, 48, 63, 64, 65, 100, 1_000, 4_095, 4_096, 4_097];
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..2_000 {
        probes.push(32 + xorshift(&mut s) % 100_000_000);
    }
    for &v in &probes {
        let mut h = Histogram::new();
        h.record(v);
        let floor = h.quantile(1.0);
        assert!(floor <= v, "floor {floor} above sample {v}");
        assert!(
            v - floor <= v / 8,
            "sample {v} more than 12.5% above bucket floor {floor}"
        );
    }
    // Tiny values (< 16) are represented exactly.
    for v in 0..16u64 {
        let mut h = Histogram::new();
        h.record(v);
        assert_eq!(h.quantile(1.0), v, "tiny value {v} must be exact");
    }
}

/// Two histograms are indistinguishable to every consumer in the repo.
fn assert_same_distribution(a: &Histogram, b: &Histogram) {
    assert_eq!(a.count(), b.count());
    assert_eq!(a.sum(), b.sum());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    assert_eq!(a.quantiles(), b.quantiles());
    for i in 0..=1000 {
        let q = i as f64 / 1000.0;
        assert_eq!(a.quantile(q), b.quantile(q), "diverged at q={q}");
    }
}

#[test]
fn merge_is_associative_and_commutative() {
    // Three deliberately different shapes: uniform, heavy-tailed, point.
    let mut s = 42u64;
    let mut a = Histogram::new();
    for _ in 0..5_000 {
        a.record(xorshift(&mut s) % 10_000);
    }
    let mut b = Histogram::new();
    for _ in 0..3_000 {
        let r = xorshift(&mut s);
        b.record((r % 100) * (r % 100) * (r % 100));
    }
    let mut c = Histogram::new();
    for _ in 0..777 {
        c.record(123_456);
    }

    // (a ⊕ b) ⊕ c  ==  a ⊕ (b ⊕ c)
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_same_distribution(&left, &right);

    // c ⊕ b ⊕ a  ==  a ⊕ b ⊕ c
    let mut rev = c.clone();
    rev.merge(&b);
    rev.merge(&a);
    assert_same_distribution(&left, &rev);

    // Identity: merging an empty histogram changes nothing.
    let mut with_empty = left.clone();
    with_empty.merge(&Histogram::new());
    assert_same_distribution(&left, &with_empty);
}

#[test]
fn quantiles_are_monotone_in_q() {
    let mut h = Histogram::new();
    let mut s = 7u64;
    for _ in 0..20_000 {
        // Mixture: mostly small, occasional large outliers, like a real
        // latency profile with persist stalls.
        let r = xorshift(&mut s);
        let v = if r % 100 < 97 { 100 + r % 2_000 } else { 1_000_000 + r % 9_000_000 };
        h.record(v);
    }
    let mut last = 0;
    for i in 0..=1000 {
        let q = i as f64 / 1000.0;
        let v = h.quantile(q);
        assert!(v >= last, "quantile regressed at q={q}: {v} < {last}");
        last = v;
    }
    assert!(h.min() <= h.quantile(0.0));
    assert!(h.quantile(1.0) <= h.max());
    let qs = h.quantiles();
    assert!(qs.p50 <= qs.p90 && qs.p90 <= qs.p99 && qs.p99 <= qs.p999);
    assert!(qs.p999 <= qs.max);
}

#[test]
fn concurrent_recording_loses_nothing_and_snapshots_stay_sane() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50_000;

    let hist = Arc::new(AtomicHistogram::new());
    let done = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // Thread t records values in [t·10^6 + 32, t·10^6 + 32 + i):
                // disjoint ranges so the merged min/max are predictable.
                for i in 0..PER_THREAD {
                    hist.record(t * 1_000_000 + 32 + (i % 1_000));
                }
            })
        })
        .collect();

    // Reader thread: snapshots taken mid-flight must always be
    // internally consistent even though recorders are running.
    let reader = {
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last_count = 0;
            let mut iters = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = hist.snapshot();
                let n = snap.count();
                assert!(n >= last_count, "snapshot count went backwards");
                assert!(n <= THREADS * PER_THREAD, "snapshot overcounted: {n}");
                assert!(snap.quantile(0.5) <= snap.quantile(0.999));
                last_count = n;
                iters += 1;
            }
            iters
        })
    };

    for w in workers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let reader_iters = reader.join().unwrap();
    assert!(reader_iters > 0);

    // Quiescent snapshot: exact count, min/max at bucket precision.
    let snap = hist.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD, "samples were lost");
    assert!(snap.min() <= 32, "min {} above smallest sample", snap.min());
    let top = (THREADS - 1) * 1_000_000 + 32 + 999;
    assert!(snap.max() <= top, "max {} above largest sample {top}", snap.max());
    assert!(snap.max() >= top - top / 8, "max {} below largest sample's bucket", snap.max());
    // The mean is exact (sums are kept, not bucketised).
    let expected_sum: u128 = (0..THREADS)
        .map(|t| {
            (0..PER_THREAD).map(|i| (t * 1_000_000 + 32 + (i % 1_000)) as u128).sum::<u128>()
        })
        .sum();
    let expected_mean = expected_sum as f64 / (THREADS * PER_THREAD) as f64;
    let err = (snap.mean() - expected_mean).abs() / expected_mean;
    assert!(err < 1e-9, "mean drifted: {} vs {expected_mean}", snap.mean());
}

#[test]
fn atomic_reset_zeroes_everything() {
    let hist = AtomicHistogram::new();
    for v in 0..1_000u64 {
        hist.record(v);
    }
    assert_eq!(hist.snapshot().count(), 1_000);
    hist.reset();
    let snap = hist.snapshot();
    assert_eq!(snap.count(), 0);
    assert_eq!(snap.quantile(0.99), 0);
}
