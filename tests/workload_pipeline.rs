//! End-to-end pipeline tests: the ycsb drivers running against the real
//! trees through the shared trait, exactly as the benchmark harness does.

use std::sync::Arc;
use std::time::Duration;

use baselines::FpTree;
use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};
use ycsb::{run_closed_loop, run_open_loop, KeyDist, WorkloadSpec};

fn rn_tree(n: u64) -> Arc<RnTree> {
    let pool = Arc::new(PmemPool::new(PmemConfig::fast(1 << 26)));
    let tree = RnTree::create(pool, RnConfig::default());
    for k in 1..=n {
        tree.insert(k, k).unwrap();
    }
    Arc::new(tree)
}

/// Upcasts a concrete tree handle into the driver's trait-object form.
fn driver_handle<T: PersistentIndex + 'static>(tree: &Arc<T>) -> Arc<dyn PersistentIndex> {
    Arc::clone(tree) as Arc<dyn PersistentIndex>
}

#[test]
fn closed_loop_ycsb_a_on_rntree() {
    let n = 10_000;
    let tree = rn_tree(n);
    let spec = WorkloadSpec::ycsb_a(KeyDist::Uniform { n });
    let r = run_closed_loop(&driver_handle(&tree), &spec, 3, Duration::from_millis(300), 11);
    assert!(r.ops > 1_000, "ops={}", r.ops);
    assert!(r.read_lat.count() > 0 && r.update_lat.count() > 0);
    // 50/50 mix within tolerance.
    let ratio = r.read_lat.count() as f64 / r.ops as f64;
    assert!((0.40..0.60).contains(&ratio), "read share {ratio}");
    tree.verify_invariants().unwrap();
}

#[test]
fn closed_loop_zipfian_on_fptree() {
    let n = 10_000;
    let pool = Arc::new(PmemPool::new(PmemConfig::fast(1 << 26)));
    let tree = Arc::new(FpTree::create(pool, false));
    for k in 1..=n {
        tree.insert(k, k).unwrap();
    }
    let spec = WorkloadSpec::ycsb_a(KeyDist::ScrambledZipfian { n, theta: 0.9 });
    let r = run_closed_loop(&driver_handle(&tree), &spec, 3, Duration::from_millis(300), 13);
    assert!(r.ops > 1_000);
    tree.verify_invariants().unwrap();
    // Skewed writers force leaf-lock conflicts: some finds must have
    // aborted against locked leaves (the paper's §6.3.1 mechanism).
    let stats = tree.htm_stats();
    assert!(stats.commits > 0);
}

#[test]
fn open_loop_latency_includes_queueing() {
    let n = 5_000;
    let tree = rn_tree(n);
    let spec = WorkloadSpec::ycsb_a(KeyDist::ScrambledZipfian { n, theta: 0.8 });
    // Low offered load: latency must be far below the inter-arrival time.
    let r = run_open_loop(&driver_handle(&tree), &spec, 2, 500.0, Duration::from_millis(400), 17);
    assert!(r.ops > 100);
    assert!(
        r.read_lat.quantile(0.5) < 2_000_000,
        "unloaded p50 {} ns too high",
        r.read_lat.quantile(0.5)
    );
}

#[test]
fn scan_workload_through_driver() {
    let n = 20_000;
    let tree = rn_tree(n);
    let spec = WorkloadSpec {
        mix: ycsb::Mix {
            read: 50,
            scan: 50,
            ..Default::default()
        },
        dist: KeyDist::Uniform { n },
        scan_len: 100,
    };
    let r = run_closed_loop(&driver_handle(&tree), &spec, 2, Duration::from_millis(300), 19);
    assert!(r.other_lat.count() > 0, "scans must have run");
    // Scans of 100 sorted keys cost more than point reads.
    assert!(
        r.other_lat.mean() > r.read_lat.mean(),
        "scan mean {} ≤ read mean {}",
        r.other_lat.mean(),
        r.read_lat.mean()
    );
}

#[test]
fn insert_heavy_workload_grows_tree() {
    let n = 1_000;
    let tree = rn_tree(n);
    let before = tree.stats().entries;
    let spec = WorkloadSpec {
        mix: ycsb::Mix {
            insert: 100,
            ..Default::default()
        },
        dist: KeyDist::Uniform { n },
        scan_len: 0,
    };
    let r = run_closed_loop(&driver_handle(&tree), &spec, 2, Duration::from_millis(200), 23);
    assert!(r.ops > 100);
    let after = tree.stats().entries;
    assert!(after > before, "inserts did not grow the tree");
    tree.verify_invariants().unwrap();
}

#[test]
fn mixed_trait_objects_share_one_driver() {
    // The harness treats every tree uniformly through the trait; verify
    // the pipeline works for a heterogeneous set.
    let n = 2_000u64;
    let trees: Vec<Arc<dyn PersistentIndex>> = vec![
        rn_tree(n),
        Arc::new({
            let pool = Arc::new(PmemPool::new(PmemConfig::fast(1 << 25)));
            let t = FpTree::create(pool, false);
            for k in 1..=n {
                t.insert(k, k).unwrap();
            }
            t
        }),
    ];
    let spec = WorkloadSpec::ycsb_b(KeyDist::Uniform { n });
    for tree in &trees {
        let threads = if tree.supports_concurrency() { 2 } else { 1 };
        let r = run_closed_loop(tree, &spec, threads, Duration::from_millis(150), 29);
        assert!(r.ops > 100, "{} produced {} ops", tree.name(), r.ops);
    }
}
