//! Cross-shard model test: a `ShardedIndex<RnTree>` over a real `PoolSet`
//! must behave exactly like one `BTreeMap` — point ops and, crucially,
//! `scan_n`, whose output must be globally key-ordered even though every
//! shard only sees a hash-scattered subset of the keys.
//!
//! The scan cases are chosen to stress the k-way merge:
//! * starts landing mid-shard (an arbitrary present/absent key),
//! * spans crossing every shard many times (hash routing interleaves
//!   neighbouring keys across shards by design),
//! * requests longer than the whole data set.

use std::collections::BTreeMap;

use index_common::{OpError, PersistentIndex, ShardedIndex};
use nvm::{PmemConfig, PoolSet, SplitMix64};
use rntree::{RnConfig, RnTree};

fn fresh(shards: usize) -> (PoolSet, ShardedIndex<RnTree>) {
    let set = PoolSet::new(PmemConfig::for_testing(shards << 22), shards);
    let idx = ShardedIndex::<RnTree>::create(&set.handles(), RnConfig::default());
    (set, idx)
}

fn assert_scans_match(idx: &ShardedIndex<RnTree>, model: &BTreeMap<u64, u64>, starts: &[u64]) {
    let mut out = Vec::new();
    for &start in starts {
        for n in [0usize, 1, 3, 17, 256, model.len() + 1000] {
            let got = idx.scan_n(start, n, &mut out);
            let want: Vec<(u64, u64)> =
                model.range(start..).take(n).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want.len(), "scan_n({start}, {n}) count");
            assert_eq!(out, want, "scan_n({start}, {n}) contents");
        }
    }
}

#[test]
fn randomized_ops_match_btreemap_oracle() {
    for shards in [1usize, 3, 4] {
        let (_set, idx) = fresh(shards);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = SplitMix64::new(0xA11CE ^ shards as u64);

        for step in 0..6_000u64 {
            let key = rng.next_below(2_000) * 7 + 1;
            match rng.next_below(10) {
                0..=4 => {
                    let v = step;
                    assert_eq!(idx.upsert(key, v), Ok(()));
                    model.insert(key, v);
                }
                5..=6 => {
                    let r = idx.insert(key, step);
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(key) {
                        assert_eq!(r, Ok(()));
                        e.insert(step);
                    } else {
                        assert_eq!(r, Err(OpError::AlreadyExists), "insert dup {key}");
                    }
                }
                7..=8 => {
                    let r = idx.remove(key);
                    if model.remove(&key).is_some() {
                        assert_eq!(r, Ok(()), "remove present {key}");
                    } else {
                        assert_eq!(r, Err(OpError::NotFound), "remove absent {key}");
                    }
                }
                _ => {
                    assert_eq!(idx.find(key), model.get(&key).copied(), "find {key}");
                }
            }
        }

        assert_eq!(idx.stats().entries, model.len() as u64, "{shards} shards");

        // Starts: below all keys, a present key, mid-range absent keys
        // (land mid-shard after hashing), the max key, above all keys.
        let mut starts = vec![0u64, 1, 5_000, 9_999, u64::MAX];
        starts.extend(model.keys().copied().take(3));
        if let Some((&max, _)) = model.iter().next_back() {
            starts.push(max);
            starts.push(max + 1);
        }
        assert_scans_match(&idx, &model, &starts);
    }
}

#[test]
fn scan_interleaves_all_shards() {
    // Dense sequential keys: hashing scatters neighbours across shards, so
    // any correct 100-long scan must interleave pairs from every shard.
    let shards = 4;
    let (_set, idx) = fresh(shards);
    let mut model = BTreeMap::new();
    for k in 1..=2_000u64 {
        idx.insert(k, k * 2).unwrap();
        model.insert(k, k * 2);
    }
    let mut out = Vec::new();
    assert_eq!(idx.scan_n(500, 100, &mut out), 100);
    let touched: std::collections::BTreeSet<usize> =
        out.iter().map(|&(k, _)| index_common::shard_of(k, shards)).collect();
    assert_eq!(touched.len(), shards, "a dense scan must cross every shard");
    assert_scans_match(&idx, &model, &[0, 1, 499, 500, 1_999, 2_000, 2_001]);
}

#[test]
fn per_shard_trees_stay_internally_consistent() {
    let (_set, idx) = fresh(3);
    let mut rng = SplitMix64::new(7);
    for _ in 0..3_000 {
        let k = rng.next_below(10_000);
        let _ = idx.upsert(k, k);
    }
    for _ in 0..1_000 {
        let k = rng.next_below(10_000);
        let _ = idx.remove(k);
    }
    for i in 0..idx.shard_count() {
        idx.shard(i).verify_invariants().unwrap_or_else(|e| panic!("shard {i}: {e}"));
        // Every key in shard i must actually hash home to shard i.
        let mut out = Vec::new();
        idx.shard(i).scan_n(0, usize::MAX >> 1, &mut out);
        for (k, _) in out {
            assert_eq!(index_common::shard_of(k, 3), i, "key {k} on wrong shard {i}");
        }
    }
}
