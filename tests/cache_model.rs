//! DRAM page-cache model tests (PR 6): the version-validated cached
//! descent must be invisible to callers — same answers as the
//! all-transactional descent and as a `BTreeMap` oracle — under the
//! conditions most likely to expose a stale-routing bug: concurrent
//! split-forcing inserts, eviction churn from a starvation-level frame
//! budget, and invalidation storms where every structural change rips
//! frames out from under active readers.
//!
//! The safety argument these tests probe (DESIGN.md §5g): a cached
//! frame is only ever a *validated snapshot* of an inner node, so the
//! worst a reader can get is a consistent past routing decision; the
//! leaf operation re-checks its fence key and retries, so a stale route
//! costs a restart, never a wrong answer.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};

fn tree_with_frames(frames: usize, pool_bytes: usize) -> (Arc<PmemPool>, Arc<RnTree>) {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(pool_bytes)));
    let cfg = RnConfig {
        cache_frames: frames,
        ..RnConfig::default()
    };
    let tree = Arc::new(RnTree::create(Arc::clone(&pool), cfg));
    (pool, tree)
}

/// Cached (tiny frame budget, maximal eviction/invalidation churn) and
/// uncached trees fed the same split-forcing stream must agree with each
/// other and with a `BTreeMap` oracle, while reader threads hammer the
/// already-acknowledged prefix mid-stream.
#[test]
fn cached_and_uncached_trees_match_btreemap_under_concurrent_splits() {
    const N: u64 = 6_000;
    let (_pc, cached) = tree_with_frames(8, 1 << 24);
    let (_pu, uncached) = tree_with_frames(0, 1 << 24);

    let acked = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let cached = Arc::clone(&cached);
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ r;
                let mut checked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let hi = acked.load(Ordering::Acquire);
                    if hi == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    // xorshift over the acknowledged prefix: every key in
                    // it must be present with its exact value, no matter
                    // how many splits/invalidations are in flight.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % hi + 1;
                    assert_eq!(cached.find(k * 3), Some(k * 7), "mid-stream key {k}");
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    let mut oracle = BTreeMap::new();
    for k in 1..=N {
        cached.insert(k * 3, k * 7).unwrap();
        uncached.insert(k * 3, k * 7).unwrap();
        oracle.insert(k * 3, k * 7);
        acked.store(k, Ordering::Release);
        if k % 64 == 0 {
            std::thread::yield_now();
        }
    }
    stop.store(true, Ordering::Relaxed);
    let checked: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(checked > 0, "readers never ran");

    // Full-range agreement: cached scan == uncached scan == oracle.
    let mut got_c = Vec::new();
    cached.scan_n(0, usize::MAX >> 1, &mut got_c);
    let mut got_u = Vec::new();
    uncached.scan_n(0, usize::MAX >> 1, &mut got_u);
    let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(got_c, want, "cached tree diverged from oracle");
    assert_eq!(got_u, want, "uncached tree diverged from oracle");
    for (&k, &v) in &oracle {
        assert_eq!(cached.find(k), Some(v));
    }
    cached.verify_invariants().unwrap();
    uncached.verify_invariants().unwrap();

    // The tiny budget must actually have churned: a 6k-key tree has far
    // more inner nodes than 8 frames, so fills forced evictions, and
    // every split invalidated its touched nodes.
    let s = cached.cache_stats().expect("cache attached");
    assert!(s.fills > 0, "no fills: {s:?}");
    assert!(s.evictions > 0, "tiny budget never evicted: {s:?}");
    assert!(s.invalidations > 0, "splits never invalidated: {s:?}");
    assert!(uncached.cache_stats().is_none(), "frames=0 must disable the cache");
}

/// A starvation-level budget (fewer frames than tree levels would like)
/// must degrade to direct gate-validated reads, never to wrong answers
/// or livelock.
#[test]
fn eviction_under_pressure_keeps_every_answer_exact() {
    let (_p, tree) = tree_with_frames(4, 1 << 24);
    const N: u64 = 8_000;
    for k in 1..=N {
        tree.insert(k, k ^ 0xABCD).unwrap();
    }
    // Sweep the whole key space twice: the working set (dozens of inner
    // nodes) dwarfs 4 frames, so the clock hand recycles constantly.
    for _ in 0..2 {
        for k in 1..=N {
            assert_eq!(tree.find(k), Some(k ^ 0xABCD), "key {k}");
        }
    }
    let s = tree.cache_stats().unwrap();
    assert!(s.evictions > 0, "pressure never evicted: {s:?}");
    assert!(s.misses > 0);
    // Degradation is the miss path doing its job, not an error path:
    // descent restarts stay bounded (no livelock under pure reads).
    let d = tree.descent_stats();
    assert_eq!(d.tm_fallbacks, 0, "read-only pressure must not exhaust restarts: {d:?}");
    tree.verify_invariants().unwrap();
}

/// Readers racing a split storm: every structural change invalidates the
/// frames it touched while readers hold optimistic snapshots of them.
/// A reader that routed through a just-invalidated frame must restart or
/// land on a leaf whose fence check redirects it — never observe a torn
/// node or miss a pre-inserted key.
#[test]
fn invalidation_storm_never_loses_a_stable_key() {
    let (_p, tree) = tree_with_frames(16, 1 << 24);
    // Stable residents, spaced so the storm splits their leaves too.
    const STABLE: u64 = 500;
    for k in 1..=STABLE {
        tree.insert(k * 1_000, k).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for k in 1..=STABLE {
                        assert_eq!(tree.find(k * 1_000), Some(k), "stable key {k}");
                    }
                    rounds += 1;
                }
                rounds
            })
        })
        .collect();
    // The storm: dense inserts *between* the stable keys, splitting every
    // leaf and churning the inner index (and thus the cache) throughout.
    for k in 1..=STABLE {
        for j in 1..=8u64 {
            tree.insert(k * 1_000 + j, j).unwrap();
        }
        if k % 16 == 0 {
            std::thread::yield_now();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    let s = tree.cache_stats().unwrap();
    assert!(s.invalidations > 0, "storm never invalidated: {s:?}");
    tree.verify_invariants().unwrap();
}

/// The sharded substrate carves one budget across shards like PoolSet
/// carves capacity: equal shares, floored at one set's worth of ways so
/// a shard never gets a degenerate cache, and zero (disabled) stays zero.
#[test]
fn carve_cache_frames_splits_the_budget_across_shards() {
    let base = RnConfig {
        cache_frames: 1024,
        ..RnConfig::default()
    };
    assert_eq!(base.carve_cache_frames(1).cache_frames, 1024);
    assert_eq!(base.carve_cache_frames(4).cache_frames, 256);
    assert_eq!(base.carve_cache_frames(3).cache_frames, 341);
    // A budget smaller than the shard count still gives every shard a
    // usable (one-set) cache rather than rounding to zero frames.
    let tiny = RnConfig {
        cache_frames: 6,
        ..RnConfig::default()
    };
    assert_eq!(tiny.carve_cache_frames(4).cache_frames, nvm::CACHE_WAYS);
    // Disabled stays disabled: carving must not resurrect a cache the
    // caller turned off.
    let off = RnConfig {
        cache_frames: 0,
        ..RnConfig::default()
    };
    assert_eq!(off.carve_cache_frames(8).cache_frames, 0);
    // Everything else must carve through untouched.
    assert_eq!(base.carve_cache_frames(4).journal_slots, base.journal_slots);
}
