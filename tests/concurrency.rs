//! Multi-threaded correctness: linearizability smoke tests, hot-key
//! stress (a regression test for the allocation/split freeze protocol),
//! and reader/writer coordination for both RNTree variants and FPTree.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use baselines::FpTree;
use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};

fn rn(dual: bool) -> Arc<RnTree> {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 26)));
    Arc::new(RnTree::create(
        pool,
        RnConfig {
            dual_slot: dual,
            ..RnConfig::default()
        },
    ))
}

fn fp() -> Arc<FpTree> {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 26)));
    Arc::new(FpTree::create(pool, false))
}

/// Disjoint-range writers: every thread owns its keys; all acknowledged
/// writes must be exactly visible afterwards.
fn disjoint_writers(tree: Arc<dyn PersistentIndex>, threads: u64, per: u64) {
    let mut handles = Vec::new();
    for t in 0..threads {
        let tree = Arc::clone(&tree);
        handles.push(std::thread::spawn(move || {
            for i in 0..per {
                let k = t * per + i + 1;
                tree.insert(k, k * 10).unwrap();
                if i % 3 == 0 {
                    tree.update(k, k * 11).unwrap();
                }
                if i % 7 == 0 {
                    tree.remove(k).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..threads {
        for i in 0..per {
            let k = t * per + i + 1;
            let expect = if i % 7 == 0 {
                None
            } else if i % 3 == 0 {
                Some(k * 11)
            } else {
                Some(k * 10)
            };
            assert_eq!(tree.find(k), expect, "key {k}");
        }
    }
}

#[test]
fn disjoint_writers_rntree_ds() {
    let tree = rn(true);
    disjoint_writers(Arc::clone(&tree) as _, 6, 2_500);
    tree.verify_invariants().unwrap();
}

#[test]
fn disjoint_writers_rntree_single_slot() {
    let tree = rn(false);
    disjoint_writers(Arc::clone(&tree) as _, 6, 2_500);
    tree.verify_invariants().unwrap();
}

#[test]
fn disjoint_writers_fptree() {
    let tree = fp();
    disjoint_writers(Arc::clone(&tree) as _, 6, 2_500);
    tree.verify_invariants().unwrap();
}

/// Hot-key churn: a tiny key space hammered by writers exercises the
/// split/compaction freeze protocol continuously. Regression test for the
/// allocation-vs-split race (see `rntree::version` module docs): the old
/// protocol wedged within a second under this load.
fn hot_key_churn(tree: Arc<dyn PersistentIndex>, secs: u64) {
    let progress = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let tree = Arc::clone(&tree);
        let progress = Arc::clone(&progress);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut x = 99u64 + t;
            while !stop.load(Ordering::Relaxed) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let k = x % 150 + 1;
                match x % 4 {
                    0 | 1 => {
                        let _ = tree.upsert(k, x);
                    }
                    2 => {
                        std::hint::black_box(tree.find(k));
                    }
                    _ => {
                        let _ = tree.remove(k);
                    }
                }
                progress.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut last = 0;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(500));
        let now = progress.load(Ordering::Relaxed);
        assert!(now > last, "workload wedged at {now} ops");
        last = now;
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn hot_key_churn_rntree_ds() {
    let tree = rn(true);
    hot_key_churn(Arc::clone(&tree) as _, 3);
    tree.verify_invariants().unwrap();
}

#[test]
fn hot_key_churn_rntree_single_slot() {
    let tree = rn(false);
    hot_key_churn(Arc::clone(&tree) as _, 3);
    tree.verify_invariants().unwrap();
}

#[test]
fn hot_key_churn_fptree() {
    let tree = fp();
    hot_key_churn(Arc::clone(&tree) as _, 3);
    tree.verify_invariants().unwrap();
}

/// Readers racing writers must never observe torn state: the value for
/// key k is always k*large-prime + generation; a reader that sees any
/// other relation caught a torn snapshot.
#[test]
fn readers_never_see_torn_values() {
    for dual in [true, false] {
        let tree = rn(dual);
        for k in 1..=500u64 {
            tree.insert(k, k * 2_654_435_761).unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let t_writer = {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut generation = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    generation += 1;
                    for k in 1..=500u64 {
                        tree.update(k, k * 2_654_435_761 + generation).unwrap();
                    }
                }
            })
        };
        let mut readers = Vec::new();
        for seed in 0..2u64 {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut x = seed + 1;
                let mut checked = 0u64;
                while !stop.load(Ordering::Relaxed) && checked < 30_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let k = x % 500 + 1;
                    let v = tree.find(k).expect("key vanished");
                    assert!(
                        v >= k * 2_654_435_761,
                        "torn value for {k}: {v}"
                    );
                    // generation part must be sane (not interleaved bits)
                    let generation = v - k * 2_654_435_761;
                    assert!(generation < 1_000_000, "corrupt generation {generation}");
                    checked += 1;
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        t_writer.join().unwrap();
        tree.verify_invariants().unwrap();
    }
}

/// Scans racing writers return sorted, coherent ranges.
#[test]
fn concurrent_scans_are_sorted_and_coherent() {
    let tree = rn(true);
    for k in 1..=2_000u64 {
        tree.insert(k * 2, k).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut x = 5u64;
            while !stop.load(Ordering::Relaxed) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let k = (x % 2_000 + 1) * 2;
                let _ = tree.upsert(k, x);
            }
        })
    };
    let mut out = Vec::new();
    for i in 0..2_000u64 {
        let start = (i * 37) % 4_000;
        tree.scan_n(start, 50, &mut out);
        // Sorted, within range, even keys only.
        for w in out.windows(2) {
            assert!(w[0].0 < w[1].0, "unsorted scan");
        }
        for &(k, _) in &out {
            assert!(k >= start && k % 2 == 0, "scan leaked key {k}");
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    tree.verify_invariants().unwrap();
}

/// Concurrent work followed by crash: everything acknowledged survives.
#[test]
fn concurrent_then_crash_then_recover() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 26)));
    let cfg = RnConfig::default();
    let tree = Arc::new(RnTree::create(Arc::clone(&pool), cfg));
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let tree = Arc::clone(&tree);
            scope.spawn(move || {
                for i in 0..3_000u64 {
                    let k = t * 3_000 + i + 1;
                    tree.insert(k, k).unwrap();
                }
            });
        }
    });
    drop(tree);
    pool.simulate_crash();
    let tree = RnTree::recover(pool, cfg);
    tree.verify_invariants().unwrap();
    for k in 1..=12_000u64 {
        assert_eq!(tree.find(k), Some(k), "key {k} lost");
    }
}
