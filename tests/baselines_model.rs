//! Model-based testing of every baseline tree against `BTreeMap`, plus
//! the Table 1 persist-count contracts as cross-crate integration checks.

use std::collections::BTreeMap;
use std::sync::Arc;

use baselines::{CddsTree, FpTree, NvTree, WbTree, WbVariant};
use index_common::{OpError, PersistentIndex};
use nvm::{PmemConfig, PmemPool, SplitMix64};

fn pool() -> Arc<PmemPool> {
    Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Update(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
    Find(u64),
    Scan(u64, usize),
}

/// Deterministic randomized op sequence (replaces the proptest strategy so
/// the workspace tests run with zero external deps).
fn gen_ops(rng: &mut SplitMix64, key_max: u64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let k = rng.next_key(key_max);
            match rng.next_below(6) {
                0 => Op::Insert(k, rng.next_u64()),
                1 => Op::Update(k, rng.next_u64()),
                2 => Op::Upsert(k, rng.next_u64()),
                3 => Op::Remove(k),
                4 => Op::Find(k),
                _ => Op::Scan(k, rng.next_below(15) as usize),
            }
        })
        .collect()
}

/// Runs 16 deterministic model-check cases (ops over a 200-key space),
/// invoking `run` with each generated sequence.
fn run_model_cases(seed: u64, run: &dyn Fn(&[Op])) {
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(seed ^ case.wrapping_mul(0x9E37_79B9));
        let len = 1 + rng.next_below(299) as usize;
        let ops = gen_ops(&mut rng, 200, len);
        run(&ops);
    }
}

/// Conditional-semantics model check (trees that enforce uniqueness).
fn check_conditional(tree: &dyn PersistentIndex, ops: &[Op]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let expect = if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                    e.insert(v);
                    Ok(())
                } else {
                    Err(OpError::AlreadyExists)
                };
                assert_eq!(tree.insert(k, v), expect, "{}: insert {k}", tree.name());
            }
            Op::Update(k, v) => {
                let expect = if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(k) {
                    e.insert(v);
                    Ok(())
                } else {
                    Err(OpError::NotFound)
                };
                assert_eq!(tree.update(k, v), expect, "{}: update {k}", tree.name());
            }
            Op::Upsert(k, v) => {
                model.insert(k, v);
                assert_eq!(tree.upsert(k, v), Ok(()), "{}: upsert {k}", tree.name());
            }
            Op::Remove(k) => {
                let expect = if model.remove(&k).is_some() {
                    Ok(())
                } else {
                    Err(OpError::NotFound)
                };
                assert_eq!(tree.remove(k), expect, "{}: remove {k}", tree.name());
            }
            Op::Find(k) => {
                assert_eq!(tree.find(k), model.get(&k).copied(), "{}: find {k}", tree.name());
            }
            Op::Scan(k, n) => {
                tree.scan_n(k, n, &mut out);
                let expect: Vec<(u64, u64)> =
                    model.range(k..).take(n).map(|(a, b)| (*a, *b)).collect();
                assert_eq!(out, expect, "{}: scan {k}+{n}", tree.name());
            }
        }
    }
}

/// Upsert-only model check (plain NVTree: insert acts as upsert, remove is
/// blind-append) — compare visible state only.
fn check_upsert_only(tree: &dyn PersistentIndex, ops: &[Op]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) | Op::Update(k, v) | Op::Upsert(k, v) => {
                let _ = tree.upsert(k, v);
                model.insert(k, v);
            }
            Op::Remove(k) => {
                let _ = tree.remove(k);
                model.remove(&k);
            }
            Op::Find(k) => {
                assert_eq!(tree.find(k), model.get(&k).copied(), "find {k}");
            }
            Op::Scan(k, n) => {
                tree.scan_n(k, n, &mut out);
                let expect: Vec<(u64, u64)> =
                    model.range(k..).take(n).map(|(a, b)| (*a, *b)).collect();
                assert_eq!(out, expect, "scan {k}+{n}");
            }
        }
    }
}

#[test]
fn wbtree_full_matches_model() {
    run_model_cases(0xB1, &|ops| {
        let tree = WbTree::create(pool(), WbVariant::Full, false);
        check_conditional(&tree, ops);
        tree.verify_invariants().unwrap();
    });
}

#[test]
fn wbtree_so_matches_model() {
    run_model_cases(0xB2, &|ops| {
        let tree = WbTree::create(pool(), WbVariant::SmallSlot, false);
        check_conditional(&tree, ops);
        tree.verify_invariants().unwrap();
    });
}

#[test]
fn fptree_matches_model() {
    run_model_cases(0xB3, &|ops| {
        let tree = FpTree::create(pool(), false);
        check_conditional(&tree, ops);
        tree.verify_invariants().unwrap();
    });
}

#[test]
fn cdds_matches_model() {
    run_model_cases(0xB4, &|ops| {
        let tree = CddsTree::create(pool(), false);
        check_conditional(&tree, ops);
        tree.verify_invariants().unwrap();
    });
}

#[test]
fn nvtree_conditional_matches_model() {
    run_model_cases(0xB5, &|ops| {
        let tree = NvTree::new_conditional(pool(), false);
        check_conditional(&tree, ops);
        tree.verify_invariants().unwrap();
    });
}

#[test]
fn nvtree_plain_matches_upsert_model() {
    run_model_cases(0xB6, &|ops| {
        let tree = NvTree::create(pool(), false);
        check_upsert_only(&tree, ops);
        tree.verify_invariants().unwrap();
    });
}

/// Table 1 contract: steady-state persist counts per modify, as an
/// integration check over the shared substrate.
#[test]
fn table1_persist_contracts() {
    struct Case {
        tree: Box<dyn PersistentIndex>,
        pool: Arc<PmemPool>,
        insert: u64,
        remove: u64,
    }
    let mk = |f: &dyn Fn(Arc<PmemPool>) -> Box<dyn PersistentIndex>, ins, rem| {
        let p = Arc::new(PmemPool::new(PmemConfig::fast(1 << 24)));
        Case {
            tree: f(Arc::clone(&p)),
            pool: p,
            insert: ins,
            remove: rem,
        }
    };
    let cases = vec![
        mk(&|p| Box::new(NvTree::create(p, true)), 2, 2),
        mk(&|p| Box::new(WbTree::create(p, WbVariant::Full, true)), 4, 3),
        mk(&|p| Box::new(WbTree::create(p, WbVariant::SmallSlot, true)), 2, 1),
        mk(&|p| Box::new(FpTree::create(p, true)), 3, 1),
    ];
    for case in cases {
        for k in 1..=10u64 {
            case.tree.insert(k * 2, k).unwrap();
        }
        let before = case.pool.stats().snapshot();
        case.tree.insert(5, 5).unwrap();
        let ins = case.pool.stats().snapshot().since(&before).persists;
        assert_eq!(ins, case.insert, "{} insert persists", case.tree.name());
        let before = case.pool.stats().snapshot();
        case.tree.remove(5).unwrap();
        let rem = case.pool.stats().snapshot().since(&before).persists;
        assert_eq!(rem, case.remove, "{} remove persists", case.tree.name());
    }
}

/// All trees agree on the same mixed scenario end-state.
#[test]
fn all_trees_agree_on_shared_scenario() {
    let trees: Vec<Box<dyn PersistentIndex>> = vec![
        Box::new(WbTree::create(pool(), WbVariant::Full, false)),
        Box::new(WbTree::create(pool(), WbVariant::SmallSlot, false)),
        Box::new(FpTree::create(pool(), false)),
        Box::new(CddsTree::create(pool(), false)),
        Box::new(NvTree::new_conditional(pool(), false)),
    ];
    for tree in &trees {
        let mut x = 42u64;
        for _ in 0..3_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = x % 400 + 1;
            match x % 5 {
                0 | 1 => {
                    let _ = tree.upsert(k, x);
                }
                2 => {
                    let _ = tree.insert(k, x);
                }
                3 => {
                    let _ = tree.remove(k);
                }
                _ => {
                    let _ = tree.update(k, x);
                }
            }
        }
    }
    let mut reference: Option<Vec<(u64, u64)>> = None;
    let mut out = Vec::new();
    for tree in &trees {
        tree.scan_n(0, 10_000, &mut out);
        match &reference {
            None => reference = Some(out.clone()),
            Some(r) => assert_eq!(&out, r, "{} diverged", tree.name()),
        }
    }
    assert!(!reference.unwrap().is_empty());
}
