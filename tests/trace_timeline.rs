//! Sampled op tracing + time-resolved metrics, end to end (PR 9).
//!
//! Exercises the whole path the bench relies on: an `Instrumented`
//! `RnTree` with a `TraceRing` attached records spans whose fields
//! reflect what the op actually did (descent, persists, leaf landed
//! on); the ring bounds memory and reports drops; a `Timeline` fed from
//! the live histograms produces windowed percentile series; and the
//! tree's obs sections export the new heat tables and event-ring
//! overflow counters through both registry formats.

use std::sync::Arc;

use index_common::{Instrumented, PersistentIndex};
use nvm::{PmemConfig, PmemPool};
use obs::{ObsRegistry, ObsSource, OpType, Timeline, ToJson, TraceRing};
use rntree::{RnConfig, RnTree};

fn tree_on(mb: usize) -> Arc<RnTree> {
    let mut cfg = PmemConfig::fast(0);
    cfg.size = mb << 20;
    let pool = Arc::new(PmemPool::new(cfg));
    Arc::new(RnTree::create(pool, RnConfig::default()))
}

#[test]
fn spans_capture_op_structure() {
    let tree = tree_on(64);
    let ring = TraceRing::shared();
    ring.set_sample_shift(0); // trace every op
    let (instr, _hists) = Instrumented::with_histograms(Arc::clone(&tree));
    let instr = instr.with_tracing(Arc::clone(&ring));

    // Interleave inserts and finds: one thread feeds one ring stripe, so
    // only the newest spans survive a wrap — the tail must hold both op
    // types for the assertions below.
    for k in 1..=500u64 {
        instr.insert(k, k).unwrap();
        assert_eq!(instr.find(k), Some(k));
    }

    let spans = ring.dump();
    assert!(!spans.is_empty());
    assert!(ring.recorded() >= 1000, "shift 0 must record every op");

    let inserts: Vec<_> = spans.iter().filter(|s| s.op == OpType::Insert).collect();
    let searches: Vec<_> = spans.iter().filter(|s| s.op == OpType::Search).collect();
    assert!(!inserts.is_empty() && !searches.is_empty());
    // Inserts persist (KV entry + slot line) and land on a leaf.
    assert!(inserts.iter().any(|s| s.persists > 0), "insert spans must count persists");
    assert!(inserts.iter().any(|s| s.leaf != 0), "insert spans must name their leaf");
    // Optimistic transactions show up as attempts.
    assert!(inserts.iter().any(|s| s.htm_attempts > 0), "insert spans must count HTM attempts");
    // Cached descent reports depth and cache traffic.
    assert!(
        spans.iter().any(|s| s.descent_depth > 0),
        "descent depth must be traced on the cached path"
    );
    assert!(
        spans.iter().any(|s| s.cache_hits + s.cache_misses > 0),
        "cache traffic must be traced on the cached path"
    );
    // Every span carries a wall-clock duration.
    assert!(spans.iter().all(|s| s.total_ns > 0));
    // The span renders to JSON with the abort taxonomy present.
    let j = spans[0].to_json().render();
    for key in ["\"op\"", "\"total_ns\"", "\"aborts\"", "\"fallback_tier\"", "\"persists\""] {
        assert!(j.contains(key), "span JSON missing {key}: {j}");
    }
}

#[test]
fn sampling_shift_thins_spans() {
    let tree = tree_on(32);
    let ring = TraceRing::shared();
    ring.set_sample_shift(3); // 1 op in 8
    let (instr, _hists) = Instrumented::with_histograms(Arc::clone(&tree));
    let instr = instr.with_tracing(Arc::clone(&ring));
    for k in 1..=800u64 {
        instr.insert(k, k).unwrap();
    }
    let recorded = ring.recorded();
    assert!(
        (80..=120).contains(&recorded),
        "1-in-8 sampling of 800 ops should record ~100 spans, got {recorded}"
    );
}

#[test]
fn ring_overflow_is_bounded_and_reported() {
    let tree = tree_on(64);
    let ring = TraceRing::shared();
    ring.set_sample_shift(0);
    let (instr, _hists) = Instrumented::with_histograms(Arc::clone(&tree));
    let instr = instr.with_tracing(Arc::clone(&ring));
    for k in 1..=6_000u64 {
        instr.insert(k, k).unwrap();
    }
    let spans = ring.dump();
    assert!(spans.len() < 6_000, "ring must bound memory");
    assert_eq!(ring.recorded(), 6_000);
    assert!(ring.dropped() > 0, "overflow must be visible, not silent");
    assert_eq!(ring.recorded() - ring.dropped(), spans.len() as u64);

    ring.clear();
    assert_eq!(ring.dump().len(), 0);
    assert_eq!(ring.recorded(), 0);
}

#[test]
fn timeline_builds_percentile_series_from_live_histograms() {
    let tree = tree_on(32);
    let (instr, hists) = Instrumented::with_histograms(Arc::clone(&tree));
    let timeline = Timeline::new(8);

    let merged = |hists: &obs::OpHistograms| {
        let mut m = obs::Histogram::new();
        for op in OpType::ALL {
            m.merge(&hists.snapshot(op));
        }
        m
    };

    let mut key = 0u64;
    for window in 0..3u64 {
        for _ in 0..300 {
            key += 1;
            instr.insert(key, key).unwrap();
        }
        let h = merged(&hists);
        let n = h.count();
        timeline.tick((window + 1) * 10, &h, n);
    }

    let windows = timeline.windows();
    assert_eq!(windows.len(), 3);
    assert_eq!(windows[0].t_ms, 10);
    assert_eq!(windows[2].t_ms, 30);
    let total: u64 = windows.iter().map(|w| w.samples).sum();
    assert_eq!(total, merged(&hists).count(), "window deltas must partition the cumulative");
    for w in &windows {
        assert!(w.samples > 0, "every window saw inserts");
        assert!(w.p50_ns > 0 && w.p99_ns >= w.p50_ns);
    }
    // Capacity 8: five more ticks overflow and report it.
    for t in 3..11u64 {
        let h = merged(&hists);
        let n = h.count();
        timeline.tick((t + 1) * 10, &h, n);
    }
    assert_eq!(timeline.windows().len(), 8);
    assert_eq!(timeline.dropped(), 3);
}

#[test]
fn obs_sections_export_heat_and_event_overflow() {
    let tree = tree_on(64);
    for k in 1..=20_000u64 {
        tree.insert(k, k).unwrap();
    }

    let sections = tree.obs_sections();
    let names: Vec<&str> = sections.iter().map(|(n, _)| n.as_str()).collect();
    for want in [
        "heat.leaf_conflicts",
        "heat.leaf_splits",
        "heat.leaf_morphs",
        "heat.htm_stripes",
        "heat_meta",
        "events_meta",
    ] {
        assert!(names.contains(&want), "missing section {want}; have {names:?}");
    }

    let mut reg = ObsRegistry::new();
    reg.register("tree", Arc::clone(&tree) as Arc<dyn ObsSource + Send + Sync>);
    let snap = reg.snapshot();

    let json = snap.to_json();
    let splits = json
        .get("sources")
        .and_then(|s| s.get("tree"))
        .and_then(|t| t.get("heat.leaf_splits"))
        .and_then(|h| h.as_arr())
        .expect("heat.leaf_splits renders as an array");
    assert!(!splits.is_empty(), "20k inserts split leaves; the heat table must show them");
    for entry in splits {
        for key in ["key", "count", "err"] {
            assert!(entry.get(key).is_some(), "heat entry missing {key}");
        }
    }
    let meta = json
        .get("sources")
        .and_then(|s| s.get("tree"))
        .and_then(|t| t.get("events_meta"))
        .expect("events_meta section present");
    assert!(meta.get("events_recorded").and_then(|v| v.as_u64()).unwrap() > 0);
    meta.get("events_dropped").and_then(|v| v.as_u64()).expect("events_dropped exported");

    let prom = snap.to_prometheus();
    assert!(
        prom.contains("rn_heat_leaf_splits_count{source=\"tree\",rank=\"0\""),
        "prometheus must carry ranked heat series"
    );
    assert!(prom.contains("rn_events_meta_events_dropped{source=\"tree\"}"));
}

#[test]
fn class_histograms_roll_up_the_op_mix() {
    let tree = tree_on(32);
    let (instr, hists) = Instrumented::with_histograms(Arc::clone(&tree));
    hists.set_sample_shift(0); // exact counts, no 1-in-8 sampling
    for k in 1..=50u64 {
        instr.insert(k, k).unwrap();
    }
    for k in 1..=30u64 {
        instr.update(k, k + 1).unwrap();
    }
    for k in 1..=20u64 {
        instr.find(k);
    }
    assert_eq!(hists.snapshot_class(obs::OpClass::Insert).count(), 50);
    assert_eq!(hists.snapshot_class(obs::OpClass::Update).count(), 30);
    assert_eq!(hists.snapshot_class(obs::OpClass::Read).count(), 20);
    assert_eq!(hists.snapshot_class(obs::OpClass::Scan).count(), 0);
}
