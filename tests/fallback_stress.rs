//! Stress tests for the two-tier (striped) HTM fallback.
//!
//! These pin the PR-5 scalability contract at the `HtmDomain` level,
//! with the abort-taxonomy counters as the witness:
//!
//! * fallbacks on **disjoint** stripes run concurrently — they never
//!   contend on a stripe, never escalate to the global tier, and never
//!   abort each other (all proven by exact counter values);
//! * fallbacks on the **same** stripe serialise (exact final count) and
//!   their contention is visible as `stripe_conflicts`;
//! * a mixed optimistic + forced-fallback workload over paired words
//!   stays atomic against a sequential replay oracle while concurrent
//!   snapshot readers observe the pair invariant.
//!
//! Forced fallbacks use the same trick throughout: the optimistic
//! attempt reads a word (recording its stripe in the footprint) and then
//! returns a fabricated [`AbortCode::Conflict`]; with the retry budget
//! exhausted, `HtmDomain::atomic` runs the body under exactly the
//! footprint stripes — the tier-1 path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;

use htm::{stripe_of, Abort, AbortCode, HtmDomain, RetryPolicy, TmWord, TxnOptions, STRIPES};

const THREADS: usize = 8;

/// One cache line holding one word, so `stripe_of` decisions are made
/// per element (words sharing a line share a stripe by construction).
#[repr(align(64))]
#[derive(Default)]
struct Line {
    w: TmWord,
}

/// A policy that falls back on the first conflict, with adaptation off,
/// so every test op is exactly one optimistic attempt + one fallback.
fn fallback_on_first_conflict() -> RetryPolicy {
    RetryPolicy {
        max_retries: 0,
        adaptive: false,
    }
}

/// Groups `pool` indices by fallback stripe.
fn by_stripe(pool: &[Line]) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); STRIPES];
    for (i, l) in pool.iter().enumerate() {
        groups[stripe_of(&l.w)].push(i);
    }
    groups
}

/// Disjoint-stripe fallbacks are fully concurrent: every op takes the
/// tier-1 path, no op ever contends on a stripe, escalates, or aborts
/// another — all asserted exactly from the taxonomy counters.
#[test]
fn disjoint_stripe_fallbacks_do_not_interfere() {
    const OPS: usize = 300;
    let pool: Vec<Line> = (0..1024).map(|_| Line::default()).collect();
    // One word per thread, each in a distinct stripe.
    let picked: Vec<usize> = by_stripe(&pool)
        .iter()
        .filter_map(|g| g.first().copied())
        .take(THREADS)
        .collect();
    assert_eq!(picked.len(), THREADS, "1024 lines must cover 8 stripes");

    let domain = HtmDomain::with_options(TxnOptions::default(), fallback_on_first_conflict());
    thread::scope(|s| {
        for t in 0..THREADS {
            let word = &pool[picked[t]].w;
            let domain = &domain;
            s.spawn(move || {
                for _ in 0..OPS {
                    domain.atomic(|txn| {
                        if !txn.is_fallback() {
                            // Record the stripe in the footprint, then
                            // force the fallback.
                            txn.read(word)?;
                            return Err(Abort {
                                code: AbortCode::Conflict,
                            });
                        }
                        let v = txn.read(word)?;
                        txn.write(word, v + 1)
                    });
                }
            });
        }
    });

    for &i in &picked {
        assert_eq!(pool[i].w.load_direct(), OPS as u64);
    }
    let ops = (THREADS * OPS) as u64;
    let snap = domain.stats().snapshot();
    assert_eq!(snap.aborts_conflict, ops);
    assert_eq!(snap.fallbacks_striped, ops, "every op took the tier-1 path");
    assert_eq!(snap.fallbacks_global, 0, "no op escalated to the global tier");
    assert_eq!(snap.stripe_escapes, 0, "no footprint miss");
    assert_eq!(
        snap.stripe_conflicts, 0,
        "disjoint-stripe fallbacks never contended on a stripe"
    );
}

/// Same-stripe fallbacks serialise: the shared counter lands exactly, no
/// op escalates, and the serialisation is visible as stripe conflicts.
#[test]
fn same_stripe_fallbacks_serialize_and_count_conflicts() {
    const OPS: usize = 150;
    let pool: Vec<Line> = (0..2048).map(|_| Line::default()).collect();
    // The largest stripe group supplies the shared word plus one private
    // same-stripe word per thread (the private read records the stripe
    // in the footprint without ever conflicting for real).
    let groups = by_stripe(&pool);
    let group = groups.iter().max_by_key(|g| g.len()).unwrap();
    assert!(group.len() > THREADS, "2048 lines must give a 9-deep stripe");
    let shared = &pool[group[0]].w;

    let domain = HtmDomain::with_options(TxnOptions::default(), fallback_on_first_conflict());
    thread::scope(|s| {
        for t in 0..THREADS {
            let mine = &pool[group[t + 1]].w;
            let domain = &domain;
            s.spawn(move || {
                for _ in 0..OPS {
                    domain.atomic(|txn| {
                        if !txn.is_fallback() {
                            txn.read(mine)?;
                            return Err(Abort {
                                code: AbortCode::Conflict,
                            });
                        }
                        // Yield while the stripe is held so, on any core
                        // count, other threads observably contend on it.
                        thread::yield_now();
                        let v = txn.read(shared)?;
                        txn.write(shared, v + 1)
                    });
                }
            });
        }
    });

    let ops = (THREADS * OPS) as u64;
    assert_eq!(shared.load_direct(), ops, "same-stripe fallbacks are atomic");
    let snap = domain.stats().snapshot();
    assert_eq!(snap.aborts_conflict, ops);
    assert_eq!(snap.fallbacks_striped, ops);
    assert_eq!(snap.fallbacks_global, 0);
    assert_eq!(snap.stripe_escapes, 0);
    assert!(
        snap.stripe_conflicts > 0,
        "serialised same-stripe fallbacks must be visible as stripe conflicts"
    );
}

/// An optimistic section whose footprint misses every concurrent
/// fallback's stripes never aborts: half the threads run forced tier-1
/// fallbacks, the other half run plain optimistic increments on stripes
/// disjoint from all of them, and the taxonomy counters prove the
/// optimistic sections committed first-try, every time.
#[test]
fn optimistic_sections_ignore_disjoint_stripe_fallbacks() {
    const OPS: usize = 300;
    const HALF: usize = THREADS / 2;
    let pool: Vec<Line> = (0..1024).map(|_| Line::default()).collect();
    let picked: Vec<usize> = by_stripe(&pool)
        .iter()
        .filter_map(|g| g.first().copied())
        .take(THREADS)
        .collect();
    assert_eq!(picked.len(), THREADS, "1024 lines must cover 8 stripes");

    let domain = HtmDomain::with_options(TxnOptions::default(), fallback_on_first_conflict());
    thread::scope(|s| {
        for t in 0..THREADS {
            let word = &pool[picked[t]].w;
            let domain = &domain;
            let forced = t < HALF;
            s.spawn(move || {
                for _ in 0..OPS {
                    domain.atomic(|txn| {
                        if forced && !txn.is_fallback() {
                            txn.read(word)?;
                            return Err(Abort {
                                code: AbortCode::Conflict,
                            });
                        }
                        let v = txn.read(word)?;
                        txn.write(word, v + 1)
                    });
                }
            });
        }
    });

    for &i in &picked {
        assert_eq!(pool[i].w.load_direct(), OPS as u64);
    }
    let half_ops = (HALF * OPS) as u64;
    let snap = domain.stats().snapshot();
    // The optimistic half committed every section on its first attempt —
    // the in-flight disjoint-stripe fallbacks cost it nothing.
    assert_eq!(snap.commits, half_ops);
    assert_eq!(snap.attempts, 2 * half_ops);
    assert_eq!(snap.aborts_conflict, half_ops, "only the fabricated aborts");
    assert_eq!(snap.fallbacks_striped, half_ops);
    assert_eq!(snap.fallbacks_global, 0);
    assert_eq!(snap.stripe_escapes, 0);
    assert_eq!(snap.stripe_conflicts, 0);
}

/// Tiny deterministic PRNG so writers and the replay oracle generate the
/// same op stream.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Mixed optimistic and forced-fallback updates over lockstep pairs
/// (`w[k]`, `w[k+32]`), racing snapshot readers: the final state matches
/// a sequential replay oracle and every transactional read of a pair is
/// equal — whichever tier each op ended up on.
#[test]
fn mixed_transactional_and_fallback_updates_stay_atomic() {
    const PAIRS: usize = 32;
    const OPS: usize = 400;
    const READERS: usize = 2;
    let pool: Vec<Line> = (0..2 * PAIRS).map(|_| Line::default()).collect();

    let domain = HtmDomain::with_options(
        TxnOptions::default(),
        RetryPolicy {
            max_retries: 2,
            adaptive: true,
        },
    );
    let done = AtomicBool::new(false);
    let pair_reads = AtomicU64::new(0);
    let forced_ops = AtomicU64::new(0);

    thread::scope(|s| {
        let mut writers = Vec::new();
        for t in 0..THREADS {
            let (domain, pool, forced_ops) = (&domain, &pool, &forced_ops);
            writers.push(s.spawn(move || {
                let mut rng = 0x9E37_79B9 ^ (t as u64 + 1);
                for step in 0..OPS {
                    let k = (xorshift(&mut rng) % PAIRS as u64) as usize;
                    let delta = xorshift(&mut rng) % 9 + 1;
                    let forced = step % 3 == 0;
                    if forced {
                        forced_ops.fetch_add(1, Ordering::Relaxed);
                    }
                    let (lo, hi) = (&pool[k].w, &pool[k + PAIRS].w);
                    domain.atomic(|txn| {
                        let a = txn.read(lo)?;
                        let b = txn.read(hi)?;
                        assert_eq!(a, b, "pair invariant broken inside a transaction");
                        if forced && !txn.is_fallback() {
                            return Err(Abort {
                                code: AbortCode::Conflict,
                            });
                        }
                        txn.write(lo, a + delta)?;
                        txn.write(hi, b + delta)
                    });
                }
            }));
        }
        for r in 0..READERS {
            let (domain, pool, done, pair_reads) = (&domain, &pool, &done, &pair_reads);
            s.spawn(move || {
                let mut k = r;
                while !done.load(Ordering::Relaxed) {
                    let (lo, hi) = (&pool[k % PAIRS].w, &pool[k % PAIRS + PAIRS].w);
                    let (a, b) = domain.atomic(|txn| Ok((txn.read(lo)?, txn.read(hi)?)));
                    assert_eq!(a, b, "snapshot reader saw a torn pair");
                    pair_reads.fetch_add(1, Ordering::Relaxed);
                    k += 1;
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });

    // Sequential replay oracle: increments commute, so the final state is
    // the per-pair sum of every thread's deltas, in any interleaving.
    let mut oracle: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    for t in 0..THREADS {
        let mut rng = 0x9E37_79B9 ^ (t as u64 + 1);
        for _ in 0..OPS {
            let k = (xorshift(&mut rng) % PAIRS as u64) as usize;
            let delta = xorshift(&mut rng) % 9 + 1;
            *oracle.entry(k).or_default() += delta;
            *oracle.entry(k + PAIRS).or_default() += delta;
        }
    }
    for (i, l) in pool.iter().enumerate() {
        let want = oracle.get(&i).copied().unwrap_or(0);
        assert_eq!(l.w.load_direct(), want, "word {i} diverged from oracle");
    }

    assert!(pair_reads.load(Ordering::Relaxed) > 0, "readers never ran");
    let snap = domain.stats().snapshot();
    // Forced ops reach a fallback tier; with the pair footprint recorded
    // before the fabricated conflict, that tier is (almost always) the
    // striped one — and real conflicts only add to it.
    assert!(
        snap.fallbacks_striped > 0,
        "forced ops must exercise the striped tier"
    );
    assert!(snap.fallbacks >= forced_ops.load(Ordering::Relaxed));
    assert_eq!(
        snap.commits + snap.fallbacks_striped + snap.fallbacks_global
            - snap.stripe_escapes,
        (THREADS * OPS + pair_reads.load(Ordering::Relaxed) as usize) as u64,
        "every section ends in exactly one optimistic commit or one fallback"
    );
}
