//! Variable-length-key model tests: an `RnTree` with `varlen_leaves` must
//! behave exactly like a `BTreeMap<Vec<u8>, u64>` under byte-comparable
//! ordering — point ops, ordered scans across leaf boundaries, and both
//! split triggers (slot-count exhaustion with short keys, heap pressure
//! with long ones). Keys are generated shared-prefix-heavy (URL-style) so
//! the 4-byte key heads collide constantly and the suffix-compare and
//! prefix-truncation paths are exercised, not just the head fast path.
//!
//! Also covered: the empty key (smallest possible key, lives on the
//! leftmost leaf whose low fence is itself empty), 64-byte keys at the
//! codec limit, over-long keys (must be rejected, never stored), hash
//! routing across a `ShardedIndex`, quiescent reopen/recover equivalence,
//! and a crash-at-every-persist-point sweep in the style of
//! `crash_points.rs` but over byte keys.

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use index_common::{KeyBuf, OpError, PersistentIndex, ShardedIndex, MAX_KEY_LEN};
use nvm::{PmemConfig, PmemPool, PoolSet, SplitMix64};
use rntree::{RnConfig, RnTree};

fn var_cfg() -> RnConfig {
    RnConfig {
        varlen_leaves: true,
        journal_slots: 2,
        ..RnConfig::default()
    }
}

/// Shared prefixes of assorted lengths (including empty and near-limit)
/// so generated keys collide on long common prefixes and on 4-byte heads.
fn prefixes() -> Vec<Vec<u8>> {
    vec![
        b"".to_vec(),
        b"a".to_vec(),
        b"https://example.com/users/".to_vec(),
        b"https://example.com/users/0000/".to_vec(),
        b"https://example.com/items/".to_vec(),
        b"com.example.app.session.".to_vec(),
        vec![0xFF; 24],
        vec![0x00; 40],
    ]
}

/// Random key: shared prefix + suffix of random length over a *small*
/// alphabet (more duplicate prefixes → more head ties and lcp work).
fn gen_key(rng: &mut SplitMix64, prefixes: &[Vec<u8>]) -> Vec<u8> {
    let mut k = prefixes[rng.next_below(prefixes.len() as u64) as usize].clone();
    let max_suffix = (MAX_KEY_LEN - k.len()) as u64;
    let slen = rng.next_below(max_suffix + 1);
    for _ in 0..slen {
        k.push(b'a' + rng.next_below(4) as u8);
    }
    k
}

fn assert_full_scan_matches(
    idx: &dyn PersistentIndex,
    oracle: &BTreeMap<Vec<u8>, u64>,
    tag: &str,
) {
    let mut out = Vec::new();
    idx.scan_k(b"", usize::MAX >> 1, &mut out);
    assert_eq!(out.len(), oracle.len(), "{tag}: scan size");
    for ((k, v), (ok, ov)) in out.iter().zip(oracle.iter()) {
        assert_eq!(k.as_slice(), &ok[..], "{tag}: scan key order");
        assert_eq!(v, ov, "{tag}: scan value");
    }
}

#[test]
fn point_ops_match_byte_key_oracle() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
    let tree = RnTree::create(Arc::clone(&pool), var_cfg());
    let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let mut rng = SplitMix64::new(0x5EED_0007);

    // The empty key is legal: it is the global minimum and lives on the
    // leftmost leaf, whose low fence is itself the empty string.
    tree.insert_k(b"", 42).unwrap();
    oracle.insert(Vec::new(), 42);
    assert_eq!(tree.find_k(b""), Some(42));

    let prefixes = prefixes();
    let mut keys: Vec<Vec<u8>> = (0..400).map(|_| gen_key(&mut rng, &prefixes)).collect();
    keys.push(vec![0xFF; MAX_KEY_LEN]); // the largest storable key
    keys.push(Vec::new());
    keys.sort();
    keys.dedup();

    for _ in 0..8_000 {
        let k = &keys[rng.next_below(keys.len() as u64) as usize];
        let v = rng.next_u64() >> 1;
        match rng.next_below(10) {
            0..=1 => {
                let r = tree.insert_k(k, v);
                if oracle.contains_key(k) {
                    assert_eq!(r, Err(OpError::AlreadyExists), "insert dup {k:?}");
                } else {
                    r.unwrap();
                    oracle.insert(k.clone(), v);
                }
            }
            2..=3 => {
                tree.upsert_k(k, v).unwrap();
                oracle.insert(k.clone(), v);
            }
            4 => {
                let r = tree.update_k(k, v);
                if oracle.contains_key(k) {
                    r.unwrap();
                    oracle.insert(k.clone(), v);
                } else {
                    assert_eq!(r, Err(OpError::NotFound), "update missing {k:?}");
                }
            }
            5..=6 => {
                let r = tree.remove_k(k);
                if oracle.remove(k).is_some() {
                    r.unwrap();
                } else {
                    assert_eq!(r, Err(OpError::NotFound), "remove missing {k:?}");
                }
            }
            _ => {
                assert_eq!(tree.find_k(k), oracle.get(k).copied(), "find {k:?}");
            }
        }
    }

    tree.verify_invariants().unwrap();
    assert_full_scan_matches(&tree, &oracle, "point ops");

    // Over-long keys are rejected on writes and unfindable on reads —
    // they can never have been stored.
    let long = vec![b'z'; MAX_KEY_LEN + 1];
    assert_eq!(tree.insert_k(&long, 1), Err(OpError::UnsupportedKey));
    assert_eq!(tree.upsert_k(&long, 1), Err(OpError::UnsupportedKey));
    assert_eq!(tree.update_k(&long, 1), Err(OpError::UnsupportedKey));
    assert_eq!(tree.remove_k(&long), Err(OpError::UnsupportedKey));
    assert_eq!(tree.find_k(&long), None);
}

#[test]
fn scans_stay_ordered_across_leaf_boundaries() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
    let tree = RnTree::create(Arc::clone(&pool), var_cfg());
    let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let mut rng = SplitMix64::new(0x5CA_0815);

    // Enough keys for dozens of leaves, so every interesting scan crosses
    // several leaf (and fence/prefix) boundaries.
    let prefixes = prefixes();
    for i in 0..3_000u64 {
        let k = gen_key(&mut rng, &prefixes);
        tree.upsert_k(&k, i).unwrap();
        oracle.insert(k, i);
    }
    tree.verify_invariants().unwrap();

    let mut starts: Vec<Vec<u8>> = Vec::new();
    starts.push(Vec::new()); // from the very beginning
    starts.push(vec![0xFF; MAX_KEY_LEN]); // from the very end
    starts.push(vec![b'q'; MAX_KEY_LEN + 7]); // over-long start: clamped
    for _ in 0..24 {
        // Present keys (inclusive start) and absent perturbations.
        let k = oracle.keys().nth(rng.next_below(oracle.len() as u64) as usize).unwrap();
        starts.push(k.clone());
        let mut absent = k.clone();
        absent.push(0x01);
        starts.push(absent);
    }

    let mut out = Vec::new();
    for start in &starts {
        for n in [0usize, 1, 5, 63, 64, 65, 500, oracle.len() + 10] {
            let got = tree.scan_k(start, n, &mut out);
            let want: Vec<(Vec<u8>, u64)> = oracle
                .range(start.clone()..)
                .take(n)
                .map(|(k, &v)| (k.clone(), v))
                .collect();
            assert_eq!(got, want.len(), "scan_k({start:?}, {n}) count");
            assert_eq!(out.len(), want.len());
            for ((k, v), (wk, wv)) in out.iter().zip(want.iter()) {
                assert_eq!(k.as_slice(), &wk[..], "scan_k({start:?}, {n}) key");
                assert_eq!(v, wv, "scan_k({start:?}, {n}) value");
            }
        }
    }
}

/// Heap-pressure splits: max-length keys with no shared prefix make each
/// record cost the worst case, so leaves split on heap exhaustion long
/// before the slot array fills. Short dense keys split on slot count.
/// Both streams must agree with the oracle and survive reopen + recover.
#[test]
fn both_split_triggers_match_oracle_and_reopen() {
    for long_keys in [true, false] {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
        let cfg = var_cfg();
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut rng = SplitMix64::new(0xB1607 + long_keys as u64);

        for i in 0..1_500u64 {
            let k = if long_keys {
                // 56–64 random bytes over the full alphabet: lcp ≈ 0, so
                // the stored suffix is nearly the whole key.
                let len = 56 + rng.next_below(9) as usize;
                (0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>()
            } else {
                // Short dense keys: tiny records, splits come from the
                // 63-entry slot array.
                let mut k = vec![b'k'];
                k.extend_from_slice(&(rng.next_below(100_000) * 7).to_be_bytes()[3..]);
                k
            };
            tree.upsert_k(&k, i).unwrap();
            oracle.insert(k, i);
        }
        let tag = if long_keys { "heap splits" } else { "slot splits" };
        assert!(
            tree.stats().leaves > 20,
            "{tag}: stream did not force splits ({} leaves)",
            tree.stats().leaves
        );
        tree.verify_invariants().unwrap();
        assert_full_scan_matches(&tree, &oracle, tag);

        // Quiescent clean reopen preserves everything.
        tree.close();
        drop(tree);
        let tree = RnTree::reopen_clean(Arc::clone(&pool), cfg);
        tree.verify_invariants().unwrap();
        assert_full_scan_matches(&tree, &oracle, &format!("{tag} reopened"));

        // Full crash recovery (transients discarded, routes rebuilt from
        // fences) preserves everything too, and stays writable.
        drop(tree);
        pool.simulate_crash();
        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        tree.verify_invariants().unwrap();
        assert_full_scan_matches(&tree, &oracle, &format!("{tag} recovered"));
        tree.insert_k(b"post-recovery", 1).unwrap();
    }
}

#[test]
fn sharded_byte_key_routing_matches_oracle() {
    for shards in [1usize, 4] {
        let set = PoolSet::new(PmemConfig::for_testing(shards << 23), shards);
        let idx = ShardedIndex::<RnTree>::create(&set.handles(), var_cfg());
        let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut rng = SplitMix64::new(0x54A2D ^ shards as u64);

        let prefixes = prefixes();
        for step in 0..4_000u64 {
            let k = gen_key(&mut rng, &prefixes);
            match rng.next_below(10) {
                0..=5 => {
                    idx.upsert_k(&k, step).unwrap();
                    oracle.insert(k, step);
                }
                6..=7 => {
                    let r = idx.remove_k(&k);
                    assert_eq!(r.is_ok(), oracle.remove(&k).is_some(), "remove {k:?}");
                }
                _ => {
                    assert_eq!(idx.find_k(&k), oracle.get(&k).copied(), "find {k:?}");
                }
            }
        }

        // Cross-shard merge must come back globally byte-ordered even
        // though hash routing scatters neighbouring keys across shards.
        assert_full_scan_matches(&idx, &oracle, &format!("sharded x{shards}"));
        let mut out = Vec::new();
        for _ in 0..8 {
            let start = gen_key(&mut rng, &prefixes);
            let got = idx.scan_k(&start, 100, &mut out);
            let want: Vec<(Vec<u8>, u64)> = oracle
                .range(start.clone()..)
                .take(100)
                .map(|(k, &v)| (k.clone(), v))
                .collect();
            assert_eq!(got, want.len(), "sharded scan_k({start:?}) count");
            for ((k, v), (wk, wv)) in out.iter().zip(want.iter()) {
                assert_eq!(k.as_slice(), &wk[..]);
                assert_eq!(v, wv);
            }
        }
    }
}

/// Byte-key bulk paths agree with the incremental ones: `load_sorted_k`
/// builds the same tree a per-key upsert loop would, and
/// `insert_batch_k` reports per-key conditional results that match the
/// oracle.
#[test]
fn bulk_paths_match_oracle() {
    let mut rng = SplitMix64::new(0xB01C);
    let prefixes = prefixes();
    let mut pairs: Vec<(KeyBuf, u64)> = Vec::new();
    let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for i in 0..2_000u64 {
        let k = gen_key(&mut rng, &prefixes);
        if oracle.insert(k.clone(), i).is_none() {
            pairs.push((KeyBuf::from_slice(&k), i));
        } else {
            // Duplicate key: keep the later value, like upsert would.
            if let Some(p) = pairs.iter_mut().find(|p| p.0.as_slice() == &k[..]) {
                p.1 = i;
            }
        }
    }
    pairs.sort_by_key(|p| p.0);

    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
    let tree = RnTree::create(Arc::clone(&pool), var_cfg());
    tree.load_sorted_k(&pairs).unwrap();
    tree.verify_invariants().unwrap();
    assert_full_scan_matches(&tree, &oracle, "load_sorted_k");

    // A batch mixing fresh keys with duplicates of loaded ones: strict
    // insert semantics per key.
    let mut batch: Vec<(KeyBuf, u64)> = Vec::new();
    let mut expect_dup = Vec::new();
    for i in 0..300u64 {
        let k = gen_key(&mut rng, &prefixes);
        expect_dup.push(oracle.contains_key(&k));
        if !oracle.contains_key(&k) {
            oracle.insert(k.clone(), 1_000_000 + i);
        }
        batch.push((KeyBuf::from_slice(&k), 1_000_000 + i));
    }
    // The batch is sorted in place, so pair results back up by key.
    let results = tree.insert_batch_k(&mut batch);
    assert_eq!(results.len(), batch.len());
    for ((k, _), r) in batch.iter().zip(results.iter()) {
        let dup = r == &Err(OpError::AlreadyExists);
        // A key may repeat inside the batch itself; the oracle kept the
        // first fresh value, so just check dup-vs-fresh consistency.
        assert!(
            r.is_ok() || dup,
            "insert_batch_k({:?}) unexpected error {r:?}",
            k.as_slice()
        );
    }
    tree.verify_invariants().unwrap();
    // Every oracle key is present with a plausible value (batch-internal
    // duplicates make exact values order-dependent; presence is not).
    for k in oracle.keys() {
        assert!(tree.find_k(k).is_some(), "missing {k:?} after batch");
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, u64),
    Upsert(Vec<u8>, u64),
    Remove(Vec<u8>),
}

impl Op {
    fn key(&self) -> &[u8] {
        match self {
            Op::Insert(k, _) | Op::Upsert(k, _) | Op::Remove(k) => k,
        }
    }
}

/// Deterministic byte-key op sequence with enough long keys to force
/// heap-pressure splits (journal-covered windows) alongside plain
/// insert/update/remove churn.
fn script() -> Vec<Op> {
    let mut rng = SplitMix64::new(0xC4A54);
    let prefixes = prefixes();
    let mut ops = Vec::new();
    let keys: Vec<Vec<u8>> = (0..120).map(|_| gen_key(&mut rng, &prefixes)).collect();
    for (i, k) in keys.iter().enumerate() {
        ops.push(Op::Insert(k.clone(), i as u64));
    }
    for (i, k) in keys.iter().enumerate().step_by(2) {
        ops.push(Op::Upsert(k.clone(), i as u64 + 1_000));
    }
    for k in keys.iter().step_by(4) {
        ops.push(Op::Remove(k.clone()));
    }
    // A burst of worst-case records to drive heap splits mid-script.
    for i in 0..60u64 {
        let len = 60 + (i % 5) as usize;
        let k: Vec<u8> = (0..len).map(|j| (i as u8).wrapping_mul(31).wrapping_add(j as u8)).collect();
        ops.push(Op::Insert(k, 5_000 + i));
    }
    ops
}

fn apply(tree: &RnTree, ops: &[Op], model: &mut BTreeMap<Vec<u8>, u64>) -> Option<Op> {
    for op in ops {
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| match op {
            Op::Insert(k, v) => tree.insert_k(k, *v).map(|_| (k, Some(*v))),
            Op::Upsert(k, v) => tree.upsert_k(k, *v).map(|_| (k, Some(*v))),
            Op::Remove(k) => tree.remove_k(k).map(|_| (k, None)),
        }));
        match r {
            Ok(Ok((k, Some(v)))) => {
                model.insert(k.clone(), v);
            }
            Ok(Ok((k, None))) => {
                model.remove(k);
            }
            Ok(Err(_)) => { /* conditional rejection: no state change */ }
            Err(_) => return Some(op.clone()),
        }
    }
    None
}

#[test]
fn every_persist_crash_point_recovers_byte_keys() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let ops = script();
    let cfg = var_cfg();

    // Count the script's total persists on an untrapped run.
    let total = {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        let base = pool.stats().snapshot().persists;
        let mut model = BTreeMap::new();
        assert!(apply(&tree, &ops, &mut model).is_none());
        pool.stats().snapshot().persists - base
    };
    assert!(total > 300, "script too small: {total} persists");

    // Step coprime with the 2-persist op pattern so every intra-op
    // position is hit; always include the first and last few points.
    let mut points: Vec<u64> = (1..=total).step_by(5).collect();
    points.extend(total.saturating_sub(4)..=total);
    points.sort_unstable();
    points.dedup();

    for &trap_at in &points {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        pool.arm_persist_trap(trap_at);
        let mut model = BTreeMap::new();
        let in_flight = apply(&tree, &ops, &mut model);
        pool.disarm_persist_trap();
        drop(tree);
        pool.simulate_crash();

        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        tree.verify_invariants()
            .unwrap_or_else(|e| panic!("trap@{trap_at}: invariants: {e}"));

        let in_flight_key = in_flight.as_ref().map(|op| op.key().to_vec());
        for (k, v) in &model {
            if Some(k) == in_flight_key.as_ref() {
                continue;
            }
            assert_eq!(
                tree.find_k(k),
                Some(*v),
                "trap@{trap_at}: acked key {k:?} wrong after crash"
            );
        }
        if let Some(op) = &in_flight {
            let (k, new_v) = match op {
                Op::Insert(k, v) | Op::Upsert(k, v) => (k, Some(*v)),
                Op::Remove(k) => (k, None),
            };
            let old_v = model.get(k).copied();
            let found = tree.find_k(k);
            assert!(
                found == old_v || found == new_v,
                "trap@{trap_at}: in-flight op on {k:?} left torn state {found:?}"
            );
        }

        // No phantoms beyond model ∪ in-flight.
        let mut out = Vec::new();
        tree.scan_k(b"", usize::MAX >> 1, &mut out);
        for (k, _) in out {
            assert!(
                model.contains_key(k.as_slice()) || Some(k.as_slice()) == in_flight_key.as_deref(),
                "trap@{trap_at}: phantom key {:?}",
                k.as_slice()
            );
        }

        // The recovered tree keeps working.
        tree.insert_k(b"post-recovery-probe", 1)
            .unwrap_or_else(|e| panic!("trap@{trap_at}: post-recovery insert: {e}"));
    }

    std::panic::set_hook(default_hook);
}
