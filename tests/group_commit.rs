//! Group-commit system tests: the flat-combining layer over the real
//! tree stack must be transparent to callers (same results as direct
//! execution, first duplicate wins inside an epoch), crash-consistent at
//! every persist point of a draining epoch, and live across leader
//! thread exits (leadership is re-elected, never leaked).

use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use index_common::{GroupCommit, GroupCommitConfig, OpError, PersistentIndex, ShardedIndex};
use nvm::{PmemConfig, PmemPool, PoolSet};
use rntree::{RnConfig, RnTree};

/// Eight concurrent writers over `GroupCommit<ShardedIndex<RnTree>>`
/// (combining shards aligned with the tree shards) must end in exactly
/// the state a `BTreeMap` oracle predicts, and contended same-key strict
/// inserts must resolve to exactly one winner whose value is the one
/// stored — the in-epoch first-dup-wins contract as callers see it.
#[test]
fn eight_writers_match_oracle_and_contended_inserts_have_one_winner() {
    const SHARDS: usize = 2;
    const THREADS: u64 = 8;
    const PER: u64 = 300;
    const CONTENDED: u64 = 32;

    let set = PoolSet::new(PmemConfig::for_testing(SHARDS << 22), SHARDS);
    let inner = ShardedIndex::<RnTree>::create(&set.handles(), RnConfig::default());
    let gc = Arc::new(GroupCommit::new(
        inner,
        GroupCommitConfig {
            shards: SHARDS,
            ..GroupCommitConfig::default()
        },
    ));

    // contended_wins[j] = (winner count, winning thread's value).
    let contended_wins: Vec<(AtomicU64, AtomicU64)> =
        (0..CONTENDED).map(|_| (AtomicU64::new(0), AtomicU64::new(0))).collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let gc = Arc::clone(&gc);
            let contended_wins = &contended_wins;
            s.spawn(move || {
                // Disjoint range: insert all, upsert every 3rd, remove
                // every 5th — mirrors the oracle below.
                for i in 0..PER {
                    let k = 1_000_000 + t * PER + i;
                    gc.insert(k, k).unwrap();
                    if i % 3 == 0 {
                        gc.upsert(k, k + 1).unwrap();
                    }
                    if i % 5 == 0 {
                        gc.remove(k).unwrap();
                    }
                }
                // Contended strict inserts: all eight threads race for
                // the same 32 keys with thread-specific values.
                for j in 0..CONTENDED {
                    match gc.insert(500 + j, 77_000 + t) {
                        Ok(()) => {
                            contended_wins[j as usize].0.fetch_add(1, Ordering::Relaxed);
                            contended_wins[j as usize].1.store(77_000 + t, Ordering::Relaxed);
                        }
                        Err(OpError::AlreadyExists) => {}
                        Err(e) => panic!("contended insert: {e:?}"),
                    }
                }
            });
        }
    });

    // Disjoint-range oracle.
    let mut expect = BTreeMap::new();
    for t in 0..THREADS {
        for i in 0..PER {
            let k = 1_000_000 + t * PER + i;
            expect.insert(k, k);
            if i % 3 == 0 {
                expect.insert(k, k + 1);
            }
            if i % 5 == 0 {
                expect.remove(&k);
            }
        }
    }
    for (&k, &v) in &expect {
        assert_eq!(gc.find(k), Some(v), "key {k}");
    }

    // Exactly one winner per contended key, and the stored value is the
    // winner's — the caller that saw Ok is the caller whose write took.
    for (j, (wins, val)) in contended_wins.iter().enumerate() {
        assert_eq!(wins.load(Ordering::Relaxed), 1, "contended key {j}");
        assert_eq!(
            gc.find(500 + j as u64),
            Some(val.load(Ordering::Relaxed)),
            "contended key {j} holds the loser's value"
        );
    }

    // Every op went through the combining path (no backpressure fallback
    // at this thread count), each in some epoch. Epoch *size* is timing-
    // dependent (a fast inner index lets every writer self-elect before
    // its peers publish), so multi-op coalescing is pinned deterministically
    // by the gated-executor unit test in `index-common::combine`, not here.
    let s = gc.commit_stats();
    assert!(s.epochs > 0 && s.ops_coalesced + s.ops_reclaimed > 0, "{s:?}");
    for i in 0..SHARDS {
        gc.inner().shard(i).verify_invariants().unwrap();
    }
}

/// Crash-at-every-persist-point sweep through draining epochs: waves of
/// four barrier-synced writers each publish one op, so epochs regularly
/// carry several ops; the persist trap fires at the N-th persistent
/// instruction — inside whatever epoch is executing then — and the
/// poisoned-epoch protocol turns that into a panic on every writer that
/// still has an op outstanding (never a deadlock on stranded leaf
/// locks). After recovery, every acknowledged op must be durable and
/// each crashed writer's single in-flight op atomically present or
/// absent. `max_wait` is set far above the test runtime so the reclaim
/// path stays closed and no writer can touch the crashed tree directly.
#[test]
fn crash_sweep_through_draining_epochs_preserves_acked_ops() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    const THREADS: u64 = 4;
    const WAVES: u64 = 25;

    for trap_at in (1..=75u64).step_by(2) {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
        let cfg = RnConfig {
            journal_slots: 2,
            ..RnConfig::default()
        };
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        let gc = Arc::new(GroupCommit::new(
            tree,
            GroupCommitConfig {
                max_wait: Duration::from_secs(600),
                ..GroupCommitConfig::default()
            },
        ));
        let mut acked: Vec<u64> = Vec::new();
        let in_flight = Mutex::new(Vec::new());

        pool.arm_persist_trap(trap_at);
        'waves: for wave in 0..WAVES {
            let barrier = Barrier::new(THREADS as usize);
            let wave_acked: Vec<u64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|t| {
                        let gc = Arc::clone(&gc);
                        let (barrier, in_flight) = (&barrier, &in_flight);
                        s.spawn(move || {
                            let k = wave * THREADS + t + 1;
                            barrier.wait();
                            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                                gc.insert(k, k * 7)
                            })) {
                                Ok(Ok(())) => Some(k),
                                Ok(Err(e)) => panic!("fresh insert failed: {e:?}"),
                                Err(_) => {
                                    // Crash: this op (claimed into the
                                    // crashed epoch, or withdrawn by the
                                    // poison check) is the thread's one
                                    // in-flight op.
                                    in_flight.lock().unwrap().push(k);
                                    None
                                }
                            }
                        })
                    })
                    .collect();
                handles.into_iter().filter_map(|h| h.join().unwrap()).collect()
            });
            let crashed = wave_acked.len() < THREADS as usize;
            acked.extend(wave_acked);
            if crashed {
                break 'waves;
            }
        }
        pool.disarm_persist_trap();
        drop(gc);
        pool.simulate_crash();

        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        tree.verify_invariants()
            .unwrap_or_else(|e| panic!("trap@{trap_at}: invariants: {e}"));
        for &k in &acked {
            assert_eq!(tree.find(k), Some(k * 7), "trap@{trap_at}: acked key {k} lost");
        }
        for &k in in_flight.lock().unwrap().iter() {
            let got = tree.find(k);
            assert!(
                got.is_none() || got == Some(k * 7),
                "trap@{trap_at}: in-flight key {k} torn: {got:?}"
            );
        }
    }

    std::panic::set_hook(default_hook);
}

/// Leadership must survive leader-thread exit: a leader is whichever
/// writer wins the per-shard CAS while its own op waits, and the flag is
/// released before `write` returns, so a wave of writer threads can
/// fully exit and the next wave elects fresh leaders. Three waves of
/// four threads each must all make progress and each wave must elect at
/// least one leader.
#[test]
fn leader_handoff_survives_thread_exit() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
    let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());
    let gc = Arc::new(GroupCommit::new(tree, GroupCommitConfig::default()));

    let mut elections_after_wave = Vec::new();
    for wave in 0..3u64 {
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let gc = Arc::clone(&gc);
                s.spawn(move || {
                    for i in 0..50u64 {
                        let k = wave * 10_000 + t * 1_000 + i + 1;
                        gc.insert(k, k).unwrap();
                    }
                });
            }
        });
        // All writer threads (including every elected leader) have now
        // exited.
        elections_after_wave.push(gc.commit_stats().leader_elections);
    }

    for wave in 0..3u64 {
        for t in 0..4u64 {
            for i in 0..50u64 {
                let k = wave * 10_000 + t * 1_000 + i + 1;
                assert_eq!(gc.find(k), Some(k), "key {k}");
            }
        }
    }
    // Each wave drained its own ops, so each wave elected at least one
    // leader — elections strictly increase across waves.
    assert!(elections_after_wave[0] >= 1, "{elections_after_wave:?}");
    assert!(
        elections_after_wave[1] > elections_after_wave[0]
            && elections_after_wave[2] > elections_after_wave[1],
        "no fresh elections after leader threads exited: {elections_after_wave:?}"
    );
    gc.inner().verify_invariants().unwrap();
}

/// Deterministic duplicate race: two barrier-synced threads strict-insert
/// the same key with different values, many rounds. Every round must end
/// with exactly one `Ok` and the stored value must be the Ok-winner's —
/// whether the two ops landed in one epoch (first-dup-wins in the run
/// executor) or in separate epochs (second sees `AlreadyExists`).
#[test]
fn duplicate_insert_race_always_has_exactly_one_winner() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());
    let gc = Arc::new(GroupCommit::new(tree, GroupCommitConfig::default()));

    for round in 0..200u64 {
        let key = 42;
        let barrier = Barrier::new(2);
        let results: Vec<Result<(), OpError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2u64)
                .map(|t| {
                    let gc = Arc::clone(&gc);
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        gc.insert(key, round * 10 + t)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let winners: Vec<u64> = (0..2u64).filter(|&t| results[t as usize].is_ok()).collect();
        assert_eq!(winners.len(), 1, "round {round}: {results:?}");
        assert_eq!(
            gc.find(key),
            Some(round * 10 + winners[0]),
            "round {round}: stored value is not the Ok-winner's"
        );
        for (t, r) in results.iter().enumerate() {
            if t as u64 != winners[0] {
                assert_eq!(*r, Err(OpError::AlreadyExists), "round {round}");
            }
        }
        gc.remove(key).unwrap();
    }
}
