//! Durable-linearizability property tests (paper §3.5): after a crash at
//! *any* point — with adversarial cache evictions — every acknowledged
//! operation must be visible after recovery and the structure must be
//! fully intact.
//!
//! Methodology: drive a random op sequence against an RNTree on a shadow
//! pool, maintaining the model of *acknowledged* state; at a random point
//! stop, snapshot (crash), recover, and compare. Because the harness
//! cannot crash *inside* an operation from safe code, intra-operation
//! crash points are exercised by (a) eviction injection, which persists
//! arbitrary dirty lines at arbitrary moments, making any wrong write
//! ordering visible as corruption, and (b) the journal tests in
//! `recovery.rs`, which snapshot mid-split images directly.

use std::collections::BTreeMap;
use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool, SplitMix64};
use rntree::{RnConfig, RnTree};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
    Evict(u8),
}

/// Deterministic randomized op sequence with the same 4:4:2:1 weighting the
/// original proptest strategy used.
fn gen_ops(rng: &mut SplitMix64, key_max: u64, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let k = rng.next_key(key_max);
            match rng.next_below(11) {
                0..=3 => Op::Insert(k, rng.next_u64()),
                4..=7 => Op::Upsert(k, rng.next_u64()),
                8..=9 => Op::Remove(k),
                _ => Op::Evict(rng.next_u64() as u8),
            }
        })
        .collect()
}

fn run_crash_round(ops: &[Op], dual: bool, crash_at: usize) {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
    let cfg = RnConfig {
        dual_slot: dual,
        journal_slots: 4,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();

    for op in ops.iter().take(crash_at) {
        match *op {
            Op::Insert(k, v) => {
                if tree.insert(k, v).is_ok() {
                    model.insert(k, v);
                }
            }
            Op::Upsert(k, v) => {
                tree.upsert(k, v).unwrap();
                model.insert(k, v);
            }
            Op::Remove(k) => {
                if tree.remove(k).is_ok() {
                    model.remove(&k);
                }
            }
            Op::Evict(n) => {
                pool.evict_random_lines(n as usize % 16);
            }
        }
    }

    drop(tree);
    pool.simulate_crash();
    let tree = RnTree::recover(Arc::clone(&pool), cfg);
    tree.verify_invariants().expect("invariants after crash");

    // Durable linearizability: every acknowledged op is visible.
    for (k, v) in &model {
        assert_eq!(tree.find(*k), Some(*v), "acked key {k} wrong after crash");
    }
    // And nothing phantom: full scan matches the model exactly (all ops
    // were acknowledged before the crash — quiescent crash point).
    let mut out = Vec::new();
    tree.scan_n(0, usize::MAX >> 1, &mut out);
    let expect: Vec<(u64, u64)> = model.iter().map(|(a, b)| (*a, *b)).collect();
    assert_eq!(out, expect, "phantom or lost entries after crash");

    // The recovered tree must keep working and keep its guarantees.
    tree.insert(u64::MAX - 1, 42).unwrap();
    assert_eq!(tree.find(u64::MAX - 1), Some(42));
    tree.verify_invariants().unwrap();
}

fn run_crash_cases(seed: u64, dual: bool) {
    for case in 0..20u64 {
        let mut rng = SplitMix64::new(seed ^ case.wrapping_mul(0x517C_C1B7));
        let len = 1 + rng.next_below(499) as usize;
        let ops = gen_ops(&mut rng, 150, len);
        let crash_at = ((ops.len() as f64) * rng.next_f64()) as usize;
        run_crash_round(&ops, dual, crash_at);
    }
}

#[test]
fn acked_ops_survive_crash_ds() {
    run_crash_cases(0xCA5D, true);
}

#[test]
fn acked_ops_survive_crash_single_slot() {
    run_crash_cases(0xCA51, false);
}

/// The classic wB+Tree-motivating scenario: an in-flight (never
/// acknowledged) modify must be invisible after a crash — the KV entry may
/// be durable, but the slot array (the source of truth) is not.
#[test]
fn unacknowledged_entry_is_invisible() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig::default();
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    for k in 1..=100u64 {
        tree.insert(k, k).unwrap();
    }
    // Forge a half-finished insert: KV entry written and persisted (steps
    // 1–3 of §4.2) but the slot array never updated — exactly the state a
    // crash between `persist_kv` and the slot flush leaves behind.
    let leftmost = tree.leftmost();
    let kv_area = leftmost + 192;
    // Entry index 63 is unallocated in a 100-key tree's leftmost leaf.
    pool.store_u64(kv_area + 63 * 16, 55_555);
    pool.store_u64(kv_area + 63 * 16 + 8, 1);
    pool.persist(kv_area + 63 * 16, 16);
    drop(tree);
    pool.simulate_crash();
    let tree = RnTree::recover(pool, cfg);
    assert_eq!(tree.find(55_555), None, "unacked insert became visible");
    tree.verify_invariants().unwrap();
}

/// Repeated crash → recover → work → crash cycles must not decay.
#[test]
fn crash_recover_cycles() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
    let cfg = RnConfig {
        journal_slots: 4,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    let mut high = 0u64;
    drop(tree);
    for round in 0..6u64 {
        pool.simulate_crash();
        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        tree.verify_invariants().unwrap();
        for k in 1..=high {
            assert_eq!(tree.find(k), Some(k ^ 7), "round {round} key {k}");
        }
        for k in high + 1..=high + 500 {
            tree.insert(k, k ^ 7).unwrap();
        }
        high += 500;
        pool.evict_random_lines(32);
        drop(tree);
    }
}

/// Crash immediately after creation: an empty tree must recover.
#[test]
fn crash_on_empty_tree() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig::default();
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    drop(tree);
    pool.simulate_crash();
    let tree = RnTree::recover(pool, cfg);
    assert_eq!(tree.find(1), None);
    tree.insert(1, 1).unwrap();
    assert_eq!(tree.find(1), Some(1));
    tree.verify_invariants().unwrap();
}
