//! Batched-write durability regression tests.
//!
//! Pins down the persist accounting the PR3 pipeline promises:
//!
//! * `load_sorted` issues exactly **2 persistent instructions per leaf**
//!   (header+KV batch, then the slot line) plus a constant 3 for the undo
//!   journal (pre-image + header on log, header on clear) — independent of
//!   key count within a leaf.
//! * `insert_batch` issues exactly **2 persistent instructions per
//!   touched leaf** when no split fires: one coalesced KV batch and one
//!   slot-line persist per same-leaf run, however many keys the run holds.
//! * Crashing at *every* persist boundary inside a batch leaves the tree
//!   recoverable with a run-granular **prefix of the sorted batch**
//!   applied and every pre-batch key intact.
//! * Crashing at every persist boundary inside `load_sorted` recovers to
//!   an **empty** tree (all-or-nothing: the journaled head-leaf pre-image
//!   rolls the whole load back).

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};

/// Keys per leaf built by the bulk loader (layout MAX_LIVE).
const LEAF_FILL: u64 = 63;

fn persists(pool: &PmemPool) -> u64 {
    pool.stats().snapshot().persists
}

fn seq_pairs(lo: u64, hi: u64) -> Vec<(u64, u64)> {
    (lo..=hi).map(|k| (k, k * 10 + 1)).collect()
}

#[test]
fn load_sorted_is_two_persists_per_leaf_plus_journal() {
    for dual in [true, false] {
        for keys in [1u64, 62, 63, 64, 200, 1000] {
            let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
            let cfg = RnConfig {
                dual_slot: dual,
                journal_slots: 2,
                ..RnConfig::default()
            };
            let tree = RnTree::create(Arc::clone(&pool), cfg);
            let pairs = seq_pairs(1, keys);
            let leaves = keys.div_ceil(LEAF_FILL);

            let before = persists(&pool);
            tree.load_sorted(&pairs).unwrap();
            let spent = persists(&pool) - before;
            assert_eq!(
                spent,
                2 * leaves + 3,
                "load_sorted({keys} keys, dual={dual}): want 2*{leaves}+3 persists"
            );
            assert_eq!(tree.stats().leaves, leaves, "{keys} keys (dual={dual})");
            assert_eq!(tree.stats().entries, keys, "{keys} keys (dual={dual})");
            for &(k, v) in &pairs {
                assert_eq!(tree.find(k), Some(v), "key {k} (dual={dual})");
            }
            tree.verify_invariants().unwrap();
        }
    }
}

#[test]
fn load_sorted_of_nothing_persists_nothing() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());
    let before = persists(&pool);
    tree.load_sorted(&[]).unwrap();
    assert_eq!(persists(&pool) - before, 0);
    assert_eq!(tree.stats().entries, 0);
}

#[test]
fn insert_batch_is_two_persists_per_touched_leaf() {
    for dual in [true, false] {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
        let cfg = RnConfig {
            dual_slot: dual,
            journal_slots: 2,
            ..RnConfig::default()
        };
        let tree = RnTree::create(Arc::clone(&pool), cfg);

        // One leaf, one run: 50 keys for 2 persists total.
        let mut batch: Vec<(u64, u64)> = (1..=50u64).map(|k| (k * 10, k)).collect();
        let before = persists(&pool);
        assert!(tree.insert_batch(&mut batch).into_iter().all(|r| r.is_ok()));
        assert_eq!(persists(&pool) - before, 2, "single-run batch (dual={dual})");

        // Refill the leaf's log quota via a split: 13 more spaced keys push
        // plogs to the trigger, leaving two half-full leaves with fresh
        // log budgets.
        for k in 51..=63u64 {
            tree.insert(k * 10, k).unwrap();
        }
        let splits = tree.stats().splits;
        assert_eq!(splits, 1, "the 63rd decision must have split (dual={dual})");

        // A batch spanning both leaves: exactly 2 runs -> 4 persists, and
        // no further split (both leaves have ample log entries left).
        let mut batch = vec![(15u64, 1), (25, 2), (35, 3), (405, 4), (415, 5), (625, 6)];
        let before = persists(&pool);
        assert!(tree.insert_batch(&mut batch).into_iter().all(|r| r.is_ok()));
        assert_eq!(persists(&pool) - before, 4, "two-leaf batch (dual={dual})");
        assert_eq!(tree.stats().splits, splits, "no split expected (dual={dual})");

        // All-duplicate batch: nothing changed, nothing persisted.
        let mut batch = vec![(15u64, 9), (405, 9)];
        let before = persists(&pool);
        assert!(tree.insert_batch(&mut batch).into_iter().all(|r| r.is_err()));
        assert_eq!(persists(&pool) - before, 0, "all-dup batch (dual={dual})");
        tree.verify_invariants().unwrap();
    }
}

/// Crashing at every persist inside an `insert_batch` must recover to all
/// pre-batch keys plus a prefix of the sorted batch (runs commit in sorted
/// key order, each atomically at its slot-line persist).
#[test]
fn crash_mid_insert_batch_recovers_a_sorted_prefix() {
    let old_keys: Vec<(u64, u64)> = seq_pairs(1, 100);
    // Fresh keys interleaved over the whole range: several runs, and the
    // 63-entry log quota forces at least one split along the way.
    let batch_template: Vec<(u64, u64)> = (1..=80u64).map(|k| (k * 13 + 1000, k)).collect();
    let mut sorted_batch = batch_template.clone();
    sorted_batch.sort_by_key(|p| p.0);

    // How many persists does the whole batch take, uninterrupted?
    let total = {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
        let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());
        tree.load_sorted(&old_keys).unwrap();
        let before = persists(&pool);
        let mut batch = batch_template.clone();
        assert!(tree.insert_batch(&mut batch).into_iter().all(|r| r.is_ok()));
        persists(&pool) - before
    };
    assert!(total >= 4, "want a multi-persist batch, got {total}");

    for nth in 1..=total {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
        let cfg = RnConfig::default();
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        tree.load_sorted(&old_keys).unwrap();

        pool.arm_persist_trap(nth);
        let mut batch = batch_template.clone();
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            let _ = tree.insert_batch(&mut batch);
        }))
        .is_err();
        pool.disarm_persist_trap();
        assert!(crashed, "trap {nth}/{total} must fire mid-batch");
        drop(tree);
        pool.simulate_crash();

        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        tree.verify_invariants()
            .unwrap_or_else(|e| panic!("trap {nth}: {e}"));
        for &(k, v) in &old_keys {
            assert_eq!(tree.find(k), Some(v), "trap {nth}: pre-batch key {k} lost");
        }
        // Batch keys present after recovery must be a prefix of the sorted
        // batch: once one is missing, all later ones must be missing too.
        let mut missing_seen = false;
        let mut applied = 0u64;
        for &(k, v) in &sorted_batch {
            match tree.find(k) {
                Some(got) => {
                    assert!(
                        !missing_seen,
                        "trap {nth}: key {k} present after an earlier batch key was lost"
                    );
                    assert_eq!(got, v, "trap {nth}: key {k} has a torn value");
                    applied += 1;
                }
                None => missing_seen = true,
            }
        }
        assert_eq!(
            tree.stats().entries,
            old_keys.len() as u64 + applied,
            "trap {nth}: recovered entry count"
        );
    }
}

/// Crashing at every persist inside `load_sorted` must recover to an empty
/// tree: the journaled head-leaf pre-image makes the load all-or-nothing.
#[test]
fn crash_mid_load_sorted_recovers_empty() {
    let pairs = seq_pairs(1, 150); // 3 leaves -> 2*3+3 = 9 persists
    let total = {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
        let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());
        let before = persists(&pool);
        tree.load_sorted(&pairs).unwrap();
        persists(&pool) - before
    };
    assert_eq!(total, 9, "3-leaf load must take 2*3+3 persists");

    for nth in 1..=total {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
        let cfg = RnConfig::default();
        let tree = RnTree::create(Arc::clone(&pool), cfg);

        pool.arm_persist_trap(nth);
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            let _ = tree.load_sorted(&pairs);
        }))
        .is_err();
        pool.disarm_persist_trap();
        assert!(crashed, "trap {nth}/{total} must fire mid-load");
        drop(tree);
        pool.simulate_crash();

        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        tree.verify_invariants()
            .unwrap_or_else(|e| panic!("trap {nth}: {e}"));
        assert_eq!(tree.stats().entries, 0, "trap {nth}: load must be all-or-nothing");
        for &(k, _) in &pairs {
            assert_eq!(tree.find(k), None, "trap {nth}: key {k} leaked");
        }
        // The rolled-back tree must still be fully usable — including the
        // blocks the aborted load had claimed, which recovery reclaims.
        tree.load_sorted(&pairs).unwrap();
        for &(k, v) in &pairs {
            assert_eq!(tree.find(k), Some(v), "trap {nth}: post-recovery reload");
        }
        tree.verify_invariants().unwrap();
    }
}

/// The batch path and the per-op path must agree on what ends up durable:
/// build the same key set both ways, crash, and compare recovered contents.
#[test]
fn batched_and_per_op_trees_recover_identically() {
    let keys: Vec<(u64, u64)> = (1..=400u64).map(|k| (k * 7, k)).collect();

    let recover_set = |batched: bool| -> BTreeSet<(u64, u64)> {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
        let cfg = RnConfig::default();
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        if batched {
            let mut batch = keys.clone();
            assert!(tree.insert_batch(&mut batch).into_iter().all(|r| r.is_ok()));
        } else {
            for &(k, v) in &keys {
                tree.insert(k, v).unwrap();
            }
        }
        drop(tree);
        pool.simulate_crash();
        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        tree.verify_invariants().unwrap();
        let mut out = Vec::new();
        tree.scan_n(0, keys.len() + 10, &mut out);
        out.into_iter().collect()
    };

    assert_eq!(recover_set(true), recover_set(false));
}
