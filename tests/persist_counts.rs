//! Table 1 regression tests: RNTree's modify operations must keep their
//! exact persistent-instruction counts — insert 2, update 2, remove 1,
//! find 0 — with the fingerprint probe enabled or disabled, with the KV
//! flush synchronous or overlapped (async), in both slot variants, and
//! with the DRAM page cache enabled or disabled. The fingerprint table
//! and the page cache are DRAM-only and the async flush still ends in
//! exactly one fence, so all three must be invisible to the persist
//! counters; these tests pin that down op-by-op (the Table 1 experiment
//! only reports batch minima).
//!
//! Also covers the transient-rebuild rule: after a crash or a clean
//! reopen, the fingerprint table must be re-derived from the persistent
//! slot arrays (checked via `verify_invariants`, whose probe check fails
//! on any live key the table cannot find).

use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{LeafPolicy, RnConfig, RnTree};

fn persists(pool: &PmemPool) -> u64 {
    pool.stats().snapshot().persists
}

#[test]
fn modify_persist_counts_are_exact_in_every_variant() {
    for fingerprints in [true, false] {
        for dual in [true, false] {
            for async_flush in [true, false] {
                for cache_frames in [0usize, 64] {
                    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
                    let cfg = RnConfig {
                        dual_slot: dual,
                        fingerprints,
                        async_flush,
                        journal_slots: 2,
                        cache_frames,
                        ..RnConfig::default()
                    };
                    let tree = RnTree::create(Arc::clone(&pool), cfg);
                    let tag = format!(
                        "dual={dual} fp={fingerprints} async={async_flush} cache={cache_frames}"
                    );

                    // 20 inserts + 10 updates + 5 removes allocate 30 log entries
                    // in one 63-entry leaf: no split/compaction can fire, so every
                    // op must show its exact steady-state cost.
                    for k in 1..=20u64 {
                        let before = persists(&pool);
                        tree.insert(k, k * 3).unwrap();
                        assert_eq!(persists(&pool) - before, 2, "insert {k} ({tag})");
                    }
                    for k in 1..=10u64 {
                        let before = persists(&pool);
                        tree.update(k, k * 3 + 1).unwrap();
                        assert_eq!(persists(&pool) - before, 2, "update {k} ({tag})");
                    }
                    for k in 16..=20u64 {
                        let before = persists(&pool);
                        tree.remove(k).unwrap();
                        assert_eq!(persists(&pool) - before, 1, "remove {k} ({tag})");
                    }
                    let before = persists(&pool);
                    assert_eq!(tree.find(5), Some(16));
                    assert_eq!(tree.find(12), Some(36));
                    assert_eq!(tree.find(18), None);
                    assert_eq!(persists(&pool) - before, 0, "find persisted ({tag})");
                    tree.verify_invariants().unwrap();
                }
            }
        }
    }
}

/// Whole-stream version of the cache dimension above: a split-heavy
/// insert stream (plenty of fills, evictions, and invalidations on the
/// cached side) must cost exactly the same persists with and without
/// the DRAM page cache, including the finds that fault it in.
#[test]
fn cache_churn_adds_zero_persists_across_a_split_heavy_stream() {
    let totals: Vec<u64> = [0usize, 8]
        .into_iter()
        .map(|cache_frames| {
            let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
            let cfg = RnConfig {
                journal_slots: 2,
                cache_frames,
                ..RnConfig::default()
            };
            let tree = RnTree::create(Arc::clone(&pool), cfg);
            let base = persists(&pool);
            // 30 k ascending keys build ~1 k leaves and a two-level inner
            // index of well over 8 nodes, so the 8-frame cache must evict.
            for k in 1..=30_000u64 {
                tree.insert(k, k).unwrap();
                if k % 5 == 0 {
                    assert_eq!(tree.find(k / 2 + 1), Some(k / 2 + 1));
                }
            }
            if cache_frames > 0 {
                let s = tree.cache_stats().unwrap();
                assert!(
                    s.fills > 0 && s.evictions > 0 && s.invalidations > 0,
                    "stream did not churn the cache: {s:?}"
                );
            }
            persists(&pool) - base
        })
        .collect();
    assert_eq!(totals[0], totals[1], "cache changed persist totals: {totals:?}");
}

#[test]
fn failed_conditionals_do_not_touch_the_slot_line() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig {
        journal_slots: 2,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    tree.insert(1, 1).unwrap();
    // A rejected conditional has already flushed its log entry (1 persist)
    // but must not flush the slot line; a missed remove persists nothing.
    let before = persists(&pool);
    assert!(tree.insert(1, 2).is_err());
    assert_eq!(persists(&pool) - before, 1, "duplicate insert");
    let before = persists(&pool);
    assert!(tree.update(9, 9).is_err());
    assert_eq!(persists(&pool) - before, 1, "missing update");
    let before = persists(&pool);
    assert!(tree.remove(9).is_err());
    assert_eq!(persists(&pool) - before, 0, "missing remove");
}

#[test]
fn fingerprints_are_rebuilt_by_crash_recovery() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig {
        journal_slots: 4,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    for k in 1..=500u64 {
        tree.insert(k, k * 7).unwrap();
    }
    assert!(tree.rn_stats().splits > 0, "want a multi-leaf tree");
    drop(tree);
    pool.simulate_crash();

    let tree = RnTree::recover(Arc::clone(&pool), cfg);
    // verify_invariants probes the fingerprint table for every live key;
    // a non-rebuilt (zeroed) table would fail it for almost all of them.
    tree.verify_invariants().unwrap();
    for k in 1..=500u64 {
        assert_eq!(tree.find(k), Some(k * 7), "key {k}");
    }
    // The probe hit paths (update, remove) must work on recovered state.
    for k in 1..=100u64 {
        tree.update(k, k).unwrap();
        assert_eq!(tree.find(k), Some(k));
    }
    for k in 101..=150u64 {
        tree.remove(k).unwrap();
        assert_eq!(tree.find(k), None);
    }
    tree.verify_invariants().unwrap();
}

#[test]
fn fingerprints_are_rebuilt_by_clean_reopen() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig {
        journal_slots: 4,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    for k in 1..=300u64 {
        tree.insert(k, k + 9).unwrap();
    }
    tree.close();
    drop(tree);
    pool.simulate_crash();

    let tree = RnTree::reopen_clean(Arc::clone(&pool), cfg);
    tree.verify_invariants().unwrap();
    for k in 1..=300u64 {
        assert_eq!(tree.find(k), Some(k + 9));
    }
    for k in 1..=50u64 {
        tree.update(k, k).unwrap();
    }
    tree.verify_invariants().unwrap();
}

/// Hash-leaf twin of the exact-count matrix: the hash directory is just a
/// different encoding of the same 64-byte slot line — read it, mutate the
/// DRAM copy, write it back transactionally, persist it — so every modify
/// op must keep its Table 1 cost bit-for-bit (insert 2, update 2,
/// remove 1, find 0, scan 0) under both the pool-wide hash policy and the
/// adaptive policy (whose leaves are born sorted; 35 ops stay far below
/// the 256-op morph window, so no rewrite can sneak into the counts).
#[test]
fn hash_and_adaptive_persist_counts_match_sorted_exactly() {
    for policy in [LeafPolicy::Hash, LeafPolicy::Adaptive] {
        for fingerprints in [true, false] {
            for dual in [true, false] {
                let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
                let cfg = RnConfig {
                    leaf_policy: policy,
                    dual_slot: dual,
                    fingerprints,
                    journal_slots: 2,
                    ..RnConfig::default()
                };
                let tree = RnTree::create(Arc::clone(&pool), cfg);
                let tag = format!("policy={policy:?} dual={dual} fp={fingerprints}");

                for k in 1..=20u64 {
                    let before = persists(&pool);
                    tree.insert(k, k * 3).unwrap();
                    assert_eq!(persists(&pool) - before, 2, "insert {k} ({tag})");
                }
                for k in 1..=10u64 {
                    let before = persists(&pool);
                    tree.update(k, k * 3 + 1).unwrap();
                    assert_eq!(persists(&pool) - before, 2, "update {k} ({tag})");
                }
                for k in 16..=20u64 {
                    let before = persists(&pool);
                    tree.remove(k).unwrap();
                    assert_eq!(persists(&pool) - before, 1, "remove {k} ({tag})");
                }
                let before = persists(&pool);
                assert_eq!(tree.find(5), Some(16));
                assert_eq!(tree.find(12), Some(36));
                assert_eq!(tree.find(18), None);
                let mut out = Vec::new();
                assert_eq!(tree.scan_n(1, 10, &mut out), 10);
                assert_eq!(persists(&pool) - before, 0, "read ops persisted ({tag})");
                tree.verify_invariants().unwrap();
            }
        }
    }
}

/// Hash-leaf failed conditionals mirror the sorted contract: a rejected
/// insert/update has already flushed its log entry (1 persist) but must
/// not flush the directory line; a missed remove persists nothing.
#[test]
fn hash_failed_conditionals_do_not_touch_the_directory_line() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig {
        leaf_policy: LeafPolicy::Hash,
        journal_slots: 2,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    tree.insert(1, 1).unwrap();
    let before = persists(&pool);
    assert!(tree.insert(1, 2).is_err());
    assert_eq!(persists(&pool) - before, 1, "duplicate insert");
    let before = persists(&pool);
    assert!(tree.update(9, 9).is_err());
    assert_eq!(persists(&pool) - before, 1, "missing update");
    let before = persists(&pool);
    assert!(tree.remove(9).is_err());
    assert_eq!(persists(&pool) - before, 0, "missing remove");
}

/// A morph is a journaled whole-node rewrite with a constant persist
/// cost, independent of direction and of how many keys live in the leaf:
/// the undo journal's 3 (image + valid mark, then clear) plus one
/// coalesced whole-block persist. A wish for the layout the leaf already
/// has persists nothing, and the per-op Table 1 costs hold unchanged on
/// the rewritten leaf.
#[test]
fn morph_is_a_journaled_rewrite_with_constant_persist_cost() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig {
        leaf_policy: LeafPolicy::Adaptive,
        journal_slots: 2,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    for k in 1..=40u64 {
        tree.insert(k, k * 11).unwrap();
    }

    let before = persists(&pool);
    assert!(tree.force_morph(10, true), "sorted -> hash must rewrite");
    let to_hash = persists(&pool) - before;
    let before = persists(&pool);
    assert!(tree.force_morph(10, false), "hash -> sorted must rewrite");
    let to_sorted = persists(&pool) - before;
    assert_eq!(to_hash, to_sorted, "morph cost must not depend on direction");
    assert_eq!(to_hash, 4, "journal (3) + whole-block persist (1)");

    // Already in the target layout: no rewrite, no persists.
    let before = persists(&pool);
    assert!(!tree.force_morph(10, false));
    assert_eq!(persists(&pool) - before, 0, "no-op morph persisted");

    // The rewrite preserved every pair, and per-op costs are unchanged on
    // a morphed (hash) leaf.
    assert!(tree.force_morph(10, true));
    for k in 1..=40u64 {
        assert_eq!(tree.find(k), Some(k * 11), "key {k} after morphs");
    }
    let before = persists(&pool);
    tree.insert(100, 1).unwrap();
    assert_eq!(persists(&pool) - before, 2, "insert on morphed leaf");
    let before = persists(&pool);
    tree.update(100, 2).unwrap();
    assert_eq!(persists(&pool) - before, 2, "update on morphed leaf");
    let before = persists(&pool);
    tree.remove(100).unwrap();
    assert_eq!(persists(&pool) - before, 1, "remove on morphed leaf");
    tree.verify_invariants().unwrap();
}

/// Var-key (byte-key) twin of the exact-count matrix: the heap-slotted
/// leaf coalesces its record + directory-word flush into ONE
/// `persist_many`, so every `*_k` modify op must cost exactly what the
/// u64 op costs — insert 2, update 2, remove 1, find 0 — across the
/// fingerprint, slot-variant, and page-cache dimensions.
#[test]
fn varlen_modify_persist_counts_are_exact_in_every_variant() {
    for fingerprints in [true, false] {
        for dual in [true, false] {
            for cache_frames in [0usize, 64] {
                let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
                let cfg = RnConfig {
                    varlen_leaves: true,
                    dual_slot: dual,
                    fingerprints,
                    journal_slots: 2,
                    cache_frames,
                    ..RnConfig::default()
                };
                let tree = RnTree::create(Arc::clone(&pool), cfg);
                let tag = format!("varlen dual={dual} fp={fingerprints} cache={cache_frames}");
                let key = |k: u64| format!("user/{k:04}").into_bytes();

                // 20 inserts + 10 updates + 5 removes allocate 30 log
                // entries and ~480 heap bytes in one leaf: no split or
                // compaction can fire, so every op shows its exact cost.
                for k in 1..=20u64 {
                    let before = persists(&pool);
                    tree.insert_k(&key(k), k * 3).unwrap();
                    assert_eq!(persists(&pool) - before, 2, "insert_k {k} ({tag})");
                }
                for k in 1..=10u64 {
                    let before = persists(&pool);
                    tree.update_k(&key(k), k * 3 + 1).unwrap();
                    assert_eq!(persists(&pool) - before, 2, "update_k {k} ({tag})");
                }
                for k in 16..=20u64 {
                    let before = persists(&pool);
                    tree.remove_k(&key(k)).unwrap();
                    assert_eq!(persists(&pool) - before, 1, "remove_k {k} ({tag})");
                }
                let before = persists(&pool);
                assert_eq!(tree.find_k(&key(5)), Some(16));
                assert_eq!(tree.find_k(&key(12)), Some(36));
                assert_eq!(tree.find_k(&key(18)), None);
                assert_eq!(persists(&pool) - before, 0, "find_k persisted ({tag})");
                tree.verify_invariants().unwrap();
            }
        }
    }
}

/// Var-key failed conditionals mirror the u64 contract: a rejected
/// insert/update has already flushed its record (1 persist) but must not
/// touch the slot line; a missed remove persists nothing.
#[test]
fn varlen_failed_conditionals_do_not_touch_the_slot_line() {
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
    let cfg = RnConfig {
        varlen_leaves: true,
        journal_slots: 2,
        ..RnConfig::default()
    };
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    tree.insert_k(b"alpha", 1).unwrap();
    let before = persists(&pool);
    assert!(tree.insert_k(b"alpha", 2).is_err());
    assert_eq!(persists(&pool) - before, 1, "duplicate insert_k");
    let before = persists(&pool);
    assert!(tree.update_k(b"omega", 9).is_err());
    assert_eq!(persists(&pool) - before, 1, "missing update_k");
    let before = persists(&pool);
    assert!(tree.remove_k(b"omega").is_err());
    assert_eq!(persists(&pool) - before, 0, "missing remove_k");
}

/// Mixed-class batch runs (`write_batch`) keep the coalesced contract in
/// both leaf layouts and both slot variants:
///
/// * a **pure-remove run** edits only the slot image — no log entries, no
///   dirty KV lines — so it costs exactly **1 persist per touched leaf**;
/// * a **mixed run** (inserts/updates riding with removes) flushes its
///   coalesced KV lines (1) plus the slot publish (1) — **2 per leaf**,
///   the same as an all-insert run, i.e. removes ride along for free;
/// * a run of removes that all **miss** changes nothing and persists
///   nothing.
#[test]
fn write_batch_remove_runs_cost_one_persist_per_leaf() {
    use index_common::WriteOp;
    for policy in [LeafPolicy::Sorted, LeafPolicy::Hash] {
        for dual in [true, false] {
            let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
            let cfg = RnConfig {
                leaf_policy: policy,
                dual_slot: dual,
                journal_slots: 2,
                ..RnConfig::default()
            };
            let tree = RnTree::create(Arc::clone(&pool), cfg);
            let tag = format!("policy={policy:?} dual={dual}");
            // Seed one leaf well below capacity so no split can fire.
            for k in 1..=30u64 {
                tree.insert(k, k * 2).unwrap();
            }

            // Pure-remove run: 10 removes, one leaf, one persist.
            let mut rm: Vec<(u64, u64, WriteOp)> =
                (1..=10).map(|k| (k, 0, WriteOp::Remove)).collect();
            let before = persists(&pool);
            assert!(tree.write_batch(&mut rm).into_iter().all(|r| r.is_ok()), "{tag}");
            assert_eq!(persists(&pool) - before, 1, "pure-remove run ({tag})");

            // All-miss remove run: nothing changed, nothing persisted.
            let mut miss: Vec<(u64, u64, WriteOp)> =
                (100..=110).map(|k| (k, 0, WriteOp::Remove)).collect();
            let before = persists(&pool);
            assert!(tree.write_batch(&mut miss).into_iter().all(|r| r.is_err()), "{tag}");
            assert_eq!(persists(&pool) - before, 0, "all-miss remove run ({tag})");

            // Mixed run on the same leaf: fresh inserts + more removes +
            // an update — the removes ride the insert run's 2 persists.
            let mut mixed: Vec<(u64, u64, WriteOp)> = vec![
                (31, 31, WriteOp::Insert),
                (11, 0, WriteOp::Remove),
                (32, 32, WriteOp::Insert),
                (12, 0, WriteOp::Remove),
                (13, 130, WriteOp::Update),
                (33, 33, WriteOp::Upsert),
            ];
            let before = persists(&pool);
            assert!(tree.write_batch(&mut mixed).into_iter().all(|r| r.is_ok()), "{tag}");
            assert_eq!(persists(&pool) - before, 2, "mixed run ({tag})");

            // Final state reflects every class.
            for k in 1..=12u64 {
                assert_eq!(tree.find(k), None, "removed {k} ({tag})");
            }
            assert_eq!(tree.find(13), Some(130), "{tag}");
            for k in [31u64, 32, 33] {
                assert_eq!(tree.find(k), Some(k), "{tag}");
            }
            tree.verify_invariants().unwrap();
        }
    }
}

/// Var-key batch paths keep the amortised contract: `load_sorted_k` is
/// 2 persists per built leaf plus the constant 3 journal persists, and
/// `insert_batch_k` is 2 persists per touched leaf regardless of how
/// many keys land in the leaf.
#[test]
fn varlen_batch_paths_keep_two_persists_per_leaf() {
    for dual in [true, false] {
        // Bulk load: 8-byte keys are slot-bound (heap budget admits far
        // more than 63 such records), so leaves = ceil(n/63) as for u64.
        for keys in [1u64, 63, 64, 200] {
            let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
            let cfg = RnConfig {
                varlen_leaves: true,
                dual_slot: dual,
                journal_slots: 2,
                ..RnConfig::default()
            };
            let tree = RnTree::create(Arc::clone(&pool), cfg);
            let pairs: Vec<_> = (1..=keys)
                .map(|k| (index_common::KeyBuf::from_slice(&(k * 7).to_be_bytes()), k))
                .collect();
            let leaves = keys.div_ceil(63);
            let before = persists(&pool);
            tree.load_sorted_k(&pairs).unwrap();
            assert_eq!(
                persists(&pool) - before,
                2 * leaves + 3,
                "load_sorted_k({keys}, dual={dual})"
            );
            assert_eq!(tree.stats().leaves, leaves);
            assert_eq!(tree.stats().entries, keys);
            for (k, v) in &pairs {
                assert_eq!(tree.find_k(k.as_slice()), Some(*v), "key {k:?}");
            }
            tree.verify_invariants().unwrap();
        }

        // Single-leaf batch: 40 fresh keys, one coalesced record flush +
        // one slot publish.
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
        let cfg = RnConfig {
            varlen_leaves: true,
            dual_slot: dual,
            journal_slots: 2,
            ..RnConfig::default()
        };
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        let mut batch: Vec<_> = (1..=40u64)
            .map(|k| (index_common::KeyBuf::from_slice(format!("k{k:03}").as_bytes()), k))
            .collect();
        let before = persists(&pool);
        assert!(tree.insert_batch_k(&mut batch).into_iter().all(|r| r.is_ok()));
        assert_eq!(persists(&pool) - before, 2, "single-leaf batch (dual={dual})");

        // All-duplicate batch: nothing changed, nothing persisted.
        let mut dups: Vec<_> = (1..=5u64)
            .map(|k| (index_common::KeyBuf::from_slice(format!("k{k:03}").as_bytes()), 99))
            .collect();
        let before = persists(&pool);
        assert!(tree.insert_batch_k(&mut dups).into_iter().all(|r| r.is_err()));
        assert_eq!(persists(&pool) - before, 0, "all-dup batch (dual={dual})");
        tree.verify_invariants().unwrap();
    }
}
