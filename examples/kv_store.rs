//! A miniature durable key-value store built on the public API —
//! the kind of component the paper's intro motivates (primary-key
//! indexes with unique constraints, §3.3).
//!
//! Loads an order table, serves point and range queries, enforces the
//! unique constraint via conditional writes, and compares the same
//! workload across every tree in the repository.
//!
//! ```text
//! cargo run -p system-tests --release --example kv_store
//! ```

use std::sync::Arc;
use std::time::Instant;

use baselines::{FpTree, NvTree, WbTree, WbVariant};
use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};

/// An "order": id → (customer, amount) packed into the value word.
fn order_value(customer: u32, cents: u32) -> u64 {
    ((customer as u64) << 32) | cents as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

fn run_store(tree: &dyn PersistentIndex, orders: u64) -> (f64, f64, f64) {
    // Load phase: order ids are assigned by a hash, as an app with
    // distributed id generation would.
    let t0 = Instant::now();
    for i in 1..=orders {
        let id = i.wrapping_mul(0x9E3779B97F4A7C15) >> 16;
        let customer = (i % 997) as u32;
        tree.upsert(id, order_value(customer, (i % 10_000) as u32))
            .expect("load failed");
    }
    let load = orders as f64 / t0.elapsed().as_secs_f64();

    // Unique-constraint enforcement: re-inserting an existing order id
    // must fail (conditional write), without clobbering the row.
    let existing = 1u64.wrapping_mul(0x9E3779B97F4A7C15) >> 16;
    if tree.insert(existing, 0).is_ok() {
        // NVTree without conditional mode cannot enforce this (§3.3) —
        // the paper's point. Put the original row back.
        let _ = tree.upsert(existing, order_value(1, 1));
        println!("    [{}] unique constraint NOT enforced (append-only leaf)", tree.name());
    } else {
        println!("    [{}] unique constraint enforced", tree.name());
    }

    // Point-query phase.
    let t0 = Instant::now();
    let mut hits = 0u64;
    for i in 1..=orders {
        let id = i.wrapping_mul(0x9E3779B97F4A7C15) >> 16;
        if tree.find(id).is_some() {
            hits += 1;
        }
    }
    assert_eq!(hits, orders);
    let point = orders as f64 / t0.elapsed().as_secs_f64();

    // Range phase: 1000 scans of 100 orders each.
    let t0 = Instant::now();
    let mut out = Vec::with_capacity(100);
    let mut total = 0usize;
    for i in 0..1_000u64 {
        let start = i.wrapping_mul(0xD1B54A32D192ED03) >> 16;
        total += tree.scan_n(start, 100, &mut out);
    }
    std::hint::black_box(total);
    let range = 1_000.0 / t0.elapsed().as_secs_f64();
    (load, point, range)
}

fn main() {
    let orders = 50_000u64;
    println!("kv_store: {orders} orders per tree\n");
    let mk_pool = || Arc::new(PmemPool::new(PmemConfig::for_benchmarks(256 << 20)));

    let trees: Vec<Box<dyn PersistentIndex>> = vec![
        Box::new(RnTree::create(mk_pool(), RnConfig { seq_traversal: true, ..RnConfig::default() })),
        Box::new(FpTree::create(mk_pool(), true)),
        Box::new(WbTree::create(mk_pool(), WbVariant::Full, true)),
        Box::new(NvTree::create(mk_pool(), true)),
    ];

    println!("| tree | load ops/s | point ops/s | range scans/s |");
    println!("|------|-----------|-------------|----------------|");
    for tree in &trees {
        let (load, point, range) = run_store(&**tree, orders);
        println!(
            "| {} | {:.0} | {:.0} | {:.0} |",
            tree.name(),
            load,
            point,
            range
        );
    }

    // Show a decoded row from the RNTree store.
    let id = 7u64.wrapping_mul(0x9E3779B97F4A7C15) >> 16;
    let (customer, cents) = unpack(trees[0].find(id).unwrap());
    println!("\norder {id}: customer={customer} amount=${}.{:02}", cents / 100, cents % 100);
}
