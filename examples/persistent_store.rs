//! Durability across *process* restarts: snapshot the simulated NVM to a
//! file and reopen it later, exactly as a DAX-mapped device would persist.
//!
//! Run it twice — the second run finds the first run's data:
//!
//! ```text
//! cargo run -p system-tests --example persistent_store
//! cargo run -p system-tests --example persistent_store
//! ```

use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};

fn store_path() -> std::path::PathBuf {
    std::env::temp_dir().join("rntree_persistent_store.pmem")
}

fn main() {
    let path = store_path();
    let cfg = RnConfig::default();

    let (pool, tree, generation) = if path.exists() {
        // Second run: load the snapshot. Loading is semantically a crash +
        // reboot, so we use the crash-recovery path.
        let pool = Arc::new(PmemPool::load_durable(&path).expect("load snapshot"));
        let tree = RnTree::recover(Arc::clone(&pool), cfg);
        let generation = tree.find(0xC0FFEE).unwrap_or(0) + 1;
        println!(
            "reopened store: {} keys, generation {} -> {}",
            tree.stats().entries,
            generation - 1,
            generation
        );
        // Everything from previous generations must still be there.
        for g in 1..generation {
            for i in 1..=100u64 {
                let k = g * 1_000 + i;
                assert_eq!(tree.find(k), Some(k * 2), "lost key {k} from generation {g}");
            }
        }
        (pool, tree, generation)
    } else {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(32 << 20)));
        let tree = RnTree::create(Arc::clone(&pool), cfg);
        println!("created fresh store at {}", path.display());
        (pool, tree, 1)
    };

    // Write this generation's batch.
    for i in 1..=100u64 {
        let k = generation * 1_000 + i;
        tree.upsert(k, k * 2).unwrap();
    }
    tree.upsert(0xC0FFEE, generation).unwrap();
    tree.verify_invariants().unwrap();

    // Report structure before snapshotting.
    let report = tree.space_report();
    println!(
        "store now: {} live keys in {} leaves (mean fill {:.1}, utilization {:.0}%)",
        report.live_entries,
        report.leaves,
        report.mean_live_fill,
        report.utilization() * 100.0
    );

    // Snapshot the durable image. Only persisted state is captured — the
    // save *is* a simulated power cut.
    pool.save_durable(&path).expect("save snapshot");
    println!("snapshot written; run me again to reopen it (generation {generation})");
}
