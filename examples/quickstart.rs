//! Quickstart: create an RNTree on simulated persistent memory, use it,
//! crash it, recover it.
//!
//! ```text
//! cargo run -p system-tests --example quickstart
//! ```

use std::sync::Arc;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};

fn main() {
    // A 16 MiB simulated NVM device. `for_testing` keeps the durable image
    // so we can demonstrate a crash; benchmarks use `for_benchmarks`.
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(16 << 20)));

    // Create the tree (dual slot array on — the paper's best variant).
    let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());

    // Conditional writes (§3.3): insert fails on duplicates, update on
    // missing keys — RNTree gets this for free from its sorted slot array.
    tree.insert(10, 100).unwrap();
    tree.insert(20, 200).unwrap();
    tree.insert(30, 300).unwrap();
    assert!(tree.insert(20, 999).is_err(), "duplicate insert must fail");
    tree.update(20, 222).unwrap();

    assert_eq!(tree.find(20), Some(222));
    assert_eq!(tree.find(15), None);

    // Range queries walk the sorted leaf chain.
    let mut out = Vec::new();
    tree.scan_n(10, 10, &mut out);
    println!("scan from 10 -> {out:?}");
    assert_eq!(out, vec![(10, 100), (20, 222), (30, 300)]);

    // Two persistent instructions per modify (Table 1) — measurable:
    let before = pool.stats().snapshot();
    tree.insert(40, 400).unwrap();
    let delta = pool.stats().snapshot().since(&before);
    println!("one insert cost {} persistent instructions", delta.persists);
    assert_eq!(delta.persists, 2);

    // Pull the plug. Everything acknowledged above is durable.
    drop(tree);
    pool.simulate_crash();
    let tree = RnTree::recover(Arc::clone(&pool), RnConfig::default());
    assert_eq!(tree.find(10), Some(100));
    assert_eq!(tree.find(20), Some(222));
    assert_eq!(tree.find(40), Some(400));
    tree.verify_invariants().unwrap();
    println!("recovered {} keys after crash — OK", tree.stats().entries);
}
