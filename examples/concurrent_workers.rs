//! Concurrent workers on one durable tree: the overlapped
//! persistency/concurrency design (§4.2–§4.4) in action, with the HTM
//! abort economics printed per tree.
//!
//! Runs the same skewed mixed workload against RNTree+DS, plain RNTree,
//! and FPTree, then crash-recovers the RNTree+DS store and verifies every
//! acknowledged write.
//!
//! ```text
//! cargo run -p system-tests --release --example concurrent_workers
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use baselines::FpTree;
use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool};
use rntree::{RnConfig, RnTree};
use ycsb::{KeyDist, WorkloadSpec};

const WARM: u64 = 50_000;
const THREADS: usize = 4;

fn drive(tree: Arc<dyn PersistentIndex>, label: &str) {
    for k in 1..=WARM {
        tree.upsert(k, k).unwrap();
    }
    let spec = WorkloadSpec::ycsb_a(KeyDist::ScrambledZipfian { n: WARM, theta: 0.8 });
    let r = ycsb::run_closed_loop(&tree, &spec, THREADS, Duration::from_secs(1), 7);
    println!(
        "{label:<10} {:>10.0} ops/s | read p50 {:>6} ns p99 {:>8} ns | update p50 {:>6} ns p99 {:>8} ns | htm aborts {}",
        r.throughput(),
        r.read_lat.quantile(0.5),
        r.read_lat.quantile(0.99),
        r.update_lat.quantile(0.5),
        r.update_lat.quantile(0.99),
        tree.htm_abort_ratio().map_or("n/a".into(), |a| format!("{a:.3}")),
    );
}

fn main() {
    println!("{THREADS} workers, YCSB-A, scrambled zipfian θ=0.8, {WARM} keys\n");
    let mk_pool = || Arc::new(PmemPool::new(PmemConfig::for_benchmarks(256 << 20)));

    let ds_pool = Arc::new(PmemPool::new(PmemConfig::for_testing(256 << 20)));
    let ds = Arc::new(RnTree::create(Arc::clone(&ds_pool), RnConfig::default()));
    drive(Arc::clone(&ds) as Arc<dyn PersistentIndex>, "RNTree+DS");
    drive(
        Arc::new(RnTree::create(mk_pool(), RnConfig { dual_slot: false, ..RnConfig::default() })),
        "RNTree",
    );
    drive(Arc::new(FpTree::create(mk_pool(), false)), "FPTree");

    // Now hammer the (shadowed) RNTree+DS store concurrently while
    // recording exactly what was acknowledged, crash, recover, verify.
    println!("\ncrash test: {THREADS} writers, disjoint key ranges, abrupt crash…");
    let acked = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + Duration::from_millis(500);
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let tree = &ds;
            let acked = Arc::clone(&acked);
            scope.spawn(move || {
                let mut k = 0u64;
                while Instant::now() < deadline {
                    k += 1;
                    let key = 1_000_000 + t * 1_000_000 + k;
                    tree.insert(key, key).unwrap();
                    acked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let total = acked.load(Ordering::Relaxed);
    drop(ds);
    ds_pool.simulate_crash();
    let tree = RnTree::recover(ds_pool, RnConfig::default());
    tree.verify_invariants().unwrap();
    let mut found = 0u64;
    for t in 0..THREADS as u64 {
        let mut k = 0u64;
        loop {
            k += 1;
            let key = 1_000_000 + t * 1_000_000 + k;
            if tree.find(key).is_some() {
                found += 1;
            } else {
                break;
            }
        }
    }
    println!("acknowledged {total} inserts pre-crash; found {found} contiguous after recovery");
    assert!(found >= total, "acknowledged writes lost!");
    println!("durable linearizability held.");
}
