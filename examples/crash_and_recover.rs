//! Crash-consistency walk-through: what survives a power failure, why,
//! and how the two recovery paths differ (paper §5.4, Figure 7).
//!
//! Demonstrates:
//! 1. acknowledged operations surviving an abrupt crash,
//! 2. un-flushed state vanishing (the cache/NVM split of the simulator),
//! 3. uncontrolled cache evictions being harmless (write ordering),
//! 4. the split undo journal rolling back a torn split image,
//! 5. reconstruction (clean shutdown) vs crash recovery timings.
//!
//! ```text
//! cargo run -p system-tests --release --example crash_and_recover
//! ```

use std::sync::Arc;
use std::time::Instant;

use index_common::PersistentIndex;
use nvm::{PmemConfig, PmemPool, RootTable};
use rntree::{RnConfig, RnTree};

fn main() {
    let cfg = RnConfig::default();

    // --- 1+2: acknowledged ops survive; unflushed arena state does not.
    let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(64 << 20)));
    let tree = RnTree::create(Arc::clone(&pool), cfg);
    for k in 1..=10_000u64 {
        tree.insert(k, k * 3).unwrap();
    }
    // Scribble directly on the arena *without* persisting: this models
    // dirty cache lines that never reached the NVM.
    pool.store_u64(RootTable::END + 512, 0xDEAD_DEAD);
    drop(tree);
    pool.simulate_crash();
    let tree = RnTree::recover(Arc::clone(&pool), cfg);
    let mut ok = 0;
    for k in 1..=10_000u64 {
        if tree.find(k) == Some(k * 3) {
            ok += 1;
        }
    }
    println!("after crash: {ok}/10000 acknowledged inserts survived");
    assert_eq!(ok, 10_000);
    tree.verify_invariants().unwrap();

    // --- 3: random cache evictions between operations are harmless —
    // the write ordering (entry before slot line) holds under any
    // eviction schedule.
    for k in 10_001..=12_000u64 {
        tree.insert(k, k).unwrap();
        if k % 7 == 0 {
            pool.evict_random_lines(4);
        }
    }
    drop(tree);
    pool.simulate_crash();
    let tree = RnTree::recover(Arc::clone(&pool), cfg);
    for k in 10_001..=12_000u64 {
        assert_eq!(tree.find(k), Some(k), "evicted-era key {k} lost");
    }
    println!("eviction storm: all 2000 keys intact after crash");

    // --- 4: the split undo journal. Simulate a crash in the middle of a
    // split by hand: journal a leaf image, corrupt the leaf as a split
    // would mid-rewrite, crash, and let recovery restore it.
    let journal = rntree::SplitJournal::new(64, cfg.journal_slots);
    let leftmost = tree.leftmost();
    let slot = journal.acquire();
    journal.log(&pool, slot, leftmost);
    for w in 0..16u64 {
        pool.store_u64(leftmost + 192 + w * 8, 0xBAD0_BAD0); // torn KV area
    }
    pool.persist(leftmost, rntree::LEAF_BLOCK);
    drop(tree);
    pool.simulate_crash();
    let t0 = Instant::now();
    let tree = RnTree::recover(Arc::clone(&pool), cfg);
    let crash_time = t0.elapsed();
    tree.verify_invariants().unwrap();
    assert_eq!(tree.find(1), Some(3), "journal failed to undo the torn split");
    println!("torn split rolled back by the undo journal ({crash_time:?})");

    // --- 5: reconstruction vs crash recovery timing.
    tree.close();
    drop(tree);
    let t0 = Instant::now();
    let tree = RnTree::reopen_clean(Arc::clone(&pool), cfg);
    let reconstruction = t0.elapsed();
    println!(
        "reconstruction {reconstruction:?} vs crash recovery {crash_time:?} ({:.1}× slower) — paper Figure 7 reports ≈1.6×",
        crash_time.as_secs_f64() / reconstruction.as_secs_f64().max(1e-9)
    );
    println!("final tree: {:?}", tree.stats());
}
