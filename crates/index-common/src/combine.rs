//! Flat-combining group commit over the batched persist pipeline.
//!
//! PR 3 proved the batch economics of this design: a sorted batch
//! reaching [`RnTree::insert_batch`]-style per-leaf runs costs ~0.23
//! persists/key where independent point writes cost ~2. But only callers
//! that *already hold* a batch get that price — N concurrent writer
//! threads each issuing point writes still pay the full per-op fence
//! bill. [`GroupCommit`] closes that gap without changing any caller's
//! API: writer threads publish their point writes into per-shard
//! cache-line-padded submission slots, one dynamically elected **leader**
//! per shard drains every published op into one epoch, sorts it, executes
//! it through the inner index's [`PersistentIndex::write_batch`] (the
//! PR-3 run executor, now covering all four write classes), and
//! distributes each op's result back through its slot. Reads bypass the
//! queue entirely.
//!
//! ## Slot protocol
//!
//! Each shard owns [`SLOTS_PER_SHARD`] padded slots. A slot is a tiny
//! state machine driven by one `AtomicU64`:
//!
//! ```text
//! FREE ──CAS (publisher)──▶ SETUP ──store op fields, Release──▶ PUBLISHED
//! PUBLISHED ──CAS (leader)──▶ CLAIMED ──execute──▶ DONE+code (Release)
//! PUBLISHED ──CAS (publisher, waited > max_wait)──▶ FREE   (reclaim)
//! DONE+code ──load Acquire, store FREE (publisher)──▶ FREE
//! ```
//!
//! Op fields (key/value/class) are plain relaxed atomics: the publisher's
//! `Release` store of `PUBLISHED` and the leader's `Acquire` CAS to
//! `CLAIMED` order them, and the result code rides in the state word
//! itself (`DONE_BASE + OpError` code), so delivery needs no second
//! synchronised field.
//!
//! ## Leader election and handoff
//!
//! There is no dedicated combiner thread. After publishing, a writer
//! spins on its own slot and — whenever its op is still `PUBLISHED` and
//! the shard's leader flag is free — elects *itself* leader with one CAS.
//! The leader gathers, accumulates, and executes **one** epoch, then
//! steps down (looping "until the shard is empty" would turn the leader
//! into a serial servicer whose own ops never publish — see [`drain`'s
//! doc][GroupCommit]). Because every waiting publisher is also a
//! candidate, leadership hands off automatically when the current leader
//! finishes and exits (even when its thread terminates): the next
//! spinning writer wins the CAS. No thread registration, so thread exit
//! leaks nothing.
//!
//! ## Epoch formation
//!
//! A leader that drains faster than writers publish executes nothing but
//! singleton epochs — flat combining degenerates to per-op execution
//! with extra steps, and no persists coalesce. Two mechanisms build real
//! groups without taxing the common op:
//!
//! * **Periodic election patience.** Every `PATIENT_EVERY`-th
//!   publication on a shard raises the shard's advisory `gathering`
//!   flag and holds back for a few yield cycles before volunteering as
//!   leader. Concurrent peers get scheduled, publish, and — deferring
//!   their own elections to the flag (boundedly: a stalled gatherer
//!   delays them by a few extra yields, never blocks them) — pile up;
//!   when the patient candidate finally elects itself, its gather
//!   claims the whole pile as one epoch. Patience is periodic, not
//!   universal: an always-patient shard pays a scheduler round-trip
//!   per op (ruinous when cores are scarce), while a bounded share of
//!   patient ops coalesces the bulk of the persist traffic and leaves
//!   the rest on the fast self-election path. Solo writers lose almost
//!   nothing — with no runnable peers the yields return immediately.
//! * **Accumulation window.** Once a gather holds a *group* (two or
//!   more ops), the leader keeps claiming arrivals for a bounded window
//!   ([`GroupCommitConfig::accumulate`], clamped to half the flush
//!   deadline) before executing, so publishes racing the gather still
//!   ride the epoch. Singleton gathers skip the window — a solo writer
//!   never pays it.
//!
//! The residual grouping latency is the deliberate group-commit trade,
//! and why the scaling bench reports (without asserting) the 1-thread
//! point.
//!
//! ## Bounded latency (proof sketch)
//!
//! A published op waits at most `max_wait` before one of three things is
//! guaranteed to have happened: (1) a leader claimed it — the leader is
//! live (it just CASed), epochs are capped at `max_epoch` ops, and the
//! accumulation window is bounded (and clamped below `max_wait`), so the
//! result arrives within one bounded epoch execution; (2) the publisher
//! won the leader CAS and drains itself; (3) the publisher reclaims the
//! still-`PUBLISHED` slot with a CAS and executes the op directly on the
//! inner index. The reclaim CAS and the leader's claim CAS race on the
//! same word, so exactly one wins — the op is never executed twice and
//! never lost. Backpressure is `OpError`-typed end to end: a shard whose
//! slots are all busy degrades to direct execution (no livelock, no
//! queue growth), and `PoolExhausted` from the run executor flows back
//! through the slot like any other per-op result.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use obs::{AtomicHistogram, ObsSource, Section, Timeline};

use crate::{shard_of, Key, KeyBuf, KeyRef, OpError, PersistentIndex, TreeStats, Value, WriteOp};

/// Submission slots per shard. Bounds one epoch's gather scan and the
/// number of writers a shard can park; beyond it writers degrade to
/// direct execution (counted, never blocked).
pub const SLOTS_PER_SHARD: usize = 64;

// Slot states. Result codes ride above DONE_BASE.
const FREE: u64 = 0;
const SETUP: u64 = 1;
const PUBLISHED: u64 = 2;
const CLAIMED: u64 = 3;
/// The leader panicked mid-epoch (a simulated crash in tests): the op was
/// claimed but its fate is unknown. The publisher re-raises the panic so
/// every epoch participant observes the crash, exactly as a real process
/// crash would take all of them down.
const POISONED: u64 = 4;
const DONE_BASE: u64 = 8;

/// Encodes a per-op outcome into a `DONE` state word.
fn done_code(r: &Result<(), OpError>) -> u64 {
    DONE_BASE
        + match r {
            Ok(()) => 0,
            Err(OpError::AlreadyExists) => 1,
            Err(OpError::NotFound) => 2,
            Err(OpError::PoolExhausted) => 3,
            Err(OpError::UnsupportedKey) => 4,
        }
}

/// Decodes a `DONE` state word back into the op outcome.
fn decode_done(state: u64) -> Result<(), OpError> {
    match state - DONE_BASE {
        0 => Ok(()),
        1 => Err(OpError::AlreadyExists),
        2 => Err(OpError::NotFound),
        3 => Err(OpError::PoolExhausted),
        _ => Err(OpError::UnsupportedKey),
    }
}

fn op_code(op: WriteOp) -> u64 {
    match op {
        WriteOp::Insert => 0,
        WriteOp::Update => 1,
        WriteOp::Upsert => 2,
        WriteOp::Remove => 3,
    }
}

fn decode_op(code: u64) -> WriteOp {
    match code {
        0 => WriteOp::Insert,
        1 => WriteOp::Update,
        2 => WriteOp::Upsert,
        _ => WriteOp::Remove,
    }
}

/// One cache-line-padded submission slot. All fields are plain atomics:
/// the state word's Release/Acquire transitions order the op fields, so
/// the protocol is safe Rust with no `UnsafeCell`.
#[repr(align(64))]
struct Slot {
    state: AtomicU64,
    key: AtomicU64,
    value: AtomicU64,
    op: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: AtomicU64::new(FREE),
            key: AtomicU64::new(0),
            value: AtomicU64::new(0),
            op: AtomicU64::new(0),
        }
    }
}

/// Per-shard combining state: the slot block, the leader flag, and a
/// round-robin ticket spreading publishers across the slot array.
struct Shard {
    slots: Vec<Slot>,
    /// Leader flag: 0 = free, 1 = a leader is draining. Padded into its
    /// own line by the surrounding `Slot` alignment.
    leader: AtomicU64,
    /// Slot-scan start ticket (reduces CAS collisions between publishers).
    ticket: AtomicU64,
    /// Grouping flag: 1 while a patient candidate is collecting a pile.
    /// Other publishers defer their self-election (bounded — see
    /// `DEFER_SPINS`) so the pile isn't stolen one rider at a time by
    /// instant electors.
    gathering: AtomicU64,
    /// Size of the last executed epoch — the occupancy signal behind the
    /// adaptive gather cadence (see `PATIENT_EVERY`): small piles mean
    /// few concurrent writers, so phases run less often and the solo
    /// path carries the traffic.
    last_epoch: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            slots: (0..SLOTS_PER_SHARD).map(|_| Slot::new()).collect(),
            leader: AtomicU64::new(0),
            ticket: AtomicU64::new(0),
            gathering: AtomicU64::new(0),
            last_epoch: AtomicU64::new(0),
        }
    }
}

/// Every N-th publication per shard is a *patient* election candidate
/// (see the patience comment in [`GroupCommit`]'s `write`): it yields a
/// few scheduler turns before volunteering, giving concurrent peers time
/// to publish ops that then coalesce into its epoch. This is the cadence
/// while piles are paying (`last_epoch >= PILE_WORTH`); shards whose
/// last pile was smaller gather `BACKOFF` times less often — a phase
/// costs a handful of scheduler round-trips, and a pile of one or two
/// ops doesn't amortise enough persist traffic to buy that back.
const PATIENT_EVERY: usize = 16;
/// Pile size at which a gather phase pays for its scheduler round-trips.
/// A pile of k ops touching L distinct leaves costs ≈ 2L + journal
/// persists, so the batch only beats k direct ops (~2k persists) when
/// k clearly exceeds L — and under a skewed-but-wide key distribution
/// (Zipfian θ 0.99 over a 200 K working set) a pile of 4 typically
/// spans nearly 4 leaves while a pile of 8 revisits its hot leaves.
/// Below this width the phase's round-trips buy nothing, so the shard
/// backs off to the slow cadence and the solo path carries the load.
const PILE_WORTH: u64 = 6;
/// Cadence divisor while piles are below `PILE_WORTH`.
const BACKOFF: usize = 4;
/// Spin count after which a patient candidate stops waiting and elects
/// itself regardless of pile growth (the yield cadence is one
/// `yield_now` per 64 spins, so this is a few scheduler turns).
const PATIENT_SPINS: u32 = 192;
/// Spin count after which a publisher stops deferring to an active
/// gatherer and elects itself anyway — the bound that keeps the
/// `gathering` flag advisory: a stalled or vanished gatherer delays
/// peers by a few yields, never blocks them.
const DEFER_SPINS: u32 = 384;

/// Tuning knobs for [`GroupCommit`].
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitConfig {
    /// Number of combining shards. Routing uses [`shard_of`], the same
    /// SplitMix64 partition as [`crate::ShardedIndex`] — give both layers
    /// the same count and every epoch lands wholly inside one tree shard,
    /// so epochs execute in parallel across shards without cross-shard
    /// partitioning work.
    pub shards: usize,
    /// Epoch size cap: a leader stops gathering at this many ops, which
    /// bounds epoch execution time and therefore every waiter's delay
    /// behind a live leader. Clamped to [`SLOTS_PER_SHARD`].
    pub max_epoch: usize,
    /// Flush deadline: the longest a published op may sit unclaimed
    /// before its publisher reclaims it and executes directly. This is
    /// the latency cap the p99 gate in `repro group-scale` checks against.
    pub max_wait: Duration,
    /// Epoch accumulation window — the "group" in group commit. Once a
    /// gather holds at least one op, the leader keeps claiming arrivals
    /// for up to this long (or until `max_epoch`) before executing. A
    /// leader that drains faster than writers publish would otherwise
    /// execute nothing but singleton epochs and coalesce no persists;
    /// the window trades that much latency on every epoch for multi-op
    /// epochs whenever writers are actually concurrent. Zero disables
    /// it. Keep it well under `max_wait`, or publishers start reclaiming
    /// ops a lingering leader was about to claim.
    pub accumulate: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> GroupCommitConfig {
        GroupCommitConfig {
            shards: 1,
            max_epoch: SLOTS_PER_SHARD,
            max_wait: Duration::from_micros(500),
            accumulate: Duration::from_micros(2),
        }
    }
}

/// Cumulative counters of the combining layer, snapshotted by
/// [`GroupCommit::commit_stats`] and exported via the `commit` obs
/// section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Epochs executed (leader drains that carried at least one op).
    pub epochs: u64,
    /// Successful leader elections (CAS acquisitions of a shard's flag).
    pub leader_elections: u64,
    /// Ops that were coalesced into an epoch.
    pub ops_coalesced: u64,
    /// Ops executed directly because every slot in the shard was busy.
    pub ops_direct_full: u64,
    /// Ops that ran solo: no leader, no gather phase, and no pile to
    /// join, so the op skipped the slot protocol entirely and executed
    /// at direct-path cost (the combining layer's common case between
    /// gather phases).
    pub ops_solo: u64,
    /// Ops reclaimed by their publisher after `max_wait` and executed
    /// directly (stalled-leader escape hatch).
    pub ops_reclaimed: u64,
    /// Epochs cut short by the `max_epoch` cap.
    pub epochs_capped: u64,
}

/// Flat-combining group-commit front-end over any [`PersistentIndex`]
/// (module docs: slot protocol, leader election, latency bound).
///
/// Point writes (`insert`/`update`/`upsert`/`remove`) are published into
/// per-shard slots and executed in coalesced epochs through the inner
/// index's [`PersistentIndex::write_batch`]. Reads, scans, and the
/// already-batched entry points (`load_sorted`, `insert_batch`,
/// `write_batch`) bypass the queue and hit the inner index directly, as
/// do the byte-key `*_k` methods (coalescing targets the u64 point-write
/// hot path; byte-key workloads keep their existing paths).
pub struct GroupCommit<T> {
    inner: T,
    cfg: GroupCommitConfig,
    shards: Vec<Shard>,
    // -- metrics (lock-free; exported via the `commit` obs section) --
    epochs: AtomicU64,
    leader_elections: AtomicU64,
    ops_coalesced: AtomicU64,
    ops_direct_full: AtomicU64,
    ops_solo: AtomicU64,
    ops_reclaimed: AtomicU64,
    epochs_capped: AtomicU64,
    epoch_size: AtomicHistogram,
    epoch_wait_ns: AtomicHistogram,
    queue_depth: AtomicHistogram,
    timeline: Timeline,
    epoch_start: Instant,
    last_tick_ms: AtomicU64,
    /// Set when a leader panicked mid-epoch (a simulated crash in the
    /// persist-trap tests). Like mutex poisoning: the inner index may be
    /// left holding leaf locks, so every subsequent combined write panics
    /// immediately instead of deadlocking on them — exactly the "whole
    /// process dies" semantics a real crash would have.
    crashed: AtomicBool,
}

/// Timeline tick granularity for the queue-depth series.
const TICK_MS: u64 = 100;

impl<T: PersistentIndex> GroupCommit<T> {
    /// Wraps `inner` with a combining front-end.
    pub fn new(inner: T, cfg: GroupCommitConfig) -> GroupCommit<T> {
        let cfg = GroupCommitConfig {
            shards: cfg.shards.max(1),
            max_epoch: cfg.max_epoch.clamp(1, SLOTS_PER_SHARD),
            max_wait: cfg.max_wait,
            // A window at or above the flush deadline would make every
            // lingering leader race its own publishers' reclaims. And on
            // a single-CPU host the window is pure waste: spinning the
            // only core can't admit riders, it just delays the epoch.
            accumulate: if std::thread::available_parallelism().is_ok_and(|n| n.get() <= 1) {
                Duration::ZERO
            } else {
                cfg.accumulate.min(cfg.max_wait / 2)
            },
        };
        GroupCommit {
            shards: (0..cfg.shards).map(|_| Shard::new()).collect(),
            inner,
            cfg,
            epochs: AtomicU64::new(0),
            leader_elections: AtomicU64::new(0),
            ops_coalesced: AtomicU64::new(0),
            ops_direct_full: AtomicU64::new(0),
            ops_solo: AtomicU64::new(0),
            ops_reclaimed: AtomicU64::new(0),
            epochs_capped: AtomicU64::new(0),
            epoch_size: AtomicHistogram::new(),
            epoch_wait_ns: AtomicHistogram::new(),
            queue_depth: AtomicHistogram::new(),
            timeline: Timeline::new(256),
            epoch_start: Instant::now(),
            last_tick_ms: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// Panics if an earlier epoch crashed (see the `crashed` field).
    fn check_crashed(&self) {
        if self.crashed.load(Ordering::Acquire) {
            panic!("group commit poisoned by an earlier epoch crash");
        }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The active configuration (post-clamping).
    pub fn config(&self) -> &GroupCommitConfig {
        &self.cfg
    }

    /// Cumulative combining counters.
    pub fn commit_stats(&self) -> CommitStats {
        CommitStats {
            epochs: self.epochs.load(Ordering::Relaxed),
            leader_elections: self.leader_elections.load(Ordering::Relaxed),
            ops_coalesced: self.ops_coalesced.load(Ordering::Relaxed),
            ops_direct_full: self.ops_direct_full.load(Ordering::Relaxed),
            ops_solo: self.ops_solo.load(Ordering::Relaxed),
            ops_reclaimed: self.ops_reclaimed.load(Ordering::Relaxed),
            epochs_capped: self.epochs_capped.load(Ordering::Relaxed),
        }
    }

    /// Distribution of per-op queue wait (publish → result), nanoseconds.
    pub fn wait_histogram(&self) -> obs::Histogram {
        self.epoch_wait_ns.snapshot()
    }

    /// Distribution of epoch sizes (ops per executed epoch).
    pub fn epoch_histogram(&self) -> obs::Histogram {
        self.epoch_size.snapshot()
    }

    /// The queue-depth-over-time series as JSON (windowed p50/p99 of the
    /// per-epoch drained depth, 100 ms windows).
    pub fn depth_timeline_json(&self) -> obs::Json {
        self.timeline.series_json()
    }

    /// Executes one op directly on the inner index (bypass paths). A
    /// panic here (a simulated crash in the persist-trap tests) poisons
    /// the whole layer before re-raising, exactly like a crash inside a
    /// draining epoch: the inner index may be left holding leaf locks,
    /// and every writer — queued or direct — must stop touching it.
    fn apply_direct(&self, key: Key, value: Value, op: WriteOp) -> Result<(), OpError> {
        self.check_crashed(); // the entry check may predate the crash
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match op {
            WriteOp::Insert => self.inner.insert(key, value),
            WriteOp::Update => self.inner.update(key, value),
            WriteOp::Upsert => self.inner.upsert(key, value),
            WriteOp::Remove => self.inner.remove(key),
        })) {
            Ok(r) => r,
            Err(cause) => {
                self.crashed.store(true, Ordering::Release);
                std::panic::resume_unwind(cause);
            }
        }
    }

    /// Publishes one write into its shard's slot block and waits for the
    /// coalesced result — becoming leader itself whenever the shard has
    /// none. This is the whole writer-side protocol.
    fn write(&self, key: Key, value: Value, op: WriteOp) -> Result<(), OpError> {
        self.check_crashed();
        let si = shard_of(key, self.shards.len());
        let sh = &self.shards[si];
        let start = sh.ticket.fetch_add(1, Ordering::Relaxed) as usize;
        // Every `every`-th ticket is a *patient* gather candidate (see
        // the election-patience comment below); it raises the shard's
        // `gathering` flag before publishing so peers arriving during
        // its window join the pile instead of running solo. The cadence
        // adapts to measured occupancy: piles below `PILE_WORTH` mean
        // the phase tax outweighs the persist savings, so phases thin
        // out until concurrency returns.
        let every = if sh.last_epoch.load(Ordering::Relaxed) >= PILE_WORTH {
            PATIENT_EVERY
        } else {
            PATIENT_EVERY * BACKOFF
        };
        let gatherer = start.is_multiple_of(every)
            && sh
                .gathering
                .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok();
        // Solo bypass: with no gather phase collecting and this op not a
        // gather candidate itself, there is nobody to coalesce with —
        // publishing would only buy a slot round-trip whose epoch holds
        // one op. Instead, take the shard's leader flag directly and run
        // as an implicit singleton epoch: no slot, no scan, no batch
        // allocation, just the op at per-op cost plus two atomics. The
        // flag matters — every write into the inner index must run under
        // some shard's executor flag so a simulated crash mid-op can
        // never strand a leaf lock that a *concurrent* direct writer is
        // already spinning on (the poison protocol can only interrupt
        // writers that are parked in slots or not yet executing). If the
        // flag is taken a leader is draining; publish and ride its epoch.
        // The gathering check is racy by design: a phase starting a
        // moment later simply misses this op — lost coalescing
        // opportunity, never lost correctness.
        if !gatherer
            && sh.gathering.load(Ordering::Relaxed) == 0
            && sh
                .leader
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            self.ops_solo.fetch_add(1, Ordering::Relaxed);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.apply_direct(key, value, op)
            }));
            sh.leader.store(0, Ordering::Release);
            match r {
                Ok(r) => return r,
                // `apply_direct` already poisoned the layer; release the
                // flag (done above) and propagate the crash.
                Err(cause) => std::panic::resume_unwind(cause),
            }
        }
        // Acquire a slot: one bounded scan from a rotating start. A full
        // block means SLOTS_PER_SHARD writers are already parked here —
        // degrade to direct execution rather than block (backpressure
        // without livelock; the op still pays at most the per-op price).
        let mut slot = None;
        for i in 0..SLOTS_PER_SHARD {
            let s = &sh.slots[(start + i) % SLOTS_PER_SHARD];
            if s.state.load(Ordering::Relaxed) == FREE
                && s.state
                    .compare_exchange(FREE, SETUP, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                slot = Some(s);
                break;
            }
        }
        let Some(slot) = slot else {
            if gatherer {
                sh.gathering.store(0, Ordering::Relaxed);
            }
            self.ops_direct_full.fetch_add(1, Ordering::Relaxed);
            return self.apply_direct(key, value, op);
        };
        slot.key.store(key, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.op.store(op_code(op), Ordering::Relaxed);
        let published_at = Instant::now();
        slot.state.store(PUBLISHED, Ordering::Release);

        // Election patience: a gatherer that volunteers on its first
        // loop iteration becomes its own combiner every time — on a
        // single CPU each thread then services itself for a whole
        // quantum and nothing ever coalesces, no matter how many writer
        // threads exist. So the gatherer holds back for a few yield
        // cycles while peers get scheduled and publish into its pile
        // (the solo bypass above routes them here whenever the
        // `gathering` flag is up), then gathers the whole pile into one
        // epoch. Patience is periodic rather than universal on purpose —
        // an always-patient shard pays a scheduler round-trip per op
        // (ruinous when cores are scarce), while periodic grouping
        // coalesces the bulk of the persist traffic and leaves most ops
        // on the solo path. Solo writers lose almost nothing: with no
        // runnable peers the gatherer's yields return immediately.
        //
        // Staged patience: the gatherer probes the shard at each yield
        // boundary and considers its pile complete as soon as it stops
        // growing (two consecutive probes agreeing, with at least one
        // rider aboard) — `PATIENT_SPINS` caps the wait either way.
        // Ordinary publications skip all of this and may elect at once.
        let mut patience_done = !gatherer;
        let mut last_pending = 0usize;

        let clear_gather = || {
            if gatherer {
                sh.gathering.store(0, Ordering::Relaxed);
            }
        };

        let mut spins = 0u32;
        loop {
            let st = slot.state.load(Ordering::Acquire);
            if st < DONE_BASE && st != POISONED && self.crashed.load(Ordering::Acquire) {
                // A leader crashed in some other epoch. If our op is still
                // unclaimed, withdraw it; either way, propagate the crash
                // rather than touch an index whose locks may be stranded.
                let _ = slot.state.compare_exchange(
                    PUBLISHED,
                    FREE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                clear_gather();
                panic!("group commit poisoned by an earlier epoch crash");
            }
            if st >= DONE_BASE {
                slot.state.store(FREE, Ordering::Release);
                clear_gather();
                self.epoch_wait_ns.record(published_at.elapsed().as_nanos() as u64);
                return decode_done(st);
            }
            if st == POISONED {
                // The leader crashed while executing our epoch. Release
                // the slot and propagate the crash: the op's fate is
                // whatever the storage layer made durable (atomically
                // present or absent, per the run executor's contract).
                slot.state.store(FREE, Ordering::Release);
                clear_gather();
                panic!("group-commit epoch crashed during execution");
            }
            if st == PUBLISHED {
                // No result yet and the op is unclaimed: volunteer — once
                // this candidate's own patience is spent, and deferring
                // (boundedly) to an active gatherer building a pile.
                let defer = !gatherer
                    && spins < DEFER_SPINS
                    && sh.gathering.load(Ordering::Relaxed) != 0;
                if patience_done
                    && !defer
                    && sh
                        .leader
                        .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    self.leader_elections.fetch_add(1, Ordering::Relaxed);
                    self.drain(si);
                    sh.leader.store(0, Ordering::Release);
                    // The pile (if this was the gatherer) is executed and
                    // distributed; stop deferring peers immediately.
                    clear_gather();
                    continue; // own op was drained (or reclaim-raced); re-check
                }
                // A leader exists but hasn't claimed us within the flush
                // deadline (descheduled, or several capped epochs ahead of
                // us): reclaim the slot and execute directly. The CAS
                // races the leader's claim; exactly one side wins.
                if published_at.elapsed() > self.cfg.max_wait
                    && slot
                        .state
                        .compare_exchange(PUBLISHED, FREE, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    self.ops_reclaimed.fetch_add(1, Ordering::Relaxed);
                    clear_gather();
                    self.epoch_wait_ns.record(published_at.elapsed().as_nanos() as u64);
                    return self.apply_direct(key, value, op);
                }
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                if !patience_done {
                    let pending = sh
                        .slots
                        .iter()
                        .filter(|s| s.state.load(Ordering::Relaxed) == PUBLISHED)
                        .count();
                    if (pending >= 2 && pending == last_pending) || spins >= PATIENT_SPINS {
                        patience_done = true;
                    }
                    last_pending = pending;
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// One claim pass over a shard's slot block: CASes every `PUBLISHED`
    /// slot to `CLAIMED` and appends its op to the epoch, stopping at
    /// `max_epoch`. Returns whether anything new was claimed.
    fn claim_pass(
        &self,
        sh: &Shard,
        batch: &mut Vec<(Key, Value, WriteOp)>,
        owners: &mut Vec<usize>,
    ) -> bool {
        let mut found_new = false;
        for (i, s) in sh.slots.iter().enumerate() {
            if batch.len() >= self.cfg.max_epoch {
                break;
            }
            if s.state.load(Ordering::Relaxed) == PUBLISHED
                && s.state
                    .compare_exchange(PUBLISHED, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                batch.push((
                    s.key.load(Ordering::Relaxed),
                    s.value.load(Ordering::Relaxed),
                    decode_op(s.op.load(Ordering::Relaxed)),
                ));
                owners.push(i);
                found_new = true;
            }
        }
        found_new
    }

    /// Leader body: gather, accumulate, and execute **one** epoch from
    /// shard `si`. Runs with the shard's leader flag held.
    ///
    /// One epoch per election, deliberately. A leader that loops "until
    /// the shard is empty" turns into a serial servicer — its own next
    /// ops never publish while it leads, so at two threads the only
    /// other writer's op is always a singleton epoch and nothing ever
    /// coalesces. Bounded multi-wave phases (leader cedes a few turns,
    /// re-claims, repeats) were measured too: on a scarce-core host
    /// every slot-served op costs its publisher a scheduler round-trip,
    /// so raising the coalesced fraction past one thread-wide wave per
    /// phase lowered throughput at every thread count even as it
    /// improved persists/op. Stepping down after each epoch puts the
    /// leader back into the writer population; the next election
    /// happens after every participant has had a chance to republish,
    /// which is exactly the moment a gather can catch them all in one
    /// epoch.
    fn drain(&self, si: usize) {
        let sh = &self.shards[si];
        // Gather one epoch: claim every published slot, re-scanning
        // while new ops keep arriving, up to the epoch cap.
        let mut batch: Vec<(Key, Value, WriteOp)> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        loop {
            let found_new = self.claim_pass(sh, &mut batch, &mut owners);
            if batch.len() >= self.cfg.max_epoch {
                break;
            }
            if !found_new {
                break;
            }
            // Something arrived during the scan: one more pass picks
            // up stragglers publishing right now, growing the epoch.
        }
        if batch.is_empty() {
            return; // nothing published; step down
        }
        // Accumulation window: once a *group* is in hand, hold execution
        // briefly so peers whose next ops are mid-publish can still join
        // this epoch (module docs). Claimed ops can't be reclaimed — the
        // publisher's escape CAS expects `PUBLISHED` — so the window
        // delays riders, never loses them. Singleton gathers skip it: a
        // solo writer would pay the window on every op for nothing.
        if batch.len() > 1 && !self.cfg.accumulate.is_zero() && batch.len() < self.cfg.max_epoch
        {
            let t0 = Instant::now();
            while batch.len() < self.cfg.max_epoch && t0.elapsed() < self.cfg.accumulate {
                self.claim_pass(sh, &mut batch, &mut owners);
                std::hint::spin_loop();
            }
        }
        if batch.len() >= self.cfg.max_epoch {
            self.epochs_capped.fetch_add(1, Ordering::Relaxed);
        }

        // Execute: pre-sort stably by key carrying each element's slot
        // index, so results (aligned with the sorted batch) map back
        // to their owners. `write_batch`'s own stable sort is then the
        // identity permutation. Gather order defines submission order
        // for in-epoch duplicates: the first-gathered op wins.
        let mut order: Vec<usize> = (0..batch.len()).collect();
        order.sort_by_key(|&j| batch[j].0);
        let mut sorted: Vec<(Key, Value, WriteOp)> = order.iter().map(|&j| batch[j]).collect();
        let results = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if sorted.len() == 1 {
                // Singleton epoch: a one-op batch gains nothing from the
                // batched pipeline's per-leaf grouping, so dispatch it
                // through the inner index's single-op entry point — same
                // atomicity and persist count, a fraction of the setup.
                // Singletons are the combining layer's common case (every
                // op published between gather phases), so this is the
                // difference between a ~2× and a ~1.2× solo-writer tax.
                let (k, v, op) = sorted[0];
                vec![match op {
                    WriteOp::Insert => self.inner.insert(k, v),
                    WriteOp::Update => self.inner.update(k, v),
                    WriteOp::Upsert => self.inner.upsert(k, v),
                    WriteOp::Remove => self.inner.remove(k),
                }]
            } else {
                self.inner.write_batch(&mut sorted)
            }
        })) {
            Ok(r) => r,
            Err(cause) => {
                // Simulated crash (persist trap) inside the epoch:
                // poison the whole structure first (new and waiting
                // writers must not touch locks the unwinding executor
                // may have stranded), then every claimed slot (so the
                // epoch's publishers crash instead of spinning on
                // CLAIMED forever), release leadership, and re-raise.
                self.crashed.store(true, Ordering::Release);
                for &o in &owners {
                    sh.slots[o].state.store(POISONED, Ordering::Release);
                }
                sh.leader.store(0, Ordering::Release);
                std::panic::resume_unwind(cause);
            }
        };
        debug_assert_eq!(results.len(), sorted.len());
        for (j, res) in results.iter().enumerate() {
            sh.slots[owners[order[j]]]
                .state
                .store(done_code(res), Ordering::Release);
        }

        // Epoch bookkeeping.
        let n = batch.len() as u64;
        sh.last_epoch.store(n, Ordering::Relaxed);
        self.epochs.fetch_add(1, Ordering::Relaxed);
        self.ops_coalesced.fetch_add(n, Ordering::Relaxed);
        self.epoch_size.record(n);
        self.queue_depth.record(n);
        let t_ms = self.epoch_start.elapsed().as_millis() as u64;
        let last = self.last_tick_ms.load(Ordering::Relaxed);
        if t_ms.saturating_sub(last) >= TICK_MS
            && self
                .last_tick_ms
                .compare_exchange(last, t_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.timeline.tick(
                t_ms,
                &self.queue_depth.snapshot(),
                self.ops_coalesced.load(Ordering::Relaxed),
            );
        }
    }
}

impl<T: PersistentIndex> PersistentIndex for GroupCommit<T> {
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.write(key, value, WriteOp::Insert)
    }
    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.write(key, value, WriteOp::Update)
    }
    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.write(key, value, WriteOp::Upsert)
    }
    fn remove(&self, key: Key) -> Result<(), OpError> {
        self.write(key, 0, WriteOp::Remove)
    }
    fn find(&self, key: Key) -> Option<Value> {
        self.inner.find(key) // reads bypass the queue
    }
    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        self.inner.scan_n(start, n, out)
    }
    fn load_sorted(&self, pairs: &[(Key, Value)]) -> Result<(), OpError> {
        self.inner.load_sorted(pairs) // already batched: pass through
    }
    fn insert_batch(&self, batch: &mut [(Key, Value)]) -> Vec<Result<(), OpError>> {
        self.inner.insert_batch(batch)
    }
    fn write_batch(&self, batch: &mut [(Key, Value, WriteOp)]) -> Vec<Result<(), OpError>> {
        self.inner.write_batch(batch)
    }
    fn supports_var_keys(&self) -> bool {
        self.inner.supports_var_keys()
    }
    fn insert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.inner.insert_k(key, value)
    }
    fn update_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.inner.update_k(key, value)
    }
    fn upsert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.inner.upsert_k(key, value)
    }
    fn remove_k(&self, key: KeyRef<'_>) -> Result<(), OpError> {
        self.inner.remove_k(key)
    }
    fn find_k(&self, key: KeyRef<'_>) -> Option<Value> {
        self.inner.find_k(key)
    }
    fn scan_k(&self, start: KeyRef<'_>, n: usize, out: &mut Vec<(KeyBuf, Value)>) -> usize {
        self.inner.scan_k(start, n, out)
    }
    fn load_sorted_k(&self, pairs: &[(KeyBuf, Value)]) -> Result<(), OpError> {
        self.inner.load_sorted_k(pairs)
    }
    fn insert_batch_k(&self, batch: &mut [(KeyBuf, Value)]) -> Vec<Result<(), OpError>> {
        self.inner.insert_batch_k(batch)
    }
    fn name(&self) -> &'static str {
        "GroupCommit"
    }
    fn supports_concurrency(&self) -> bool {
        true
    }
    fn stats(&self) -> TreeStats {
        self.inner.stats()
    }
    fn htm_abort_ratio(&self) -> Option<f64> {
        self.inner.htm_abort_ratio()
    }
}

impl<T: PersistentIndex> ObsSource for GroupCommit<T> {
    /// A `commit` counter section (epochs, elections, coalesced/direct/
    /// reclaimed ops) and a `commit_hist` section with the epoch-size,
    /// queue-wait and queue-depth distributions. The queue-depth-over-
    /// time series is exposed separately via
    /// [`GroupCommit::depth_timeline_json`] (timelines are rendered by
    /// benches, not the registry — same split as PR 9's `trace-scale`).
    fn obs_sections(&self) -> Vec<(String, Section)> {
        let s = self.commit_stats();
        vec![
            (
                "commit".to_string(),
                Section::Counters(vec![
                    ("epochs".into(), s.epochs),
                    ("leader_elections".into(), s.leader_elections),
                    ("ops_coalesced".into(), s.ops_coalesced),
                    ("ops_direct_full".into(), s.ops_direct_full),
                    ("ops_solo".into(), s.ops_solo),
                    ("ops_reclaimed".into(), s.ops_reclaimed),
                    ("epochs_capped".into(), s.epochs_capped),
                ]),
            ),
            (
                "commit_hist".to_string(),
                Section::Latencies(vec![
                    ("epoch_size".into(), self.epoch_size.snapshot()),
                    ("epoch_wait_ns".into(), self.epoch_wait_ns.snapshot()),
                    ("queue_depth".into(), self.queue_depth.snapshot()),
                ]),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};

    /// A map-backed inner index that also counts write_batch calls, so
    /// the tests can see coalescing happen.
    struct MapIndex {
        map: Mutex<BTreeMap<Key, Value>>,
        batches: AtomicU64,
        batched_ops: AtomicU64,
    }

    impl MapIndex {
        fn new() -> MapIndex {
            MapIndex {
                map: Mutex::new(BTreeMap::new()),
                batches: AtomicU64::new(0),
                batched_ops: AtomicU64::new(0),
            }
        }
    }

    impl PersistentIndex for MapIndex {
        fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.map.lock().unwrap();
            if m.contains_key(&key) {
                return Err(OpError::AlreadyExists);
            }
            m.insert(key, value);
            Ok(())
        }
        fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.map.lock().unwrap();
            m.get_mut(&key).map(|v| *v = value).ok_or(OpError::NotFound)
        }
        fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
            self.map.lock().unwrap().insert(key, value);
            Ok(())
        }
        fn remove(&self, key: Key) -> Result<(), OpError> {
            self.map.lock().unwrap().remove(&key).map(|_| ()).ok_or(OpError::NotFound)
        }
        fn find(&self, key: Key) -> Option<Value> {
            self.map.lock().unwrap().get(&key).copied()
        }
        fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
            out.clear();
            out.extend(self.map.lock().unwrap().range(start..).take(n).map(|(k, v)| (*k, *v)));
            out.len()
        }
        fn write_batch(&self, batch: &mut [(Key, Value, WriteOp)]) -> Vec<Result<(), OpError>> {
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.batched_ops.fetch_add(batch.len() as u64, Ordering::Relaxed);
            batch.sort_by_key(|p| p.0);
            batch
                .iter()
                .map(|&(k, v, op)| match op {
                    WriteOp::Insert => self.insert(k, v),
                    WriteOp::Update => self.update(k, v),
                    WriteOp::Upsert => self.upsert(k, v),
                    WriteOp::Remove => self.remove(k),
                })
                .collect()
        }
        fn name(&self) -> &'static str {
            "Map"
        }
        fn stats(&self) -> TreeStats {
            TreeStats {
                entries: self.map.lock().unwrap().len() as u64,
                ..TreeStats::default()
            }
        }
    }

    #[test]
    fn single_thread_ops_complete_via_self_election() {
        let gc = GroupCommit::new(MapIndex::new(), GroupCommitConfig::default());
        for k in 0..100u64 {
            gc.insert(k, k * 10).unwrap();
        }
        assert_eq!(gc.insert(5, 0), Err(OpError::AlreadyExists));
        gc.update(7, 77).unwrap();
        assert_eq!(gc.update(1000, 0), Err(OpError::NotFound));
        gc.remove(3).unwrap();
        assert_eq!(gc.remove(3), Err(OpError::NotFound));
        assert_eq!(gc.find(7), Some(77));
        assert_eq!(gc.find(3), None);
        let s = gc.commit_stats();
        // Every op is accounted for exactly once: coalesced into an
        // epoch, run solo (no combining opportunity), or on one of the
        // two escape hatches.
        assert_eq!(s.ops_coalesced + s.ops_direct_full + s.ops_solo + s.ops_reclaimed, 105);
        assert!(s.epochs > 0 && s.leader_elections > 0);
        // A lone writer's epochs are all singletons, and a singleton
        // epoch dispatches through the inner's single-op entry point —
        // the batched pipeline must never see a one-op batch.
        assert_eq!(gc.inner().batched_ops.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn concurrent_writers_coalesce_and_match_an_oracle() {
        let gc = Arc::new(GroupCommit::new(
            MapIndex::new(),
            GroupCommitConfig { shards: 2, ..GroupCommitConfig::default() },
        ));
        const THREADS: u64 = 8;
        const PER: u64 = 500;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let gc = Arc::clone(&gc);
                s.spawn(move || {
                    for i in 0..PER {
                        let k = t * PER + i;
                        gc.insert(k, k).unwrap();
                        if i % 3 == 0 {
                            gc.upsert(k, k + 1).unwrap();
                        }
                        if i % 5 == 0 {
                            gc.remove(k).unwrap();
                        }
                    }
                });
            }
        });
        let mut expect = BTreeMap::new();
        for t in 0..THREADS {
            for i in 0..PER {
                let k = t * PER + i;
                expect.insert(k, k);
                if i % 3 == 0 {
                    expect.insert(k, k + 1);
                }
                if i % 5 == 0 {
                    expect.remove(&k);
                }
            }
        }
        for (&k, &v) in &expect {
            assert_eq!(gc.find(k), Some(v), "key {k}");
        }
        assert_eq!(gc.stats().entries, expect.len() as u64);
        let s = gc.commit_stats();
        assert!(s.epochs > 0);
        // Multi-op epoch formation is timing-dependent here (a fast inner
        // lets each writer self-elect before its peers publish); the
        // gated test below pins coalescing deterministically.
    }

    /// MapIndex whose `write_batch` blocks while the gate is closed, so a
    /// test can hold a leader mid-epoch while other writers publish.
    struct GatedIndex {
        inner: MapIndex,
        gate_open: std::sync::atomic::AtomicBool,
        executing: std::sync::atomic::AtomicBool,
    }

    impl GatedIndex {
        fn new() -> GatedIndex {
            GatedIndex {
                inner: MapIndex::new(),
                gate_open: std::sync::atomic::AtomicBool::new(false),
                executing: std::sync::atomic::AtomicBool::new(false),
            }
        }

        /// Announce an executor entry and block until the gate opens —
        /// shared by `write_batch` and `insert`, because a singleton
        /// epoch dispatches through the single-op entry point.
        fn wait_at_gate(&self) {
            self.executing.store(true, Ordering::Release);
            while !self.gate_open.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
    }

    impl PersistentIndex for GatedIndex {
        fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
            self.wait_at_gate();
            self.inner.insert(key, value)
        }
        fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
            self.inner.update(key, value)
        }
        fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
            self.inner.upsert(key, value)
        }
        fn remove(&self, key: Key) -> Result<(), OpError> {
            self.inner.remove(key)
        }
        fn find(&self, key: Key) -> Option<Value> {
            self.inner.find(key)
        }
        fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
            self.inner.scan_n(start, n, out)
        }
        fn write_batch(&self, batch: &mut [(Key, Value, WriteOp)]) -> Vec<Result<(), OpError>> {
            self.wait_at_gate();
            self.inner.write_batch(batch)
        }
        fn name(&self) -> &'static str {
            "Gated"
        }
        fn stats(&self) -> TreeStats {
            self.inner.stats()
        }
    }

    /// Deterministic coalescing: writer 0 self-elects and blocks inside
    /// the gated executor; three more writers publish meanwhile (they
    /// cannot lead — the flag is held — and cannot reclaim — `max_wait`
    /// is huge). When the gate opens, the still-leader's next gather pass
    /// MUST pick all three up as one multi-op epoch.
    #[test]
    fn blocked_leader_coalesces_waiting_writers_into_one_epoch() {
        let gc = Arc::new(GroupCommit::new(GatedIndex::new(), GroupCommitConfig {
            max_wait: Duration::from_secs(600),
            ..GroupCommitConfig::default()
        }));
        std::thread::scope(|s| {
            let leader = {
                let gc = Arc::clone(&gc);
                s.spawn(move || gc.insert(0, 0))
            };
            // Wait until writer 0 is leader and inside the executor.
            while !gc.inner().executing.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let waiters: Vec<_> = (1..=3u64)
                .map(|k| {
                    let gc = Arc::clone(&gc);
                    s.spawn(move || gc.insert(k, k * 10))
                })
                .collect();
            // Let all three publish: they only ever spin on their slots
            // (leader flag held, reclaim disabled), so once spawned the
            // publish store is microseconds away; give it real time.
            std::thread::sleep(Duration::from_millis(100));
            gc.inner().gate_open.store(true, Ordering::Release);
            leader.join().unwrap().unwrap();
            for w in waiters {
                w.join().unwrap().unwrap();
            }
        });
        for k in 1..=3u64 {
            assert_eq!(gc.find(k), Some(k * 10));
        }
        let s = gc.commit_stats();
        assert_eq!(s.ops_coalesced, 4, "{s:?}");
        assert!(
            gc.epoch_histogram().max() >= 3,
            "blocked leader failed to coalesce the waiting writers: {s:?}"
        );
    }

    #[test]
    fn obs_sections_export_commit_counters() {
        let gc = GroupCommit::new(MapIndex::new(), GroupCommitConfig::default());
        gc.insert(1, 1).unwrap();
        let sections = gc.obs_sections();
        let names: Vec<&str> = sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["commit", "commit_hist"]);
        let Section::Counters(items) = &sections[0].1 else { panic!("counters") };
        assert!(items.iter().any(|(n, v)| n == "ops_coalesced" && *v == 1));
        assert!(items.iter().any(|(n, v)| n == "leader_elections" && *v >= 1));
    }
}
