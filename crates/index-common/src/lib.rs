//! # index-common — shared machinery for every persistent tree
//!
//! The paper's evaluation levels the playing field: *"The structures for all
//! the internal nodes are the same in all implementations. The only
//! difference is the design of the leaf node."* (§6). This crate is that
//! shared layer:
//!
//! * [`Key`] / [`Value`] — the 8-byte key-value model every tree stores.
//! * [`KeyBuf`] / [`KeyRef`] / [`KeyCodec`] — the byte-comparable
//!   variable-length key layer over it: typed keys map into lexicographic
//!   byte strings through an order-preserving codec ([`U64Key`] for the
//!   8-byte model), and every index API has `*_k` byte-key counterparts.
//! * [`InnerIndex`] — the volatile (DRAM) internal-node tree mapping keys to
//!   leaf-node offsets in persistent memory. It offers the two HTM functions
//!   of the paper's Table 2 that concern internal nodes —
//!   `htmTreeTraverse` ([`InnerIndex::traverse_tm`]) and `htmTreeUpdate`
//!   ([`InnerIndex::tree_update`]) — plus a sequential traversal for
//!   single-threaded phases and a bottom-up bulk build for recovery.
//! * [`PersistentIndex`] — the operation interface shared by RNTree and all
//!   baselines, including conditional-write semantics (§3.3).
//!
//! Internal nodes live in DRAM on purpose (paper §4): rebalancing them needs
//! no persistence, HTM sections over them never flush, and recovery
//! reconstructs them from the leaf chain.

#![deny(missing_docs)]

mod combine;
mod inner;
mod instrument;
mod key;
mod sharded;
mod traits;

pub use combine::{CommitStats, GroupCommit, GroupCommitConfig, SLOTS_PER_SHARD};
pub use inner::{DescentStats, InnerIndex, INNER_FANOUT};
pub use instrument::Instrumented;
pub use key::{key_head, lcp, KeyBuf, KeyCodec, KeyRef, U64Key, MAX_KEY_LEN};
pub use sharded::{shard_of, shard_of_bytes, ShardedIndex};
pub use traits::{OpError, PersistentIndex, RecoverableIndex, TreeStats, WriteOp};

/// Key type: 64-bit, as in the paper's YCSB-style evaluation.
pub type Key = u64;

/// Value type: 64-bit (a payload word or a pointer to out-of-line data).
pub type Value = u64;

/// Tag bit marking a child reference as a persistent-leaf offset rather
/// than a DRAM inner-node pointer.
const LEAF_TAG: u64 = 1 << 63;

/// Encodes a persistent leaf offset as a child reference.
#[inline]
pub fn leaf_ref(off: u64) -> u64 {
    debug_assert_eq!(off & LEAF_TAG, 0, "leaf offset too large");
    off | LEAF_TAG
}

/// True if a child reference points at a persistent leaf.
#[inline]
pub fn is_leaf_ref(r: u64) -> bool {
    r & LEAF_TAG != 0
}

/// Extracts the leaf offset from a leaf child reference.
#[inline]
pub fn leaf_off(r: u64) -> u64 {
    debug_assert!(is_leaf_ref(r));
    r & !LEAF_TAG
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_ref_roundtrip() {
        let r = leaf_ref(4096);
        assert!(is_leaf_ref(r));
        assert_eq!(leaf_off(r), 4096);
        assert!(!is_leaf_ref(4096));
    }
}
