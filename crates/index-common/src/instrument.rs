//! Op-latency instrumentation at the [`PersistentIndex`] layer.
//!
//! [`Instrumented`] wraps *any* index — RNTree, a baseline, a
//! `ShardedIndex`, an `Arc<dyn PersistentIndex>` — and records each
//! operation's wall-clock latency into a shared `obs::OpHistograms`
//! through the zero-cost-when-disabled `obs::Recorder` handle. Every
//! tree gets per-op p50/p90/p99/p999 for free; no tree contains any
//! timing code of its own.

use std::sync::Arc;

use obs::{ObsSource, OpHistograms, OpType, Recorder, Section};

use crate::{Key, KeyBuf, KeyRef, OpError, PersistentIndex, TreeStats, Value};

/// A [`PersistentIndex`] wrapper that records per-op latency.
///
/// With a disabled recorder (the default construction) every operation
/// pays one branch on a `None`; with an enabled recorder, sampled
/// operations (default 1-in-8 per thread) pay two `Instant::now()`
/// calls and two relaxed `fetch_add`s.
pub struct Instrumented<T> {
    inner: T,
    rec: Recorder,
}

impl<T: PersistentIndex> Instrumented<T> {
    /// Wraps `inner` with an explicit recorder.
    pub fn new(inner: T, rec: Recorder) -> Instrumented<T> {
        Instrumented { inner, rec }
    }

    /// Wraps `inner` with a fresh histogram set and returns both; the
    /// caller keeps the histograms for snapshotting/registration.
    pub fn with_histograms(inner: T) -> (Instrumented<T>, Arc<OpHistograms>) {
        let hists = Arc::new(OpHistograms::new());
        (Instrumented { inner, rec: Recorder::new(Arc::clone(&hists)) }, hists)
    }

    /// The wrapped index.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The recorder handle.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    #[inline]
    fn timed<R>(&self, op: OpType, f: impl FnOnce(&T) -> R) -> R {
        match self.rec.start() {
            Some(t0) => {
                let r = f(&self.inner);
                self.rec.finish(op, t0);
                r
            }
            None => f(&self.inner),
        }
    }
}

impl<T: PersistentIndex> PersistentIndex for Instrumented<T> {
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Insert, |t| t.insert(key, value))
    }

    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Update, |t| t.update(key, value))
    }

    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Upsert, |t| t.upsert(key, value))
    }

    fn remove(&self, key: Key) -> Result<(), OpError> {
        self.timed(OpType::Remove, |t| t.remove(key))
    }

    fn find(&self, key: Key) -> Option<Value> {
        self.timed(OpType::Search, |t| t.find(key))
    }

    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        self.timed(OpType::Scan, |t| t.scan_n(start, n, out))
    }

    fn load_sorted(&self, pairs: &[(Key, Value)]) -> Result<(), OpError> {
        self.timed(OpType::LoadSorted, |t| t.load_sorted(pairs))
    }

    fn insert_batch(&self, batch: &mut [(Key, Value)]) -> Vec<Result<(), OpError>> {
        self.timed(OpType::InsertBatch, |t| t.insert_batch(batch))
    }

    fn supports_var_keys(&self) -> bool {
        self.inner.supports_var_keys()
    }

    fn insert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Insert, |t| t.insert_k(key, value))
    }

    fn update_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Update, |t| t.update_k(key, value))
    }

    fn upsert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Upsert, |t| t.upsert_k(key, value))
    }

    fn remove_k(&self, key: KeyRef<'_>) -> Result<(), OpError> {
        self.timed(OpType::Remove, |t| t.remove_k(key))
    }

    fn find_k(&self, key: KeyRef<'_>) -> Option<Value> {
        self.timed(OpType::Search, |t| t.find_k(key))
    }

    fn scan_k(&self, start: KeyRef<'_>, n: usize, out: &mut Vec<(KeyBuf, Value)>) -> usize {
        self.timed(OpType::Scan, |t| t.scan_k(start, n, out))
    }

    fn load_sorted_k(&self, pairs: &[(KeyBuf, Value)]) -> Result<(), OpError> {
        self.timed(OpType::LoadSorted, |t| t.load_sorted_k(pairs))
    }

    fn insert_batch_k(&self, batch: &mut [(KeyBuf, Value)]) -> Vec<Result<(), OpError>> {
        self.timed(OpType::InsertBatch, |t| t.insert_batch_k(batch))
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn supports_concurrency(&self) -> bool {
        self.inner.supports_concurrency()
    }

    fn stats(&self) -> TreeStats {
        self.inner.stats()
    }

    fn htm_abort_ratio(&self) -> Option<f64> {
        self.inner.htm_abort_ratio()
    }
}

impl<T: PersistentIndex> ObsSource for Instrumented<T> {
    /// An `ops` section (per-op latency distributions, when the recorder
    /// is enabled) plus a `tree` counter section from the wrapped index.
    fn obs_sections(&self) -> Vec<(String, Section)> {
        let mut out = Vec::new();
        if let Some(hists) = self.rec.histograms() {
            let lat = OpType::ALL
                .iter()
                .map(|&op| (op.name().to_string(), hists.snapshot(op)))
                .collect();
            out.push(("ops".to_string(), Section::Latencies(lat)));
        }
        out.push(("tree".to_string(), Section::Counters(self.inner.stats().counters())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    struct MapIndex(Mutex<BTreeMap<Key, Value>>);

    impl PersistentIndex for MapIndex {
        fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.0.lock().unwrap();
            if m.contains_key(&key) {
                return Err(OpError::AlreadyExists);
            }
            m.insert(key, value);
            Ok(())
        }
        fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.0.lock().unwrap();
            if !m.contains_key(&key) {
                return Err(OpError::NotFound);
            }
            m.insert(key, value);
            Ok(())
        }
        fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
            self.0.lock().unwrap().insert(key, value);
            Ok(())
        }
        fn remove(&self, key: Key) -> Result<(), OpError> {
            self.0.lock().unwrap().remove(&key).map(|_| ()).ok_or(OpError::NotFound)
        }
        fn find(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
            out.clear();
            out.extend(self.0.lock().unwrap().range(start..).take(n).map(|(&k, &v)| (k, v)));
            out.len()
        }
        fn name(&self) -> &'static str {
            "Map"
        }
        fn stats(&self) -> TreeStats {
            TreeStats { entries: self.0.lock().unwrap().len() as u64, ..TreeStats::default() }
        }
    }

    #[test]
    fn records_per_op_latencies() {
        let (idx, hists) = Instrumented::with_histograms(MapIndex(Mutex::new(BTreeMap::new())));
        hists.set_sample_shift(0); // record every op
        for k in 0..50 {
            idx.insert(k, k).unwrap();
        }
        for k in 0..50 {
            assert_eq!(idx.find(k), Some(k));
        }
        idx.remove(7).unwrap();
        assert_eq!(hists.snapshot(OpType::Insert).count(), 50);
        assert_eq!(hists.snapshot(OpType::Search).count(), 50);
        assert_eq!(hists.snapshot(OpType::Remove).count(), 1);
        assert_eq!(hists.snapshot(OpType::Update).count(), 0);
        assert_eq!(idx.stats().entries, 49);
    }

    #[test]
    fn disabled_recorder_records_nothing_and_forwards() {
        let idx = Instrumented::new(MapIndex(Mutex::new(BTreeMap::new())), Recorder::disabled());
        idx.insert(1, 2).unwrap();
        assert_eq!(idx.find(1), Some(2));
        assert_eq!(idx.name(), "Map");
        // Only the tree section appears when latency recording is off.
        let sections = idx.obs_sections();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].0, "tree");
    }

    #[test]
    fn wraps_shared_handles_via_the_arc_impl() {
        let shared: Arc<dyn PersistentIndex> = Arc::new(MapIndex(Mutex::new(BTreeMap::new())));
        let (idx, hists) = Instrumented::with_histograms(shared);
        hists.set_sample_shift(0);
        idx.upsert(9, 9).unwrap();
        assert_eq!(hists.snapshot(OpType::Upsert).count(), 1);
    }
}
