//! Op-latency instrumentation at the [`PersistentIndex`] layer.
//!
//! [`Instrumented`] wraps *any* index — RNTree, a baseline, a
//! `ShardedIndex`, an `Arc<dyn PersistentIndex>` — and records each
//! operation's wall-clock latency into a shared `obs::OpHistograms`
//! through the zero-cost-when-disabled `obs::Recorder` handle. Every
//! tree gets per-op p50/p90/p99/p999 for free; no tree contains any
//! timing code of its own.

use std::sync::Arc;

use obs::{ObsSource, OpClass, OpHistograms, OpType, Recorder, Section, TraceRing};

use crate::{Key, KeyBuf, KeyRef, OpError, PersistentIndex, TreeStats, Value, WriteOp};

/// A [`PersistentIndex`] wrapper that records per-op latency, and —
/// when a [`TraceRing`] is attached — opens a sampled trace span around
/// each operation so the htm/nvm/tree layers' `note_*` hooks land in
/// one [`obs::OpSpan`] per traced op.
///
/// With a disabled recorder (the default construction) every operation
/// pays one branch on a `None`; with an enabled recorder, sampled
/// operations (default 1-in-8 per thread, counted independently per
/// [`OpClass`]) pay two `Instant::now()` calls and two relaxed
/// `fetch_add`s. Tracing is sampled separately (default 1-in-64).
pub struct Instrumented<T> {
    inner: T,
    rec: Recorder,
    trace: Option<Arc<TraceRing>>,
}

impl<T: PersistentIndex> Instrumented<T> {
    /// Wraps `inner` with an explicit recorder.
    pub fn new(inner: T, rec: Recorder) -> Instrumented<T> {
        Instrumented { inner, rec, trace: None }
    }

    /// Wraps `inner` with a fresh histogram set and returns both; the
    /// caller keeps the histograms for snapshotting/registration.
    pub fn with_histograms(inner: T) -> (Instrumented<T>, Arc<OpHistograms>) {
        let hists = Arc::new(OpHistograms::new());
        (
            Instrumented { inner, rec: Recorder::new(Arc::clone(&hists)), trace: None },
            hists,
        )
    }

    /// Attaches a trace ring: operations start opening sampled spans.
    pub fn with_tracing(mut self, ring: Arc<TraceRing>) -> Instrumented<T> {
        self.trace = Some(ring);
        self
    }

    /// The wrapped index.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The recorder handle.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// The attached trace ring, if any.
    pub fn trace_ring(&self) -> Option<&Arc<TraceRing>> {
        self.trace.as_ref()
    }

    #[inline]
    fn timed<R>(&self, op: OpType, f: impl FnOnce(&T) -> R) -> R {
        let began = match &self.trace {
            Some(ring) => obs::span_begin(op, ring.sample_shift()),
            None => false,
        };
        let r = match self.rec.start_op(op) {
            Some(t0) => {
                let r = f(&self.inner);
                self.rec.finish(op, t0);
                r
            }
            None => f(&self.inner),
        };
        if began {
            if let Some(ring) = &self.trace {
                obs::span_finish(ring, true);
            }
        }
        r
    }
}

impl<T: PersistentIndex> PersistentIndex for Instrumented<T> {
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Insert, |t| t.insert(key, value))
    }

    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Update, |t| t.update(key, value))
    }

    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Upsert, |t| t.upsert(key, value))
    }

    fn remove(&self, key: Key) -> Result<(), OpError> {
        self.timed(OpType::Remove, |t| t.remove(key))
    }

    fn find(&self, key: Key) -> Option<Value> {
        self.timed(OpType::Search, |t| t.find(key))
    }

    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        self.timed(OpType::Scan, |t| t.scan_n(start, n, out))
    }

    fn load_sorted(&self, pairs: &[(Key, Value)]) -> Result<(), OpError> {
        self.timed(OpType::LoadSorted, |t| t.load_sorted(pairs))
    }

    fn insert_batch(&self, batch: &mut [(Key, Value)]) -> Vec<Result<(), OpError>> {
        self.timed(OpType::InsertBatch, |t| t.insert_batch(batch))
    }

    fn write_batch(&self, batch: &mut [(Key, Value, WriteOp)]) -> Vec<Result<(), OpError>> {
        self.timed(OpType::InsertBatch, |t| t.write_batch(batch))
    }

    fn supports_var_keys(&self) -> bool {
        self.inner.supports_var_keys()
    }

    fn insert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Insert, |t| t.insert_k(key, value))
    }

    fn update_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Update, |t| t.update_k(key, value))
    }

    fn upsert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.timed(OpType::Upsert, |t| t.upsert_k(key, value))
    }

    fn remove_k(&self, key: KeyRef<'_>) -> Result<(), OpError> {
        self.timed(OpType::Remove, |t| t.remove_k(key))
    }

    fn find_k(&self, key: KeyRef<'_>) -> Option<Value> {
        self.timed(OpType::Search, |t| t.find_k(key))
    }

    fn scan_k(&self, start: KeyRef<'_>, n: usize, out: &mut Vec<(KeyBuf, Value)>) -> usize {
        self.timed(OpType::Scan, |t| t.scan_k(start, n, out))
    }

    fn load_sorted_k(&self, pairs: &[(KeyBuf, Value)]) -> Result<(), OpError> {
        self.timed(OpType::LoadSorted, |t| t.load_sorted_k(pairs))
    }

    fn insert_batch_k(&self, batch: &mut [(KeyBuf, Value)]) -> Vec<Result<(), OpError>> {
        self.timed(OpType::InsertBatch, |t| t.insert_batch_k(batch))
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn supports_concurrency(&self) -> bool {
        self.inner.supports_concurrency()
    }

    fn stats(&self) -> TreeStats {
        self.inner.stats()
    }

    fn htm_abort_ratio(&self) -> Option<f64> {
        self.inner.htm_abort_ratio()
    }
}

impl<T: PersistentIndex> ObsSource for Instrumented<T> {
    /// An `ops` section (per-op latency distributions, when the
    /// recorder is enabled) with its `ops_class` rollup (read / update /
    /// insert / remove / scan / batch), a `trace_meta` counter section
    /// (spans recorded/dropped, when a trace ring is attached), plus a
    /// `tree` counter section from the wrapped index.
    fn obs_sections(&self) -> Vec<(String, Section)> {
        let mut out = Vec::new();
        if let Some(hists) = self.rec.histograms() {
            let lat = OpType::ALL
                .iter()
                .map(|&op| (op.name().to_string(), hists.snapshot(op)))
                .collect();
            out.push(("ops".to_string(), Section::Latencies(lat)));
            let by_class = OpClass::ALL
                .iter()
                .map(|&c| (c.name().to_string(), hists.snapshot_class(c)))
                .collect();
            out.push(("ops_class".to_string(), Section::Latencies(by_class)));
        }
        if let Some(ring) = &self.trace {
            out.push((
                "trace_meta".to_string(),
                Section::Counters(vec![
                    ("spans_recorded".into(), ring.recorded()),
                    ("spans_dropped".into(), ring.dropped()),
                    ("sample_shift".into(), ring.sample_shift() as u64),
                ]),
            ));
        }
        out.push(("tree".to_string(), Section::Counters(self.inner.stats().counters())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    struct MapIndex(Mutex<BTreeMap<Key, Value>>);

    impl PersistentIndex for MapIndex {
        fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.0.lock().unwrap();
            if m.contains_key(&key) {
                return Err(OpError::AlreadyExists);
            }
            m.insert(key, value);
            Ok(())
        }
        fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.0.lock().unwrap();
            if !m.contains_key(&key) {
                return Err(OpError::NotFound);
            }
            m.insert(key, value);
            Ok(())
        }
        fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
            self.0.lock().unwrap().insert(key, value);
            Ok(())
        }
        fn remove(&self, key: Key) -> Result<(), OpError> {
            self.0.lock().unwrap().remove(&key).map(|_| ()).ok_or(OpError::NotFound)
        }
        fn find(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
            out.clear();
            out.extend(self.0.lock().unwrap().range(start..).take(n).map(|(&k, &v)| (k, v)));
            out.len()
        }
        fn name(&self) -> &'static str {
            "Map"
        }
        fn stats(&self) -> TreeStats {
            TreeStats { entries: self.0.lock().unwrap().len() as u64, ..TreeStats::default() }
        }
    }

    #[test]
    fn records_per_op_latencies() {
        let (idx, hists) = Instrumented::with_histograms(MapIndex(Mutex::new(BTreeMap::new())));
        hists.set_sample_shift(0); // record every op
        for k in 0..50 {
            idx.insert(k, k).unwrap();
        }
        for k in 0..50 {
            assert_eq!(idx.find(k), Some(k));
        }
        idx.remove(7).unwrap();
        assert_eq!(hists.snapshot(OpType::Insert).count(), 50);
        assert_eq!(hists.snapshot(OpType::Search).count(), 50);
        assert_eq!(hists.snapshot(OpType::Remove).count(), 1);
        assert_eq!(hists.snapshot(OpType::Update).count(), 0);
        assert_eq!(idx.stats().entries, 49);
    }

    #[test]
    fn disabled_recorder_records_nothing_and_forwards() {
        let idx = Instrumented::new(MapIndex(Mutex::new(BTreeMap::new())), Recorder::disabled());
        idx.insert(1, 2).unwrap();
        assert_eq!(idx.find(1), Some(2));
        assert_eq!(idx.name(), "Map");
        // Only the tree section appears when latency recording is off.
        let sections = idx.obs_sections();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].0, "tree");
    }

    #[test]
    fn class_rollup_section_mirrors_the_op_mix() {
        let (idx, hists) = Instrumented::with_histograms(MapIndex(Mutex::new(BTreeMap::new())));
        hists.set_sample_shift(0);
        for k in 0..10 {
            idx.insert(k, k).unwrap();
        }
        idx.upsert(3, 4).unwrap();
        idx.update(3, 5).unwrap();
        let sections = idx.obs_sections();
        let (_, by_class) = sections
            .iter()
            .find(|(n, _)| n == "ops_class")
            .expect("ops_class present when recording");
        let Section::Latencies(items) = by_class else {
            panic!("ops_class must be a latency section")
        };
        let count_of = |name: &str| {
            items.iter().find(|(n, _)| n == name).map(|(_, h)| h.count()).unwrap()
        };
        assert_eq!(count_of("insert"), 10);
        // upsert and update both roll up into the update class.
        assert_eq!(count_of("update"), 2);
        assert_eq!(count_of("read"), 0);
    }

    #[test]
    fn attached_trace_ring_collects_spans() {
        let ring = obs::TraceRing::shared();
        ring.set_sample_shift(0); // trace every op
        let idx = Instrumented::new(MapIndex(Mutex::new(BTreeMap::new())), Recorder::disabled())
            .with_tracing(Arc::clone(&ring));
        for k in 0..5 {
            idx.insert(k, k).unwrap();
        }
        assert_eq!(idx.find(2), Some(2));
        let spans = ring.dump();
        assert_eq!(spans.len(), 6);
        assert!(spans.iter().any(|s| s.op == OpType::Search));
        assert!(spans.iter().all(|s| s.total_ns > 0));
        let sections = idx.obs_sections();
        let (_, meta) = sections.iter().find(|(n, _)| n == "trace_meta").unwrap();
        let Section::Counters(items) = meta else { panic!("counters") };
        assert!(items.iter().any(|(n, v)| n == "spans_recorded" && *v == 6));
    }

    #[test]
    fn wraps_shared_handles_via_the_arc_impl() {
        let shared: Arc<dyn PersistentIndex> = Arc::new(MapIndex(Mutex::new(BTreeMap::new())));
        let (idx, hists) = Instrumented::with_histograms(shared);
        hists.set_sample_shift(0);
        idx.upsert(9, 9).unwrap();
        assert_eq!(hists.snapshot(OpType::Upsert).count(), 1);
    }
}
