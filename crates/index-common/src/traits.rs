//! The operation interface shared by RNTree and every baseline tree.

use std::sync::Arc;

use nvm::PmemPool;

use crate::{Key, Value};

/// Errors surfaced by conditional operations (paper §3.3: *conditional
/// write* — insert fails on a duplicate key, update/remove fail on a missing
/// key) and by resource exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// Conditional insert found the key already present.
    AlreadyExists,
    /// Conditional update/remove found no such key.
    NotFound,
    /// The persistent pool is out of leaf blocks.
    PoolExhausted,
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::AlreadyExists => write!(f, "key already exists"),
            OpError::NotFound => write!(f, "key not found"),
            OpError::PoolExhausted => write!(f, "persistent pool exhausted"),
        }
    }
}

impl std::error::Error for OpError {}

/// Structural statistics reported by [`PersistentIndex::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Leaf nodes currently linked into the leaf chain.
    pub leaves: u64,
    /// Live key-value pairs (visible entries).
    pub entries: u64,
    /// Leaf splits performed.
    pub splits: u64,
    /// Whether the tree has ever hit [`OpError::PoolExhausted`] (an
    /// allocation failed because the persistent pool ran out of blocks).
    /// Sticky: once set it stays set for the life of the tree. A sharded
    /// index ORs this across shards, so one full shard is visible at the
    /// top level even while its siblings still have room.
    pub pool_exhausted: bool,
}

/// A durable ordered key-value index over simulated NVM.
///
/// All methods take `&self`: concurrent trees (RNTree, FPTree) synchronise
/// internally; single-threaded trees (NVTree, wB+Tree, CDDS) are `Sync`
/// only in the trivial sense and document that callers must not share them
/// across threads while mutating ([`PersistentIndex::supports_concurrency`]).
pub trait PersistentIndex: Send + Sync {
    /// Conditional insert: fails with [`OpError::AlreadyExists`] if the key
    /// is present. Trees without conditional-write support (plain NVTree
    /// mode) document insert-as-upsert behaviour instead.
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError>;

    /// Conditional update: fails with [`OpError::NotFound`] if absent.
    fn update(&self, key: Key, value: Value) -> Result<(), OpError>;

    /// Insert-or-update, never fails on key presence.
    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError>;

    /// Removes the key. Fails with [`OpError::NotFound`] if absent.
    fn remove(&self, key: Key) -> Result<(), OpError>;

    /// Point lookup.
    fn find(&self, key: Key) -> Option<Value>;

    /// Range query: collects up to `n` pairs with key ≥ `start`, in key
    /// order, into `out` (cleared first). Returns the number collected.
    /// This is the paper's range query with a count-based filter function.
    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize;

    /// Short name for benchmark tables ("RNTree", "FPTree", …).
    fn name(&self) -> &'static str;

    /// Whether concurrent callers are supported (paper Table 1).
    fn supports_concurrency(&self) -> bool {
        false
    }

    /// Structural statistics.
    fn stats(&self) -> TreeStats;

    /// HTM abort ratio (aborts/attempts) of the tree's transaction domain,
    /// when the tree uses one. `None` for non-HTM trees.
    fn htm_abort_ratio(&self) -> Option<f64> {
        None
    }
}

/// Constructor/lifecycle interface for trees that live in a [`PmemPool`].
///
/// [`PersistentIndex`] describes *operations* on an open tree; this trait
/// factors out how a tree is **opened**: formatted fresh ([`create`]),
/// rebuilt after a crash ([`recover`]), or reattached after a clean
/// shutdown ([`reopen_clean`]). With the lifecycle behind a trait, a
/// composite index can open every shard generically — and run recovery in
/// parallel, one rebuild thread per shard, the sharded analogue of the
/// paper's §5.4 leaf-chain rebuild.
///
/// [`create`]: RecoverableIndex::create
/// [`recover`]: RecoverableIndex::recover
/// [`reopen_clean`]: RecoverableIndex::reopen_clean
pub trait RecoverableIndex: PersistentIndex + Sized {
    /// Per-tree construction options (e.g. `RnConfig`). `Clone + Send +
    /// Sync` so parallel shard recovery can hand every worker thread its
    /// own copy.
    type Config: Clone + Send + Sync;

    /// Formats `pool` and builds an empty tree in it.
    fn create(pool: Arc<PmemPool>, cfg: Self::Config) -> Self;

    /// Opens a tree from a pool in an arbitrary post-crash state: verifies
    /// the format, completes or rolls back interrupted operations, and
    /// rebuilds all volatile state from the persistent leaf chain.
    fn recover(pool: Arc<PmemPool>, cfg: Self::Config) -> Self;

    /// Opens a tree from a pool after a clean shutdown ([`close`]). Trees
    /// with a fast clean-restart path override this; the default simply
    /// runs full crash recovery, which is always correct.
    ///
    /// [`close`]: RecoverableIndex::close
    fn reopen_clean(pool: Arc<PmemPool>, cfg: Self::Config) -> Self {
        Self::recover(pool, cfg)
    }

    /// Cleanly shuts the tree down (flushes volatile state, marks the pool
    /// clean). Default: no-op, for trees whose persistent state is always
    /// complete.
    fn close(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_error_displays() {
        assert_eq!(OpError::AlreadyExists.to_string(), "key already exists");
        assert_eq!(OpError::NotFound.to_string(), "key not found");
        assert_eq!(OpError::PoolExhausted.to_string(), "persistent pool exhausted");
    }
}
