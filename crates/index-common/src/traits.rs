//! The operation interface shared by RNTree and every baseline tree.

use std::sync::Arc;

use nvm::PmemPool;
use obs::{Json, ToJson};

use crate::{Key, KeyBuf, KeyCodec, KeyRef, U64Key, Value};

/// Errors surfaced by conditional operations (paper §3.3: *conditional
/// write* — insert fails on a duplicate key, update/remove fail on a missing
/// key) and by resource exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// Conditional insert found the key already present.
    AlreadyExists,
    /// Conditional update/remove found no such key.
    NotFound,
    /// The persistent pool is out of leaf blocks.
    PoolExhausted,
    /// A byte-key (`*_k`) operation was given a key this index cannot
    /// represent — e.g. a non-8-byte key on an index that only stores
    /// `u64`-encoded keys ([`PersistentIndex::supports_var_keys`] is
    /// `false`).
    UnsupportedKey,
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::AlreadyExists => write!(f, "key already exists"),
            OpError::NotFound => write!(f, "key not found"),
            OpError::PoolExhausted => write!(f, "persistent pool exhausted"),
            OpError::UnsupportedKey => write!(f, "key not representable by this index"),
        }
    }
}

impl std::error::Error for OpError {}

/// The write class of one element of a mixed [`PersistentIndex::write_batch`]
/// batch. Each variant carries the semantics of the like-named point method;
/// the value of a [`WriteOp::Remove`] element is ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteOp {
    /// Conditional insert — [`OpError::AlreadyExists`] on a present key
    /// ([`PersistentIndex::insert`]).
    Insert,
    /// Conditional update — [`OpError::NotFound`] on a missing key
    /// ([`PersistentIndex::update`]).
    Update,
    /// Insert-or-update, never fails on presence
    /// ([`PersistentIndex::upsert`]).
    Upsert,
    /// Remove — [`OpError::NotFound`] on a missing key
    /// ([`PersistentIndex::remove`]).
    Remove,
}

/// Structural statistics reported by [`PersistentIndex::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Leaf nodes currently linked into the leaf chain.
    pub leaves: u64,
    /// Live key-value pairs (visible entries).
    pub entries: u64,
    /// Leaf splits performed.
    pub splits: u64,
    /// Whether the tree has ever hit [`OpError::PoolExhausted`] (an
    /// allocation failed because the persistent pool ran out of blocks).
    /// Sticky: once set it stays set for the life of the tree. A sharded
    /// index ORs this across shards, so one full shard is visible at the
    /// top level even while its siblings still have room.
    pub pool_exhausted: bool,
}

impl TreeStats {
    /// Folds another tree's statistics into this one: structural counters
    /// add, the sticky [`TreeStats::pool_exhausted`] flag ORs. The single
    /// aggregation rule for every composite index (sharding, wrappers).
    pub fn merge(&mut self, other: &TreeStats) {
        self.leaves += other.leaves;
        self.entries += other.entries;
        self.splits += other.splits;
        self.pool_exhausted |= other.pool_exhausted;
    }

    /// The statistics as `(name, value)` pairs, in export order — the
    /// payload of an `obs::Section::Counters` (the flag exports as 0/1).
    pub fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("leaves".into(), self.leaves),
            ("entries".into(), self.entries),
            ("splits".into(), self.splits),
            ("pool_exhausted".into(), self.pool_exhausted as u64),
        ]
    }
}

impl ToJson for TreeStats {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("leaves", Json::U64(self.leaves));
        o.set("entries", Json::U64(self.entries));
        o.set("splits", Json::U64(self.splits));
        o.set("pool_exhausted", Json::Bool(self.pool_exhausted));
        o
    }
}

/// A durable ordered key-value index over simulated NVM.
///
/// All methods take `&self`: concurrent trees (RNTree, FPTree) synchronise
/// internally; single-threaded trees (NVTree, wB+Tree, CDDS) are `Sync`
/// only in the trivial sense and document that callers must not share them
/// across threads while mutating ([`PersistentIndex::supports_concurrency`]).
pub trait PersistentIndex: Send + Sync {
    /// Conditional insert: fails with [`OpError::AlreadyExists`] if the key
    /// is present. Trees without conditional-write support (plain NVTree
    /// mode) document insert-as-upsert behaviour instead.
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError>;

    /// Conditional update: fails with [`OpError::NotFound`] if absent.
    fn update(&self, key: Key, value: Value) -> Result<(), OpError>;

    /// Insert-or-update, never fails on key presence.
    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError>;

    /// Removes the key. Fails with [`OpError::NotFound`] if absent.
    fn remove(&self, key: Key) -> Result<(), OpError>;

    /// Point lookup.
    fn find(&self, key: Key) -> Option<Value>;

    /// Range query: collects up to `n` pairs with key ≥ `start`, in key
    /// order, into `out` (cleared first). Returns the number collected.
    /// This is the paper's range query with a count-based filter function.
    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize;

    /// Bulk-loads `pairs` into an **empty** index. The input need not be
    /// pre-sorted or unique: implementations sort it and resolve duplicate
    /// keys with the *last* occurrence winning (upsert semantics), so the
    /// result equals replaying the pairs through [`PersistentIndex::upsert`].
    ///
    /// The default implementation does exactly that replay. Trees with a
    /// real bulk loader (RNTree) override it to build full leaves directly
    /// at a fraction of the per-key persist cost; callers (benchmark
    /// warm-up, YCSB load phase) use this method and transparently get
    /// whichever path the tree provides.
    ///
    /// # Errors
    /// [`OpError::PoolExhausted`] if the index cannot hold the pairs.
    fn load_sorted(&self, pairs: &[(Key, Value)]) -> Result<(), OpError> {
        let mut sorted = pairs.to_vec();
        sorted.sort_by_key(|p| p.0); // stable: last duplicate still wins
        for &(k, v) in &sorted {
            self.upsert(k, v)?;
        }
        Ok(())
    }

    /// Batched conditional insert: applies every pair of `batch` with
    /// [`PersistentIndex::insert`] semantics per key, reporting each key's
    /// outcome individually.
    ///
    /// The batch is sorted in place (stably) first; element `i` of the
    /// returned vector reports on `batch[i]` *as the caller observes the
    /// slice after the call*. Of duplicated keys within one batch, the
    /// first occurrence (in pre-sort order) is applied and the rest report
    /// [`OpError::AlreadyExists`].
    ///
    /// The default implementation is a per-key insert loop over the sorted
    /// batch. Trees with a batched write path (RNTree) override it to
    /// amortise traversal, locking, and persists across same-leaf runs; a
    /// sharded index overrides it to partition by shard and apply sub-
    /// batches in parallel.
    fn insert_batch(&self, batch: &mut [(Key, Value)]) -> Vec<Result<(), OpError>> {
        batch.sort_by_key(|p| p.0);
        batch.iter().map(|&(k, v)| self.insert(k, v)).collect()
    }

    /// Batched **mixed-class** write: applies every `(key, value, op)`
    /// element with the point semantics its [`WriteOp`] names, reporting
    /// each element's outcome individually.
    ///
    /// The batch is sorted in place (stably, by key) first; element `i` of
    /// the returned vector reports on `batch[i]` *as the caller observes
    /// the slice after the call*. Elements sharing a key are applied
    /// as-if sequentially in their pre-sort submission order — so within
    /// one batch, an insert followed by a remove of the same key leaves
    /// the key absent and both report `Ok`, while two strict inserts make
    /// the first win and the second report [`OpError::AlreadyExists`]
    /// (the same first-dup-wins rule as [`PersistentIndex::insert_batch`]).
    ///
    /// The default implementation is a per-element dispatch loop over the
    /// sorted batch. Trees with a batched write path (RNTree) override it
    /// to amortise traversal, locking, and persists across same-leaf runs
    /// of *all* write classes; a sharded index overrides it to partition
    /// by shard and apply sub-batches in parallel. The flat-combining
    /// group-commit layer ([`crate::GroupCommit`]) is built on this
    /// method: it is the single entry point through which coalesced
    /// epochs reach the batch pipeline.
    fn write_batch(&self, batch: &mut [(Key, Value, WriteOp)]) -> Vec<Result<(), OpError>> {
        batch.sort_by_key(|p| p.0);
        batch
            .iter()
            .map(|&(k, v, op)| match op {
                WriteOp::Insert => self.insert(k, v),
                WriteOp::Update => self.update(k, v),
                WriteOp::Upsert => self.upsert(k, v),
                WriteOp::Remove => self.remove(k),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Byte-key (`*_k`) counterparts.
    //
    // Every point/range/bulk operation also exists over byte-comparable
    // [`KeyRef`] keys. The provided defaults route through the [`U64Key`]
    // codec — an index that only stores u64 keys serves any 8-byte key
    // verbatim and rejects other lengths with [`OpError::UnsupportedKey`]
    // — so all five trees gained the byte API without touching their
    // layouts. Indexes with a native variable-length layout (RNTree with
    // `varlen_leaves`) override these and set
    // [`PersistentIndex::supports_var_keys`].
    // ------------------------------------------------------------------

    /// Whether this index stores arbitrary-length byte keys natively.
    /// `false` means the `*_k` methods only accept 8-byte (`u64`-encoded)
    /// keys.
    fn supports_var_keys(&self) -> bool {
        false
    }

    /// Byte-key conditional insert ([`PersistentIndex::insert`]).
    fn insert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        let k = U64Key::decode(key).ok_or(OpError::UnsupportedKey)?;
        self.insert(k, value)
    }

    /// Byte-key conditional update ([`PersistentIndex::update`]).
    fn update_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        let k = U64Key::decode(key).ok_or(OpError::UnsupportedKey)?;
        self.update(k, value)
    }

    /// Byte-key upsert ([`PersistentIndex::upsert`]).
    fn upsert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        let k = U64Key::decode(key).ok_or(OpError::UnsupportedKey)?;
        self.upsert(k, value)
    }

    /// Byte-key remove ([`PersistentIndex::remove`]).
    fn remove_k(&self, key: KeyRef<'_>) -> Result<(), OpError> {
        let k = U64Key::decode(key).ok_or(OpError::UnsupportedKey)?;
        self.remove(k)
    }

    /// Byte-key point lookup ([`PersistentIndex::find`]). A key this index
    /// cannot represent is simply absent (`None`).
    fn find_k(&self, key: KeyRef<'_>) -> Option<Value> {
        self.find(U64Key::decode(key)?)
    }

    /// Byte-key range query ([`PersistentIndex::scan_n`]): up to `n` pairs
    /// with key ≥ `start` in lexicographic order. `start` may be *any*
    /// byte string (it is a bound, not a stored key): the u64-backed
    /// default rounds it up to the smallest representable key.
    fn scan_k(&self, start: KeyRef<'_>, n: usize, out: &mut Vec<(KeyBuf, Value)>) -> usize {
        out.clear();
        // Smallest u64 whose 8-byte encoding is >= `start` byte-wise:
        // start.len() <= 8  → zero-pad (extensions of a prefix sort after it);
        // start.len() >  8  → the 8-byte prefix + 1 (encodings are shorter,
        //                     so they must beat the prefix strictly).
        let from = if start.len() <= 8 {
            let mut p = [0u8; 8];
            p[..start.len()].copy_from_slice(start);
            u64::from_be_bytes(p)
        } else {
            let p = u64::from_be_bytes(start[..8].try_into().expect("8-byte prefix"));
            match p.checked_add(1) {
                Some(next) => next,
                None => return 0,
            }
        };
        let mut tmp = Vec::with_capacity(n);
        self.scan_n(from, n, &mut tmp);
        out.extend(tmp.into_iter().map(|(k, v)| (U64Key::encode(k), v)));
        out.len()
    }

    /// Byte-key bulk load ([`PersistentIndex::load_sorted`] semantics:
    /// empty index, duplicates resolved last-wins).
    fn load_sorted_k(&self, pairs: &[(KeyBuf, Value)]) -> Result<(), OpError> {
        let mut sorted = pairs.to_vec();
        sorted.sort_by_key(|p| p.0); // stable: last duplicate wins
        for (k, v) in &sorted {
            self.upsert_k(k.as_slice(), *v)?;
        }
        Ok(())
    }

    /// Byte-key batched conditional insert ([`PersistentIndex::insert_batch`]
    /// semantics: sorted in place, per-key outcomes, first duplicate wins).
    fn insert_batch_k(&self, batch: &mut [(KeyBuf, Value)]) -> Vec<Result<(), OpError>> {
        batch.sort_by_key(|p| p.0);
        batch
            .iter()
            .map(|(k, v)| self.insert_k(k.as_slice(), *v))
            .collect()
    }

    /// Short name for benchmark tables ("RNTree", "FPTree", …).
    fn name(&self) -> &'static str;

    /// Whether concurrent callers are supported (paper Table 1).
    fn supports_concurrency(&self) -> bool {
        false
    }

    /// Structural statistics.
    fn stats(&self) -> TreeStats;

    /// HTM abort ratio (aborts/attempts) of the tree's transaction domain,
    /// when the tree uses one. `None` for non-HTM trees.
    fn htm_abort_ratio(&self) -> Option<f64> {
        None
    }
}

/// Forwarding impl so shared handles (`Arc<dyn PersistentIndex>`, the
/// currency of the bench harness and workload drivers) satisfy the trait
/// themselves — wrappers like `Instrumented` can then take *any* index,
/// owned or shared, by value.
impl<P: PersistentIndex + ?Sized> PersistentIndex for Arc<P> {
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        (**self).insert(key, value)
    }
    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        (**self).update(key, value)
    }
    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        (**self).upsert(key, value)
    }
    fn remove(&self, key: Key) -> Result<(), OpError> {
        (**self).remove(key)
    }
    fn find(&self, key: Key) -> Option<Value> {
        (**self).find(key)
    }
    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        (**self).scan_n(start, n, out)
    }
    fn load_sorted(&self, pairs: &[(Key, Value)]) -> Result<(), OpError> {
        (**self).load_sorted(pairs)
    }
    fn insert_batch(&self, batch: &mut [(Key, Value)]) -> Vec<Result<(), OpError>> {
        (**self).insert_batch(batch)
    }
    fn write_batch(&self, batch: &mut [(Key, Value, WriteOp)]) -> Vec<Result<(), OpError>> {
        (**self).write_batch(batch)
    }
    fn supports_var_keys(&self) -> bool {
        (**self).supports_var_keys()
    }
    fn insert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        (**self).insert_k(key, value)
    }
    fn update_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        (**self).update_k(key, value)
    }
    fn upsert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        (**self).upsert_k(key, value)
    }
    fn remove_k(&self, key: KeyRef<'_>) -> Result<(), OpError> {
        (**self).remove_k(key)
    }
    fn find_k(&self, key: KeyRef<'_>) -> Option<Value> {
        (**self).find_k(key)
    }
    fn scan_k(&self, start: KeyRef<'_>, n: usize, out: &mut Vec<(KeyBuf, Value)>) -> usize {
        (**self).scan_k(start, n, out)
    }
    fn load_sorted_k(&self, pairs: &[(KeyBuf, Value)]) -> Result<(), OpError> {
        (**self).load_sorted_k(pairs)
    }
    fn insert_batch_k(&self, batch: &mut [(KeyBuf, Value)]) -> Vec<Result<(), OpError>> {
        (**self).insert_batch_k(batch)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn supports_concurrency(&self) -> bool {
        (**self).supports_concurrency()
    }
    fn stats(&self) -> TreeStats {
        (**self).stats()
    }
    fn htm_abort_ratio(&self) -> Option<f64> {
        (**self).htm_abort_ratio()
    }
}

/// Constructor/lifecycle interface for trees that live in a [`PmemPool`].
///
/// [`PersistentIndex`] describes *operations* on an open tree; this trait
/// factors out how a tree is **opened**: formatted fresh ([`create`]),
/// rebuilt after a crash ([`recover`]), or reattached after a clean
/// shutdown ([`reopen_clean`]). With the lifecycle behind a trait, a
/// composite index can open every shard generically — and run recovery in
/// parallel, one rebuild thread per shard, the sharded analogue of the
/// paper's §5.4 leaf-chain rebuild.
///
/// [`create`]: RecoverableIndex::create
/// [`recover`]: RecoverableIndex::recover
/// [`reopen_clean`]: RecoverableIndex::reopen_clean
pub trait RecoverableIndex: PersistentIndex + Sized {
    /// Per-tree construction options (e.g. `RnConfig`). `Clone + Send +
    /// Sync` so parallel shard recovery can hand every worker thread its
    /// own copy.
    type Config: Clone + Send + Sync;

    /// Formats `pool` and builds an empty tree in it.
    fn create(pool: Arc<PmemPool>, cfg: Self::Config) -> Self;

    /// Opens a tree from a pool in an arbitrary post-crash state: verifies
    /// the format, completes or rolls back interrupted operations, and
    /// rebuilds all volatile state from the persistent leaf chain.
    fn recover(pool: Arc<PmemPool>, cfg: Self::Config) -> Self;

    /// Opens a tree from a pool after a clean shutdown ([`close`]). Trees
    /// with a fast clean-restart path override this; the default simply
    /// runs full crash recovery, which is always correct.
    ///
    /// [`close`]: RecoverableIndex::close
    fn reopen_clean(pool: Arc<PmemPool>, cfg: Self::Config) -> Self {
        Self::recover(pool, cfg)
    }

    /// Cleanly shuts the tree down (flushes volatile state, marks the pool
    /// clean). Default: no-op, for trees whose persistent state is always
    /// complete.
    fn close(&self) {}

    /// As [`create`], but surfacing invalid configurations as an error
    /// message instead of a panic, so callers opening pools they did not
    /// format (tools, shard sets) can report the mismatch. The error is a
    /// rendered string because each tree has its own typed error; trees
    /// with config validation override this, the default never fails.
    ///
    /// [`create`]: RecoverableIndex::create
    fn try_create(pool: Arc<PmemPool>, cfg: Self::Config) -> Result<Self, String> {
        Ok(Self::create(pool, cfg))
    }

    /// As [`recover`], with [`try_create`]'s error contract.
    ///
    /// [`recover`]: RecoverableIndex::recover
    /// [`try_create`]: RecoverableIndex::try_create
    fn try_recover(pool: Arc<PmemPool>, cfg: Self::Config) -> Result<Self, String> {
        Ok(Self::recover(pool, cfg))
    }

    /// As [`reopen_clean`], with [`try_create`]'s error contract.
    ///
    /// [`reopen_clean`]: RecoverableIndex::reopen_clean
    /// [`try_create`]: RecoverableIndex::try_create
    fn try_reopen_clean(pool: Arc<PmemPool>, cfg: Self::Config) -> Result<Self, String> {
        Ok(Self::reopen_clean(pool, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_error_displays() {
        assert_eq!(OpError::AlreadyExists.to_string(), "key already exists");
        assert_eq!(OpError::NotFound.to_string(), "key not found");
        assert_eq!(OpError::PoolExhausted.to_string(), "persistent pool exhausted");
        assert_eq!(
            OpError::UnsupportedKey.to_string(),
            "key not representable by this index"
        );
    }

    /// A toy u64-only index to pin down the `*_k` defaults.
    struct Toy(std::sync::Mutex<std::collections::BTreeMap<Key, Value>>);

    impl PersistentIndex for Toy {
        fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.0.lock().unwrap();
            if m.contains_key(&key) {
                return Err(OpError::AlreadyExists);
            }
            m.insert(key, value);
            Ok(())
        }
        fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.0.lock().unwrap();
            m.get_mut(&key).map(|v| *v = value).ok_or(OpError::NotFound)
        }
        fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
            self.0.lock().unwrap().insert(key, value);
            Ok(())
        }
        fn remove(&self, key: Key) -> Result<(), OpError> {
            self.0.lock().unwrap().remove(&key).map(|_| ()).ok_or(OpError::NotFound)
        }
        fn find(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
            out.clear();
            out.extend(self.0.lock().unwrap().range(start..).take(n).map(|(k, v)| (*k, *v)));
            out.len()
        }
        fn name(&self) -> &'static str {
            "Toy"
        }
        fn stats(&self) -> TreeStats {
            TreeStats::default()
        }
    }

    #[test]
    fn default_write_batch_applies_submission_order_within_a_key() {
        let t = Toy(std::sync::Mutex::new(Default::default()));
        t.insert(1, 10).unwrap();
        let mut batch = vec![
            (2, 20, WriteOp::Insert),
            (1, 11, WriteOp::Update),
            (3, 30, WriteOp::Insert),
            (3, 31, WriteOp::Insert), // in-batch duplicate: first wins
            (2, 0, WriteOp::Remove),  // removes the insert above it
            (9, 0, WriteOp::Remove),  // missing key
            (4, 40, WriteOp::Upsert),
        ];
        let res = t.write_batch(&mut batch);
        // The slice is stably sorted by key; results align with it.
        let keys: Vec<Key> = batch.iter().map(|p| p.0).collect();
        assert_eq!(keys, [1, 2, 2, 3, 3, 4, 9]);
        assert_eq!(
            res,
            vec![
                Ok(()),                       // update 1
                Ok(()),                       // insert 2
                Ok(()),                       // remove 2 (sees the insert)
                Ok(()),                       // insert 3 (first occurrence)
                Err(OpError::AlreadyExists),  // dup insert 3
                Ok(()),                       // upsert 4
                Err(OpError::NotFound),       // remove 9
            ]
        );
        assert_eq!(t.find(1), Some(11));
        assert_eq!(t.find(2), None);
        assert_eq!(t.find(3), Some(30));
        assert_eq!(t.find(4), Some(40));
    }

    #[test]
    fn default_byte_key_methods_route_through_the_u64_codec() {
        let t = Toy(std::sync::Mutex::new(Default::default()));
        assert!(!t.supports_var_keys());
        let k5 = U64Key::encode(5);
        t.insert_k(k5.as_slice(), 50).unwrap();
        assert_eq!(t.find(5), Some(50), "8-byte keys hit the u64 store");
        assert_eq!(t.find_k(k5.as_slice()), Some(50));
        assert_eq!(t.insert_k(b"short", 1), Err(OpError::UnsupportedKey));
        assert_eq!(t.update_k(b"way too long key!", 1), Err(OpError::UnsupportedKey));
        assert_eq!(t.find_k(b"short"), None);

        t.upsert(7, 70).unwrap();
        let mut out = Vec::new();
        // A 1-byte zero start rounds down to u64 0: sees everything.
        assert_eq!(t.scan_k(&[0][..], 10, &mut out), 2);
        assert_eq!(out[0].0, U64Key::encode(5));
        // A start strictly above encode(5) skips key 5.
        let mut above5 = k5;
        above5 = above5.successor().unwrap();
        assert_eq!(t.scan_k(above5.as_slice(), 10, &mut out), 1);
        assert_eq!(out[0].0, U64Key::encode(7));
        // A >8-byte start rounds up past its 8-byte prefix.
        let mut long = [0u8; 9];
        long[..8].copy_from_slice(U64Key::encode(6).as_slice());
        assert_eq!(t.scan_k(&long[..], 10, &mut out), 1);
        assert_eq!(out[0].0, U64Key::encode(7));
    }
}
