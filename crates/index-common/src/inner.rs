//! The volatile internal-node tree shared by all persistent trees.
//!
//! Internal nodes are DRAM-resident `Inner` structs whose fields are
//! [`TmWord`]s, so every traversal and structural update can run inside a
//! hardware transaction (paper Table 2: `htmTreeTraverse`, `htmTreeUpdate`).
//! Child references are tagged words: leaf children carry a persistent-pool
//! offset (bit 63 set), inner children carry a DRAM pointer.
//!
//! Invariants:
//! * an inner node with `count` keys `k₀ < k₁ < … < k_{count-1}` has
//!   `count + 1` children; child `i ≤ count-1` covers keys `≤ kᵢ` (and
//!   `> k_{i-1}`), child `count` covers keys `> k_{count-1}`;
//! * separators are the **maximum key of the left subtree**, which is what
//!   recovery can reconstruct from the leaf chain (paper §5.4);
//! * inner nodes are never freed while the index is alive (splits only add
//!   nodes; leaf compaction swaps a child in place), so a transactional
//!   reader can never dereference a dangling inner pointer. All nodes are
//!   owned by a registry and freed when the [`InnerIndex`] drops.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use htm::{HtmDomain, OptimisticGate, TmWord, TxResult, Txn};
use nvm::{FrameView, PageCache, FRAME_WORDS};

use crate::{is_leaf_ref, Key};

/// Maximum children per internal node.
pub const INNER_FANOUT: usize = 32;
/// Maximum separator keys per internal node.
const MAX_KEYS: usize = INNER_FANOUT - 1;

/// A volatile internal node. All fields are transactional words.
struct Inner {
    /// Number of separator keys (children = count + 1).
    count: TmWord,
    keys: [TmWord; MAX_KEYS],
    children: [TmWord; INNER_FANOUT],
}

impl Inner {
    fn new_empty() -> Box<Inner> {
        Box::new(Inner {
            count: TmWord::new(0),
            keys: std::array::from_fn(|_| TmWord::new(0)),
            children: std::array::from_fn(|_| TmWord::new(0)),
        })
    }
}

/// Best-effort prefetch of the cache lines starting at `p` (no-op on
/// non-x86_64 targets). Used on the chosen child during descent so the next
/// level's header and first keys are in flight while this level finishes.
#[inline(always)]
fn prefetch_node<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        // First line: `count` + the first keys; second line: more keys —
        // together they cover everything a fanout-32 binary search touches
        // in its first few probes.
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
        _mm_prefetch::<_MM_HINT_T0>((p as *const i8).wrapping_add(64));
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Cached-frame image of an [`Inner`]: word 0 = count, words 1..=31 =
/// keys, words 32..63 = children. One node fills one frame exactly
/// ([`FRAME_WORDS`] = 64).
const _: () = assert!(FRAME_WORDS == 1 + MAX_KEYS + INNER_FANOUT);

/// Branching binary search over a node image in frame-word layout,
/// returning the child covering `key`. `word(i)` supplies the i-th image
/// word (from a [`FrameView`] or a local snapshot).
#[inline]
fn route_words(word: impl Fn(usize) -> u64, key: Key) -> u64 {
    let cnt = (word(0) as usize).min(MAX_KEYS);
    let (mut lo, mut hi) = (0usize, cnt);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if key <= word(1 + mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    word(1 + MAX_KEYS + lo)
}

/// Copies a node into frame-word layout with plain acquire loads. Only a
/// consistent copy may be used or published — callers bracket this with
/// an [`OptimisticGate`] read window.
fn snapshot_node(inner: &Inner) -> [u64; FRAME_WORDS] {
    let mut w = [0u64; FRAME_WORDS];
    w[0] = inner.count.load_direct();
    for (dst, src) in w[1..=MAX_KEYS].iter_mut().zip(inner.keys.iter()) {
        *dst = src.load_direct();
    }
    for (dst, src) in w[1 + MAX_KEYS..].iter_mut().zip(inner.children.iter()) {
        *dst = src.load_direct();
    }
    w
}

/// The shared internal-node index: a map from keys to persistent leaf
/// offsets. See the module docs for structure and invariants.
pub struct InnerIndex {
    root: TmWord,
    domain: HtmDomain,
    /// Every inner node ever allocated (including nodes orphaned by aborted
    /// transactions or recovery rebuilds); freed on drop.
    registry: Mutex<Vec<*mut Inner>>,
    /// When set, [`InnerIndex::traverse_seq`] runs the original branching
    /// binary search with no prefetching. Benchmark-only facility: it lets
    /// one binary produce honest before/after numbers for the descent
    /// rewrite (`repro bench-json`). Per-index on purpose: co-resident
    /// trees (shards of a [`crate::ShardedIndex`]) must not be able to flip
    /// each other's descent path through a process-global. It only affects
    /// the quiescent sequential traversal.
    legacy_seq: AtomicBool,
    /// Optional DRAM page cache over the inner nodes; when attached,
    /// [`InnerIndex::traverse_cached`] serves descents from cached frames
    /// with optimistic version validation instead of running the whole
    /// walk inside the software TM.
    cache: OnceLock<Arc<PageCache>>,
    /// Writer-presence seqlock bracketing every structure modification, so
    /// cache fills and direct reads can validate that their
    /// non-transactional snapshot of a node was not torn by a concurrent
    /// `tree_update`/`replace_child`/`bulk_build`.
    gate: OptimisticGate,
    /// Cached descents that restarted from the root (version or gate
    /// validation failed mid-walk).
    descent_restarts: AtomicU64,
    /// Cached descents that exhausted their restart budget and fell back
    /// to the transactional walk.
    descent_tm_fallbacks: AtomicU64,
}

/// Restart taxonomy of [`InnerIndex::traverse_cached`]: how often the
/// optimistic walk had to start over, and how often it gave up and used
/// the transactional descent. (Per-frame validation failures are counted
/// by the cache itself as `read_restarts`.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DescentStats {
    /// Full from-the-root restarts of the optimistic descent.
    pub restarts: u64,
    /// Descents that fell back to [`InnerIndex::traverse_tm`].
    pub tm_fallbacks: u64,
}

/// Full-descent restart budget before falling back to the TM walk. Each
/// restart re-reads the root, so contention with a burst of splits
/// resolves in a handful of iterations; the fallback is for pathological
/// writer storms.
const MAX_DESCENT_RESTARTS: usize = 8;

// SAFETY: the registry's raw pointers are only dereferenced through the
// transactional protocol (valid for the index lifetime) and freed with
// exclusive access in Drop.
unsafe impl Send for InnerIndex {}
unsafe impl Sync for InnerIndex {}

impl InnerIndex {
    /// Creates an index whose single child is the given leaf reference
    /// (use [`crate::leaf_ref`] to build it).
    pub fn new(initial_child: u64) -> Self {
        assert!(is_leaf_ref(initial_child), "root must start as a leaf");
        InnerIndex {
            root: TmWord::new(initial_child),
            domain: HtmDomain::new(),
            registry: Mutex::new(Vec::new()),
            legacy_seq: AtomicBool::new(false),
            cache: OnceLock::new(),
            gate: OptimisticGate::new(),
            descent_restarts: AtomicU64::new(0),
            descent_tm_fallbacks: AtomicU64::new(0),
        }
    }

    /// Attaches a DRAM page cache; [`InnerIndex::traverse_cached`] uses it
    /// from then on. One-shot: a second attach is ignored (the cache is
    /// wired at tree construction, before any concurrent use).
    pub fn attach_cache(&self, cache: Arc<PageCache>) {
        let _ = self.cache.set(cache);
    }

    /// The attached page cache, if any.
    pub fn page_cache(&self) -> Option<&Arc<PageCache>> {
        self.cache.get()
    }

    /// Restart counters of the cached descent.
    pub fn descent_stats(&self) -> DescentStats {
        DescentStats {
            restarts: self.descent_restarts.load(Ordering::Relaxed),
            tm_fallbacks: self.descent_tm_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Selects the pre-rewrite sequential descent **for this index only**
    /// (see the `legacy_seq` field docs). Replaces the former process-global
    /// switch, which would have coupled co-resident trees.
    pub fn set_legacy_seq_descent(&self, on: bool) {
        self.legacy_seq.store(on, Ordering::Relaxed);
    }

    /// The HTM domain shared by this tree (leaf-level HTM functions of the
    /// owning tree run in the same domain, sharing one fallback lock per
    /// tree as real per-structure elision code would).
    pub fn domain(&self) -> &HtmDomain {
        &self.domain
    }

    /// Allocates an inner node owned by the registry.
    ///
    /// Allocation may happen inside a transaction body; if that attempt
    /// aborts, the node is simply garbage until the index drops — wasted
    /// memory, never a dangling pointer.
    fn alloc_inner(&self) -> *mut Inner {
        let ptr = Box::into_raw(Inner::new_empty());
        self.registry.lock().unwrap().push(ptr);
        ptr
    }

    #[inline]
    fn deref(&self, node_ref: u64) -> &Inner {
        debug_assert!(!is_leaf_ref(node_ref));
        // SAFETY: non-leaf child references are only ever written as valid
        // `Inner` pointers from `alloc_inner`, and inners live as long as
        // `self` (registry + Drop).
        unsafe { &*(node_ref as *const Inner) }
    }

    /// First child index whose subtree may contain `key`, as a branch-light
    /// lower bound: the loop trip count depends only on `cnt`, and the data
    /// comparison feeds an arithmetic select instead of a hard-to-predict
    /// branch, so a descent costs no key-comparison mispredictions.
    ///
    /// Invariant: the answer lies in `[lo, lo + len - 1]` over the `cnt + 1`
    /// candidate children; probing `keys[lo + half - 1]` decides whether it
    /// is in the upper `half` (`key` greater) or the lower `len - half`.
    fn search_child<'t>(&'t self, txn: &mut Txn<'t>, inner: &'t Inner, key: Key) -> TxResult<usize> {
        let cnt = (txn.read(&inner.count)? as usize).min(MAX_KEYS);
        let mut lo = 0usize;
        let mut len = cnt + 1;
        while len > 1 {
            let half = len / 2;
            let k = txn.read(&inner.keys[lo + half - 1])?;
            lo += usize::from(key > k) * half;
            len -= half;
        }
        Ok(lo)
    }

    /// `htmTreeTraverse` body: walks from the root to the leaf whose range
    /// covers `key`, inside the caller's transaction. Returns the leaf
    /// offset. Composable: FPTree reads the leaf's lock word in the same
    /// transaction.
    pub fn traverse_in<'t>(&'t self, txn: &mut Txn<'t>, key: Key) -> TxResult<u64> {
        let mut node_ref = txn.read(&self.root)?;
        while !is_leaf_ref(node_ref) {
            let inner = self.deref(node_ref);
            let idx = self.search_child(txn, inner, key)?;
            node_ref = txn.read(&inner.children[idx])?;
            if !is_leaf_ref(node_ref) {
                prefetch_node(node_ref as *const Inner);
            }
        }
        Ok(crate::leaf_off(node_ref))
    }

    /// `htmTreeTraverse` as a standalone HTM function (paper Table 2).
    pub fn traverse_tm(&self, key: Key) -> u64 {
        self.domain.atomic(|txn| self.traverse_in(txn, key))
    }

    /// Optimistic descent over the DRAM page cache: each inner level is
    /// resolved from a version-validated cached frame (or a gate-validated
    /// direct read on a miss), and the software TM is entered only by the
    /// caller at the leaf. Falls back to [`InnerIndex::traverse_tm`] when
    /// no cache is attached or the restart budget is exhausted.
    ///
    /// ## Why a torn or stale inner read cannot reach a wrong leaf
    ///
    /// Every child value this walk acts on comes from a **validated
    /// snapshot**: cache hits re-check the frame's PageState version after
    /// the payload reads, and fills/direct reads re-check the index's
    /// [`OptimisticGate`] (no structure modification overlapped the copy).
    /// A validated snapshot is some *consistent past state* of the node,
    /// so the child is a reference that node really held: inner nodes are
    /// never freed while the index lives (registry + Drop), so it is
    /// dereferenceable, and nodes never change level, so the walk strictly
    /// descends and terminates. The snapshot may still be *stale* —
    /// routing as of before a concurrent split — in which case the walk
    /// lands on the split's left leaf; callers already handle that: every
    /// tree operation re-checks the leaf's fence key under its own leaf
    /// transaction and hops/retries, exactly as they must for the plain
    /// transactional descent racing a split that commits between the
    /// traverse and the leaf access.
    pub fn traverse_cached(&self, key: Key) -> u64 {
        let Some(cache) = self.cache.get() else {
            return self.traverse_tm(key);
        };
        'restart: for attempt in 0..MAX_DESCENT_RESTARTS {
            if attempt > 0 {
                self.descent_restarts.fetch_add(1, Ordering::Relaxed);
            }
            // Either the old or the new root is a valid entry point (root
            // growth installs a fully-built node before swinging the word),
            // so a plain acquire load suffices here.
            let mut node_ref = self.root.load_direct();
            while !is_leaf_ref(node_ref) {
                match self.cached_child(cache, node_ref, key) {
                    Some(child) => {
                        node_ref = child;
                        if !is_leaf_ref(node_ref) {
                            prefetch_node(node_ref as *const Inner);
                        }
                    }
                    None => continue 'restart,
                }
            }
            return crate::leaf_off(node_ref);
        }
        self.descent_tm_fallbacks.fetch_add(1, Ordering::Relaxed);
        self.traverse_tm(key)
    }

    /// Resolves one descent step through the cache: hit → route from the
    /// validated frame; miss → fill a frame from a gate-validated node
    /// snapshot (serving the step from the same snapshot); no frame
    /// available → gate-validated direct read. `None` means validation
    /// failed somewhere and the descent must restart from the root.
    fn cached_child(&self, cache: &PageCache, node_ref: u64, key: Key) -> Option<u64> {
        if let Some(child) = cache.optimistic_read(node_ref, |v: &FrameView<'_>| route_words(|i| v.word(i), key)) {
            return Some(child);
        }
        let inner = self.deref(node_ref);
        if let Some(guard) = cache.begin_fill(node_ref) {
            // The guard has already published the tag (SeqCst); only now is
            // the gate token taken. An invalidator that misses our tag in
            // its scan therefore retired *before* the token was read, and
            // the snapshot below sees its modification — a stale image can
            // never be committed past an invalidation (see nvm::cache docs).
            let Some(token) = self.gate.begin_read() else {
                guard.abandon();
                return None;
            };
            let words = snapshot_node(inner);
            if self.gate.validate(token) {
                let child = route_words(|i| words[i], key);
                guard.commit(&words);
                return Some(child);
            }
            guard.abandon();
            return None;
        }
        // Cache full of busy frames: read the authoritative node directly
        // under the gate. Cheaper than a TM descent and keeps the miss
        // path non-blocking.
        let token = self.gate.begin_read()?;
        let cnt = (inner.count.load_direct() as usize).min(MAX_KEYS);
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if key <= inner.keys[mid].load_direct() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let child = inner.children[lo].load_direct();
        self.gate.validate(token).then_some(child)
    }

    /// Sequential traversal for quiescent phases (single-threaded
    /// benchmarks, recovery verification). Must not run concurrently with
    /// transactional structure updates.
    pub fn traverse_seq(&self, key: Key) -> u64 {
        if self.legacy_seq.load(Ordering::Relaxed) {
            return self.traverse_seq_legacy(key);
        }
        let mut node_ref = self.root.load_seq();
        while !is_leaf_ref(node_ref) {
            let inner = self.deref(node_ref);
            let cnt = (inner.count.load_seq() as usize).min(MAX_KEYS);
            // Branching binary search, deliberately: with L2-resident inner
            // nodes the predictor's speculation runs the next probe's load
            // early, which beats a CMOV lower bound whose address chain is
            // serial (measured ~5% on find; see `descent_ab` in bench).
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if key <= inner.keys[mid].load_seq() {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            node_ref = inner.children[lo].load_seq();
            if !is_leaf_ref(node_ref) {
                prefetch_node(node_ref as *const Inner);
            }
        }
        crate::leaf_off(node_ref)
    }

    /// The sequential descent as it was before the branch-light rewrite:
    /// a branching binary search per level and no prefetch. Kept verbatim
    /// so `repro bench-json` can measure the rewrite's effect.
    fn traverse_seq_legacy(&self, key: Key) -> u64 {
        let mut node_ref = self.root.load_seq();
        while !is_leaf_ref(node_ref) {
            let inner = self.deref(node_ref);
            let cnt = (inner.count.load_seq() as usize).min(MAX_KEYS);
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if key <= inner.keys[mid].load_seq() {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            node_ref = inner.children[lo].load_seq();
        }
        crate::leaf_off(node_ref)
    }

    /// `htmTreeUpdate` (paper Table 2): after a leaf split, registers the
    /// new right sibling. `sep` is the maximum key remaining in the old
    /// (left) leaf; `new_child` (a leaf reference) covers keys `> sep` up to
    /// the old leaf's previous upper bound.
    pub fn tree_update(&self, sep: Key, new_child: u64) {
        self.gate.writer_enter();
        let touched = self.domain.atomic(|txn| self.tree_update_in(txn, sep, new_child));
        self.gate.writer_exit();
        // Invalidate after the writer bracket closes: the scan's SeqCst tag
        // loads then see (or provably post-date) every in-flight fill, so
        // no stale frame survives (nvm::cache module docs).
        if let Some(cache) = self.cache.get() {
            for node_ref in touched {
                cache.invalidate(node_ref);
            }
        }
    }

    /// Transactional body of [`InnerIndex::tree_update`]. Returns the
    /// references of pre-existing inner nodes it rewrote in place, for
    /// cache invalidation; nodes freshly allocated inside the transaction
    /// (split right halves, grown roots) cannot be cached yet and are
    /// omitted. The vector is rebuilt on every abort/retry, so it reflects
    /// exactly the committed execution.
    fn tree_update_in<'t>(&'t self, txn: &mut Txn<'t>, sep: Key, new_child: u64) -> TxResult<Vec<u64>> {
        let mut touched: Vec<u64> = Vec::with_capacity(4);
        // Descend to the leaf covering `sep`, recording the path.
        let mut path: Vec<(&'t Inner, usize)> = Vec::with_capacity(8);
        let mut node_ref = txn.read(&self.root)?;
        while !is_leaf_ref(node_ref) {
            let inner = self.deref(node_ref);
            let idx = self.search_child(txn, inner, sep)?;
            path.push((inner, idx));
            node_ref = txn.read(&inner.children[idx])?;
        }

        // Insert (sep, new_child) to the right of the found child, walking
        // back up on overflow.
        let mut pending_key = sep;
        let mut pending_child = new_child;
        loop {
            let Some((inner, idx)) = path.pop() else {
                // Split reached the root (or the root is a leaf): grow.
                let old_root = txn.read(&self.root)?;
                let new_root = self.alloc_inner();
                let nr = self.deref(new_root as u64);
                nr.count.store_seq(1);
                nr.keys[0].store_seq(pending_key);
                nr.children[0].store_seq(old_root);
                nr.children[1].store_seq(pending_child);
                txn.write(&self.root, new_root as u64)?;
                return Ok(touched);
            };
            let cnt = (txn.read(&inner.count)? as usize).min(MAX_KEYS);
            if cnt < MAX_KEYS {
                // Room: shift keys[idx..cnt] and children[idx+1..cnt+1]
                // right by one, then place the new separator and child.
                let mut i = cnt;
                while i > idx {
                    let k = txn.read(&inner.keys[i - 1])?;
                    txn.write(&inner.keys[i], k)?;
                    let c = txn.read(&inner.children[i])?;
                    txn.write(&inner.children[i + 1], c)?;
                    i -= 1;
                }
                txn.write(&inner.keys[idx], pending_key)?;
                txn.write(&inner.children[idx + 1], pending_child)?;
                txn.write(&inner.count, (cnt + 1) as u64)?;
                touched.push(inner as *const Inner as u64);
                return Ok(touched);
            }

            // Full inner node: split it. Left keeps keys[0..mid] and
            // children[0..mid+1]; right takes keys[mid+1..] and
            // children[mid+1..]; keys[mid] moves up.
            let mid = cnt / 2;
            let up_key = txn.read(&inner.keys[mid])?;
            let right_ptr = self.alloc_inner();
            let right = self.deref(right_ptr as u64);
            let right_cnt = cnt - mid - 1;
            for i in 0..right_cnt {
                right.keys[i].store_seq(txn.read(&inner.keys[mid + 1 + i])?);
            }
            for i in 0..=right_cnt {
                right.children[i].store_seq(txn.read(&inner.children[mid + 1 + i])?);
            }
            right.count.store_seq(right_cnt as u64);
            txn.write(&inner.count, mid as u64)?;
            touched.push(inner as *const Inner as u64);

            // Now insert the pending entry into the proper half. The fresh
            // right half is private until this transaction commits, so it
            // can be edited with plain stores.
            if pending_key <= up_key {
                debug_assert!(idx <= mid);
                let mut i = mid;
                while i > idx {
                    let k = txn.read(&inner.keys[i - 1])?;
                    txn.write(&inner.keys[i], k)?;
                    let c = txn.read(&inner.children[i])?;
                    txn.write(&inner.children[i + 1], c)?;
                    i -= 1;
                }
                txn.write(&inner.keys[idx], pending_key)?;
                txn.write(&inner.children[idx + 1], pending_child)?;
                txn.write(&inner.count, (mid + 1) as u64)?;
            } else {
                let ridx = idx - (mid + 1);
                let mut i = right_cnt;
                while i > ridx {
                    right.keys[i].store_seq(right.keys[i - 1].load_seq());
                    right.children[i + 1].store_seq(right.children[i].load_seq());
                    i -= 1;
                }
                right.keys[ridx].store_seq(pending_key);
                right.children[ridx + 1].store_seq(pending_child);
                right.count.store_seq((right_cnt + 1) as u64);
            }

            // Propagate (up_key, right half) to the parent.
            pending_key = up_key;
            pending_child = right_ptr as u64;
        }
    }

    /// Swaps the child covering `key` from `old_child` to `new_child`
    /// (leaf compaction). Returns false if the current child is not
    /// `old_child` (someone else restructured first).
    pub fn replace_child(&self, key: Key, old_child: u64, new_child: u64) -> bool {
        self.gate.writer_enter();
        let swapped_in = self.domain.atomic(|txn| {
            let mut parent: Option<(&Inner, usize)> = None;
            let mut node_ref = txn.read(&self.root)?;
            while !is_leaf_ref(node_ref) {
                let inner = self.deref(node_ref);
                let idx = self.search_child(txn, inner, key)?;
                parent = Some((inner, idx));
                node_ref = txn.read(&inner.children[idx])?;
            }
            if node_ref != old_child {
                return Ok(None);
            }
            match parent {
                Some((inner, idx)) => {
                    txn.write(&inner.children[idx], new_child)?;
                    Ok(Some(Some(inner as *const Inner as u64)))
                }
                None => {
                    txn.write(&self.root, new_child)?;
                    Ok(Some(None))
                }
            }
        });
        self.gate.writer_exit();
        match swapped_in {
            Some(parent_ref) => {
                if let (Some(cache), Some(node_ref)) = (self.cache.get(), parent_ref) {
                    cache.invalidate(node_ref);
                }
                true
            }
            None => false,
        }
    }

    /// Rebuilds the internal levels bottom-up from `(max_key, leaf_ref)`
    /// pairs sorted by key (paper §5.4 recovery). Quiescent phases only.
    ///
    /// Old inner nodes stay in the registry (freed on drop); the root is
    /// swapped atomically at the end so late readers see a coherent tree.
    pub fn bulk_build(&self, leaves: &[(Key, u64)]) {
        self.gate.writer_enter();
        self.bulk_build_inner(leaves);
        self.gate.writer_exit();
        // Bulk rebuilds orphan every previously-cached node; flush them all.
        if let Some(cache) = self.cache.get() {
            cache.invalidate_all();
        }
    }

    fn bulk_build_inner(&self, leaves: &[(Key, u64)]) {
        assert!(!leaves.is_empty(), "bulk_build needs at least one leaf");
        debug_assert!(leaves.windows(2).all(|w| w[0].0 < w[1].0), "leaves must be sorted");
        let mut level: Vec<(Key, u64)> = leaves.to_vec();
        while level.len() > 1 {
            let mut next: Vec<(Key, u64)> = Vec::with_capacity(level.len().div_ceil(INNER_FANOUT));
            for group in level.chunks(INNER_FANOUT) {
                let node_ptr = self.alloc_inner();
                let node = self.deref(node_ptr as u64);
                for (i, (k, r)) in group.iter().enumerate() {
                    node.children[i].store_seq(*r);
                    if i + 1 < group.len() {
                        node.keys[i].store_seq(*k);
                    }
                }
                node.count.store_seq((group.len() - 1) as u64);
                next.push((group.last().unwrap().0, node_ptr as u64));
            }
            level = next;
        }
        self.root.store_nontx(level[0].1);
    }

    /// Depth of the tree (1 = root is a leaf). Quiescent diagnostic.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node_ref = self.root.load_seq();
        while !is_leaf_ref(node_ref) {
            d += 1;
            node_ref = self.deref(node_ref).children[0].load_seq();
        }
        d
    }
}

impl Drop for InnerIndex {
    fn drop(&mut self) {
        for ptr in self.registry.lock().unwrap().drain(..) {
            // SAFETY: allocated by Box::into_raw in alloc_inner; exclusive
            // access here (&mut self).
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf_ref;

    /// Builds an index over fake leaves with max keys 10, 20, …, n*10 and
    /// offsets 1000, 2000, ….
    fn build(n: usize) -> InnerIndex {
        let leaves: Vec<(Key, u64)> = (1..=n as u64).map(|i| (i * 10, leaf_ref(i * 1000))).collect();
        let idx = InnerIndex::new(leaves[0].1);
        idx.bulk_build(&leaves);
        idx
    }

    #[test]
    fn single_leaf_traversal() {
        let idx = InnerIndex::new(leaf_ref(4096));
        assert_eq!(idx.traverse_tm(0), 4096);
        assert_eq!(idx.traverse_tm(u64::MAX), 4096);
        assert_eq!(idx.traverse_seq(5), 4096);
        assert_eq!(idx.depth(), 1);
    }

    #[test]
    fn bulk_build_routes_keys_to_covering_leaves() {
        let idx = build(100);
        assert!(idx.depth() >= 2);
        for key in [1u64, 10, 11, 55, 100, 999, 1000] {
            let expect = 1000 * key.div_ceil(10).clamp(1, 100);
            assert_eq!(idx.traverse_tm(key), expect, "key {key}");
            assert_eq!(idx.traverse_seq(key), expect, "key {key} (seq)");
        }
        // Keys beyond every separator land in the last leaf.
        assert_eq!(idx.traverse_tm(u64::MAX), 100_000);
    }

    #[test]
    fn tree_update_inserts_right_sibling() {
        // One leaf covering everything; split it at sep=50: left keeps ≤50
        // at offset 1000, right (2000) takes >50.
        let idx = InnerIndex::new(leaf_ref(1000));
        idx.tree_update(50, leaf_ref(2000));
        assert_eq!(idx.traverse_tm(50), 1000);
        assert_eq!(idx.traverse_tm(51), 2000);
        assert_eq!(idx.depth(), 2);
    }

    #[test]
    fn many_sequential_splits_grow_multiple_levels() {
        // Start with one leaf at 1000 covering all keys, then split off
        // leaves 2000.. so leaf i covers (10(i-1), 10i].
        let idx = InnerIndex::new(leaf_ref(1000));
        let n = 200u64;
        // Each split: the leftover left leaf keeps ≤ sep; the new right
        // leaf covers the rest. Split from the right edge inward.
        for i in (1..n).rev() {
            idx.tree_update(i * 10, leaf_ref((i + 1) * 1000));
        }
        assert!(idx.depth() >= 3, "depth {}", idx.depth());
        for key in 1..=(n * 10) {
            let expect = 1000 * key.div_ceil(10).clamp(1, n);
            assert_eq!(idx.traverse_tm(key), expect, "key {key}");
        }
    }

    #[test]
    fn replace_child_swaps_only_on_match() {
        let idx = build(10);
        // Leaf covering key 35 is leaf 4 (offset 4000).
        assert!(idx.replace_child(35, leaf_ref(4000), leaf_ref(9_990_000)));
        assert_eq!(idx.traverse_tm(35), 9_990_000);
        // Stale expectation must fail and leave things untouched.
        assert!(!idx.replace_child(35, leaf_ref(4000), leaf_ref(123)));
        assert_eq!(idx.traverse_tm(35), 9_990_000);
    }

    #[test]
    fn replace_child_at_leaf_root() {
        let idx = InnerIndex::new(leaf_ref(500));
        assert!(idx.replace_child(7, leaf_ref(500), leaf_ref(600)));
        assert_eq!(idx.traverse_tm(7), 600);
    }

    #[test]
    fn concurrent_traversals_during_updates_always_route_validly() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let idx = Arc::new(InnerIndex::new(leaf_ref(1000)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for t in 0..2 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut x = 12345u64 + t;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = x % 2000;
                    let off = idx.traverse_tm(key);
                    // Offsets are only ever multiples of 1000 in this test.
                    assert_eq!(off % 1000, 0);
                    assert!(off >= 1000);
                }
            }));
        }
        // Writer: carve 2000 keys into 200 leaves right-to-left.
        for i in (1..200u64).rev() {
            idx.tree_update(i * 10, leaf_ref((i + 1) * 1000));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // Final routing is exact.
        for key in 1..=2000u64 {
            let expect = 1000 * key.div_ceil(10).clamp(1, 200);
            assert_eq!(idx.traverse_seq(key), expect);
        }
    }

    #[test]
    fn bulk_build_single_chunk_sizes() {
        for n in [1usize, 2, 31, 32, 33, 64, 65] {
            let idx = build(n);
            for i in 1..=n as u64 {
                assert_eq!(idx.traverse_tm(i * 10), i * 1000, "n={n} key={}", i * 10);
                assert_eq!(idx.traverse_tm(i * 10 - 9), i * 1000);
            }
        }
    }

    #[test]
    fn traverse_cached_without_cache_is_traverse_tm() {
        let idx = build(50);
        for key in [1u64, 123, 400, 999] {
            assert_eq!(idx.traverse_cached(key), idx.traverse_tm(key));
        }
        assert_eq!(idx.descent_stats(), DescentStats::default());
    }

    #[test]
    fn cached_traversal_matches_tm_and_hits_on_reread() {
        let idx = build(100);
        idx.attach_cache(Arc::new(PageCache::new(256, None)));
        for pass in 0..2 {
            for key in (1..=1000u64).step_by(7) {
                let expect = 1000 * key.div_ceil(10).clamp(1, 100);
                assert_eq!(idx.traverse_cached(key), expect, "pass {pass} key {key}");
            }
        }
        let stats = idx.page_cache().unwrap().stats();
        assert!(stats.fills > 0, "{stats:?}");
        assert!(stats.hits > stats.misses, "cache never warmed: {stats:?}");
    }

    #[test]
    fn cached_traversal_sees_splits_immediately() {
        let idx = InnerIndex::new(leaf_ref(1000));
        idx.attach_cache(Arc::new(PageCache::new(64, None)));
        // Warm whatever there is to warm, then split repeatedly; each
        // tree_update invalidates the rewritten nodes, so the cached
        // descent must route per the newest structure every time.
        for i in (1..200u64).rev() {
            idx.tree_update(i * 10, leaf_ref((i + 1) * 1000));
            // Mid-loop, keys ≤ sep still live in the unsplit left leaf
            // (offset 1000); the new right leaf takes keys > sep.
            let boundary = i * 10;
            assert_eq!(idx.traverse_cached(boundary), 1000, "sep {boundary}");
            assert_eq!(idx.traverse_cached(boundary + 1), (i + 1) * 1000);
        }
        for key in 1..=2000u64 {
            let expect = 1000 * key.div_ceil(10).clamp(1, 200);
            assert_eq!(idx.traverse_cached(key), expect, "key {key}");
        }
        let stats = idx.page_cache().unwrap().stats();
        assert!(stats.invalidations > 0, "{stats:?}");
    }

    #[test]
    fn replace_child_invalidates_cached_parent() {
        let idx = build(10);
        idx.attach_cache(Arc::new(PageCache::new(64, None)));
        // Warm the cache on the old routing.
        assert_eq!(idx.traverse_cached(35), 4000);
        assert!(idx.replace_child(35, leaf_ref(4000), leaf_ref(9_990_000)));
        assert_eq!(idx.traverse_cached(35), 9_990_000);
        // Failed swap leaves cache and routing untouched.
        assert!(!idx.replace_child(35, leaf_ref(4000), leaf_ref(123)));
        assert_eq!(idx.traverse_cached(35), 9_990_000);
    }

    #[test]
    fn bulk_build_flushes_cache() {
        let idx = build(20);
        idx.attach_cache(Arc::new(PageCache::new(64, None)));
        for key in (1..=200u64).step_by(3) {
            idx.traverse_cached(key);
        }
        // Rebuild over different offsets: cached routing must not survive.
        let leaves: Vec<(Key, u64)> = (1..=20u64).map(|i| (i * 10, leaf_ref(i * 1000 + 77))).collect();
        idx.bulk_build(&leaves);
        for i in 1..=20u64 {
            assert_eq!(idx.traverse_cached(i * 10), i * 1000 + 77, "leaf {i}");
        }
    }

    #[test]
    fn concurrent_cached_traversals_during_updates_route_validly() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let idx = Arc::new(InnerIndex::new(leaf_ref(1000)));
        // Tiny cache: eviction, refill and invalidation all race the
        // readers below.
        idx.attach_cache(Arc::new(PageCache::new(8, None)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for t in 0..2 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut x = 9876u64 + t;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = x % 2000;
                    let off = idx.traverse_cached(key);
                    assert_eq!(off % 1000, 0);
                    assert!(off >= 1000);
                }
            }));
        }
        for i in (1..200u64).rev() {
            idx.tree_update(i * 10, leaf_ref((i + 1) * 1000));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        for key in 1..=2000u64 {
            let expect = 1000 * key.div_ceil(10).clamp(1, 200);
            assert_eq!(idx.traverse_cached(key), expect);
        }
    }
}
