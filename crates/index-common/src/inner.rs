//! The volatile internal-node tree shared by all persistent trees.
//!
//! Internal nodes are DRAM-resident `Inner` structs whose fields are
//! [`TmWord`]s, so every traversal and structural update can run inside a
//! hardware transaction (paper Table 2: `htmTreeTraverse`, `htmTreeUpdate`).
//! Child references are tagged words: leaf children carry a persistent-pool
//! offset (bit 63 set), inner children carry a DRAM pointer.
//!
//! Invariants:
//! * an inner node with `count` keys `k₀ < k₁ < … < k_{count-1}` has
//!   `count + 1` children; child `i ≤ count-1` covers keys `≤ kᵢ` (and
//!   `> k_{i-1}`), child `count` covers keys `> k_{count-1}`;
//! * separators are the **maximum key of the left subtree**, which is what
//!   recovery can reconstruct from the leaf chain (paper §5.4);
//! * inner nodes are never freed while the index is alive (splits only add
//!   nodes; leaf compaction swaps a child in place), so a transactional
//!   reader can never dereference a dangling inner pointer. All nodes are
//!   owned by a registry and freed when the [`InnerIndex`] drops.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use htm::{HtmDomain, OptimisticGate, TmWord, TxResult, Txn};
use nvm::{FrameView, PageCache, FRAME_WORDS};

use crate::{is_leaf_ref, key_head, Key, KeyBuf};

/// Maximum children per internal node.
pub const INNER_FANOUT: usize = 32;
/// Maximum separator keys per internal node.
const MAX_KEYS: usize = INNER_FANOUT - 1;

/// A volatile internal node. All fields are transactional words.
struct Inner {
    /// Number of separator keys (children = count + 1).
    count: TmWord,
    keys: [TmWord; MAX_KEYS],
    children: [TmWord; INNER_FANOUT],
}

impl Inner {
    fn new_empty() -> Box<Inner> {
        Box::new(Inner {
            count: TmWord::new(0),
            keys: std::array::from_fn(|_| TmWord::new(0)),
            children: std::array::from_fn(|_| TmWord::new(0)),
        })
    }
}

/// Separator-word layout of a byte-keyed index: `(head << 32) | arena_idx`.
///
/// Inner nodes store one 64-bit word per separator either way. A u64-keyed
/// index stores the key itself (bit-identical to the pre-codec layout); a
/// byte-keyed index packs the separator's 4-byte [`key_head`] into the high
/// half and an index into the [`SepArena`] into the low half. Word
/// comparisons then go head-first — `a >> 32` vs `b >> 32` decides whenever
/// the heads differ, which is the common case — and dereference the arena
/// for full byte strings only on head ties (counted, and exported through
/// the tree's obs `keys` section).
const SEP_HEAD_SHIFT: u32 = 32;
const SEP_IDX_MASK: u64 = (1 << SEP_HEAD_SHIFT) - 1;

/// Segment geometry of the [`SepArena`]: lazily-allocated fixed segments so
/// published slots never move (readers hold references across validation
/// windows) and growth never reallocates under a reader.
const SEP_SEG_BITS: usize = 10;
const SEP_SEG_SIZE: usize = 1 << SEP_SEG_BITS;
const SEP_MAX_SEGS: usize = 1 << 14;

/// Append-only interning store for separator byte strings.
///
/// Separators are immutable once published (a split's separator never
/// changes; rebuilds intern fresh copies), so the arena only ever appends:
/// `intern` runs under a small mutex — it is called on the split path,
/// which already serializes per leaf — while `get` is lock-free and safe
/// from transactional readers and optimistic descents. Publication piggy-
/// backs on the packed word's own publication: a reader only learns an
/// arena index from a committed/validated inner-node word, which the
/// writer stored *after* `intern` returned, and both `OnceLock` cells use
/// release/acquire internally.
/// One lazily-allocated arena segment: `SEP_SEG_SIZE` write-once slots.
type SepSeg = OnceLock<Box<[OnceLock<KeyBuf>]>>;

struct SepArena {
    segs: Box<[SepSeg]>,
    len: Mutex<u32>,
}

impl SepArena {
    fn new() -> SepArena {
        SepArena {
            segs: (0..SEP_MAX_SEGS).map(|_| OnceLock::new()).collect(),
            len: Mutex::new(0),
        }
    }

    /// Copies `bytes` into a fresh slot and returns its index.
    fn intern(&self, bytes: &[u8]) -> u32 {
        let mut len = self.len.lock().unwrap();
        let idx = *len as usize;
        assert!(idx < SEP_MAX_SEGS * SEP_SEG_SIZE, "separator arena exhausted");
        let seg = self.segs[idx >> SEP_SEG_BITS]
            .get_or_init(|| (0..SEP_SEG_SIZE).map(|_| OnceLock::new()).collect());
        seg[idx & (SEP_SEG_SIZE - 1)]
            .set(KeyBuf::from_slice(bytes))
            .expect("fresh arena slot already filled");
        *len += 1;
        idx as u32
    }

    /// The separator bytes at `idx`. Only reachable through a published
    /// packed word, so the slot is always filled.
    #[inline]
    fn get(&self, idx: u32) -> &[u8] {
        self.segs[idx as usize >> SEP_SEG_BITS]
            .get()
            .expect("arena segment for published index")[idx as usize & (SEP_SEG_SIZE - 1)]
            .get()
            .expect("published separator slot")
            .as_slice()
    }
}

/// A key being compared against stored separator words during a descent.
///
/// `U64` and `Bytes` are search probes from the two public APIs; `Word` is
/// a stored separator word itself (used when `tree_update` compares its
/// pending separator — already in word form — against a node's words).
/// In a u64-keyed index `Word(w)` behaves exactly like `U64(w)`.
#[derive(Clone, Copy)]
enum Cmp<'a> {
    U64(u64),
    Bytes { head: u32, key: &'a [u8] },
    Word(u64),
}

impl<'a> Cmp<'a> {
    #[inline]
    fn bytes(key: &'a [u8]) -> Cmp<'a> {
        Cmp::Bytes { head: key_head(key), key }
    }
}

/// Best-effort prefetch of the cache lines starting at `p` (no-op on
/// non-x86_64 targets). Used on the chosen child during descent so the next
/// level's header and first keys are in flight while this level finishes.
#[inline(always)]
fn prefetch_node<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        // First line: `count` + the first keys; second line: more keys —
        // together they cover everything a fanout-32 binary search touches
        // in its first few probes.
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
        _mm_prefetch::<_MM_HINT_T0>((p as *const i8).wrapping_add(64));
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Cached-frame image of an [`Inner`]: word 0 = count, words 1..=31 =
/// keys, words 32..63 = children. One node fills one frame exactly
/// ([`FRAME_WORDS`] = 64).
const _: () = assert!(FRAME_WORDS == 1 + MAX_KEYS + INNER_FANOUT);

/// Branching binary search over a node image in frame-word layout,
/// returning the child covering the probe key. `word(i)` supplies the i-th
/// image word (from a [`FrameView`] or a local snapshot); `le(w)` decides
/// "probe ≤ separator word `w`" (plain integer compare for u64 keys,
/// head-then-bytes for byte keys).
#[inline]
fn route_words(word: impl Fn(usize) -> u64, le: impl Fn(u64) -> bool) -> u64 {
    let cnt = (word(0) as usize).min(MAX_KEYS);
    let (mut lo, mut hi) = (0usize, cnt);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if le(word(1 + mid)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    word(1 + MAX_KEYS + lo)
}

/// Copies a node into frame-word layout with plain acquire loads. Only a
/// consistent copy may be used or published — callers bracket this with
/// an [`OptimisticGate`] read window.
fn snapshot_node(inner: &Inner) -> [u64; FRAME_WORDS] {
    let mut w = [0u64; FRAME_WORDS];
    w[0] = inner.count.load_direct();
    for (dst, src) in w[1..=MAX_KEYS].iter_mut().zip(inner.keys.iter()) {
        *dst = src.load_direct();
    }
    for (dst, src) in w[1 + MAX_KEYS..].iter_mut().zip(inner.children.iter()) {
        *dst = src.load_direct();
    }
    w
}

/// The shared internal-node index: a map from keys to persistent leaf
/// offsets. See the module docs for structure and invariants.
pub struct InnerIndex {
    root: TmWord,
    domain: HtmDomain,
    /// Every inner node ever allocated (including nodes orphaned by aborted
    /// transactions or recovery rebuilds); freed on drop.
    registry: Mutex<Vec<*mut Inner>>,
    /// When set, [`InnerIndex::traverse_seq`] runs the original branching
    /// binary search with no prefetching. Benchmark-only facility: it lets
    /// one binary produce honest before/after numbers for the descent
    /// rewrite (`repro bench-json`). Per-index on purpose: co-resident
    /// trees (shards of a [`crate::ShardedIndex`]) must not be able to flip
    /// each other's descent path through a process-global. It only affects
    /// the quiescent sequential traversal.
    legacy_seq: AtomicBool,
    /// Optional DRAM page cache over the inner nodes; when attached,
    /// [`InnerIndex::traverse_cached`] serves descents from cached frames
    /// with optimistic version validation instead of running the whole
    /// walk inside the software TM.
    cache: OnceLock<Arc<PageCache>>,
    /// Writer-presence seqlock bracketing every structure modification, so
    /// cache fills and direct reads can validate that their
    /// non-transactional snapshot of a node was not torn by a concurrent
    /// `tree_update`/`replace_child`/`bulk_build`.
    gate: OptimisticGate,
    /// Cached descents that restarted from the root (version or gate
    /// validation failed mid-walk).
    descent_restarts: AtomicU64,
    /// Cached descents that exhausted their restart budget and fell back
    /// to the transactional walk.
    descent_tm_fallbacks: AtomicU64,
    /// Byte-key mode: separator words are `(head, arena index)` pairs into
    /// this arena (see [`SEP_HEAD_SHIFT`]). `None` = u64 mode, where words
    /// are the keys themselves and none of the byte machinery is touched.
    arena: Option<SepArena>,
    /// Comparisons whose 4-byte heads tied and had to read full separator
    /// bytes from the arena (byte mode only).
    head_ties: AtomicU64,
}

/// Restart taxonomy of [`InnerIndex::traverse_cached`]: how often the
/// optimistic walk had to start over, and how often it gave up and used
/// the transactional descent. (Per-frame validation failures are counted
/// by the cache itself as `read_restarts`.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DescentStats {
    /// Full from-the-root restarts of the optimistic descent.
    pub restarts: u64,
    /// Descents that fell back to [`InnerIndex::traverse_tm`].
    pub tm_fallbacks: u64,
}

/// Full-descent restart budget before falling back to the TM walk. Each
/// restart re-reads the root, so contention with a burst of splits
/// resolves in a handful of iterations; the fallback is for pathological
/// writer storms.
const MAX_DESCENT_RESTARTS: usize = 8;

// SAFETY: the registry's raw pointers are only dereferenced through the
// transactional protocol (valid for the index lifetime) and freed with
// exclusive access in Drop.
unsafe impl Send for InnerIndex {}
unsafe impl Sync for InnerIndex {}

impl InnerIndex {
    /// Creates an index whose single child is the given leaf reference
    /// (use [`crate::leaf_ref`] to build it).
    pub fn new(initial_child: u64) -> Self {
        Self::with_arena(initial_child, None)
    }

    /// Creates a **byte-keyed** index: separators are byte strings, routed
    /// via the `*_k` methods, stored as packed `(head, arena)` words. The
    /// u64 methods (`traverse_tm`, `tree_update`, …) must not be used on a
    /// byte-keyed index — their raw-integer comparisons would misroute.
    pub fn new_bytes(initial_child: u64) -> Self {
        Self::with_arena(initial_child, Some(SepArena::new()))
    }

    fn with_arena(initial_child: u64, arena: Option<SepArena>) -> Self {
        assert!(is_leaf_ref(initial_child), "root must start as a leaf");
        InnerIndex {
            root: TmWord::new(initial_child),
            domain: HtmDomain::new(),
            registry: Mutex::new(Vec::new()),
            legacy_seq: AtomicBool::new(false),
            cache: OnceLock::new(),
            gate: OptimisticGate::new(),
            descent_restarts: AtomicU64::new(0),
            descent_tm_fallbacks: AtomicU64::new(0),
            arena,
            head_ties: AtomicU64::new(0),
        }
    }

    /// Whether this index routes byte-string keys ([`InnerIndex::new_bytes`]).
    pub fn is_byte_keyed(&self) -> bool {
        self.arena.is_some()
    }

    /// Comparisons that fell back to full separator bytes on a 4-byte head
    /// tie (always 0 for a u64-keyed index).
    pub fn head_tie_fallbacks(&self) -> u64 {
        self.head_ties.load(Ordering::Relaxed)
    }

    /// "probe ≤ stored separator word": the one comparison the whole
    /// descent machinery is built from. u64 mode compares integers; byte
    /// mode compares 4-byte heads and touches the arena only on a tie.
    #[inline]
    fn cmp_le(&self, c: Cmp<'_>, w: u64) -> bool {
        match (c, &self.arena) {
            (Cmp::U64(k), _) | (Cmp::Word(k), None) => k <= w,
            (Cmp::Bytes { head, key }, Some(arena)) => {
                let wh = (w >> SEP_HEAD_SHIFT) as u32;
                if head != wh {
                    return head < wh;
                }
                self.head_ties.fetch_add(1, Ordering::Relaxed);
                key <= arena.get((w & SEP_IDX_MASK) as u32)
            }
            (Cmp::Word(a), Some(arena)) => {
                let (ah, wh) = ((a >> SEP_HEAD_SHIFT) as u32, (w >> SEP_HEAD_SHIFT) as u32);
                if ah != wh {
                    return ah < wh;
                }
                self.head_ties.fetch_add(1, Ordering::Relaxed);
                arena.get((a & SEP_IDX_MASK) as u32) <= arena.get((w & SEP_IDX_MASK) as u32)
            }
            (Cmp::Bytes { .. }, None) => {
                unreachable!("byte probe on a u64-keyed index")
            }
        }
    }

    /// Interns `sep` and returns its packed separator word (byte mode).
    fn pack_sep(&self, sep: &[u8]) -> u64 {
        let arena = self.arena.as_ref().expect("pack_sep needs a byte-keyed index");
        let idx = arena.intern(sep);
        ((key_head(sep) as u64) << SEP_HEAD_SHIFT) | idx as u64
    }

    /// Attaches a DRAM page cache; [`InnerIndex::traverse_cached`] uses it
    /// from then on. One-shot: a second attach is ignored (the cache is
    /// wired at tree construction, before any concurrent use).
    pub fn attach_cache(&self, cache: Arc<PageCache>) {
        let _ = self.cache.set(cache);
    }

    /// The attached page cache, if any.
    pub fn page_cache(&self) -> Option<&Arc<PageCache>> {
        self.cache.get()
    }

    /// Restart counters of the cached descent.
    pub fn descent_stats(&self) -> DescentStats {
        DescentStats {
            restarts: self.descent_restarts.load(Ordering::Relaxed),
            tm_fallbacks: self.descent_tm_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Selects the pre-rewrite sequential descent **for this index only**
    /// (see the `legacy_seq` field docs). Replaces the former process-global
    /// switch, which would have coupled co-resident trees.
    pub fn set_legacy_seq_descent(&self, on: bool) {
        self.legacy_seq.store(on, Ordering::Relaxed);
    }

    /// The HTM domain shared by this tree (leaf-level HTM functions of the
    /// owning tree run in the same domain, sharing one fallback lock per
    /// tree as real per-structure elision code would).
    pub fn domain(&self) -> &HtmDomain {
        &self.domain
    }

    /// Allocates an inner node owned by the registry.
    ///
    /// Allocation may happen inside a transaction body; if that attempt
    /// aborts, the node is simply garbage until the index drops — wasted
    /// memory, never a dangling pointer.
    fn alloc_inner(&self) -> *mut Inner {
        let ptr = Box::into_raw(Inner::new_empty());
        self.registry.lock().unwrap().push(ptr);
        ptr
    }

    #[inline]
    fn deref(&self, node_ref: u64) -> &Inner {
        debug_assert!(!is_leaf_ref(node_ref));
        // SAFETY: non-leaf child references are only ever written as valid
        // `Inner` pointers from `alloc_inner`, and inners live as long as
        // `self` (registry + Drop).
        unsafe { &*(node_ref as *const Inner) }
    }

    /// First child index whose subtree may contain `key`, as a branch-light
    /// lower bound: the loop trip count depends only on `cnt`, and the data
    /// comparison feeds an arithmetic select instead of a hard-to-predict
    /// branch, so a descent costs no key-comparison mispredictions.
    ///
    /// Invariant: the answer lies in `[lo, lo + len - 1]` over the `cnt + 1`
    /// candidate children; probing `keys[lo + half - 1]` decides whether it
    /// is in the upper `half` (`key` greater) or the lower `len - half`.
    fn search_child<'t>(&'t self, txn: &mut Txn<'t>, inner: &'t Inner, c: Cmp<'t>) -> TxResult<usize> {
        let cnt = (txn.read(&inner.count)? as usize).min(MAX_KEYS);
        let mut lo = 0usize;
        let mut len = cnt + 1;
        while len > 1 {
            let half = len / 2;
            let k = txn.read(&inner.keys[lo + half - 1])?;
            lo += usize::from(!self.cmp_le(c, k)) * half;
            len -= half;
        }
        Ok(lo)
    }

    /// `htmTreeTraverse` body: walks from the root to the leaf whose range
    /// covers `key`, inside the caller's transaction. Returns the leaf
    /// offset. Composable: FPTree reads the leaf's lock word in the same
    /// transaction.
    pub fn traverse_in<'t>(&'t self, txn: &mut Txn<'t>, key: Key) -> TxResult<u64> {
        self.traverse_in_c(txn, Cmp::U64(key))
    }

    /// [`InnerIndex::traverse_in`] over a byte-string key (byte mode).
    pub fn traverse_in_k<'t>(&'t self, txn: &mut Txn<'t>, key: &'t [u8]) -> TxResult<u64> {
        self.traverse_in_c(txn, Cmp::bytes(key))
    }

    fn traverse_in_c<'t>(&'t self, txn: &mut Txn<'t>, c: Cmp<'t>) -> TxResult<u64> {
        let mut node_ref = txn.read(&self.root)?;
        while !is_leaf_ref(node_ref) {
            let inner = self.deref(node_ref);
            let idx = self.search_child(txn, inner, c)?;
            node_ref = txn.read(&inner.children[idx])?;
            if !is_leaf_ref(node_ref) {
                prefetch_node(node_ref as *const Inner);
            }
        }
        Ok(crate::leaf_off(node_ref))
    }

    /// `htmTreeTraverse` as a standalone HTM function (paper Table 2).
    pub fn traverse_tm(&self, key: Key) -> u64 {
        debug_assert!(!self.is_byte_keyed(), "u64 traverse on a byte-keyed index");
        self.domain.atomic(|txn| self.traverse_in(txn, key))
    }

    /// [`InnerIndex::traverse_tm`] over a byte-string key (byte mode).
    pub fn traverse_tm_k(&self, key: &[u8]) -> u64 {
        self.domain.atomic(|txn| self.traverse_in_k(txn, key))
    }

    /// Optimistic descent over the DRAM page cache: each inner level is
    /// resolved from a version-validated cached frame (or a gate-validated
    /// direct read on a miss), and the software TM is entered only by the
    /// caller at the leaf. Falls back to [`InnerIndex::traverse_tm`] when
    /// no cache is attached or the restart budget is exhausted.
    ///
    /// ## Why a torn or stale inner read cannot reach a wrong leaf
    ///
    /// Every child value this walk acts on comes from a **validated
    /// snapshot**: cache hits re-check the frame's PageState version after
    /// the payload reads, and fills/direct reads re-check the index's
    /// [`OptimisticGate`] (no structure modification overlapped the copy).
    /// A validated snapshot is some *consistent past state* of the node,
    /// so the child is a reference that node really held: inner nodes are
    /// never freed while the index lives (registry + Drop), so it is
    /// dereferenceable, and nodes never change level, so the walk strictly
    /// descends and terminates. The snapshot may still be *stale* —
    /// routing as of before a concurrent split — in which case the walk
    /// lands on the split's left leaf; callers already handle that: every
    /// tree operation re-checks the leaf's fence key under its own leaf
    /// transaction and hops/retries, exactly as they must for the plain
    /// transactional descent racing a split that commits between the
    /// traverse and the leaf access.
    pub fn traverse_cached(&self, key: Key) -> u64 {
        debug_assert!(!self.is_byte_keyed(), "u64 traverse on a byte-keyed index");
        self.traverse_cached_c(Cmp::U64(key))
    }

    /// [`InnerIndex::traverse_cached`] over a byte-string key (byte mode).
    pub fn traverse_cached_k(&self, key: &[u8]) -> u64 {
        self.traverse_cached_c(Cmp::bytes(key))
    }

    fn traverse_cached_c(&self, c: Cmp<'_>) -> u64 {
        let Some(cache) = self.cache.get() else {
            return self.domain.atomic(|txn| self.traverse_in_c(txn, c));
        };
        'restart: for attempt in 0..MAX_DESCENT_RESTARTS {
            if attempt > 0 {
                self.descent_restarts.fetch_add(1, Ordering::Relaxed);
            }
            // Either the old or the new root is a valid entry point (root
            // growth installs a fully-built node before swinging the word),
            // so a plain acquire load suffices here.
            let mut node_ref = self.root.load_direct();
            // Per-descent trace accounting (levels, cache hits/misses);
            // plain locals, handed to the sampled span only at the end.
            let (mut depth, mut hits, mut misses) = (0u32, 0u32, 0u32);
            while !is_leaf_ref(node_ref) {
                match self.cached_child(cache, node_ref, c) {
                    Some((child, hit)) => {
                        depth += 1;
                        if hit {
                            hits += 1;
                        } else {
                            misses += 1;
                        }
                        node_ref = child;
                        if !is_leaf_ref(node_ref) {
                            prefetch_node(node_ref as *const Inner);
                        }
                    }
                    None => continue 'restart,
                }
            }
            obs::note_descent(depth, hits, misses);
            return crate::leaf_off(node_ref);
        }
        self.descent_tm_fallbacks.fetch_add(1, Ordering::Relaxed);
        self.domain.atomic(|txn| self.traverse_in_c(txn, c))
    }

    /// Resolves one descent step through the cache: hit → route from the
    /// validated frame; miss → fill a frame from a gate-validated node
    /// snapshot (serving the step from the same snapshot); no frame
    /// available → gate-validated direct read. `None` means validation
    /// failed somewhere and the descent must restart from the root; the
    /// returned flag says whether the step was served from a cached
    /// frame (trace accounting).
    fn cached_child(&self, cache: &PageCache, node_ref: u64, c: Cmp<'_>) -> Option<(u64, bool)> {
        if let Some(child) =
            cache.optimistic_read(node_ref, |v: &FrameView<'_>| route_words(|i| v.word(i), |w| self.cmp_le(c, w)))
        {
            return Some((child, true));
        }
        let inner = self.deref(node_ref);
        if let Some(guard) = cache.begin_fill(node_ref) {
            // The guard has already published the tag (SeqCst); only now is
            // the gate token taken. An invalidator that misses our tag in
            // its scan therefore retired *before* the token was read, and
            // the snapshot below sees its modification — a stale image can
            // never be committed past an invalidation (see nvm::cache docs).
            let Some(token) = self.gate.begin_read() else {
                guard.abandon();
                return None;
            };
            let words = snapshot_node(inner);
            if self.gate.validate(token) {
                let child = route_words(|i| words[i], |w| self.cmp_le(c, w));
                guard.commit(&words);
                return Some((child, false));
            }
            guard.abandon();
            return None;
        }
        // Cache full of busy frames: read the authoritative node directly
        // under the gate. Cheaper than a TM descent and keeps the miss
        // path non-blocking.
        let token = self.gate.begin_read()?;
        let cnt = (inner.count.load_direct() as usize).min(MAX_KEYS);
        let (mut lo, mut hi) = (0usize, cnt);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cmp_le(c, inner.keys[mid].load_direct()) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let child = inner.children[lo].load_direct();
        self.gate.validate(token).then_some((child, false))
    }

    /// Sequential traversal for quiescent phases (single-threaded
    /// benchmarks, recovery verification). Must not run concurrently with
    /// transactional structure updates.
    pub fn traverse_seq(&self, key: Key) -> u64 {
        debug_assert!(!self.is_byte_keyed(), "u64 traverse on a byte-keyed index");
        self.traverse_seq_c(Cmp::U64(key))
    }

    /// [`InnerIndex::traverse_seq`] over a byte-string key (byte mode).
    pub fn traverse_seq_k(&self, key: &[u8]) -> u64 {
        self.traverse_seq_c(Cmp::bytes(key))
    }

    fn traverse_seq_c(&self, c: Cmp<'_>) -> u64 {
        if self.legacy_seq.load(Ordering::Relaxed) {
            return self.traverse_seq_legacy(c);
        }
        let mut node_ref = self.root.load_seq();
        while !is_leaf_ref(node_ref) {
            let inner = self.deref(node_ref);
            let cnt = (inner.count.load_seq() as usize).min(MAX_KEYS);
            // Branching binary search, deliberately: with L2-resident inner
            // nodes the predictor's speculation runs the next probe's load
            // early, which beats a CMOV lower bound whose address chain is
            // serial (measured ~5% on find; see `descent_ab` in bench).
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.cmp_le(c, inner.keys[mid].load_seq()) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            node_ref = inner.children[lo].load_seq();
            if !is_leaf_ref(node_ref) {
                prefetch_node(node_ref as *const Inner);
            }
        }
        crate::leaf_off(node_ref)
    }

    /// The sequential descent as it was before the branch-light rewrite:
    /// a branching binary search per level and no prefetch. Kept verbatim
    /// so `repro bench-json` can measure the rewrite's effect.
    fn traverse_seq_legacy(&self, c: Cmp<'_>) -> u64 {
        let mut node_ref = self.root.load_seq();
        while !is_leaf_ref(node_ref) {
            let inner = self.deref(node_ref);
            let cnt = (inner.count.load_seq() as usize).min(MAX_KEYS);
            let (mut lo, mut hi) = (0usize, cnt);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.cmp_le(c, inner.keys[mid].load_seq()) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            node_ref = inner.children[lo].load_seq();
        }
        crate::leaf_off(node_ref)
    }

    /// `htmTreeUpdate` (paper Table 2): after a leaf split, registers the
    /// new right sibling. `sep` is the maximum key remaining in the old
    /// (left) leaf; `new_child` (a leaf reference) covers keys `> sep` up to
    /// the old leaf's previous upper bound.
    pub fn tree_update(&self, sep: Key, new_child: u64) {
        assert!(!self.is_byte_keyed(), "u64 tree_update on a byte-keyed index");
        self.tree_update_word(sep, new_child)
    }

    /// `htmTreeUpdate` over a byte-string separator (byte mode): interns
    /// `sep` into the arena **before** entering the transaction — interning
    /// takes a mutex, and the transactional body must stay side-effect-free
    /// so it can abort and retry — then runs the same word-level update.
    /// An aborted-and-retried transaction reuses the interned word; a
    /// transaction that never commits merely leaks one arena slot.
    pub fn tree_update_k(&self, sep: &[u8], new_child: u64) {
        let word = self.pack_sep(sep);
        self.tree_update_word(word, new_child)
    }

    fn tree_update_word(&self, sep_word: u64, new_child: u64) {
        self.gate.writer_enter();
        let touched = self.domain.atomic(|txn| self.tree_update_in(txn, sep_word, new_child));
        self.gate.writer_exit();
        // Invalidate after the writer bracket closes: the scan's SeqCst tag
        // loads then see (or provably post-date) every in-flight fill, so
        // no stale frame survives (nvm::cache module docs).
        if let Some(cache) = self.cache.get() {
            for node_ref in touched {
                cache.invalidate(node_ref);
            }
        }
    }

    /// Transactional body of [`InnerIndex::tree_update`]. `sep` is a
    /// separator **word** (the key itself in u64 mode, a packed
    /// head+arena-index in byte mode); all comparisons go through
    /// [`Cmp::Word`], which resolves identically in both modes. Returns the
    /// references of pre-existing inner nodes it rewrote in place, for
    /// cache invalidation; nodes freshly allocated inside the transaction
    /// (split right halves, grown roots) cannot be cached yet and are
    /// omitted. The vector is rebuilt on every abort/retry, so it reflects
    /// exactly the committed execution.
    fn tree_update_in<'t>(&'t self, txn: &mut Txn<'t>, sep: u64, new_child: u64) -> TxResult<Vec<u64>> {
        let mut touched: Vec<u64> = Vec::with_capacity(4);
        // Descend to the leaf covering `sep`, recording the path.
        let mut path: Vec<(&'t Inner, usize)> = Vec::with_capacity(8);
        let mut node_ref = txn.read(&self.root)?;
        while !is_leaf_ref(node_ref) {
            let inner = self.deref(node_ref);
            let idx = self.search_child(txn, inner, Cmp::Word(sep))?;
            path.push((inner, idx));
            node_ref = txn.read(&inner.children[idx])?;
        }

        // Insert (sep, new_child) to the right of the found child, walking
        // back up on overflow.
        let mut pending_key = sep;
        let mut pending_child = new_child;
        loop {
            let Some((inner, idx)) = path.pop() else {
                // Split reached the root (or the root is a leaf): grow.
                let old_root = txn.read(&self.root)?;
                let new_root = self.alloc_inner();
                let nr = self.deref(new_root as u64);
                nr.count.store_seq(1);
                nr.keys[0].store_seq(pending_key);
                nr.children[0].store_seq(old_root);
                nr.children[1].store_seq(pending_child);
                txn.write(&self.root, new_root as u64)?;
                return Ok(touched);
            };
            let cnt = (txn.read(&inner.count)? as usize).min(MAX_KEYS);
            if cnt < MAX_KEYS {
                // Room: shift keys[idx..cnt] and children[idx+1..cnt+1]
                // right by one, then place the new separator and child.
                let mut i = cnt;
                while i > idx {
                    let k = txn.read(&inner.keys[i - 1])?;
                    txn.write(&inner.keys[i], k)?;
                    let c = txn.read(&inner.children[i])?;
                    txn.write(&inner.children[i + 1], c)?;
                    i -= 1;
                }
                txn.write(&inner.keys[idx], pending_key)?;
                txn.write(&inner.children[idx + 1], pending_child)?;
                txn.write(&inner.count, (cnt + 1) as u64)?;
                touched.push(inner as *const Inner as u64);
                return Ok(touched);
            }

            // Full inner node: split it. Left keeps keys[0..mid] and
            // children[0..mid+1]; right takes keys[mid+1..] and
            // children[mid+1..]; keys[mid] moves up.
            let mid = cnt / 2;
            let up_key = txn.read(&inner.keys[mid])?;
            let right_ptr = self.alloc_inner();
            let right = self.deref(right_ptr as u64);
            let right_cnt = cnt - mid - 1;
            for i in 0..right_cnt {
                right.keys[i].store_seq(txn.read(&inner.keys[mid + 1 + i])?);
            }
            for i in 0..=right_cnt {
                right.children[i].store_seq(txn.read(&inner.children[mid + 1 + i])?);
            }
            right.count.store_seq(right_cnt as u64);
            txn.write(&inner.count, mid as u64)?;
            touched.push(inner as *const Inner as u64);

            // Now insert the pending entry into the proper half. The fresh
            // right half is private until this transaction commits, so it
            // can be edited with plain stores.
            if self.cmp_le(Cmp::Word(pending_key), up_key) {
                debug_assert!(idx <= mid);
                let mut i = mid;
                while i > idx {
                    let k = txn.read(&inner.keys[i - 1])?;
                    txn.write(&inner.keys[i], k)?;
                    let c = txn.read(&inner.children[i])?;
                    txn.write(&inner.children[i + 1], c)?;
                    i -= 1;
                }
                txn.write(&inner.keys[idx], pending_key)?;
                txn.write(&inner.children[idx + 1], pending_child)?;
                txn.write(&inner.count, (mid + 1) as u64)?;
            } else {
                let ridx = idx - (mid + 1);
                let mut i = right_cnt;
                while i > ridx {
                    right.keys[i].store_seq(right.keys[i - 1].load_seq());
                    right.children[i + 1].store_seq(right.children[i].load_seq());
                    i -= 1;
                }
                right.keys[ridx].store_seq(pending_key);
                right.children[ridx + 1].store_seq(pending_child);
                right.count.store_seq((right_cnt + 1) as u64);
            }

            // Propagate (up_key, right half) to the parent.
            pending_key = up_key;
            pending_child = right_ptr as u64;
        }
    }

    /// Swaps the child covering `key` from `old_child` to `new_child`
    /// (leaf compaction). Returns false if the current child is not
    /// `old_child` (someone else restructured first).
    pub fn replace_child(&self, key: Key, old_child: u64, new_child: u64) -> bool {
        debug_assert!(!self.is_byte_keyed(), "u64 replace_child on a byte-keyed index");
        self.replace_child_c(Cmp::U64(key), old_child, new_child)
    }

    /// [`InnerIndex::replace_child`] routed by a byte-string key (byte
    /// mode). Compaction swaps a child in place without adding separators,
    /// so nothing is interned.
    pub fn replace_child_k(&self, key: &[u8], old_child: u64, new_child: u64) -> bool {
        self.replace_child_c(Cmp::bytes(key), old_child, new_child)
    }

    fn replace_child_c(&self, c: Cmp<'_>, old_child: u64, new_child: u64) -> bool {
        self.gate.writer_enter();
        let swapped_in = self.domain.atomic(|txn| {
            let mut parent: Option<(&Inner, usize)> = None;
            let mut node_ref = txn.read(&self.root)?;
            while !is_leaf_ref(node_ref) {
                let inner = self.deref(node_ref);
                let idx = self.search_child(txn, inner, c)?;
                parent = Some((inner, idx));
                node_ref = txn.read(&inner.children[idx])?;
            }
            if node_ref != old_child {
                return Ok(None);
            }
            match parent {
                Some((inner, idx)) => {
                    txn.write(&inner.children[idx], new_child)?;
                    Ok(Some(Some(inner as *const Inner as u64)))
                }
                None => {
                    txn.write(&self.root, new_child)?;
                    Ok(Some(None))
                }
            }
        });
        self.gate.writer_exit();
        match swapped_in {
            Some(parent_ref) => {
                if let (Some(cache), Some(node_ref)) = (self.cache.get(), parent_ref) {
                    cache.invalidate(node_ref);
                }
                true
            }
            None => false,
        }
    }

    /// Rebuilds the internal levels bottom-up from `(max_key, leaf_ref)`
    /// pairs sorted by key (paper §5.4 recovery). Quiescent phases only.
    ///
    /// Old inner nodes stay in the registry (freed on drop); the root is
    /// swapped atomically at the end so late readers see a coherent tree.
    pub fn bulk_build(&self, leaves: &[(Key, u64)]) {
        assert!(!self.is_byte_keyed(), "u64 bulk_build on a byte-keyed index");
        self.bulk_build_words(leaves);
    }

    /// [`InnerIndex::bulk_build`] from `(max_key_bytes, leaf_ref)` pairs
    /// sorted lexicographically (byte mode). Every max key is interned as a
    /// separator word first; rebuilds therefore append to the arena, whose
    /// old slots are reclaimed only when the index drops — the same
    /// "orphan until drop" lifetime the inner registry already has.
    pub fn bulk_build_k(&self, leaves: &[(KeyBuf, u64)]) {
        debug_assert!(
            leaves.windows(2).all(|w| w[0].0 < w[1].0),
            "byte-keyed leaves must be strictly sorted"
        );
        let words: Vec<(u64, u64)> =
            leaves.iter().map(|(k, r)| (self.pack_sep(k.as_slice()), *r)).collect();
        self.bulk_build_words(&words);
    }

    fn bulk_build_words(&self, leaves: &[(u64, u64)]) {
        self.gate.writer_enter();
        self.bulk_build_inner(leaves);
        self.gate.writer_exit();
        // Bulk rebuilds orphan every previously-cached node; flush them all.
        if let Some(cache) = self.cache.get() {
            cache.invalidate_all();
        }
    }

    fn bulk_build_inner(&self, leaves: &[(u64, u64)]) {
        assert!(!leaves.is_empty(), "bulk_build needs at least one leaf");
        debug_assert!(
            leaves.windows(2).all(|w| !self.cmp_le(Cmp::Word(w[1].0), w[0].0)),
            "leaves must be sorted"
        );
        let mut level: Vec<(u64, u64)> = leaves.to_vec();
        while level.len() > 1 {
            let mut next: Vec<(u64, u64)> = Vec::with_capacity(level.len().div_ceil(INNER_FANOUT));
            for group in level.chunks(INNER_FANOUT) {
                let node_ptr = self.alloc_inner();
                let node = self.deref(node_ptr as u64);
                for (i, (k, r)) in group.iter().enumerate() {
                    node.children[i].store_seq(*r);
                    if i + 1 < group.len() {
                        node.keys[i].store_seq(*k);
                    }
                }
                node.count.store_seq((group.len() - 1) as u64);
                next.push((group.last().unwrap().0, node_ptr as u64));
            }
            level = next;
        }
        self.root.store_nontx(level[0].1);
    }

    /// Depth of the tree (1 = root is a leaf). Quiescent diagnostic.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node_ref = self.root.load_seq();
        while !is_leaf_ref(node_ref) {
            d += 1;
            node_ref = self.deref(node_ref).children[0].load_seq();
        }
        d
    }
}

impl Drop for InnerIndex {
    fn drop(&mut self) {
        for ptr in self.registry.lock().unwrap().drain(..) {
            // SAFETY: allocated by Box::into_raw in alloc_inner; exclusive
            // access here (&mut self).
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf_ref;

    /// Builds an index over fake leaves with max keys 10, 20, …, n*10 and
    /// offsets 1000, 2000, ….
    fn build(n: usize) -> InnerIndex {
        let leaves: Vec<(Key, u64)> = (1..=n as u64).map(|i| (i * 10, leaf_ref(i * 1000))).collect();
        let idx = InnerIndex::new(leaves[0].1);
        idx.bulk_build(&leaves);
        idx
    }

    #[test]
    fn single_leaf_traversal() {
        let idx = InnerIndex::new(leaf_ref(4096));
        assert_eq!(idx.traverse_tm(0), 4096);
        assert_eq!(idx.traverse_tm(u64::MAX), 4096);
        assert_eq!(idx.traverse_seq(5), 4096);
        assert_eq!(idx.depth(), 1);
    }

    #[test]
    fn bulk_build_routes_keys_to_covering_leaves() {
        let idx = build(100);
        assert!(idx.depth() >= 2);
        for key in [1u64, 10, 11, 55, 100, 999, 1000] {
            let expect = 1000 * key.div_ceil(10).clamp(1, 100);
            assert_eq!(idx.traverse_tm(key), expect, "key {key}");
            assert_eq!(idx.traverse_seq(key), expect, "key {key} (seq)");
        }
        // Keys beyond every separator land in the last leaf.
        assert_eq!(idx.traverse_tm(u64::MAX), 100_000);
    }

    #[test]
    fn tree_update_inserts_right_sibling() {
        // One leaf covering everything; split it at sep=50: left keeps ≤50
        // at offset 1000, right (2000) takes >50.
        let idx = InnerIndex::new(leaf_ref(1000));
        idx.tree_update(50, leaf_ref(2000));
        assert_eq!(idx.traverse_tm(50), 1000);
        assert_eq!(idx.traverse_tm(51), 2000);
        assert_eq!(idx.depth(), 2);
    }

    #[test]
    fn many_sequential_splits_grow_multiple_levels() {
        // Start with one leaf at 1000 covering all keys, then split off
        // leaves 2000.. so leaf i covers (10(i-1), 10i].
        let idx = InnerIndex::new(leaf_ref(1000));
        let n = 200u64;
        // Each split: the leftover left leaf keeps ≤ sep; the new right
        // leaf covers the rest. Split from the right edge inward.
        for i in (1..n).rev() {
            idx.tree_update(i * 10, leaf_ref((i + 1) * 1000));
        }
        assert!(idx.depth() >= 3, "depth {}", idx.depth());
        for key in 1..=(n * 10) {
            let expect = 1000 * key.div_ceil(10).clamp(1, n);
            assert_eq!(idx.traverse_tm(key), expect, "key {key}");
        }
    }

    #[test]
    fn replace_child_swaps_only_on_match() {
        let idx = build(10);
        // Leaf covering key 35 is leaf 4 (offset 4000).
        assert!(idx.replace_child(35, leaf_ref(4000), leaf_ref(9_990_000)));
        assert_eq!(idx.traverse_tm(35), 9_990_000);
        // Stale expectation must fail and leave things untouched.
        assert!(!idx.replace_child(35, leaf_ref(4000), leaf_ref(123)));
        assert_eq!(idx.traverse_tm(35), 9_990_000);
    }

    #[test]
    fn replace_child_at_leaf_root() {
        let idx = InnerIndex::new(leaf_ref(500));
        assert!(idx.replace_child(7, leaf_ref(500), leaf_ref(600)));
        assert_eq!(idx.traverse_tm(7), 600);
    }

    #[test]
    fn concurrent_traversals_during_updates_always_route_validly() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let idx = Arc::new(InnerIndex::new(leaf_ref(1000)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for t in 0..2 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut x = 12345u64 + t;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = x % 2000;
                    let off = idx.traverse_tm(key);
                    // Offsets are only ever multiples of 1000 in this test.
                    assert_eq!(off % 1000, 0);
                    assert!(off >= 1000);
                }
            }));
        }
        // Writer: carve 2000 keys into 200 leaves right-to-left.
        for i in (1..200u64).rev() {
            idx.tree_update(i * 10, leaf_ref((i + 1) * 1000));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // Final routing is exact.
        for key in 1..=2000u64 {
            let expect = 1000 * key.div_ceil(10).clamp(1, 200);
            assert_eq!(idx.traverse_seq(key), expect);
        }
    }

    #[test]
    fn bulk_build_single_chunk_sizes() {
        for n in [1usize, 2, 31, 32, 33, 64, 65] {
            let idx = build(n);
            for i in 1..=n as u64 {
                assert_eq!(idx.traverse_tm(i * 10), i * 1000, "n={n} key={}", i * 10);
                assert_eq!(idx.traverse_tm(i * 10 - 9), i * 1000);
            }
        }
    }

    #[test]
    fn traverse_cached_without_cache_is_traverse_tm() {
        let idx = build(50);
        for key in [1u64, 123, 400, 999] {
            assert_eq!(idx.traverse_cached(key), idx.traverse_tm(key));
        }
        assert_eq!(idx.descent_stats(), DescentStats::default());
    }

    #[test]
    fn cached_traversal_matches_tm_and_hits_on_reread() {
        let idx = build(100);
        idx.attach_cache(Arc::new(PageCache::new(256, None)));
        for pass in 0..2 {
            for key in (1..=1000u64).step_by(7) {
                let expect = 1000 * key.div_ceil(10).clamp(1, 100);
                assert_eq!(idx.traverse_cached(key), expect, "pass {pass} key {key}");
            }
        }
        let stats = idx.page_cache().unwrap().stats();
        assert!(stats.fills > 0, "{stats:?}");
        assert!(stats.hits > stats.misses, "cache never warmed: {stats:?}");
    }

    #[test]
    fn cached_traversal_sees_splits_immediately() {
        let idx = InnerIndex::new(leaf_ref(1000));
        idx.attach_cache(Arc::new(PageCache::new(64, None)));
        // Warm whatever there is to warm, then split repeatedly; each
        // tree_update invalidates the rewritten nodes, so the cached
        // descent must route per the newest structure every time.
        for i in (1..200u64).rev() {
            idx.tree_update(i * 10, leaf_ref((i + 1) * 1000));
            // Mid-loop, keys ≤ sep still live in the unsplit left leaf
            // (offset 1000); the new right leaf takes keys > sep.
            let boundary = i * 10;
            assert_eq!(idx.traverse_cached(boundary), 1000, "sep {boundary}");
            assert_eq!(idx.traverse_cached(boundary + 1), (i + 1) * 1000);
        }
        for key in 1..=2000u64 {
            let expect = 1000 * key.div_ceil(10).clamp(1, 200);
            assert_eq!(idx.traverse_cached(key), expect, "key {key}");
        }
        let stats = idx.page_cache().unwrap().stats();
        assert!(stats.invalidations > 0, "{stats:?}");
    }

    #[test]
    fn replace_child_invalidates_cached_parent() {
        let idx = build(10);
        idx.attach_cache(Arc::new(PageCache::new(64, None)));
        // Warm the cache on the old routing.
        assert_eq!(idx.traverse_cached(35), 4000);
        assert!(idx.replace_child(35, leaf_ref(4000), leaf_ref(9_990_000)));
        assert_eq!(idx.traverse_cached(35), 9_990_000);
        // Failed swap leaves cache and routing untouched.
        assert!(!idx.replace_child(35, leaf_ref(4000), leaf_ref(123)));
        assert_eq!(idx.traverse_cached(35), 9_990_000);
    }

    #[test]
    fn bulk_build_flushes_cache() {
        let idx = build(20);
        idx.attach_cache(Arc::new(PageCache::new(64, None)));
        for key in (1..=200u64).step_by(3) {
            idx.traverse_cached(key);
        }
        // Rebuild over different offsets: cached routing must not survive.
        let leaves: Vec<(Key, u64)> = (1..=20u64).map(|i| (i * 10, leaf_ref(i * 1000 + 77))).collect();
        idx.bulk_build(&leaves);
        for i in 1..=20u64 {
            assert_eq!(idx.traverse_cached(i * 10), i * 1000 + 77, "leaf {i}");
        }
    }

    /// Byte-keyed reference model: leaf i (offset (i+1)*1000) has max key
    /// `keys[i]`; a probe routes to the first leaf whose max key covers it.
    fn route_model(keys: &[&[u8]], probe: &[u8]) -> u64 {
        let i = keys.iter().position(|k| probe <= *k).unwrap_or(keys.len() - 1);
        (i as u64 + 1) * 1000
    }

    fn build_bytes(keys: &[&[u8]]) -> InnerIndex {
        let leaves: Vec<(KeyBuf, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (KeyBuf::from_slice(k), leaf_ref((i as u64 + 1) * 1000)))
            .collect();
        let idx = InnerIndex::new_bytes(leaves[0].1);
        idx.bulk_build_k(&leaves);
        idx
    }

    #[test]
    fn byte_keyed_bulk_build_routes_with_head_ties() {
        // Shared 7-byte prefix: every separator has the same 4-byte head,
        // so every comparison must fall back to full arena bytes.
        let keys: Vec<Vec<u8>> = (0..80u32).map(|i| format!("prefix:{i:04}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let idx = build_bytes(&refs);
        assert!(idx.is_byte_keyed());
        assert!(idx.depth() >= 2);
        for probe in ["prefix:0000", "prefix:0037", "prefix:0037x", "prefix:0079", "zzz", ""] {
            let expect = route_model(&refs, probe.as_bytes());
            assert_eq!(idx.traverse_tm_k(probe.as_bytes()), expect, "probe {probe:?}");
            assert_eq!(idx.traverse_seq_k(probe.as_bytes()), expect, "probe {probe:?} (seq)");
        }
        assert!(idx.head_tie_fallbacks() > 0, "shared-prefix keys must tie on heads");
    }

    #[test]
    fn byte_keyed_tree_update_and_replace_child() {
        let idx = InnerIndex::new_bytes(leaf_ref(1000));
        // Split the single leaf at "mango": left keeps ≤ "mango".
        idx.tree_update_k(b"mango", leaf_ref(2000));
        assert_eq!(idx.traverse_tm_k(b"mango"), 1000);
        assert_eq!(idx.traverse_tm_k(b"mangoo"), 2000);
        assert_eq!(idx.traverse_tm_k(b"apple"), 1000);
        // Distinct heads decide without touching the arena...
        let ties_before = idx.head_tie_fallbacks();
        idx.traverse_tm_k(b"zebra");
        assert_eq!(idx.head_tie_fallbacks(), ties_before, "\"zebr\" != \"mang\" needs no tie");
        // ...while a shared head forces the fallback.
        idx.traverse_tm_k(b"mangZ");
        assert!(idx.head_tie_fallbacks() > ties_before);

        assert!(idx.replace_child_k(b"aaa", leaf_ref(1000), leaf_ref(5000)));
        assert_eq!(idx.traverse_tm_k(b"mango"), 5000);
        assert!(!idx.replace_child_k(b"aaa", leaf_ref(1000), leaf_ref(7000)));
    }

    #[test]
    fn byte_keyed_sequential_splits_match_model_with_cache() {
        let idx = InnerIndex::new_bytes(leaf_ref(1000));
        idx.attach_cache(Arc::new(PageCache::new(64, None)));
        // Keys "k000".."k149" with heavy head sharing ("k0xx" etc.): carve
        // 150 leaves right-to-left like the u64 test.
        let keys: Vec<Vec<u8>> = (0..150u32).map(|i| format!("k{i:03}").into_bytes()).collect();
        for i in (1..keys.len()).rev() {
            idx.tree_update_k(&keys[i - 1], leaf_ref((i as u64 + 1) * 1000));
        }
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for probe in &refs {
            let expect = route_model(&refs, probe);
            assert_eq!(idx.traverse_cached_k(probe), expect, "probe {probe:?}");
            assert_eq!(idx.traverse_tm_k(probe), expect);
        }
        // In-between and out-of-range probes.
        assert_eq!(idx.traverse_cached_k(b"k0005"), route_model(&refs, b"k0005"));
        assert_eq!(idx.traverse_cached_k(b""), 1000);
        assert_eq!(idx.traverse_cached_k(b"zz"), 150 * 1000);
    }

    #[test]
    fn concurrent_cached_traversals_during_updates_route_validly() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let idx = Arc::new(InnerIndex::new(leaf_ref(1000)));
        // Tiny cache: eviction, refill and invalidation all race the
        // readers below.
        idx.attach_cache(Arc::new(PageCache::new(8, None)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for t in 0..2 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut x = 9876u64 + t;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = x % 2000;
                    let off = idx.traverse_cached(key);
                    assert_eq!(off % 1000, 0);
                    assert!(off >= 1000);
                }
            }));
        }
        for i in (1..200u64).rev() {
            idx.tree_update(i * 10, leaf_ref((i + 1) * 1000));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        for key in 1..=2000u64 {
            let expect = 1000 * key.div_ceil(10).clamp(1, 200);
            assert_eq!(idx.traverse_cached(key), expect);
        }
    }
}
