//! Byte-comparable variable-length keys and the key-codec boundary.
//!
//! The paper evaluates with fixed 8-byte keys, and the whole reproduction
//! was pinned to `type Key = u64` until this module. The generalisation
//! follows the classic B-tree recipe: keys are **byte strings compared
//! lexicographically**, and any typed key is mapped into that space by an
//! *order-preserving encoding* ([`KeyCodec`]). For `u64` the encoding is
//! big-endian bytes ([`U64Key`]), which compares byte-wise exactly like the
//! integers compare numerically — so the u64 fast paths keep their current
//! layout and cost, and the byte-key paths are a strict superset.
//!
//! Two helpers service the node layouts built on top:
//!
//! * [`key_head`] — the first four key bytes as a big-endian `u32`
//!   (zero-padded), an order-consistent fixed-width digest stored inline in
//!   slot arrays and inner separators for cheap first-round comparisons
//!   (full bytes are consulted only on head ties).
//! * [`lcp`] — longest-common-prefix length, used by the variable-length
//!   leaf to prefix-truncate stored keys against its fence keys.

use crate::Key;

/// Maximum encoded key length in bytes. Bounding keys keeps [`KeyBuf`]
/// inline (no allocation on any hot path) and gives the variable-length
/// leaf layout a worst-case record size to budget splits against.
pub const MAX_KEY_LEN: usize = 64;

/// A borrowed byte-comparable key: plain bytes, compared lexicographically.
/// Alias rather than newtype so call sites can pass `b"..."` literals,
/// `Vec<u8>` slices, and [`KeyBuf::as_slice`] interchangeably.
pub type KeyRef<'a> = &'a [u8];

/// An owned, inline, byte-comparable key of at most [`MAX_KEY_LEN`] bytes.
///
/// `Copy` and allocation-free: 65 bytes on the stack. Ordering, equality
/// and hashing all delegate to the byte-slice view, so a `KeyBuf` and the
/// `KeyRef` it came from always agree.
#[derive(Clone, Copy)]
pub struct KeyBuf {
    len: u8,
    bytes: [u8; MAX_KEY_LEN],
}

impl KeyBuf {
    /// The empty key — the minimum of the byte-string order.
    pub const MIN: KeyBuf = KeyBuf {
        len: 0,
        bytes: [0; MAX_KEY_LEN],
    };

    /// Copies `bytes` into an owned key.
    ///
    /// # Panics
    /// If `bytes` is longer than [`MAX_KEY_LEN`].
    #[inline]
    pub fn from_slice(bytes: &[u8]) -> KeyBuf {
        assert!(
            bytes.len() <= MAX_KEY_LEN,
            "key length {} exceeds MAX_KEY_LEN {MAX_KEY_LEN}",
            bytes.len()
        );
        let mut buf = [0u8; MAX_KEY_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        KeyBuf {
            len: bytes.len() as u8,
            bytes: buf,
        }
    }

    /// The key's bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the empty (minimum) key.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The smallest key strictly greater than `self` within the bounded
    /// key space, or `None` if `self` is the maximum key (all `0xFF` at
    /// full length). Used by range scans to restart *after* a leaf's fence
    /// key, the byte-string analogue of the u64 scan's `fence + 1`.
    pub fn successor(&self) -> Option<KeyBuf> {
        let mut next = *self;
        if next.len() < MAX_KEY_LEN {
            // Appending a zero byte yields the immediate successor.
            next.bytes[next.len as usize] = 0;
            next.len += 1;
            return Some(next);
        }
        // At full length: strip trailing 0xFF bytes, then increment. The
        // resulting shorter-or-bumped string is the least upper bound of
        // everything that fits in MAX_KEY_LEN bytes.
        let mut l = next.len as usize;
        while l > 0 && next.bytes[l - 1] == 0xFF {
            next.bytes[l - 1] = 0;
            l -= 1;
        }
        if l == 0 {
            return None;
        }
        next.bytes[l - 1] += 1;
        next.len = l as u8;
        Some(next)
    }
}

impl Default for KeyBuf {
    fn default() -> Self {
        KeyBuf::MIN
    }
}

impl PartialEq for KeyBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for KeyBuf {}

impl PartialOrd for KeyBuf {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyBuf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for KeyBuf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for KeyBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyBuf({:02x?})", self.as_slice())
    }
}

impl AsRef<[u8]> for KeyBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for KeyBuf {
    fn from(bytes: &[u8]) -> Self {
        KeyBuf::from_slice(bytes)
    }
}

/// An order-preserving encoding between a typed key and byte-comparable
/// bytes: `a <= b` ⇔ `encode(a) <= encode(b)` lexicographically.
///
/// The codec is the boundary that lets every u64-facing API ride on the
/// byte-key machinery without a layout or perf change: typed call sites
/// encode at the edge, the tree below speaks only bytes.
pub trait KeyCodec {
    /// Encodes `key` into its byte-comparable form.
    fn encode(key: Key) -> KeyBuf;

    /// Decodes `bytes` back to the typed key, if `bytes` is a valid
    /// encoding (for [`U64Key`]: exactly 8 bytes).
    fn decode(bytes: &[u8]) -> Option<Key>;
}

/// The `u64` codec: 8 big-endian bytes. Big-endian is what makes the
/// encoding order-preserving — the most significant byte compares first.
pub struct U64Key;

impl KeyCodec for U64Key {
    #[inline]
    fn encode(key: Key) -> KeyBuf {
        KeyBuf {
            len: 8,
            bytes: {
                let mut b = [0u8; MAX_KEY_LEN];
                b[..8].copy_from_slice(&key.to_be_bytes());
                b
            },
        }
    }

    #[inline]
    fn decode(bytes: &[u8]) -> Option<Key> {
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(u64::from_be_bytes(arr))
    }
}

/// The first four bytes of `key` as a big-endian `u32`, zero-padded on the
/// right for shorter keys.
///
/// Heads are *order-consistent*: `key_head(a) < key_head(b)` implies
/// `a < b`, so a comparison can be decided by heads alone whenever they
/// differ. Equal heads decide nothing (`"abcd"` vs `"abcde"`, or any two
/// short keys padded to the same word) — those ties fall back to full key
/// bytes, and the zero-padding is safe precisely because the fallback
/// re-compares from scratch rather than trusting the pad.
#[inline]
pub fn key_head(key: &[u8]) -> u32 {
    let mut h = [0u8; 4];
    let n = key.len().min(4);
    h[..n].copy_from_slice(&key[..n]);
    u32::from_be_bytes(h)
}

/// Length of the longest common prefix of `a` and `b`.
#[inline]
pub fn lcp(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_codec_is_order_preserving_and_roundtrips() {
        let samples = [0u64, 1, 2, 255, 256, 1 << 32, u64::MAX - 1, u64::MAX];
        for &a in &samples {
            assert_eq!(U64Key::decode(U64Key::encode(a).as_slice()), Some(a));
            for &b in &samples {
                assert_eq!(
                    a.cmp(&b),
                    U64Key::encode(a).as_slice().cmp(U64Key::encode(b).as_slice()),
                    "{a} vs {b}"
                );
            }
        }
        assert_eq!(U64Key::decode(b"short"), None);
        assert_eq!(U64Key::decode(b"nine..bytes"), None);
    }

    #[test]
    fn heads_are_order_consistent() {
        let keys: [&[u8]; 8] = [
            b"", b"a", b"ab", b"abc", b"abcd", b"abcde", b"abd", b"b",
        ];
        for a in keys {
            for b in keys {
                let (ha, hb) = (key_head(a), key_head(b));
                if ha < hb {
                    assert!(a < b, "{a:?} {b:?}");
                }
                if a <= b {
                    assert!(ha <= hb, "{a:?} {b:?}");
                }
            }
        }
        // u64 encoding's head is the top 32 bits.
        let k = 0xDEAD_BEEF_0123_4567u64;
        assert_eq!(key_head(U64Key::encode(k).as_slice()), 0xDEAD_BEEF);
    }

    #[test]
    fn keybuf_orders_like_slices_and_successor_is_tight() {
        let a = KeyBuf::from_slice(b"abc");
        let b = KeyBuf::from_slice(b"abcd");
        assert!(a < b);
        assert!(KeyBuf::MIN < a);
        assert_eq!(a.as_slice(), b"abc");

        let s = a.successor().unwrap();
        assert!(a < s);
        assert!(s < b, "successor must not skip over an extension");

        let full = KeyBuf::from_slice(&[0xFFu8; MAX_KEY_LEN]);
        assert_eq!(full.successor(), None);

        let mut almost = [0x41u8; MAX_KEY_LEN];
        almost[MAX_KEY_LEN - 1] = 0xFF;
        let k = KeyBuf::from_slice(&almost);
        let s = k.successor().unwrap();
        assert!(k < s);
        assert_eq!(s.len(), MAX_KEY_LEN - 1);
    }

    #[test]
    fn lcp_counts_shared_prefix() {
        assert_eq!(lcp(b"abcx", b"abcy"), 3);
        assert_eq!(lcp(b"abc", b"abc"), 3);
        assert_eq!(lcp(b"abc", b"abcdef"), 3);
        assert_eq!(lcp(b"", b"abc"), 0);
        assert_eq!(lcp(b"x", b"y"), 0);
    }
}
