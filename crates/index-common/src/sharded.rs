//! A composable sharded index: N independent trees behaving as one.
//!
//! The paper scales one RNTree by overlapping persistency with concurrency
//! inside a single leaf; a production-scale service additionally scales
//! *across* trees. [`ShardedIndex`] is that layer: it hash-partitions the
//! key space over `N` inner [`PersistentIndex`] instances (one per pool
//! shard, see `nvm::PoolSet`), forwards point operations to the owning
//! shard, and stitches range scans back together with a k-way merge so the
//! output is globally key-ordered.
//!
//! Because every shard is a complete tree with its own persistent pool, its
//! own allocator, and its own HTM fallback domain, shards interact through
//! **no** shared persistent or lock state — the only cross-shard coupling
//! left is false sharing in the process-wide TL2 lock table, which is
//! probabilistic and read-mostly. That independence is what makes recovery
//! embarrassingly parallel: [`ShardedIndex::recover`] runs one rebuild
//! thread per shard (the sharded analogue of the paper's §5.4 leaf-chain
//! rebuild).
//!
//! ## Partitioning function
//!
//! Keys are routed by a SplitMix64-style avalanche of the key modulo the
//! shard count ([`shard_of`]). The avalanche matters: YCSB-style workloads
//! use structured (sequential or zipfian-ranked) keys, and `key % n` alone
//! would stripe adjacent hot keys onto the same shard boundary patterns.
//! The function is pure and stable, so a key's home shard never changes for
//! the life of a set — rebalancing is an explicit higher-level migration,
//! exactly as in a sharded service.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nvm::PmemPool;

use crate::{
    Key, KeyBuf, KeyRef, OpError, PersistentIndex, RecoverableIndex, TreeStats, Value, WriteOp,
};

/// Routes `key` to its home shard among `shards` partitions.
///
/// SplitMix64 finalizer (Steele et al.), then a modulo: every output bit of
/// the finalizer depends on every input bit, so sequential keys spread
/// uniformly regardless of the shard count's factors.
///
/// # Panics
/// Panics (in debug, via modulo-by-zero) if `shards == 0`.
#[inline]
pub fn shard_of(key: Key, shards: usize) -> usize {
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// Routes a byte-string key to its home shard among `shards` partitions.
///
/// **Agrees with [`shard_of`] on u64-encoded keys**: an 8-byte key is
/// decoded big-endian and routed exactly as its `u64` would be, so a key
/// written through the typed API and read through the byte API (or vice
/// versa) always lands on the same shard. Other lengths are routed by an
/// FNV-1a hash fed through the same SplitMix64 finalizer.
///
/// # Panics
/// Panics (in debug, via modulo-by-zero) if `shards == 0`.
#[inline]
pub fn shard_of_bytes(key: KeyRef<'_>, shards: usize) -> usize {
    if let Ok(arr) = <[u8; 8]>::try_from(key) {
        return shard_of(u64::from_be_bytes(arr), shards);
    }
    let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    shard_of(h, shards)
}

/// N independent persistent trees composed into one [`PersistentIndex`].
///
/// See the module-level docs for the design. `T` is usually a concrete
/// tree (`RnTree`, a baseline) opened via [`RecoverableIndex`], but any
/// `PersistentIndex` vector can be wrapped with [`ShardedIndex::from_shards`].
pub struct ShardedIndex<T> {
    shards: Vec<T>,
}

impl<T: PersistentIndex> ShardedIndex<T> {
    /// Wraps already-open trees as shards. Shard `i` owns exactly the keys
    /// with `shard_of(key, shards.len()) == i`; the caller is responsible
    /// for having routed any pre-existing contents the same way.
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn from_shards(shards: Vec<T>) -> Self {
        assert!(!shards.is_empty(), "ShardedIndex needs at least one shard");
        ShardedIndex { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `key`.
    pub fn shard_for(&self, key: Key) -> &T {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// The shard that owns the byte-string `key` (see [`shard_of_bytes`]).
    pub fn shard_for_bytes(&self, key: KeyRef<'_>) -> &T {
        &self.shards[shard_of_bytes(key, self.shards.len())]
    }

    /// The `i`-th shard tree (for tests and per-shard introspection).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> &T {
        &self.shards[i]
    }
}

impl<T: RecoverableIndex + Send> ShardedIndex<T> {
    /// Formats every pool and creates one empty tree per shard, in
    /// parallel.
    ///
    /// # Panics
    /// Panics if `pools` is empty or a shard constructor panics.
    pub fn create(pools: &[Arc<PmemPool>], cfg: T::Config) -> Self {
        let (shards, _) = open_parallel(pools, cfg, T::create);
        ShardedIndex { shards }
    }

    /// Recovers every shard **in parallel** — one rebuild thread per shard,
    /// each scanning its own leaf chain and rebuilding its own volatile
    /// index. Correctness never depends on cross-shard ordering because no
    /// persistent state is shared.
    ///
    /// # Panics
    /// Panics if `pools` is empty or a shard's recovery panics.
    pub fn recover(pools: &[Arc<PmemPool>], cfg: T::Config) -> Self {
        let (shards, _) = open_parallel(pools, cfg, T::recover);
        ShardedIndex { shards }
    }

    /// [`ShardedIndex::recover`], additionally reporting each shard's
    /// rebuild wall-clock time (for the recovery-scaling experiment).
    pub fn recover_timed(pools: &[Arc<PmemPool>], cfg: T::Config) -> (Self, Vec<Duration>) {
        let (shards, times) = open_parallel(pools, cfg, T::recover);
        (ShardedIndex { shards }, times)
    }

    /// Reattaches every shard after a clean shutdown, in parallel.
    ///
    /// # Panics
    /// Panics if `pools` is empty or a shard constructor panics.
    pub fn reopen_clean(pools: &[Arc<PmemPool>], cfg: T::Config) -> Self {
        let (shards, _) = open_parallel(pools, cfg, T::reopen_clean);
        ShardedIndex { shards }
    }

    /// Cleanly shuts down every shard.
    pub fn close(&self) {
        for s in &self.shards {
            s.close();
        }
    }
}

/// Opens one tree per pool; results come back in shard order together with
/// each shard's open/rebuild wall-clock time.
///
/// A single shard opens inline — spawning (and then joining) one thread
/// just to run one rebuild costs more than the rebuild itself at small
/// tree sizes, which showed up as a 1-shard-vs-2-shard recovery *regression*
/// in the PR 2 numbers. Multiple shards are opened by a worker pool sized
/// to `min(shards, available_parallelism)`, each worker pulling shard
/// indices from a shared counter, so oversharded sets (more shards than
/// cores) no longer pay per-thread spawn/teardown either.
fn open_parallel<T, F>(pools: &[Arc<PmemPool>], cfg: T::Config, open: F) -> (Vec<T>, Vec<Duration>)
where
    T: RecoverableIndex + Send,
    F: Fn(Arc<PmemPool>, T::Config) -> T + Send + Sync,
{
    assert!(!pools.is_empty(), "ShardedIndex needs at least one shard pool");
    let timed_open = |i: usize| {
        let t0 = Instant::now();
        let tree = open(Arc::clone(&pools[i]), cfg.clone());
        (i, tree, t0.elapsed())
    };
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(pools.len());
    let mut opened: Vec<(usize, T, Duration)> = if workers <= 1 || pools.len() == 1 {
        (0..pools.len()).map(timed_open).collect()
    } else {
        let next = AtomicUsize::new(0);
        let timed_open = &timed_open;
        let next = &next;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                            if i >= pools.len() {
                                return local;
                            }
                            local.push(timed_open(i));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard open thread panicked"))
                .collect()
        })
    };
    opened.sort_by_key(|&(i, _, _)| i);
    opened.into_iter().map(|(_, tree, t)| (tree, t)).unzip()
}

impl<T: PersistentIndex> PersistentIndex for ShardedIndex<T> {
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.shard_for(key).insert(key, value)
    }

    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.shard_for(key).update(key, value)
    }

    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.shard_for(key).upsert(key, value)
    }

    fn remove(&self, key: Key) -> Result<(), OpError> {
        self.shard_for(key).remove(key)
    }

    fn find(&self, key: Key) -> Option<Value> {
        self.shard_for(key).find(key)
    }

    /// Globally key-ordered scan. Each shard returns its first `n` pairs
    /// with key ≥ `start` (already sorted); since the global first `n`
    /// pairs are contained in the union of the per-shard first `n`, a
    /// k-way merge of those streams truncated to `n` is exact.
    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        if n == 0 {
            return 0;
        }
        let k = self.shards.len();
        let mut bufs: Vec<Vec<(Key, Value)>> = Vec::with_capacity(k);
        for s in &self.shards {
            let mut buf = Vec::new();
            s.scan_n(start, n, &mut buf);
            bufs.push(buf);
        }
        // K-way merge on a min-heap of (next key, shard). Keys are unique
        // across shards (each key has exactly one home), so ties cannot
        // occur and the merge is trivially stable.
        let mut pos = vec![0usize; k];
        let mut heap: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::with_capacity(k);
        for (i, buf) in bufs.iter().enumerate() {
            if let Some(&(key, _)) = buf.first() {
                heap.push(Reverse((key, i)));
            }
        }
        while out.len() < n {
            let Some(Reverse((_, i))) = heap.pop() else { break };
            out.push(bufs[i][pos[i]]);
            pos[i] += 1;
            if let Some(&(key, _)) = bufs[i].get(pos[i]) {
                heap.push(Reverse((key, i)));
            }
        }
        out.len()
    }

    /// Partitions the pairs by home shard and bulk-loads every non-empty
    /// shard in parallel (one loader thread per shard when more than one
    /// shard receives keys). Partitioning is order-preserving and each
    /// shard's loader sorts its own sub-batch, so the per-shard contract is
    /// unchanged. Returns the first shard error, if any.
    fn load_sorted(&self, pairs: &[(Key, Value)]) -> Result<(), OpError> {
        let n = self.shards.len();
        if n == 1 {
            return self.shards[0].load_sorted(pairs);
        }
        let mut parts: Vec<Vec<(Key, Value)>> = vec![Vec::new(); n];
        for &(k, v) in pairs {
            parts[shard_of(k, n)].push((k, v));
        }
        let loaded: Vec<Result<(), OpError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&parts)
                .filter(|(_, part)| !part.is_empty())
                .map(|(shard, part)| scope.spawn(move || shard.load_sorted(part)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard load thread panicked")).collect()
        });
        loaded.into_iter().collect()
    }

    /// Partitions the batch by home shard and applies the per-shard
    /// sub-batches — in parallel (one thread per shard) when the batch is
    /// large enough to amortise the spawns. The caller's slice is
    /// rewritten in shard-major order with each sub-batch sorted (the order
    /// the shards observed), and the returned vector aligns with that
    /// rewritten slice, preserving the trait's per-key reporting contract.
    fn insert_batch(&self, batch: &mut [(Key, Value)]) -> Vec<Result<(), OpError>> {
        let n = self.shards.len();
        if n == 1 {
            return self.shards[0].insert_batch(batch);
        }
        let mut parts: Vec<Vec<(Key, Value)>> = vec![Vec::new(); n];
        for &(k, v) in batch.iter() {
            parts[shard_of(k, n)].push((k, v));
        }
        // Below ~64 keys/shard the spawn+join overhead beats the win from
        // parallel sub-batches; apply inline in that regime.
        let parallel = batch.len() >= 64 * n && std::thread::available_parallelism().map_or(1, |p| p.get()) > 1;
        let outcomes: Vec<Vec<Result<(), OpError>>> = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .zip(parts.iter_mut())
                    .map(|(shard, part)| scope.spawn(move || shard.insert_batch(part)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard batch thread panicked")).collect()
            })
        } else {
            self.shards.iter().zip(parts.iter_mut()).map(|(s, p)| s.insert_batch(p)).collect()
        };
        let mut w = 0usize;
        for part in &parts {
            for &kv in part {
                batch[w] = kv;
                w += 1;
            }
        }
        outcomes.into_iter().flatten().collect()
    }

    /// The mixed-class twin of the [`ShardedIndex::insert_batch`]
    /// override: partition by home shard (submission order preserved
    /// within a shard, so same-key elements still compose in order), run
    /// per-shard sub-batches in parallel when large enough, rewrite the
    /// caller's slice shard-major, results aligned with the rewrite.
    fn write_batch(&self, batch: &mut [(Key, Value, WriteOp)]) -> Vec<Result<(), OpError>> {
        let n = self.shards.len();
        if n == 1 {
            return self.shards[0].write_batch(batch);
        }
        let mut parts: Vec<Vec<(Key, Value, WriteOp)>> = vec![Vec::new(); n];
        for &(k, v, op) in batch.iter() {
            parts[shard_of(k, n)].push((k, v, op));
        }
        let parallel = batch.len() >= 64 * n && std::thread::available_parallelism().map_or(1, |p| p.get()) > 1;
        let outcomes: Vec<Vec<Result<(), OpError>>> = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .zip(parts.iter_mut())
                    .map(|(shard, part)| scope.spawn(move || shard.write_batch(part)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard batch thread panicked")).collect()
            })
        } else {
            self.shards.iter().zip(parts.iter_mut()).map(|(s, p)| s.write_batch(p)).collect()
        };
        let mut w = 0usize;
        for part in &parts {
            for &kvo in part {
                batch[w] = kvo;
                w += 1;
            }
        }
        outcomes.into_iter().flatten().collect()
    }

    fn supports_var_keys(&self) -> bool {
        self.shards.iter().all(|s| s.supports_var_keys())
    }

    fn insert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.shard_for_bytes(key).insert_k(key, value)
    }

    fn update_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.shard_for_bytes(key).update_k(key, value)
    }

    fn upsert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        self.shard_for_bytes(key).upsert_k(key, value)
    }

    fn remove_k(&self, key: KeyRef<'_>) -> Result<(), OpError> {
        self.shard_for_bytes(key).remove_k(key)
    }

    fn find_k(&self, key: KeyRef<'_>) -> Option<Value> {
        self.shard_for_bytes(key).find_k(key)
    }

    /// Byte-key analogue of [`ShardedIndex::scan_n`]'s k-way merge: each
    /// shard contributes its first `n` pairs ≥ `start` in lexicographic
    /// order, merged on a min-heap of owned [`KeyBuf`]s. Keys stay unique
    /// across shards (one home per key), so ties cannot occur.
    fn scan_k(&self, start: KeyRef<'_>, n: usize, out: &mut Vec<(KeyBuf, Value)>) -> usize {
        out.clear();
        if n == 0 {
            return 0;
        }
        let k = self.shards.len();
        let mut bufs: Vec<Vec<(KeyBuf, Value)>> = Vec::with_capacity(k);
        for s in &self.shards {
            let mut buf = Vec::new();
            s.scan_k(start, n, &mut buf);
            bufs.push(buf);
        }
        let mut pos = vec![0usize; k];
        let mut heap: BinaryHeap<Reverse<(KeyBuf, usize)>> = BinaryHeap::with_capacity(k);
        for (i, buf) in bufs.iter().enumerate() {
            if let Some(&(key, _)) = buf.first() {
                heap.push(Reverse((key, i)));
            }
        }
        while out.len() < n {
            let Some(Reverse((_, i))) = heap.pop() else { break };
            out.push(bufs[i][pos[i]]);
            pos[i] += 1;
            if let Some(&(key, _)) = bufs[i].get(pos[i]) {
                heap.push(Reverse((key, i)));
            }
        }
        out.len()
    }

    /// Byte-key bulk load: partitions by [`shard_of_bytes`] and loads the
    /// non-empty shards in parallel, mirroring [`ShardedIndex::load_sorted`].
    fn load_sorted_k(&self, pairs: &[(KeyBuf, Value)]) -> Result<(), OpError> {
        let n = self.shards.len();
        if n == 1 {
            return self.shards[0].load_sorted_k(pairs);
        }
        let mut parts: Vec<Vec<(KeyBuf, Value)>> = vec![Vec::new(); n];
        for &(k, v) in pairs {
            parts[shard_of_bytes(k.as_slice(), n)].push((k, v));
        }
        let loaded: Vec<Result<(), OpError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&parts)
                .filter(|(_, part)| !part.is_empty())
                .map(|(shard, part)| scope.spawn(move || shard.load_sorted_k(part)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard load thread panicked")).collect()
        });
        loaded.into_iter().collect()
    }

    /// Byte-key batched insert: shard-partitioned like
    /// [`ShardedIndex::insert_batch`], with the same slice-rewrite and
    /// reporting contract.
    fn insert_batch_k(&self, batch: &mut [(KeyBuf, Value)]) -> Vec<Result<(), OpError>> {
        let n = self.shards.len();
        if n == 1 {
            return self.shards[0].insert_batch_k(batch);
        }
        let mut parts: Vec<Vec<(KeyBuf, Value)>> = vec![Vec::new(); n];
        for &(k, v) in batch.iter() {
            parts[shard_of_bytes(k.as_slice(), n)].push((k, v));
        }
        let parallel = batch.len() >= 64 * n && std::thread::available_parallelism().map_or(1, |p| p.get()) > 1;
        let outcomes: Vec<Vec<Result<(), OpError>>> = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .zip(parts.iter_mut())
                    .map(|(shard, part)| scope.spawn(move || shard.insert_batch_k(part)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard batch thread panicked")).collect()
            })
        } else {
            self.shards.iter().zip(parts.iter_mut()).map(|(s, p)| s.insert_batch_k(p)).collect()
        };
        let mut w = 0usize;
        for part in &parts {
            for &kv in part {
                batch[w] = kv;
                w += 1;
            }
        }
        outcomes.into_iter().flatten().collect()
    }

    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn supports_concurrency(&self) -> bool {
        self.shards.iter().all(|s| s.supports_concurrency())
    }

    /// Sums the structural counters across shards and ORs the sticky
    /// [`TreeStats::pool_exhausted`] flag, so one full shard is visible at
    /// the composite level.
    fn stats(&self) -> TreeStats {
        let mut total = TreeStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total
    }

    /// Mean of the per-shard abort ratios (each shard's HTM domain is
    /// independent, so an unweighted mean is the honest summary absent
    /// per-shard attempt counts). `None` if no shard reports one.
    fn htm_abort_ratio(&self) -> Option<f64> {
        let ratios: Vec<f64> = self.shards.iter().filter_map(|s| s.htm_abort_ratio()).collect();
        if ratios.is_empty() {
            None
        } else {
            Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
        }
    }
}

/// Per-shard observability: every shard's sections re-labelled
/// `shardN.<section>`, so one registry entry for the composite index
/// exports the full per-shard breakdown (pmem counters, HTM taxonomy,
/// phase timers — whatever the shard type provides).
///
/// Heat sections (`heat.*`) are *additionally* merged across shards
/// into unprefixed sections of the same name: entry keys get the shard
/// index in their top byte (leaf offsets and stripe/set indices never
/// reach 2^56), so a composite top-K still says which shard's structure
/// is hot while ranking globally.
impl<T: PersistentIndex + obs::ObsSource> obs::ObsSource for ShardedIndex<T> {
    fn obs_sections(&self) -> Vec<(String, obs::Section)> {
        const MERGED_TOP_K: usize = 16;
        let mut out = Vec::new();
        let mut merged: Vec<(String, Vec<obs::HeatEntry>)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            for (name, section) in shard.obs_sections() {
                if name.starts_with("heat.") {
                    if let obs::Section::Heat(entries) = &section {
                        let tagged = entries
                            .iter()
                            .map(|e| obs::HeatEntry { key: ((i as u64) << 56) | e.key, ..*e });
                        match merged.iter_mut().find(|(n, _)| *n == name) {
                            Some((_, all)) => all.extend(tagged),
                            None => merged.push((name.clone(), tagged.collect())),
                        }
                    }
                }
                out.push((format!("shard{i}.{name}"), section));
            }
        }
        for (name, mut entries) in merged {
            entries.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
            entries.truncate(MERGED_TOP_K);
            out.push((name, obs::Section::Heat(entries)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Volatile stand-in tree for merge/routing unit tests.
    struct MapShard {
        map: Mutex<BTreeMap<Key, Value>>,
    }

    impl MapShard {
        fn new() -> Self {
            MapShard { map: Mutex::new(BTreeMap::new()) }
        }
    }

    impl PersistentIndex for MapShard {
        fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.map.lock().unwrap();
            if m.contains_key(&key) {
                return Err(OpError::AlreadyExists);
            }
            m.insert(key, value);
            Ok(())
        }
        fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
            let mut m = self.map.lock().unwrap();
            if !m.contains_key(&key) {
                return Err(OpError::NotFound);
            }
            m.insert(key, value);
            Ok(())
        }
        fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
            self.map.lock().unwrap().insert(key, value);
            Ok(())
        }
        fn remove(&self, key: Key) -> Result<(), OpError> {
            self.map.lock().unwrap().remove(&key).map(|_| ()).ok_or(OpError::NotFound)
        }
        fn find(&self, key: Key) -> Option<Value> {
            self.map.lock().unwrap().get(&key).copied()
        }
        fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
            out.clear();
            out.extend(self.map.lock().unwrap().range(start..).take(n).map(|(&k, &v)| (k, v)));
            out.len()
        }
        fn name(&self) -> &'static str {
            "MapShard"
        }
        fn stats(&self) -> TreeStats {
            TreeStats {
                entries: self.map.lock().unwrap().len() as u64,
                leaves: 1,
                ..TreeStats::default()
            }
        }
    }

    fn sharded(n: usize) -> ShardedIndex<MapShard> {
        ShardedIndex::from_shards((0..n).map(|_| MapShard::new()).collect())
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 5, 8] {
            for key in 0..1000u64 {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn shard_of_spreads_sequential_keys() {
        let shards = 4;
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[shard_of(key, shards)] += 1;
        }
        for &c in &counts {
            // Perfectly uniform would be 1000 per shard; accept ±25%.
            assert!((750..=1250).contains(&c), "skewed shard histogram: {counts:?}");
        }
    }

    #[test]
    fn byte_routing_agrees_with_u64_routing_on_encoded_keys() {
        use crate::{KeyCodec, U64Key};
        for shards in [1usize, 2, 5, 8] {
            for key in (0..2000u64).step_by(7) {
                assert_eq!(
                    shard_of_bytes(U64Key::encode(key).as_slice(), shards),
                    shard_of(key, shards),
                    "key {key} would migrate between the typed and byte APIs"
                );
            }
            // Non-8-byte keys route deterministically and in range.
            for key in [&b""[..], b"a", b"url/key", b"0000000000012345"] {
                let s = shard_of_bytes(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_bytes(key, shards));
            }
        }
    }

    #[test]
    fn byte_ops_and_scan_merge_through_the_codec_defaults() {
        use crate::{KeyCodec, U64Key};
        let idx = sharded(3);
        for k in (0..300u64).step_by(3) {
            idx.insert_k(U64Key::encode(k).as_slice(), k + 1).unwrap();
        }
        assert_eq!(idx.find(42), Some(43), "byte writes visible to typed reads");
        assert_eq!(idx.find_k(U64Key::encode(42).as_slice()), Some(43));
        let mut out = Vec::new();
        assert_eq!(idx.scan_k(&[][..], 5, &mut out), 5);
        let got: Vec<u64> =
            out.iter().map(|(k, _)| U64Key::decode(k.as_slice()).unwrap()).collect();
        assert_eq!(got, vec![0, 3, 6, 9, 12], "merge must be globally ordered");
        assert_eq!(idx.insert_k(b"odd", 1), Err(OpError::UnsupportedKey));
        assert!(!idx.supports_var_keys());
    }

    #[test]
    fn point_ops_route_and_compose() {
        let idx = sharded(4);
        for k in 0..500u64 {
            idx.insert(k, k * 10).unwrap();
        }
        assert_eq!(idx.insert(42, 1), Err(OpError::AlreadyExists));
        assert_eq!(idx.update(9999, 1), Err(OpError::NotFound));
        idx.update(42, 421).unwrap();
        assert_eq!(idx.find(42), Some(421));
        idx.remove(42).unwrap();
        assert_eq!(idx.find(42), None);
        assert_eq!(idx.stats().entries, 499);
    }

    #[test]
    fn scan_is_globally_ordered_across_shards() {
        let idx = sharded(3);
        let mut model = BTreeMap::new();
        for k in (0..600u64).step_by(3) {
            idx.insert(k, k + 1).unwrap();
            model.insert(k, k + 1);
        }
        let mut out = Vec::new();
        for start in [0u64, 7, 300, 599, 1000] {
            for n in [0usize, 1, 5, 100, 10_000] {
                let got = idx.scan_n(start, n, &mut out);
                let want: Vec<(Key, Value)> =
                    model.range(start..).take(n).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(got, want.len());
                assert_eq!(out, want, "scan_n({start}, {n}) diverged");
            }
        }
    }

    #[test]
    fn stats_or_pool_exhausted() {
        struct Exhausted;
        impl PersistentIndex for Exhausted {
            fn insert(&self, _: Key, _: Value) -> Result<(), OpError> {
                Err(OpError::PoolExhausted)
            }
            fn update(&self, _: Key, _: Value) -> Result<(), OpError> {
                Err(OpError::PoolExhausted)
            }
            fn upsert(&self, _: Key, _: Value) -> Result<(), OpError> {
                Err(OpError::PoolExhausted)
            }
            fn remove(&self, _: Key) -> Result<(), OpError> {
                Err(OpError::NotFound)
            }
            fn find(&self, _: Key) -> Option<Value> {
                None
            }
            fn scan_n(&self, _: Key, _: usize, out: &mut Vec<(Key, Value)>) -> usize {
                out.clear();
                0
            }
            fn name(&self) -> &'static str {
                "Exhausted"
            }
            fn stats(&self) -> TreeStats {
                TreeStats { pool_exhausted: true, ..TreeStats::default() }
            }
        }
        let idx = ShardedIndex::from_shards(vec![Exhausted, Exhausted]);
        assert!(idx.stats().pool_exhausted);
        assert_eq!(idx.upsert(1, 1), Err(OpError::PoolExhausted));
    }
}
