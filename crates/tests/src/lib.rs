//! integration-test host crate
