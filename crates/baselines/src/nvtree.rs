//! NVTree (Yang et al., FAST'15), as re-implemented for the RNTree
//! evaluation (§6 item 1).
//!
//! Leaf design: **append-only, unsorted**. Every modify appends a log
//! entry (insert or delete flavour) and bumps the persistent `nElement`
//! counter — exactly **two persistent instructions**, the fewest possible
//! for a sorted-or-not leaf. The price:
//!
//! * `find` scans the log area (back to front, so the newest entry for a
//!   key wins — this is the paper's optimised update that appends a single
//!   insert log instead of a delete+insert pair);
//! * range queries must **sort every visited leaf** (Figure 6's 4.2× gap);
//! * conditional writes must scan for key existence first (Figure 5's
//!   ~19% overhead), switchable via [`NvTree::new_conditional`].
//!
//! Per the paper we drop NVTree's original static internal-node array in
//! favour of the shared volatile index. Single-threaded, like the
//! original.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use index_common::{leaf_ref, Key, OpError, PersistentIndex, TreeStats, Value};
use nvm::PmemPool;

use crate::common::Substrate;

const MAGIC: u64 = 0x4E56_5452_4545_0001; // "NVTREE"

/// Log entries per leaf.
const CAPACITY: usize = 64;
/// Leaf block: one header line + 64 × 32 B log entries.
const BLOCK: u64 = 64 + (CAPACITY as u64) * 32;

const F_NELEMS: u64 = 0;
const F_NEXT: u64 = 8;
const F_FENCE: u64 = 16;
const F_LOGS: u64 = 64;

const FLAG_INSERT: u64 = 1;
const FLAG_DELETE: u64 = 2;

#[inline]
fn log_off(i: usize) -> u64 {
    F_LOGS + (i as u64) * 32
}

/// The NVTree baseline. See module docs. Not safe for concurrent mutation.
pub struct NvTree {
    s: Substrate,
    conditional: bool,
}

struct NvLeaf<'p> {
    pool: &'p PmemPool,
    off: u64,
}

impl<'p> NvLeaf<'p> {
    fn at(pool: &'p PmemPool, off: u64) -> Self {
        NvLeaf { pool, off }
    }

    fn nelems(&self) -> u64 {
        self.pool.load_u64(self.off + F_NELEMS)
    }

    fn set_nelems_persist(&self, v: u64) {
        self.pool.store_u64(self.off + F_NELEMS, v);
        self.pool.persist(self.off + F_NELEMS, 8);
    }

    fn next(&self) -> u64 {
        self.pool.load_u64(self.off + F_NEXT)
    }

    fn set_next(&self, v: u64) {
        self.pool.store_u64(self.off + F_NEXT, v);
    }

    fn fence(&self) -> u64 {
        self.pool.load_u64(self.off + F_FENCE)
    }

    fn set_fence(&self, v: u64) {
        self.pool.store_u64(self.off + F_FENCE, v);
    }

    fn entry(&self, i: usize) -> (u64, Key, Value) {
        let base = self.off + log_off(i);
        (
            self.pool.load_u64(base),
            self.pool.load_u64(base + 8),
            self.pool.load_u64(base + 16),
        )
    }

    fn write_entry(&self, i: usize, flag: u64, key: Key, value: Value) {
        let base = self.off + log_off(i);
        self.pool.store_u64(base, flag);
        self.pool.store_u64(base + 8, key);
        self.pool.store_u64(base + 16, value);
    }

    fn persist_entry(&self, i: usize) {
        self.pool.persist(self.off + log_off(i), 32);
    }

    /// Back-to-front scan: newest verdict for `key` within `n` entries.
    fn lookup(&self, key: Key, n: u64) -> Option<Option<Value>> {
        for i in (0..n as usize).rev() {
            let (flag, k, v) = self.entry(i);
            if k == key {
                return Some((flag == FLAG_INSERT).then_some(v));
            }
        }
        None
    }

    /// Live pairs in key order: collect, sort (the paper uses the C++
    /// standard sort here), and deduplicate keeping the newest log entry.
    fn live_pairs(&self) -> Vec<(Key, Value)> {
        let n = self.nelems() as usize;
        let mut logs: Vec<(Key, usize, u64, Value)> = (0..n)
            .map(|i| {
                let (flag, k, v) = self.entry(i);
                (k, i, flag, v)
            })
            .collect();
        logs.sort_unstable_by_key(|&(k, i, _, _)| (k, std::cmp::Reverse(i)));
        let mut out = Vec::with_capacity(logs.len());
        let mut last_key = None;
        for (k, _, flag, v) in logs {
            if last_key == Some(k) {
                continue; // older log for the same key
            }
            last_key = Some(k);
            if flag == FLAG_INSERT {
                out.push((k, v));
            }
        }
        out
    }

    fn init_from_pairs(&self, pairs: &[(Key, Value)], fence: u64, next: u64) {
        for (i, &(k, v)) in pairs.iter().enumerate() {
            self.write_entry(i, FLAG_INSERT, k, v);
        }
        self.pool.store_u64(self.off + F_NELEMS, pairs.len() as u64);
        self.set_next(next);
        self.set_fence(fence);
        self.pool.persist(self.off, BLOCK);
    }
}

impl NvTree {
    /// Creates an NVTree without conditional-write support (the original
    /// behaviour: `insert` acts as upsert, `remove` appends blindly).
    pub fn create(pool: Arc<PmemPool>, seq_traversal: bool) -> NvTree {
        Self::build(pool, seq_traversal, false)
    }

    /// Creates an NVTree with conditional writes (Figure 5's variant):
    /// every modify first scans the leaf for key existence.
    pub fn new_conditional(pool: Arc<PmemPool>, seq_traversal: bool) -> NvTree {
        Self::build(pool, seq_traversal, true)
    }

    fn build(pool: Arc<PmemPool>, seq: bool, conditional: bool) -> NvTree {
        let s = Substrate::create(pool, BLOCK, MAGIC, seq);
        NvLeaf::at(&s.pool, s.leftmost).init_from_pairs(&[], u64::MAX, 0);
        NvTree { s, conditional }
    }

    /// Recovers an NVTree from a crashed pool. The append-only log leaves
    /// persist `nelems` with every appended entry and splits are
    /// undo-journaled, so recovery is journal replay plus a chain scan —
    /// the log-structured entries need no scratch reset at all (obsolete
    /// log records are skipped by `live_pairs`, exactly as during normal
    /// reads).
    pub fn recover(pool: Arc<PmemPool>, seq_traversal: bool, conditional: bool) -> NvTree {
        let s = Substrate::reopen(pool, BLOCK, MAGIC, seq_traversal, |pool, off| {
            let leaf = NvLeaf::at(pool, off);
            (leaf.live_pairs().last().map(|p| p.0), leaf.next())
        });
        NvTree { s, conditional }
    }

    /// Whether conditional-write mode is on.
    pub fn is_conditional(&self) -> bool {
        self.conditional
    }

    fn append(&self, key: Key, value: Value, flag: u64, mode: Mode) -> Result<(), OpError> {
        loop {
            let leaf = NvLeaf::at(&self.s.pool, self.s.traverse(key));
            let n = leaf.nelems();

            if self.conditional {
                // Figure 5's overhead: scan all logs to check existence.
                let live = leaf.lookup(key, n).flatten().is_some();
                match mode {
                    Mode::Insert if live => return Err(OpError::AlreadyExists),
                    Mode::Update if !live => return Err(OpError::NotFound),
                    Mode::Remove if !live => return Err(OpError::NotFound),
                    _ => {}
                }
            }

            if n as usize == CAPACITY {
                self.split(&leaf);
                continue;
            }

            // The two persistent instructions: the entry, then the counter.
            leaf.write_entry(n as usize, flag, key, value);
            leaf.persist_entry(n as usize);
            leaf.set_nelems_persist(n + 1);
            return Ok(());
        }
    }

    /// Split (or compact) a full leaf: gather live pairs, then rewrite.
    fn split(&self, leaf: &NvLeaf<'_>) {
        let pairs = leaf.live_pairs();
        let live = pairs.len();
        let jslot = self.s.journal.acquire();
        self.s.journal.log(&self.s.pool, jslot, leaf.off);

        if live < CAPACITY / 2 {
            // Mostly obsolete: compact in place.
            leaf.init_from_pairs(&pairs, leaf.fence(), leaf.next());
            self.s.journal.clear(&self.s.pool, jslot);
            self.s.compactions.fetch_add(1, Ordering::Relaxed);
            return;
        }

        let right_off = self.s.alloc.alloc().expect("NVTree pool exhausted");
        let right = NvLeaf::at(&self.s.pool, right_off);
        let mid = live / 2;
        let sep = pairs[mid - 1].0;
        right.init_from_pairs(&pairs[mid..], leaf.fence(), leaf.next());
        // Rewrite the left half in place (journal-protected).
        let left_fence = sep;
        leaf.init_from_pairs(&pairs[..mid], left_fence, right_off);
        self.s.journal.clear(&self.s.pool, jslot);
        self.s.index.tree_update(sep, leaf_ref(right_off));
        self.s.splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Walks the chain checking structural invariants (tests).
    pub fn verify_invariants(&self) -> Result<(), String> {
        let mut off = self.s.leftmost;
        let mut last: Option<Key> = None;
        while off != 0 {
            let leaf = NvLeaf::at(&self.s.pool, off);
            let pairs = leaf.live_pairs();
            for &(k, _) in &pairs {
                if let Some(prev) = last {
                    if k <= prev {
                        return Err(format!("leaf {off}: key {k} ≤ previous {prev}"));
                    }
                }
                if k > leaf.fence() {
                    return Err(format!("leaf {off}: key {k} above fence"));
                }
                last = Some(k);
            }
            off = leaf.next();
        }
        Ok(())
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Insert,
    Update,
    Upsert,
    Remove,
}

impl PersistentIndex for NvTree {
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.append(key, value, FLAG_INSERT, Mode::Insert)
    }

    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.append(key, value, FLAG_INSERT, Mode::Update)
    }

    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.append(key, value, FLAG_INSERT, Mode::Upsert)
    }

    fn remove(&self, key: Key) -> Result<(), OpError> {
        self.append(key, 0, FLAG_DELETE, Mode::Remove)
    }

    fn find(&self, key: Key) -> Option<Value> {
        let leaf = NvLeaf::at(&self.s.pool, self.s.traverse(key));
        leaf.lookup(key, leaf.nelems()).flatten()
    }

    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        if n == 0 {
            return 0;
        }
        let mut off = self.s.traverse(start);
        while off != 0 {
            let leaf = NvLeaf::at(&self.s.pool, off);
            // The unsorted-leaf tax: sort each visited leaf (§5.2.4 — the
            // paper uses the C++ standard sort; live_pairs sorts via BTree).
            for (k, v) in leaf.live_pairs() {
                if k < start {
                    continue;
                }
                out.push((k, v));
                if out.len() == n {
                    return n;
                }
            }
            off = leaf.next();
        }
        out.len()
    }

    fn name(&self) -> &'static str {
        if self.conditional {
            "NVTree(cond)"
        } else {
            "NVTree"
        }
    }

    fn stats(&self) -> TreeStats {
        let mut leaves = 0;
        let mut entries = 0;
        let mut off = self.s.leftmost;
        while off != 0 {
            let leaf = NvLeaf::at(&self.s.pool, off);
            leaves += 1;
            entries += leaf.live_pairs().len() as u64;
            off = leaf.next();
        }
        TreeStats {
            leaves,
            entries,
            splits: self.s.splits.load(Ordering::Relaxed),
            ..TreeStats::default()
        }
    }
}

impl obs::ObsSource for NvTree {
    /// The shared baseline sections (`tree`, `pmem`, `events`).
    fn obs_sections(&self) -> Vec<(String, obs::Section)> {
        crate::common::substrate_sections(self, &self.s)
    }
}

impl index_common::RecoverableIndex for NvTree {
    /// `(seq_traversal, conditional)`: single-threaded benchmark mode and
    /// conditional-write support (Figure 5's variant).
    type Config = (bool, bool);

    fn create(pool: Arc<PmemPool>, (seq, conditional): (bool, bool)) -> Self {
        if conditional {
            NvTree::new_conditional(pool, seq)
        } else {
            NvTree::create(pool, seq)
        }
    }

    fn recover(pool: Arc<PmemPool>, (seq, conditional): (bool, bool)) -> Self {
        NvTree::recover(pool, seq, conditional)
    }
}

// SAFETY in the trivial sense: the type contains only Sync parts. Mutating
// concurrently is a documented contract violation (single-threaded tree).
unsafe impl Sync for NvTree {}

impl std::fmt::Debug for NvTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvTree")
            .field("conditional", &self.conditional)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::PmemConfig;

    fn tree() -> NvTree {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
        NvTree::create(pool, false)
    }

    fn cond_tree() -> NvTree {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
        NvTree::new_conditional(pool, false)
    }

    #[test]
    fn insert_find_roundtrip_with_splits() {
        let t = tree();
        for k in (1..=500u64).rev() {
            t.insert(k, k * 2).unwrap();
        }
        for k in 1..=500u64 {
            assert_eq!(t.find(k), Some(k * 2));
        }
        assert_eq!(t.find(0), None);
        assert!(t.stats().splits > 0);
        t.verify_invariants().unwrap();
    }

    #[test]
    fn newest_log_wins() {
        let t = tree();
        t.insert(7, 1).unwrap();
        t.upsert(7, 2).unwrap();
        t.upsert(7, 3).unwrap();
        assert_eq!(t.find(7), Some(3));
        t.remove(7).unwrap();
        assert_eq!(t.find(7), None);
        t.upsert(7, 4).unwrap();
        assert_eq!(t.find(7), Some(4));
    }

    #[test]
    fn nonconditional_insert_acts_as_upsert() {
        let t = tree();
        t.insert(5, 1).unwrap();
        t.insert(5, 2).unwrap(); // no duplicate check
        assert_eq!(t.find(5), Some(2));
        // Blind remove of a missing key is accepted.
        t.remove(99).unwrap();
        assert_eq!(t.find(99), None);
    }

    #[test]
    fn conditional_mode_enforces_semantics() {
        let t = cond_tree();
        t.insert(5, 1).unwrap();
        assert_eq!(t.insert(5, 2), Err(OpError::AlreadyExists));
        assert_eq!(t.update(6, 1), Err(OpError::NotFound));
        assert_eq!(t.remove(6), Err(OpError::NotFound));
        t.update(5, 9).unwrap();
        assert_eq!(t.find(5), Some(9));
        t.remove(5).unwrap();
        assert_eq!(t.find(5), None);
    }

    #[test]
    fn exactly_two_persists_per_insert() {
        let t = tree();
        // Warm below capacity so no split runs during the measured insert.
        for k in 1..=10u64 {
            t.insert(k, k).unwrap();
        }
        let before = t.s.pool.stats().snapshot();
        t.insert(100, 100).unwrap();
        let d = t.s.pool.stats().snapshot().since(&before);
        assert_eq!(d.persists, 2, "NVTree insert must cost 2 persists");
    }

    #[test]
    fn update_churn_compacts() {
        let t = tree();
        for k in 1..=8u64 {
            t.insert(k, 0).unwrap();
        }
        for round in 1..=50u64 {
            for k in 1..=8u64 {
                t.upsert(k, round).unwrap();
            }
        }
        for k in 1..=8u64 {
            assert_eq!(t.find(k), Some(50));
        }
        assert!(t.s.compactions.load(Ordering::Relaxed) > 0);
        t.verify_invariants().unwrap();
    }

    #[test]
    fn scan_sorts_unsorted_leaves() {
        let t = tree();
        // Insert in shuffled order.
        let mut keys: Vec<u64> = (1..=200).map(|i| i * 3).collect();
        keys.reverse();
        for k in keys {
            t.insert(k, k).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(t.scan_n(10, 20, &mut out), 20);
        let ks: Vec<u64> = out.iter().map(|p| p.0).collect();
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        assert_eq!(ks, sorted);
        assert_eq!(ks[0], 12);
    }

    #[test]
    fn deleted_keys_stay_deleted_across_split() {
        let t = tree();
        for k in 1..=100u64 {
            t.insert(k, k).unwrap();
        }
        for k in (1..=100u64).step_by(2) {
            t.remove(k).unwrap();
        }
        // Force splits by more inserts.
        for k in 101..=300u64 {
            t.insert(k, k).unwrap();
        }
        for k in (1..=100u64).step_by(2) {
            assert_eq!(t.find(k), None, "key {k} resurrected");
        }
        t.verify_invariants().unwrap();
    }
}
