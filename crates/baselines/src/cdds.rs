//! CDDS B-Tree (Venkataraman et al., FAST'11) — the Table 1 row with
//! `L*` persistent writes per modification.
//!
//! CDDS keeps leaf entries **sorted in place**, so an insertion shifts on
//! average half the node and every shifted slot must be persisted in
//! order: the write-amplification problem (§3.2) that motivates both the
//! append-only camp and RNTree's slot array. We implement exactly that
//! cost model — per-shift persistence over a sorted array — rather than
//! the full multi-version machinery (version ranges per entry), which the
//! paper's evaluation also leaves aside (CDDS appears only in Table 1).
//! Consequently, mid-shift crash atomicity is out of scope here; splits
//! remain journal-protected like every other tree.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use index_common::{leaf_ref, Key, OpError, PersistentIndex, TreeStats, Value};
use nvm::PmemPool;

use crate::common::Substrate;

const MAGIC: u64 = 0x4344_4453_5452_0001; // "CDDSTR"

const CAPACITY: usize = 64;
/// header line + 64 × 16 B sorted entries.
const BLOCK: u64 = 64 + (CAPACITY as u64) * 16;

const F_COUNT: u64 = 0;
const F_NEXT: u64 = 8;
const F_FENCE: u64 = 16;
const F_KV: u64 = 64;

/// The CDDS B-Tree baseline (see module docs). Not safe for concurrent
/// mutation.
pub struct CddsTree {
    s: Substrate,
}

struct CdLeaf<'p> {
    pool: &'p PmemPool,
    off: u64,
}

impl<'p> CdLeaf<'p> {
    fn at(pool: &'p PmemPool, off: u64) -> Self {
        CdLeaf { pool, off }
    }

    fn count(&self) -> usize {
        self.pool.load_u64(self.off + F_COUNT) as usize
    }

    fn set_count_persist(&self, n: usize) {
        self.pool.store_u64(self.off + F_COUNT, n as u64);
        self.pool.persist(self.off + F_COUNT, 8);
    }

    fn next(&self) -> u64 {
        self.pool.load_u64(self.off + F_NEXT)
    }

    fn fence(&self) -> u64 {
        self.pool.load_u64(self.off + F_FENCE)
    }

    fn kv_off(&self, i: usize) -> u64 {
        self.off + F_KV + (i as u64) * 16
    }

    fn key(&self, i: usize) -> Key {
        self.pool.load_u64(self.kv_off(i))
    }

    fn value(&self, i: usize) -> Value {
        self.pool.load_u64(self.kv_off(i) + 8)
    }

    fn write_entry_persist(&self, i: usize, k: Key, v: Value) {
        self.pool.store_u64(self.kv_off(i), k);
        self.pool.store_u64(self.kv_off(i) + 8, v);
        self.pool.persist(self.kv_off(i), 16);
    }

    fn search(&self, key: Key) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.count());
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key(mid).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    fn pairs(&self) -> Vec<(Key, Value)> {
        (0..self.count()).map(|i| (self.key(i), self.value(i))).collect()
    }

    fn init_from_pairs(&self, pairs: &[(Key, Value)], fence: u64, next: u64) {
        for (i, &(k, v)) in pairs.iter().enumerate() {
            self.pool.store_u64(self.kv_off(i), k);
            self.pool.store_u64(self.kv_off(i) + 8, v);
        }
        self.pool.store_u64(self.off + F_COUNT, pairs.len() as u64);
        self.pool.store_u64(self.off + F_NEXT, next);
        self.pool.store_u64(self.off + F_FENCE, fence);
        self.pool.persist(self.off, BLOCK);
    }
}

impl CddsTree {
    /// Creates a CDDS B-Tree.
    pub fn create(pool: Arc<PmemPool>, seq_traversal: bool) -> CddsTree {
        let s = Substrate::create(pool, BLOCK, MAGIC, seq_traversal);
        CdLeaf::at(&s.pool, s.leftmost).init_from_pairs(&[], u64::MAX, 0);
        CddsTree { s }
    }

    /// Recovers a CDDS B-Tree from a crashed pool: journal replay (splits)
    /// plus a chain scan. Leaves are sorted arrays with a persisted count
    /// and no volatile scratch, so the per-leaf work is reading the last
    /// entry's key.
    pub fn recover(pool: Arc<PmemPool>, seq_traversal: bool) -> CddsTree {
        let s = Substrate::reopen(pool, BLOCK, MAGIC, seq_traversal, |pool, off| {
            let leaf = CdLeaf::at(pool, off);
            let n = leaf.count();
            ((n > 0).then(|| leaf.key(n - 1)), leaf.next())
        });
        CddsTree { s }
    }

    fn leaf(&self, off: u64) -> CdLeaf<'_> {
        CdLeaf::at(&self.s.pool, off)
    }

    fn insert_at(&self, leaf: &CdLeaf<'_>, pos: usize, key: Key, value: Value) {
        let n = leaf.count();
        // Shift right, persisting every moved entry in order — the
        // write-amplified cost this baseline exists to demonstrate.
        for i in (pos..n).rev() {
            let (k, v) = (leaf.key(i), leaf.value(i));
            leaf.write_entry_persist(i + 1, k, v);
        }
        leaf.write_entry_persist(pos, key, value);
        leaf.set_count_persist(n + 1);
    }

    fn split(&self, leaf: &CdLeaf<'_>) {
        let pairs = leaf.pairs();
        let live = pairs.len();
        let jslot = self.s.journal.acquire();
        self.s.journal.log(&self.s.pool, jslot, leaf.off);
        let right_off = self.s.alloc.alloc().expect("CDDS pool exhausted");
        let right = CdLeaf::at(&self.s.pool, right_off);
        let mid = live / 2;
        let sep = pairs[mid - 1].0;
        right.init_from_pairs(&pairs[mid..], leaf.fence(), leaf.next());
        leaf.init_from_pairs(&pairs[..mid], sep, right_off);
        self.s.journal.clear(&self.s.pool, jslot);
        self.s.index.tree_update(sep, leaf_ref(right_off));
        self.s.splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Structural check for tests.
    pub fn verify_invariants(&self) -> Result<(), String> {
        let mut off = self.s.leftmost;
        let mut last: Option<Key> = None;
        while off != 0 {
            let leaf = self.leaf(off);
            for &(k, _) in leaf.pairs().iter() {
                if let Some(prev) = last {
                    if k <= prev {
                        return Err(format!("leaf {off}: key {k} ≤ previous {prev}"));
                    }
                }
                if k > leaf.fence() {
                    return Err(format!("leaf {off}: key {k} above fence"));
                }
                last = Some(k);
            }
            off = leaf.next();
        }
        Ok(())
    }
}

impl PersistentIndex for CddsTree {
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        loop {
            let leaf = self.leaf(self.s.traverse(key));
            match leaf.search(key) {
                Ok(_) => return Err(OpError::AlreadyExists),
                Err(pos) => {
                    if leaf.count() == CAPACITY {
                        self.split(&leaf);
                        continue;
                    }
                    self.insert_at(&leaf, pos, key, value);
                    return Ok(());
                }
            }
        }
    }

    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        let leaf = self.leaf(self.s.traverse(key));
        match leaf.search(key) {
            Err(_) => Err(OpError::NotFound),
            Ok(pos) => {
                leaf.write_entry_persist(pos, key, value);
                Ok(())
            }
        }
    }

    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        match self.update(key, value) {
            Err(OpError::NotFound) => self.insert(key, value),
            r => r,
        }
    }

    fn remove(&self, key: Key) -> Result<(), OpError> {
        let leaf = self.leaf(self.s.traverse(key));
        match leaf.search(key) {
            Err(_) => Err(OpError::NotFound),
            Ok(pos) => {
                let n = leaf.count();
                // Shift left with per-entry persistence.
                for i in pos..n - 1 {
                    let (k, v) = (leaf.key(i + 1), leaf.value(i + 1));
                    leaf.write_entry_persist(i, k, v);
                }
                leaf.set_count_persist(n - 1);
                Ok(())
            }
        }
    }

    fn find(&self, key: Key) -> Option<Value> {
        let leaf = self.leaf(self.s.traverse(key));
        leaf.search(key).ok().map(|pos| leaf.value(pos))
    }

    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        if n == 0 {
            return 0;
        }
        let mut off = self.s.traverse(start);
        while off != 0 {
            let leaf = self.leaf(off);
            let from = match leaf.search(start) {
                Ok(p) | Err(p) => p,
            };
            for i in from..leaf.count() {
                out.push((leaf.key(i), leaf.value(i)));
                if out.len() == n {
                    return n;
                }
            }
            off = leaf.next();
        }
        out.len()
    }

    fn name(&self) -> &'static str {
        "CDDS"
    }

    fn stats(&self) -> TreeStats {
        let mut leaves = 0;
        let mut entries = 0;
        let mut off = self.s.leftmost;
        while off != 0 {
            let leaf = self.leaf(off);
            leaves += 1;
            entries += leaf.count() as u64;
            off = leaf.next();
        }
        TreeStats {
            leaves,
            entries,
            splits: self.s.splits.load(Ordering::Relaxed),
            ..TreeStats::default()
        }
    }
}

impl obs::ObsSource for CddsTree {
    /// The shared baseline sections (`tree`, `pmem`, `events`).
    fn obs_sections(&self) -> Vec<(String, obs::Section)> {
        crate::common::substrate_sections(self, &self.s)
    }
}

impl index_common::RecoverableIndex for CddsTree {
    /// `seq_traversal`: single-threaded benchmark mode.
    type Config = bool;

    fn create(pool: Arc<PmemPool>, seq_traversal: bool) -> Self {
        CddsTree::create(pool, seq_traversal)
    }

    fn recover(pool: Arc<PmemPool>, seq_traversal: bool) -> Self {
        CddsTree::recover(pool, seq_traversal)
    }
}

impl std::fmt::Debug for CddsTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CddsTree").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::PmemConfig;

    fn tree() -> CddsTree {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
        CddsTree::create(pool, false)
    }

    #[test]
    fn sorted_roundtrip_with_splits() {
        let t = tree();
        for k in (1..=400u64).rev() {
            t.insert(k, k).unwrap();
        }
        for k in 1..=400u64 {
            assert_eq!(t.find(k), Some(k));
        }
        assert!(t.stats().splits > 0);
        t.verify_invariants().unwrap();
    }

    #[test]
    fn conditional_semantics() {
        let t = tree();
        t.insert(5, 1).unwrap();
        assert_eq!(t.insert(5, 2), Err(OpError::AlreadyExists));
        assert_eq!(t.update(6, 1), Err(OpError::NotFound));
        t.update(5, 9).unwrap();
        assert_eq!(t.find(5), Some(9));
        t.remove(5).unwrap();
        assert_eq!(t.remove(5), Err(OpError::NotFound));
    }

    #[test]
    fn insert_persists_scale_with_shift_distance() {
        let t = tree();
        // Fill one leaf with keys 10..10*n; inserting key 5 (front) shifts
        // everything; inserting at the back shifts nothing.
        for k in 1..=20u64 {
            t.insert(k * 10, k).unwrap();
        }
        let before = t.s.pool.stats().snapshot();
        t.insert(5, 0).unwrap(); // front: 20 shifts + entry + count
        let front = t.s.pool.stats().snapshot().since(&before).persists;
        let before = t.s.pool.stats().snapshot();
        t.insert(1000, 0).unwrap(); // back: entry + count only
        let back = t.s.pool.stats().snapshot().since(&before).persists;
        assert_eq!(back, 2);
        assert_eq!(front, 22, "front insert must persist every shifted slot");
    }

    #[test]
    fn update_is_cheap_in_place() {
        let t = tree();
        t.insert(1, 1).unwrap();
        let before = t.s.pool.stats().snapshot();
        t.update(1, 2).unwrap();
        assert_eq!(t.s.pool.stats().snapshot().since(&before).persists, 1);
    }

    #[test]
    fn scan_is_naturally_sorted() {
        let t = tree();
        for k in [50u64, 10, 40, 20, 30] {
            t.insert(k, k).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(t.scan_n(15, 3, &mut out), 3);
        assert_eq!(out.iter().map(|p| p.0).collect::<Vec<_>>(), vec![20, 30, 40]);
    }

    #[test]
    fn remove_shifts_and_keeps_order() {
        let t = tree();
        for k in 1..=100u64 {
            t.insert(k, k).unwrap();
        }
        for k in (1..=100u64).step_by(3) {
            t.remove(k).unwrap();
        }
        for k in 1..=100u64 {
            assert_eq!(t.find(k), ((k - 1) % 3 != 0).then_some(k));
        }
        t.verify_invariants().unwrap();
    }
}
