//! # baselines — the comparison trees of the RNTree evaluation
//!
//! The paper's authors re-implemented every comparison system themselves
//! ("as previous works are not open-sourced", §6), holding the internal
//! nodes constant and varying only the leaf design. This crate does the
//! same on the shared `index-common` / `nvm` / `htm` substrates:
//!
//! | Tree | Leaf design | Persists per modify | Sorted | Concurrency |
//! |---|---|---|---|---|
//! | [`CddsTree`] | sorted in-place array, per-shift persistence | ∝ L | yes | no |
//! | [`NvTree`] | append-only logs + `nElement` counter | 2 | no | no |
//! | [`WbTree`] (full) | 64 B slot array + valid bit | 4 | yes | no |
//! | [`WbTree`] (SO) | 8 B slot array (7 entries) | 2 | yes | no |
//! | [`FpTree`] | fingerprints + bitmap, whole-leaf lock | 3 (1 remove) | no | coarse |
//!
//! (Paper Table 1; the numbers are measured, not asserted, by the
//! `persist_counts` bench and checked by unit tests here.)
//!
//! Fidelity notes, mirroring §6's adjustments:
//! * NVTree uses the paper's optimised update (append an insert log, scan
//!   back-to-front) and has a switchable **conditional-write mode** whose
//!   overhead is Figure 5's subject.
//! * wB+Tree comes in the two evaluated sizes: the 64-byte slot array with
//!   the valid-bit protocol, and the 8-byte "SO" variant whose slot array
//!   updates atomically but caps leaves at 7 entries.
//! * FPTree implements *selective concurrency*: HTM traversal, then the
//!   whole leaf locked — flushes included — for the entire modify
//!   operation; `find` aborts its transaction and retries from the root
//!   whenever it meets a locked leaf. These are exactly the two behaviours
//!   the paper blames for FPTree's collapse under skew (§6.3.1).
//! * CDDS B-Tree appears in Table 1 only; we implement the write
//!   amplification that row describes (sorted in-place array whose shifts
//!   are persisted), not the full multi-version machinery.
//!
//! Single-threaded trees (`CddsTree`, `NvTree`, `WbTree`) implement the
//! shared [`index_common::PersistentIndex`] trait but must not be mutated
//! concurrently; `FpTree` is safe for concurrent use.

#![deny(missing_docs)]

mod cdds;
mod common;
mod fptree;
mod nvtree;
mod wbtree;

pub use cdds::CddsTree;
pub use fptree::FpTree;
pub use nvtree::NvTree;
pub use wbtree::{WbTree, WbVariant};
