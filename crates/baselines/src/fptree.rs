//! FPTree (Oukid et al., SIGMOD'16), the paper's only concurrent
//! comparison system (§6 item 3).
//!
//! Leaf design: **unsorted** slots tracked by a 64-bit occupancy bitmap,
//! plus one-byte key **fingerprints** that cut failed key comparisons
//! during the linear scan. Modify operations cost **three persistent
//! instructions** (entry, fingerprint line, bitmap); `remove` costs one
//! (bitmap only). Because log slots are reused, FPTree *must* behave
//! conditionally — it cannot tolerate two live logs with one key (§6).
//!
//! Concurrency is the paper's *selective concurrency*: traversal runs in a
//! hardware transaction which also **acquires the whole-leaf lock**
//! transactionally; all persistent work — flushes included — then happens
//! under that lock. `find` runs fully inside a transaction and issues an
//! explicit abort (retrying from the root) whenever it observes a locked
//! leaf. These two choices are precisely what the RNTree paper blames for
//! FPTree's collapse under skew (§3.4, §6.3.1): hot leaves stay locked
//! across NVM flush latency, and every lock acquisition knocks down all
//! concurrent finds on that leaf.
//!
//! Emulation note: the software TM versions only words accessed through
//! it, so `find` transactions **re-read the leaf lock word after reading
//! leaf content** — a seqlock-style validation that stands in for real
//! HTM's cache-line conflict tracking of the content lines themselves.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use htm::TmWord;
use index_common::{leaf_ref, Key, OpError, PersistentIndex, TreeStats, Value};
use nvm::PmemPool;

use crate::common::{fingerprint, Substrate};

const MAGIC: u64 = 0x4650_5452_4545_0001; // "FPTREE"

const CAPACITY: usize = 64;
/// header line + fingerprint line + 64 × 16 B entries.
const BLOCK: u64 = 64 + 64 + (CAPACITY as u64) * 16;

const F_LOCK: u64 = 0;
const F_BITMAP: u64 = 8;
const F_NEXT: u64 = 16;
const F_FENCE: u64 = 24;
const F_FP: u64 = 64;
const F_KV: u64 = 128;

/// Explicit-abort code for "leaf is locked, retry from root".
const ABORT_LOCKED: u32 = 0x1F;

/// The FPTree baseline (see module docs). Safe for concurrent use.
pub struct FpTree {
    s: Substrate,
}

#[derive(Clone, Copy)]
struct FpLeaf<'p> {
    pool: &'p PmemPool,
    off: u64,
}

impl<'p> FpLeaf<'p> {
    fn at(pool: &'p PmemPool, off: u64) -> Self {
        FpLeaf { pool, off }
    }

    fn word(&self, field: u64) -> &'p TmWord {
        TmWord::from_atomic(self.pool.atomic_u64(self.off + field))
    }

    fn bitmap(&self) -> u64 {
        self.pool.load_u64(self.off + F_BITMAP)
    }

    /// Publishes a new bitmap conflict-visibly and persists it (one
    /// persistent instruction — FPTree's metadata commit point).
    fn publish_bitmap_persist(&self, bm: u64) {
        self.word(F_BITMAP).store_nontx(bm);
        self.pool.persist(self.off + F_BITMAP, 8);
    }

    fn next(&self) -> u64 {
        self.pool.load_u64(self.off + F_NEXT)
    }

    fn fence(&self) -> u64 {
        self.pool.load_u64(self.off + F_FENCE)
    }

    fn fp_byte(&self, i: usize) -> u8 {
        let w = self.pool.load_u64(self.off + F_FP + (i as u64 / 8) * 8);
        w.to_le_bytes()[i % 8]
    }

    fn set_fp_byte(&self, i: usize, b: u8) {
        let woff = self.off + F_FP + (i as u64 / 8) * 8;
        let mut bytes = self.pool.load_u64(woff).to_le_bytes();
        bytes[i % 8] = b;
        self.pool.store_u64(woff, u64::from_le_bytes(bytes));
    }

    fn persist_fp_line(&self) {
        self.pool.persist(self.off + F_FP, 64);
    }

    fn kv_off(&self, i: usize) -> u64 {
        self.off + F_KV + (i as u64) * 16
    }

    fn read_key(&self, i: usize) -> Key {
        self.pool.load_u64(self.kv_off(i))
    }

    fn read_value(&self, i: usize) -> Value {
        self.pool.load_u64(self.kv_off(i) + 8)
    }

    fn write_kv_persist(&self, i: usize, k: Key, v: Value) {
        self.pool.store_u64(self.kv_off(i), k);
        self.pool.store_u64(self.kv_off(i) + 8, v);
        self.pool.persist(self.kv_off(i), 16);
    }

    /// Linear fingerprint probe under the leaf lock (writer side).
    fn locate(&self, key: Key) -> Option<usize> {
        let bm = self.bitmap();
        let fp = fingerprint(key);
        (0..CAPACITY).find(|&i| bm & (1 << i) != 0 && self.fp_byte(i) == fp && self.read_key(i) == key)
    }

    fn live_pairs_sorted(&self) -> Vec<(Key, Value)> {
        let bm = self.bitmap();
        let mut pairs: Vec<(Key, Value)> = (0..CAPACITY)
            .filter(|i| bm & (1 << i) != 0)
            .map(|i| (self.read_key(i), self.read_value(i)))
            .collect();
        pairs.sort_unstable_by_key(|p| p.0);
        pairs
    }

    fn init_from_pairs(&self, pairs: &[(Key, Value)], fence: u64, next: u64) {
        for (i, &(k, v)) in pairs.iter().enumerate() {
            self.pool.store_u64(self.kv_off(i), k);
            self.pool.store_u64(self.kv_off(i) + 8, v);
            self.set_fp_byte(i, fingerprint(k));
        }
        let bm = if pairs.len() == 64 {
            u64::MAX
        } else {
            (1u64 << pairs.len()) - 1
        };
        self.pool.store_u64(self.off + F_LOCK, 0);
        self.pool.store_u64(self.off + F_BITMAP, bm);
        self.pool.store_u64(self.off + F_NEXT, next);
        self.pool.store_u64(self.off + F_FENCE, fence);
        self.pool.persist(self.off, BLOCK);
    }
}

impl FpTree {
    /// Creates an FPTree. `seq_traversal` selects the single-threaded
    /// benchmark path (no transactions, no locks).
    pub fn create(pool: Arc<PmemPool>, seq_traversal: bool) -> FpTree {
        let s = Substrate::create(pool, BLOCK, MAGIC, seq_traversal);
        FpLeaf::at(&s.pool, s.leftmost).init_from_pairs(&[], u64::MAX, 0);
        FpTree { s }
    }

    /// Recovers an FPTree from a crashed pool. FPTree leaves are fully
    /// persistent (bitmap, fingerprints and KV entries are flushed per
    /// operation; splits are undo-journaled), so recovery is journal replay
    /// plus a chain scan; the only per-leaf scratch is the lock word, which
    /// is cleared — a crashed holder's lock must not outlive it.
    pub fn recover(pool: Arc<PmemPool>, seq_traversal: bool) -> FpTree {
        let s = Substrate::reopen(pool, BLOCK, MAGIC, seq_traversal, |pool, off| {
            pool.store_u64(off + F_LOCK, 0);
            let leaf = FpLeaf::at(pool, off);
            (leaf.live_pairs_sorted().last().map(|p| p.0), leaf.next())
        });
        FpTree { s }
    }

    fn leaf(&self, off: u64) -> FpLeaf<'_> {
        FpLeaf::at(&self.s.pool, off)
    }

    /// Selective concurrency, writer side: one transaction that traverses
    /// *and* acquires the whole-leaf lock. Returns the locked leaf.
    fn traverse_and_lock(&self, key: Key) -> u64 {
        if self.s.seq {
            return self.s.traverse(key);
        }
        self.s.index.domain().atomic(|txn| {
            let off = self.s.index.traverse_in(txn, key)?;
            let lw = FpLeaf::at(&self.s.pool, off).word(F_LOCK);
            let lv = txn.read(lw)?;
            if lv & 1 == 1 {
                return Err(txn.abort(ABORT_LOCKED));
            }
            txn.write(lw, lv | 1)?;
            Ok(off)
        })
    }

    fn unlock(&self, leaf: FpLeaf<'_>) {
        if self.s.seq {
            return;
        }
        let lv = leaf.word(F_LOCK).load_direct();
        debug_assert_eq!(lv & 1, 1);
        leaf.word(F_LOCK).store_nontx(lv & !1);
    }

    fn modify(&self, key: Key, value: Value, mode: Mode) -> Result<(), OpError> {
        loop {
            let leaf = self.leaf(self.traverse_and_lock(key));
            let existing = leaf.locate(key);
            match (mode, existing) {
                (Mode::Insert, Some(_)) => {
                    self.unlock(leaf);
                    return Err(OpError::AlreadyExists);
                }
                (Mode::Update, None) => {
                    self.unlock(leaf);
                    return Err(OpError::NotFound);
                }
                _ => {}
            }
            let bm = leaf.bitmap();
            let free = (!bm).trailing_zeros() as usize;
            if free >= CAPACITY {
                self.split(leaf);
                self.unlock(leaf);
                continue;
            }
            // The three persistent instructions, all inside the critical
            // section (FPTree's decoupled design, §3.4).
            leaf.write_kv_persist(free, key, value);
            leaf.set_fp_byte(free, fingerprint(key));
            leaf.persist_fp_line();
            let new_bm = match existing {
                // Out-of-place update: one atomic bitmap word swaps the
                // old slot out and the new one in.
                Some(old) => (bm & !(1 << old)) | (1 << free),
                None => bm | (1 << free),
            };
            leaf.publish_bitmap_persist(new_bm);
            self.unlock(leaf);
            return Ok(());
        }
    }

    /// Split under the (held) leaf lock.
    fn split(&self, leaf: FpLeaf<'_>) {
        let pairs = leaf.live_pairs_sorted();
        let live = pairs.len();
        let jslot = self.s.journal.acquire();
        self.s.journal.log(&self.s.pool, jslot, leaf.off);

        debug_assert!(live > 1, "split of a near-empty FPTree leaf");
        let right_off = self.s.alloc.alloc().expect("FPTree pool exhausted");
        let right = FpLeaf::at(&self.s.pool, right_off);
        let mid = live / 2;
        let sep = pairs[mid - 1].0;
        right.init_from_pairs(&pairs[mid..], leaf.fence(), leaf.next());

        // Rewrite the left half in place (readers are fenced out by the
        // lock-word protocol; the journal covers crashes).
        for (i, &(k, v)) in pairs[..mid].iter().enumerate() {
            self.s.pool.store_u64(leaf.kv_off(i), k);
            self.s.pool.store_u64(leaf.kv_off(i) + 8, v);
            leaf.set_fp_byte(i, fingerprint(k));
        }
        self.s.pool.store_u64(leaf.off + F_FENCE, sep);
        if self.s.seq {
            self.s.pool.store_u64(leaf.off + F_NEXT, right_off);
            self.s.pool.store_u64(leaf.off + F_BITMAP, (1u64 << mid) - 1);
        } else {
            leaf.word(F_NEXT).store_nontx(right_off);
            leaf.word(F_BITMAP).store_nontx((1u64 << mid) - 1);
        }
        self.s.pool.persist(leaf.off, BLOCK);
        self.s.journal.clear(&self.s.pool, jslot);
        self.s.index.tree_update(sep, leaf_ref(right_off));
        self.s.splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Structural check for tests (quiescent).
    pub fn verify_invariants(&self) -> Result<(), String> {
        let mut off = self.s.leftmost;
        let mut last: Option<Key> = None;
        while off != 0 {
            let leaf = self.leaf(off);
            if self.s.pool.load_u64(leaf.off + F_LOCK) & 1 == 1 {
                return Err(format!("leaf {off} left locked"));
            }
            for &(k, _) in leaf.live_pairs_sorted().iter() {
                if let Some(prev) = last {
                    if k <= prev {
                        return Err(format!("leaf {off}: key {k} ≤ previous {prev}"));
                    }
                }
                if k > leaf.fence() {
                    return Err(format!("leaf {off}: key {k} above fence"));
                }
                if leaf.fp_byte(leaf.locate(k).unwrap()) != fingerprint(k) {
                    return Err(format!("leaf {off}: fingerprint mismatch for {k}"));
                }
                last = Some(k);
            }
            off = leaf.next();
        }
        Ok(())
    }

    /// HTM counters (explicit aborts ≈ finds knocked down by leaf locks).
    pub fn htm_stats(&self) -> htm::HtmStatsSnapshot {
        self.s.index.domain().stats().snapshot()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Insert,
    Update,
    Upsert,
}

impl PersistentIndex for FpTree {
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.modify(key, value, Mode::Insert)
    }

    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.modify(key, value, Mode::Update)
    }

    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.modify(key, value, Mode::Upsert)
    }

    fn remove(&self, key: Key) -> Result<(), OpError> {
        let leaf = self.leaf(self.traverse_and_lock(key));
        let res = match leaf.locate(key) {
            None => Err(OpError::NotFound),
            Some(i) => {
                // One persistent instruction: clear the bitmap bit.
                leaf.publish_bitmap_persist(leaf.bitmap() & !(1 << i));
                Ok(())
            }
        };
        self.unlock(leaf);
        res
    }

    fn find(&self, key: Key) -> Option<Value> {
        if self.s.seq {
            let leaf = self.leaf(self.s.traverse(key));
            return leaf.locate(key).map(|i| leaf.read_value(i));
        }
        let fp = fingerprint(key);
        self.s.index.domain().atomic(|txn| {
            let off = self.s.index.traverse_in(txn, key)?;
            let leaf = FpLeaf::at(&self.s.pool, off);
            let lw = leaf.word(F_LOCK);
            if txn.read(lw)? & 1 == 1 {
                // Paper §6.3.1: find "will always abort the transaction and
                // traverse from the root again if the leaf is locked".
                return Err(txn.abort(ABORT_LOCKED));
            }
            let bm = txn.read(leaf.word(F_BITMAP))?;
            let mut result = None;
            for i in 0..CAPACITY {
                if bm & (1 << i) != 0 && leaf.fp_byte(i) == fp && leaf.read_key(i) == key {
                    result = Some(leaf.read_value(i));
                    break;
                }
            }
            // Seqlock-style close: if a writer locked the leaf after our
            // first lock read, this re-read conflicts and aborts us.
            let _ = txn.read(lw)?;
            Ok(result)
        })
    }

    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        if n == 0 {
            return 0;
        }
        let mut off = if self.s.seq {
            self.s.traverse(start)
        } else {
            self.s.index.traverse_tm(start)
        };
        while off != 0 {
            let leaf = self.leaf(off);
            // Snapshot the leaf (transactionally when concurrent), then
            // sort — the unsorted-leaf tax of Figure 6.
            let (pairs, next) = if self.s.seq {
                (leaf.live_pairs_sorted(), leaf.next())
            } else {
                self.s.index.domain().atomic(|txn| {
                    let lw = leaf.word(F_LOCK);
                    if txn.read(lw)? & 1 == 1 {
                        return Err(txn.abort(ABORT_LOCKED));
                    }
                    let bm = txn.read(leaf.word(F_BITMAP))?;
                    let mut pairs: Vec<(Key, Value)> = (0..CAPACITY)
                        .filter(|i| bm & (1 << i) != 0)
                        .map(|i| (leaf.read_key(i), leaf.read_value(i)))
                        .collect();
                    let next = txn.read(leaf.word(F_NEXT))?;
                    let _ = txn.read(lw)?;
                    pairs.sort_unstable_by_key(|p| p.0);
                    Ok((pairs, next))
                })
            };
            for (k, v) in pairs {
                if k < start {
                    continue;
                }
                out.push((k, v));
                if out.len() == n {
                    return n;
                }
            }
            off = next;
        }
        out.len()
    }

    fn name(&self) -> &'static str {
        "FPTree"
    }

    fn supports_concurrency(&self) -> bool {
        !self.s.seq
    }

    fn htm_abort_ratio(&self) -> Option<f64> {
        Some(self.htm_stats().abort_ratio())
    }

    fn stats(&self) -> TreeStats {
        let mut leaves = 0;
        let mut entries = 0;
        let mut off = self.s.leftmost;
        while off != 0 {
            let leaf = self.leaf(off);
            leaves += 1;
            entries += leaf.bitmap().count_ones() as u64;
            off = leaf.next();
        }
        TreeStats {
            leaves,
            entries,
            splits: self.s.splits.load(Ordering::Relaxed),
            ..TreeStats::default()
        }
    }
}

impl obs::ObsSource for FpTree {
    /// The shared baseline sections plus FPTree's HTM abort taxonomy
    /// and retries-to-commit distribution (it is the only baseline with
    /// an HTM domain of its own).
    fn obs_sections(&self) -> Vec<(String, obs::Section)> {
        let mut out = crate::common::substrate_sections(self, &self.s);
        out.push(("htm".to_string(), obs::Section::Counters(self.htm_stats().counters())));
        out.push((
            "htm_retries".to_string(),
            obs::Section::Latencies(vec![(
                "retries_to_commit".to_string(),
                self.s.index.domain().stats().retries_to_commit(),
            )]),
        ));
        out
    }
}

impl index_common::RecoverableIndex for FpTree {
    /// `seq_traversal`: single-threaded benchmark mode.
    type Config = bool;

    fn create(pool: Arc<PmemPool>, seq_traversal: bool) -> Self {
        FpTree::create(pool, seq_traversal)
    }

    fn recover(pool: Arc<PmemPool>, seq_traversal: bool) -> Self {
        FpTree::recover(pool, seq_traversal)
    }
}

impl std::fmt::Debug for FpTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpTree").field("seq", &self.s.seq).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::PmemConfig;

    fn tree() -> FpTree {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
        FpTree::create(pool, false)
    }

    #[test]
    fn roundtrip_with_splits() {
        let t = tree();
        for k in (1..=500u64).rev() {
            t.insert(k, k * 3).unwrap();
        }
        for k in 1..=500u64 {
            assert_eq!(t.find(k), Some(k * 3), "key {k}");
        }
        assert_eq!(t.find(0), None);
        assert!(t.stats().splits > 0);
        t.verify_invariants().unwrap();
    }

    #[test]
    fn conditional_is_inherent() {
        let t = tree();
        t.insert(5, 1).unwrap();
        assert_eq!(t.insert(5, 2), Err(OpError::AlreadyExists));
        assert_eq!(t.update(6, 1), Err(OpError::NotFound));
        t.update(5, 9).unwrap();
        assert_eq!(t.find(5), Some(9));
        assert_eq!(t.remove(6), Err(OpError::NotFound));
        t.remove(5).unwrap();
        assert_eq!(t.find(5), None);
    }

    #[test]
    fn insert_costs_three_persists_remove_one() {
        let t = tree();
        for k in 1..=10u64 {
            t.insert(k, k).unwrap();
        }
        let before = t.s.pool.stats().snapshot();
        t.insert(100, 1).unwrap();
        let d = t.s.pool.stats().snapshot().since(&before);
        assert_eq!(d.persists, 3, "FPTree insert = entry + fp + bitmap");
        let before = t.s.pool.stats().snapshot();
        t.remove(100).unwrap();
        let d = t.s.pool.stats().snapshot().since(&before);
        assert_eq!(d.persists, 1, "FPTree remove = bitmap only");
    }

    #[test]
    fn update_reuses_slots() {
        let t = tree();
        for k in 1..=4u64 {
            t.insert(k, 0).unwrap();
        }
        // Far more updates than capacity: slots must recycle without split.
        for round in 1..=100u64 {
            for k in 1..=4u64 {
                t.update(k, round).unwrap();
            }
        }
        for k in 1..=4u64 {
            assert_eq!(t.find(k), Some(100));
        }
        assert_eq!(t.stats().splits, 0, "updates must reuse freed slots");
        t.verify_invariants().unwrap();
    }

    #[test]
    fn concurrent_mixed_workload_is_linearizable_enough() {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 26)));
        let t = Arc::new(FpTree::create(pool, false));
        let threads = 4;
        let per = 2_000u64;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let k = tid * per + i + 1;
                    t.insert(k, k).unwrap();
                    if i % 2 == 0 {
                        t.update(k, k + 1).unwrap();
                    }
                    if i % 3 == 0 {
                        assert!(t.find(k).is_some());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for tid in 0..threads {
            for i in 0..per {
                let k = tid * per + i + 1;
                let want = if i % 2 == 0 { k + 1 } else { k };
                assert_eq!(t.find(k), Some(want), "key {k}");
            }
        }
        t.verify_invariants().unwrap();
        // Locked-leaf aborts should have occurred under contention.
        let s = t.htm_stats();
        assert!(s.commits > 0);
    }

    #[test]
    fn scan_sorts_each_leaf() {
        let t = tree();
        for k in [9u64, 3, 7, 1, 5, 8, 2, 6, 4, 10] {
            t.insert(k * 10, k).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(t.scan_n(25, 4, &mut out), 4);
        assert_eq!(out.iter().map(|p| p.0).collect::<Vec<_>>(), vec![30, 40, 50, 60]);
    }

    #[test]
    fn seq_mode_matches_concurrent_mode() {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
        let t = FpTree::create(pool, true);
        for k in 1..=300u64 {
            t.insert(k, k).unwrap();
        }
        for k in 1..=300u64 {
            assert_eq!(t.find(k), Some(k));
        }
        let mut out = Vec::new();
        assert_eq!(t.scan_n(100, 50, &mut out), 50);
        t.verify_invariants().unwrap();
    }
}
