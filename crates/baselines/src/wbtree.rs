//! wB+Tree (Chen & Jin, VLDB'15), in the two sizes the RNTree paper
//! evaluates (§6 item 2).
//!
//! Like RNTree, wB+Tree keeps leaves sorted through an indirection slot
//! array over append-only logs. Unlike RNTree it has no HTM, so the
//! atomic-write size is 8 bytes:
//!
//! * **Full variant** (`WbVariant::Full`): a 64-byte slot array cannot be
//!   updated atomically, so a *valid bit* brackets every slot update —
//!   **four persistent instructions** per modify (entry, valid←0, slots,
//!   valid←1). After a crash with the bit clear, the slot array would be
//!   rebuilt from the logs.
//! * **SO variant** (`WbVariant::SmallSlot`): the entire slot array is one
//!   8-byte word (count + 7 indices), updated and flushed atomically —
//!   back to **two persistent instructions**, but leaves hold at most 7
//!   entries, so the tree is deep and splits constantly (the paper's
//!   Figure 4 shows it losing to everything on insert).
//!
//! Single-threaded, as in the paper (Table 1: Concurrency ×).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use index_common::{leaf_ref, Key, OpError, PersistentIndex, TreeStats, Value};
use nvm::PmemPool;
use rntree::SlotBuf;

use crate::common::Substrate;

const MAGIC_FULL: u64 = 0x5742_5452_4545_0001; // "WBTREE"
const MAGIC_SO: u64 = 0x5742_5452_4545_0002;

/// Which wB+Tree flavour to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WbVariant {
    /// 64-byte slot array guarded by the valid bit (4 persists/modify).
    Full,
    /// 8-byte slot array, 7-entry leaves (2 persists/modify).
    SmallSlot,
}

impl WbVariant {
    fn capacity(self) -> usize {
        match self {
            WbVariant::Full => 64,
            WbVariant::SmallSlot => 8,
        }
    }

    fn max_live(self) -> usize {
        match self {
            WbVariant::Full => 63,
            WbVariant::SmallSlot => 7,
        }
    }

    fn block(self) -> u64 {
        match self {
            // header line + slot line + 64 × 16 B entries
            WbVariant::Full => 64 + 64 + 64 * 16,
            // header line (slot word inside) + 8 × 16 B entries
            WbVariant::SmallSlot => 64 + 8 * 16,
        }
    }

    fn magic(self) -> u64 {
        match self {
            WbVariant::Full => MAGIC_FULL,
            WbVariant::SmallSlot => MAGIC_SO,
        }
    }
}

// Header fields (both variants).
const F_VALID: u64 = 0; // Full: valid bit. SmallSlot: the packed slot word.
const F_NLOGS: u64 = 8;
const F_NEXT: u64 = 16;
const F_FENCE: u64 = 24;
const F_SLOT: u64 = 64; // Full only
fn f_logs(v: WbVariant) -> u64 {
    match v {
        WbVariant::Full => 128,
        WbVariant::SmallSlot => 64,
    }
}

/// The wB+Tree baseline (see module docs). Not safe for concurrent
/// mutation.
pub struct WbTree {
    s: Substrate,
    v: WbVariant,
}

/// Decoded slot state, abstracting over the two encodings.
#[derive(Clone)]
struct Slots {
    order: Vec<u8>,
}

impl Slots {
    fn len(&self) -> usize {
        self.order.len()
    }
}

struct WbLeaf<'p> {
    pool: &'p PmemPool,
    off: u64,
    v: WbVariant,
}

impl<'p> WbLeaf<'p> {
    fn at(pool: &'p PmemPool, off: u64, v: WbVariant) -> Self {
        WbLeaf { pool, off, v }
    }

    fn nlogs(&self) -> u64 {
        self.pool.load_u64(self.off + F_NLOGS)
    }

    fn set_nlogs(&self, n: u64) {
        self.pool.store_u64(self.off + F_NLOGS, n);
    }

    fn next(&self) -> u64 {
        self.pool.load_u64(self.off + F_NEXT)
    }

    fn fence(&self) -> u64 {
        self.pool.load_u64(self.off + F_FENCE)
    }

    fn kv_off(&self, i: usize) -> u64 {
        self.off + f_logs(self.v) + (i as u64) * 16
    }

    fn read_key(&self, i: usize) -> Key {
        self.pool.load_u64(self.kv_off(i))
    }

    fn read_value(&self, i: usize) -> Value {
        self.pool.load_u64(self.kv_off(i) + 8)
    }

    fn write_kv_persist(&self, i: usize, k: Key, val: Value) {
        self.pool.store_u64(self.kv_off(i), k);
        self.pool.store_u64(self.kv_off(i) + 8, val);
        self.pool.persist(self.kv_off(i), 16);
    }

    fn read_slots(&self) -> Slots {
        match self.v {
            WbVariant::Full => {
                let words: [u64; 8] =
                    std::array::from_fn(|i| self.pool.load_u64(self.off + F_SLOT + (i as u64) * 8));
                let buf = SlotBuf::from_words(words);
                Slots {
                    order: (0..buf.len()).map(|p| buf.entry(p) as u8).collect(),
                }
            }
            WbVariant::SmallSlot => {
                let w = self.pool.load_u64(self.off + F_VALID).to_le_bytes();
                let n = (w[0] as usize).min(7);
                Slots {
                    order: w[1..1 + n].to_vec(),
                }
            }
        }
    }

    /// Writes the slot state with the variant's persistence protocol and
    /// returns the number of persistent instructions issued.
    fn write_slots_persist(&self, slots: &Slots) {
        match self.v {
            WbVariant::Full => {
                // The valid-bit dance: 3 persists (plus the entry = 4).
                self.pool.store_u64(self.off + F_VALID, 0);
                self.pool.persist(self.off + F_VALID, 8);
                let mut buf = SlotBuf::new();
                for (p, &e) in slots.order.iter().enumerate() {
                    buf.insert_at(p, e as usize);
                }
                for (i, w) in buf.to_words().into_iter().enumerate() {
                    self.pool.store_u64(self.off + F_SLOT + (i as u64) * 8, w);
                }
                self.pool.persist(self.off + F_SLOT, 64);
                self.pool.store_u64(self.off + F_VALID, 1);
                self.pool.persist(self.off + F_VALID, 8);
            }
            WbVariant::SmallSlot => {
                // One atomic 8-byte store + 1 persist.
                let mut w = [0u8; 8];
                w[0] = slots.order.len() as u8;
                w[1..1 + slots.order.len()].copy_from_slice(&slots.order);
                self.pool.store_u64(self.off + F_VALID, u64::from_le_bytes(w));
                self.pool.persist(self.off + F_VALID, 8);
            }
        }
    }

    fn search(&self, slots: &Slots, key: Key) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, slots.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = self.read_key(slots.order[mid] as usize);
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    fn pairs(&self, slots: &Slots) -> Vec<(Key, Value)> {
        slots
            .order
            .iter()
            .map(|&e| (self.read_key(e as usize), self.read_value(e as usize)))
            .collect()
    }

    fn init_from_pairs(&self, pairs: &[(Key, Value)], fence: u64, next: u64) {
        debug_assert!(pairs.len() <= self.v.max_live());
        for (i, &(k, val)) in pairs.iter().enumerate() {
            self.pool.store_u64(self.kv_off(i), k);
            self.pool.store_u64(self.kv_off(i) + 8, val);
        }
        let slots = Slots {
            order: (0..pairs.len() as u8).collect(),
        };
        match self.v {
            WbVariant::Full => {
                let mut buf = SlotBuf::new();
                for (p, &e) in slots.order.iter().enumerate() {
                    buf.insert_at(p, e as usize);
                }
                for (i, w) in buf.to_words().into_iter().enumerate() {
                    self.pool.store_u64(self.off + F_SLOT + (i as u64) * 8, w);
                }
                self.pool.store_u64(self.off + F_VALID, 1);
            }
            WbVariant::SmallSlot => {
                let mut w = [0u8; 8];
                w[0] = slots.order.len() as u8;
                w[1..1 + slots.order.len()].copy_from_slice(&slots.order);
                self.pool.store_u64(self.off + F_VALID, u64::from_le_bytes(w));
            }
        }
        self.set_nlogs(pairs.len() as u64);
        self.pool.store_u64(self.off + F_NEXT, next);
        self.pool.store_u64(self.off + F_FENCE, fence);
        self.pool.persist(self.off, self.v.block());
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Insert,
    Update,
    Upsert,
}

impl WbTree {
    /// Creates a wB+Tree of the given variant.
    pub fn create(pool: Arc<PmemPool>, variant: WbVariant, seq_traversal: bool) -> WbTree {
        let s = Substrate::create(pool, variant.block(), variant.magic(), seq_traversal);
        WbLeaf::at(&s.pool, s.leftmost, variant).init_from_pairs(&[], u64::MAX, 0);
        WbTree { s, v: variant }
    }

    /// Recovers a wB+Tree from a crashed pool: journal replay (splits) plus
    /// a chain scan. Per-leaf scratch reset: in the `Full` variant the
    /// slot-array line is exactly one cache line, so its flush is atomic —
    /// at a crash the persisted slot words are entirely pre- or post-op,
    /// both consistent — and a durable `valid == 0` only means the
    /// in-flight op was not acknowledged; recovery re-validates the words
    /// as found. `nlogs` is recomputed as max referenced KV slot + 1 so
    /// unpublished (unacknowledged) entries become reusable.
    pub fn recover(pool: Arc<PmemPool>, variant: WbVariant, seq_traversal: bool) -> WbTree {
        let s = Substrate::reopen(pool, variant.block(), variant.magic(), seq_traversal, |pool, off| {
            let leaf = WbLeaf::at(pool, off, variant);
            if variant == WbVariant::Full {
                pool.store_u64(off + F_VALID, 1);
                pool.persist(off + F_VALID, 8);
            }
            let slots = leaf.read_slots();
            let nlogs = slots.order.iter().map(|&e| e as u64 + 1).max().unwrap_or(0);
            leaf.set_nlogs(nlogs);
            pool.persist(off + F_NLOGS, 8);
            (leaf.pairs(&slots).last().map(|p| p.0), leaf.next())
        });
        WbTree { s, v: variant }
    }

    /// The variant this tree was built as.
    pub fn variant(&self) -> WbVariant {
        self.v
    }

    fn leaf(&self, off: u64) -> WbLeaf<'_> {
        WbLeaf::at(&self.s.pool, off, self.v)
    }

    fn modify(&self, key: Key, value: Value, mode: Mode) -> Result<(), OpError> {
        loop {
            let leaf = self.leaf(self.s.traverse(key));
            let mut slots = leaf.read_slots();
            let found = leaf.search(&slots, key);
            match (mode, &found) {
                (Mode::Insert, Ok(_)) => return Err(OpError::AlreadyExists),
                (Mode::Update, Err(_)) => return Err(OpError::NotFound),
                _ => {}
            }
            let nlogs = leaf.nlogs() as usize;
            let need_new_live = found.is_err();
            if nlogs == self.v.capacity() || (need_new_live && slots.len() == self.v.max_live()) {
                self.split(&leaf, &slots);
                continue;
            }
            // Persist #1: the log entry.
            leaf.write_kv_persist(nlogs, key, value);
            leaf.set_nlogs(nlogs as u64 + 1);
            match found {
                Ok(pos) => slots.order[pos] = nlogs as u8,
                Err(pos) => slots.order.insert(pos, nlogs as u8),
            }
            // Persists #2..: the slot protocol (3 for Full, 1 for SO).
            leaf.write_slots_persist(&slots);
            return Ok(());
        }
    }

    fn split(&self, leaf: &WbLeaf<'_>, slots: &Slots) {
        let pairs = leaf.pairs(slots);
        let live = pairs.len();
        let jslot = self.s.journal.acquire();
        self.s.journal.log(&self.s.pool, jslot, leaf.off);

        if live < self.v.max_live() / 2 + 1 && live < self.v.capacity() / 2 {
            leaf.init_from_pairs(&pairs, leaf.fence(), leaf.next());
            self.s.journal.clear(&self.s.pool, jslot);
            self.s.compactions.fetch_add(1, Ordering::Relaxed);
            return;
        }

        let right_off = self.s.alloc.alloc().expect("wB+Tree pool exhausted");
        let right = WbLeaf::at(&self.s.pool, right_off, self.v);
        let mid = live / 2;
        let sep = pairs[mid - 1].0;
        right.init_from_pairs(&pairs[mid..], leaf.fence(), leaf.next());
        leaf.init_from_pairs(&pairs[..mid], sep, right_off);
        self.s.journal.clear(&self.s.pool, jslot);
        self.s.index.tree_update(sep, leaf_ref(right_off));
        self.s.splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Structural invariant check for tests.
    pub fn verify_invariants(&self) -> Result<(), String> {
        let mut off = self.s.leftmost;
        let mut last: Option<Key> = None;
        while off != 0 {
            let leaf = self.leaf(off);
            let slots = leaf.read_slots();
            for &(k, _) in leaf.pairs(&slots).iter() {
                if let Some(prev) = last {
                    if k <= prev {
                        return Err(format!("leaf {off}: key {k} ≤ previous {prev}"));
                    }
                }
                if k > leaf.fence() {
                    return Err(format!("leaf {off}: key {k} above fence"));
                }
                last = Some(k);
            }
            off = leaf.next();
        }
        Ok(())
    }
}

impl PersistentIndex for WbTree {
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.modify(key, value, Mode::Insert)
    }

    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.modify(key, value, Mode::Update)
    }

    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        self.modify(key, value, Mode::Upsert)
    }

    fn remove(&self, key: Key) -> Result<(), OpError> {
        let leaf = self.leaf(self.s.traverse(key));
        let mut slots = leaf.read_slots();
        match leaf.search(&slots, key) {
            Err(_) => Err(OpError::NotFound),
            Ok(pos) => {
                slots.order.remove(pos);
                leaf.write_slots_persist(&slots);
                Ok(())
            }
        }
    }

    fn find(&self, key: Key) -> Option<Value> {
        let leaf = self.leaf(self.s.traverse(key));
        let slots = leaf.read_slots();
        leaf.search(&slots, key)
            .ok()
            .map(|pos| leaf.read_value(slots.order[pos] as usize))
    }

    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        if n == 0 {
            return 0;
        }
        let mut off = self.s.traverse(start);
        while off != 0 {
            let leaf = self.leaf(off);
            let slots = leaf.read_slots();
            let from = match leaf.search(&slots, start) {
                Ok(p) | Err(p) => p,
            };
            for pos in from..slots.len() {
                let e = slots.order[pos] as usize;
                out.push((leaf.read_key(e), leaf.read_value(e)));
                if out.len() == n {
                    return n;
                }
            }
            off = leaf.next();
        }
        out.len()
    }

    fn name(&self) -> &'static str {
        match self.v {
            WbVariant::Full => "wB+Tree",
            WbVariant::SmallSlot => "wB+Tree-SO",
        }
    }

    fn stats(&self) -> TreeStats {
        let mut leaves = 0;
        let mut entries = 0;
        let mut off = self.s.leftmost;
        while off != 0 {
            let leaf = self.leaf(off);
            leaves += 1;
            entries += leaf.read_slots().len() as u64;
            off = leaf.next();
        }
        TreeStats {
            leaves,
            entries,
            splits: self.s.splits.load(Ordering::Relaxed),
            ..TreeStats::default()
        }
    }
}

impl obs::ObsSource for WbTree {
    /// The shared baseline sections (`tree`, `pmem`, `events`).
    fn obs_sections(&self) -> Vec<(String, obs::Section)> {
        crate::common::substrate_sections(self, &self.s)
    }
}

impl index_common::RecoverableIndex for WbTree {
    /// `(variant, seq_traversal)`.
    type Config = (WbVariant, bool);

    fn create(pool: Arc<PmemPool>, (variant, seq): (WbVariant, bool)) -> Self {
        WbTree::create(pool, variant, seq)
    }

    fn recover(pool: Arc<PmemPool>, (variant, seq): (WbVariant, bool)) -> Self {
        WbTree::recover(pool, variant, seq)
    }
}

impl std::fmt::Debug for WbTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WbTree").field("variant", &self.v).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::PmemConfig;

    fn tree(v: WbVariant) -> WbTree {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 24)));
        WbTree::create(pool, v, false)
    }

    #[test]
    fn both_variants_basic_roundtrip() {
        for v in [WbVariant::Full, WbVariant::SmallSlot] {
            let t = tree(v);
            for k in (1..=300u64).rev() {
                t.insert(k, k * 2).unwrap();
            }
            for k in 1..=300u64 {
                assert_eq!(t.find(k), Some(k * 2), "{v:?} key {k}");
            }
            assert_eq!(t.find(0), None);
            assert!(t.stats().splits > 0);
            t.verify_invariants().unwrap();
        }
    }

    #[test]
    fn conditional_semantics() {
        for v in [WbVariant::Full, WbVariant::SmallSlot] {
            let t = tree(v);
            t.insert(5, 1).unwrap();
            assert_eq!(t.insert(5, 2), Err(OpError::AlreadyExists));
            assert_eq!(t.update(6, 1), Err(OpError::NotFound));
            t.update(5, 9).unwrap();
            assert_eq!(t.find(5), Some(9));
            assert_eq!(t.remove(8), Err(OpError::NotFound));
            t.remove(5).unwrap();
            assert_eq!(t.find(5), None);
        }
    }

    #[test]
    fn full_variant_costs_four_persists_per_insert() {
        let t = tree(WbVariant::Full);
        for k in 1..=10u64 {
            t.insert(k, k).unwrap();
        }
        let before = t.s.pool.stats().snapshot();
        t.insert(100, 1).unwrap();
        let d = t.s.pool.stats().snapshot().since(&before);
        assert_eq!(d.persists, 4, "wB+Tree insert = entry + valid0 + slots + valid1");
    }

    #[test]
    fn so_variant_costs_two_persists_per_insert() {
        let t = tree(WbVariant::SmallSlot);
        for k in 1..=5u64 {
            t.insert(k, k).unwrap();
        }
        let before = t.s.pool.stats().snapshot();
        t.insert(100, 1).unwrap();
        let d = t.s.pool.stats().snapshot().since(&before);
        assert_eq!(d.persists, 2, "wB+Tree-SO insert = entry + slot word");
    }

    #[test]
    fn so_variant_splits_often() {
        let t = tree(WbVariant::SmallSlot);
        for k in 1..=100u64 {
            t.insert(k, k).unwrap();
        }
        let full = tree(WbVariant::Full);
        for k in 1..=100u64 {
            full.insert(k, k).unwrap();
        }
        assert!(
            t.stats().splits > 4 * full.stats().splits,
            "SO: {} vs Full: {}",
            t.stats().splits,
            full.stats().splits
        );
    }

    #[test]
    fn update_churn_recycles_log_area() {
        for v in [WbVariant::Full, WbVariant::SmallSlot] {
            let t = tree(v);
            for k in 1..=3u64 {
                t.insert(k, 0).unwrap();
            }
            for round in 1..=80u64 {
                for k in 1..=3u64 {
                    t.update(k, round).unwrap();
                }
            }
            for k in 1..=3u64 {
                assert_eq!(t.find(k), Some(80), "{v:?}");
            }
            t.verify_invariants().unwrap();
        }
    }

    #[test]
    fn scan_is_sorted_without_sorting() {
        let t = tree(WbVariant::Full);
        for k in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 10] {
            t.insert(k * 10, k).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(t.scan_n(15, 5, &mut out), 5);
        assert_eq!(out.iter().map(|p| p.0).collect::<Vec<_>>(), vec![20, 30, 40, 50, 60]);
    }
}
