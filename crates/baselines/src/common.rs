//! Shared scaffolding for the baseline trees: pool layout, leaf-block
//! allocation, undo journal, and the common volatile index.
//!
//! Every baseline formats its pool the same way RNTree does — root table,
//! then an undo-journal region, then the leaf block region — and keeps the
//! leftmost-leaf offset in root slot 0. Each tree stores its own magic in
//! slot 1 so a mismatched open fails loudly.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use index_common::{leaf_ref, InnerIndex, Key, PersistentIndex};
use nvm::{BlockAllocator, PmemPool, RootTable, UndoJournal};
use obs::{EventKind, Section};

/// Root-table slots shared by all baseline layouts.
pub(crate) mod roots {
    /// Leftmost leaf offset.
    pub const LEFTMOST: usize = 0;
    /// Per-tree layout magic.
    pub const MAGIC: usize = 1;
}

/// Common per-tree state: pool, allocator, journal, volatile index.
pub(crate) struct Substrate {
    pub pool: Arc<PmemPool>,
    pub alloc: BlockAllocator,
    pub journal: UndoJournal,
    pub index: InnerIndex,
    pub leftmost: u64,
    pub seq: bool,
    pub splits: AtomicU64,
    pub compactions: AtomicU64,
}

/// Journal slots for baseline trees (single-threaded trees use 1–2; FPTree
/// up to one per thread).
pub(crate) const JOURNAL_SLOTS: usize = 64;

impl Substrate {
    /// Formats `pool` for a tree with `block`-byte leaves: writes magic,
    /// formats the journal, allocates (but does not initialise) the first
    /// leaf and records it as leftmost. The caller initialises the leaf
    /// and persists it before use.
    pub(crate) fn create(pool: Arc<PmemPool>, block: u64, magic: u64, seq: bool) -> Substrate {
        let region = RootTable::END;
        let journal = UndoJournal::new(region, JOURNAL_SLOTS, block);
        journal.format(&pool);
        let leaf_region = region + UndoJournal::region_bytes(JOURNAL_SLOTS, block);
        let alloc = BlockAllocator::new(leaf_region, pool.len(), block);
        let leftmost = alloc.alloc().expect("pool too small for one leaf");
        RootTable::set_volatile(&pool, roots::LEFTMOST, leftmost);
        RootTable::set_volatile(&pool, roots::MAGIC, magic);
        RootTable::persist(&pool);
        let index = InnerIndex::new(leaf_ref(leftmost));
        Substrate {
            pool,
            alloc,
            journal,
            index,
            leftmost,
            seq,
            splits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Reopens a formatted pool after a crash (or clean restart — baseline
    /// layouts do not distinguish the two): verifies the magic, replays the
    /// undo journal so any leaf caught mid-split is rolled back whole, then
    /// walks the persistent leaf chain from root slot 0 rebuilding the
    /// volatile index and the allocator's free list — the same §5.4-style
    /// rebuild RNTree uses, parameterised by the per-tree leaf format.
    ///
    /// `scan_leaf` reads the leaf at the given offset and returns its
    /// maximum live key (`None` when empty) and its next-leaf offset; it
    /// also performs any per-tree scratch reset (clearing a lock word,
    /// re-validating a slot-state bit).
    pub(crate) fn reopen(
        pool: Arc<PmemPool>,
        block: u64,
        magic: u64,
        seq: bool,
        mut scan_leaf: impl FnMut(&PmemPool, u64) -> (Option<Key>, u64),
    ) -> Substrate {
        assert_eq!(RootTable::get(&pool, roots::MAGIC), magic, "pool does not hold this tree type");
        let region = RootTable::END;
        let journal = UndoJournal::new(region, JOURNAL_SLOTS, block);
        // Recovery steps land in the pool's event ring, same as RNTree's
        // recovery path, so baseline crash forensics read identically.
        let rolled_back = journal.recover(&pool);
        for &leaf_off in &rolled_back {
            pool.events().record(EventKind::JournalRollback, leaf_off, 0);
        }
        pool.events().record(EventKind::RecoveryJournal, rolled_back.len() as u64, 0);
        let leaf_region = region + UndoJournal::region_bytes(JOURNAL_SLOTS, block);
        let alloc = BlockAllocator::new(leaf_region, pool.len(), block);
        let leftmost = RootTable::get(&pool, roots::LEFTMOST);
        assert_ne!(leftmost, 0, "formatted pool must have a leftmost leaf");
        let mut reachable = Vec::new();
        let mut pairs: Vec<(Key, u64)> = Vec::new();
        let mut off = leftmost;
        while off != 0 {
            reachable.push(off);
            let (max_key, next) = scan_leaf(&pool, off);
            if let Some(k) = max_key {
                pairs.push((k, leaf_ref(off)));
            }
            off = next;
        }
        pool.events().record(EventKind::RecoveryLeafChain, reachable.len() as u64, pairs.len() as u64);
        alloc.rebuild(&reachable);
        pool.events().record(EventKind::RecoveryAlloc, reachable.len() as u64, 0);
        let index = InnerIndex::new(leaf_ref(leftmost));
        if !pairs.is_empty() {
            index.bulk_build(&pairs);
        }
        pool.events().record(EventKind::RecoveryIndex, pairs.len() as u64, 0);
        Substrate {
            pool,
            alloc,
            journal,
            index,
            leftmost,
            seq,
            splits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Dispatches traversal per the configured mode.
    #[inline]
    pub(crate) fn traverse(&self, key: Key) -> u64 {
        if self.seq {
            self.index.traverse_seq(key)
        } else {
            self.index.traverse_tm(key)
        }
    }
}

/// The observability sections every baseline shares: `tree` (structure
/// counters from [`PersistentIndex::stats`] plus the substrate's
/// split/compaction counters), `pmem` (the pool's persistence
/// instructions), and `events` (the pool's crash-forensics ring).
/// Trees with extra state (FPTree's HTM domain) append their own.
pub(crate) fn substrate_sections(tree: &dyn PersistentIndex, s: &Substrate) -> Vec<(String, Section)> {
    let mut counters = tree.stats().counters();
    counters.push(("compactions".into(), s.compactions.load(std::sync::atomic::Ordering::Relaxed)));
    vec![
        ("tree".to_string(), Section::Counters(counters)),
        ("pmem".to_string(), Section::Counters(s.pool.stats().snapshot().counters())),
        ("events".to_string(), Section::Events(s.pool.events().dump())),
    ]
}

/// One-byte key fingerprint (FPTree §3.1 of the original paper).
#[inline]
pub(crate) fn fingerprint(key: u64) -> u8 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_spreads() {
        let mut counts = [0u32; 256];
        for k in 0..25_600u64 {
            counts[fingerprint(k) as usize] += 1;
        }
        // Every byte bucket should be hit with roughly 100 keys.
        for (b, &c) in counts.iter().enumerate() {
            assert!((40..250).contains(&c), "bucket {b}: {c}");
        }
    }

    #[test]
    fn substrate_layout_is_consistent() {
        let pool = Arc::new(PmemPool::new(nvm::PmemConfig::for_testing(1 << 22)));
        let s = Substrate::create(Arc::clone(&pool), 1216, 0xABCD, false);
        assert_eq!(RootTable::get(&pool, roots::LEFTMOST), s.leftmost);
        assert_eq!(RootTable::get(&pool, roots::MAGIC), 0xABCD);
        assert!(s.leftmost >= RootTable::END + UndoJournal::region_bytes(JOURNAL_SLOTS, 1216));
        assert_eq!(s.traverse(42), s.leftmost);
    }
}
