//! The RNTree itself: modify/find/scan operations (paper Algorithms 1–4),
//! split and compaction, and the concurrency protocol.
//!
//! ## Protocol summary (and one strengthening over the paper's pseudocode)
//!
//! A modify operation (Algorithm 1) is: traverse → lock-free log-entry
//! allocation (CAS on `nlogs`) → write KV → **flush KV outside any lock** →
//! take the leaf spin lock → `htmLeafUpdate` (slot array, in a transaction)
//! → flush slot line → `htmLeafCopySlot` (dual-slot) → `plogs++` → maybe
//! split → unlock.
//!
//! The paper's Algorithm 1 splits as soon as `plogs == capacity-1`. We add
//! the guard `nlogs == plogs` — *split only when every allocated log entry
//! has been decided*. Without it, a slow writer that allocated an entry and
//! is still writing its KV bytes could race the split's compaction of the
//! KV area. With it, splits run on a quiescent log area, which also makes
//! allocated entries never stale: no split can complete between a
//! writer's allocation and its decision, so writers need no epoch
//! re-validation — only the fence-key coverage check. Deferred splits are
//! picked up by whichever writer decides the last in-flight entry (or by
//! the allocation-failure path when the log area is exhausted).
//!
//! Every allocated entry is eventually *decided* exactly once under the
//! lock — applied, rejected by a conditional write, rejected by a full slot
//! array, or abandoned by the fence check — and `plogs` counts decisions,
//! so the split trigger cannot starve.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use htm::HtmStatsSnapshot;
use index_common::{
    leaf_ref, InnerIndex, Key, KeyBuf, KeyCodec, KeyRef, OpError, PersistentIndex, TreeStats,
    U64Key, Value, WriteOp,
};
use nvm::{BlockAllocator, PmemPool, RootTable};
use obs::{EventKind, HeatSketch, ObsSource, Phase, PhaseTimers, Section};

use crate::fingerprint::{fp_hash, FpTable};
use crate::hashleaf::HashDir;
use crate::journal::SplitJournal;
use crate::layout::varlen::VAR_LEAF_BLOCK;
use crate::layout::{field, kv_off, LAYOUT_HASH, LAYOUT_SORTED, LEAF_BLOCK, LEAF_CAPACITY, MAX_LIVE};
use crate::leaf::{Leaf, WhichSlot};
use crate::slots::SlotBuf;

/// Pool magic identifying an RNTree layout.
pub(crate) const MAGIC: u64 = 0x524E_5452_4545_0001;

/// Root-table slot assignments.
pub(crate) mod roots {
    /// Offset of the leftmost leaf (recovery entry point, §5.4).
    pub const LEFTMOST: usize = 0;
    /// Layout magic.
    pub const MAGIC: usize = 1;
    /// Number of split-journal slots.
    pub const JOURNAL_SLOTS: usize = 2;
    /// First byte of the leaf block region.
    pub const LEAF_REGION: usize = 3;
    /// Clean-shutdown flag (1 after `close`).
    pub const CLEAN: usize = 4;
    /// Leaf layout selector: 1 = variable-length-key leaves (4096-byte
    /// blocks), 0 = fixed u64 leaves. Written at create, checked on every
    /// open — the two layouts are not interchangeable on one pool.
    pub const VARLEN: usize = 5;
    /// Leaf-policy selector ([`super::LeafPolicy`] as a root word: 0 =
    /// sorted, 1 = hash, 2 = adaptive). Written at create, checked on
    /// every open: the policy decides how readers must defend against
    /// concurrent layout changes, so create and open must agree.
    pub const LEAF_POLICY: usize = 6;
}

/// Per-pool leaf layout policy: which slot-line organisation leaves use
/// and whether they may change it at runtime.
///
/// The policy is a pool-wide contract recorded in the root table (see
/// `roots::LEAF_POLICY`): it decides how much defensive revalidation
/// readers need. Under [`LeafPolicy::Sorted`] and [`LeafPolicy::Hash`] a
/// leaf's layout tag never changes after the leaf is built, so readers
/// interpret snapshots with no extra checks; under
/// [`LeafPolicy::Adaptive`] any leaf may morph between the sorted array
/// and the hash directory at any time, and readers revalidate the leaf
/// version between snapshotting the slot line and interpreting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafPolicy {
    /// Every leaf keeps the paper's sorted slot array (the default; every
    /// pre-existing pool reads back as this).
    #[default]
    Sorted,
    /// Every leaf uses the hash directory (`hashleaf.rs`) from creation:
    /// O(1) expected point ops, scans materialize-and-sort per leaf.
    Hash,
    /// Leaves start sorted and morph per node between sorted and hash,
    /// driven by that leaf's decayed point:scan mix. Requires the u64
    /// leaf family (`varlen_leaves` must be off).
    Adaptive,
}

impl LeafPolicy {
    /// Root-table encoding (stable across versions; 0 keeps old pools
    /// valid as `Sorted`).
    pub(crate) fn as_root_word(self) -> u64 {
        match self {
            LeafPolicy::Sorted => 0,
            LeafPolicy::Hash => 1,
            LeafPolicy::Adaptive => 2,
        }
    }

    /// Decodes a root word written by [`Self::as_root_word`].
    pub(crate) fn from_root_word(w: u64) -> Option<LeafPolicy> {
        match w {
            0 => Some(LeafPolicy::Sorted),
            1 => Some(LeafPolicy::Hash),
            2 => Some(LeafPolicy::Adaptive),
            _ => None,
        }
    }
}

/// RNTree construction options.
#[derive(Debug, Clone, Copy)]
pub struct RnConfig {
    /// Enable the dual slot array (§4.4). On: readers snapshot the
    /// transient slot array and the leaf version changes only on splits.
    /// Off: readers snapshot the persistent slot array seqlock-style and
    /// the version changes on every modification (the paper's plain
    /// "RNTree" variant in §6.3).
    pub dual_slot: bool,
    /// Use sequential (non-transactional) tree traversal. Only valid for
    /// single-threaded phases; the paper's single-thread benchmarks use it
    /// for every tree equally.
    pub seq_traversal: bool,
    /// Split-journal slots (≥ the number of concurrent writer threads).
    pub journal_slots: usize,
    /// Keep a DRAM-side 1-byte fingerprint per leaf entry and probe it
    /// before key compares in point lookups (see `fingerprint.rs`). Purely
    /// transient: the persistence layout and persist counts are unchanged,
    /// and recovery rebuilds the table. Off reproduces the paper's plain
    /// binary-search leaves (useful as an ablation baseline).
    pub fingerprints: bool,
    /// Issue prefetch hints for a leaf's header/slot/KV lines (and its
    /// fingerprint stripe) as soon as the target leaf is known, so the
    /// misses overlap the persist spin or lock acquisition. Hints only —
    /// no semantic effect; off restores the seed's memory behaviour for
    /// before/after benchmarking.
    pub leaf_prefetch: bool,
    /// Overlap a modify's KV-entry flush with the locked phase (§4.2):
    /// issue the CLWB before taking the leaf lock and fence only right
    /// before the slot line is persisted, so the lock/search/slot-edit
    /// work runs while the line drains to media. Durability order (KV
    /// entry before slot line) and the Table 1 persist counts are
    /// unchanged; off restores the seed's synchronous flush-then-lock
    /// sequence for before/after benchmarking.
    pub async_flush: bool,
    /// Run the pre-rewrite (branchy, prefetch-free) sequential descent in
    /// this tree's [`InnerIndex`]. Benchmark-only before/after switch; a
    /// per-tree config field (not a process global) so co-resident trees —
    /// e.g. shards of an `index_common::ShardedIndex` — can never flip each
    /// other's descent path.
    pub legacy_seq_descent: bool,
    /// Use the fine-grained (address-striped) HTM fallback tier: a
    /// conflict-driven fallback locks only the stripes covering its
    /// observed footprint instead of the whole domain, so fallbacks on
    /// different leaves stop serialising unrelated operations. Off
    /// restores the PR-4 single global fallback lock (the before side of
    /// `repro contention-scale`).
    pub striped_fallback: bool,
    /// Frame budget of the DRAM page cache over the inner index (each
    /// frame caches one inner node, 512 B of payload). With a cache
    /// attached, the concurrent descent walks version-validated cached
    /// frames and enters the HTM machinery only at the leaf; `0` disables
    /// the cache and restores the all-transactional descent (the before
    /// side of `repro cache-scale`). The cache is transient DRAM: crashes
    /// ignore it and recovery starts cold.
    pub cache_frames: usize,
    /// Store variable-length byte-comparable keys natively: leaves become
    /// 4096-byte heap-slotted nodes (slot entries carry a 4-byte key head
    /// plus a heap offset/length, keys prefix-truncated against the leaf's
    /// low fence — see `layout::varlen`), the inner index compares interned
    /// byte separators, and the `*_k` byte-key API is served without a
    /// codec round-trip. Off (the default) keeps the paper's fixed u64
    /// layout bit-for-bit: every existing pool, persist count and perf
    /// characteristic is untouched, and `*_k` calls route through the
    /// [`index_common::U64Key`] codec. The flag is recorded in the pool's
    /// root table; create and open must agree.
    pub varlen_leaves: bool,
    /// Leaf layout policy (see [`LeafPolicy`]): pool-wide sorted (the
    /// default), pool-wide hash, or per-node adaptive morphing between
    /// the two driven by the decayed point:scan mix. Recorded in the
    /// pool's root table; create and open must agree. Incompatible with
    /// `varlen_leaves` except as `Sorted` — the 4096-byte var block
    /// family has no hash representation.
    pub leaf_policy: LeafPolicy,
}

impl Default for RnConfig {
    fn default() -> Self {
        RnConfig {
            dual_slot: true,
            seq_traversal: false,
            journal_slots: 64,
            fingerprints: true,
            leaf_prefetch: true,
            async_flush: true,
            legacy_seq_descent: false,
            striped_fallback: true,
            cache_frames: 1024,
            varlen_leaves: false,
            leaf_policy: LeafPolicy::default(),
        }
    }
}

impl RnConfig {
    /// Divides this config's page-cache frame budget across `shards`
    /// co-resident trees (the way `nvm::PoolSet` carves pool capacity),
    /// flooring at one minimal set per shard so no shard ends up
    /// accidentally uncached. A zero budget stays zero: disabling the
    /// cache disables it for every shard.
    pub fn carve_cache_frames(&self, shards: usize) -> RnConfig {
        assert!(shards > 0, "carving across zero shards");
        let mut cfg = *self;
        if cfg.cache_frames > 0 {
            cfg.cache_frames = (self.cache_frames / shards).max(nvm::CACHE_WAYS);
        }
        cfg
    }
}

/// Operation counters (splits, compactions, retries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RnStats {
    /// Leaf splits performed.
    pub splits: u64,
    /// In-place leaf compactions performed.
    pub compactions: u64,
    /// Operation-level retries (stale route, post-split rerun, …).
    pub retries: u64,
    /// Log entries wasted by failed conditionals / abandoned ops.
    pub wasted_entries: u64,
}

/// Ops observed per leaf before the adaptive policy re-evaluates that
/// leaf's layout.
const OPMIX_WINDOW: u64 = 256;

/// DRAM-side per-leaf operation-mix counters for [`LeafPolicy::Adaptive`]:
/// one atomic word per leaf block packing point ops (high 32 bits) and
/// scan visits (low 32 bits). Purely transient, like the fingerprint
/// table: recovery starts it zeroed and leaves re-earn their layout.
///
/// Every [`OPMIX_WINDOW`] ops the deciding thread halves both counters
/// (an exponentially-decayed window, so a leaf whose workload shifts
/// re-converges instead of being pinned by ancient history) and returns a
/// layout wish. The thresholds are deliberately asymmetric (point-heavy
/// ≥ 15/16 points for hash, scan share ≥ 1/4 for sorted) so a leaf
/// oscillating near one boundary does not thrash between layouts.
pub(crate) struct OpMix {
    base: u64,
    block: u64,
    words: Box<[AtomicU64]>,
}

impl OpMix {
    /// Table covering `block`-sized leaf blocks in `[base, pool_len)`;
    /// with `enabled` false an empty table is built (no memory, and every
    /// record call is a no-op returning no wish).
    pub(crate) fn new(base: u64, pool_len: u64, block: u64, enabled: bool) -> OpMix {
        let blocks = if enabled { ((pool_len - base) / block) as usize } else { 0 };
        let mut v = Vec::with_capacity(blocks);
        v.resize_with(blocks, || AtomicU64::new(0));
        OpMix { base, block, words: v.into_boxed_slice() }
    }

    /// Counts one point op (lookup or write) on the leaf; returns the
    /// layout this leaf should now have, if a window just closed.
    #[inline]
    pub(crate) fn record_point(&self, leaf_off: u64) -> Option<u64> {
        self.record(leaf_off, 1 << 32)
    }

    /// Counts one scan visit of the leaf.
    #[inline]
    pub(crate) fn record_scan(&self, leaf_off: u64) -> Option<u64> {
        self.record(leaf_off, 1)
    }

    #[inline]
    fn record(&self, leaf_off: u64, delta: u64) -> Option<u64> {
        if self.words.is_empty() {
            return None;
        }
        debug_assert!(leaf_off >= self.base && (leaf_off - self.base).is_multiple_of(self.block));
        let w = &self.words[((leaf_off - self.base) / self.block) as usize];
        let cur = w.fetch_add(delta, Ordering::Relaxed).wrapping_add(delta);
        let (points, scans) = (cur >> 32, cur & 0xFFFF_FFFF);
        let total = points + scans;
        if total < OPMIX_WINDOW {
            return None;
        }
        // One thread wins the decay CAS and carries the wish; losers just
        // keep counting (the next window closes soon enough).
        if w.compare_exchange(cur, (points / 2) << 32 | (scans / 2), Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        if scans * 16 <= total {
            Some(LAYOUT_HASH)
        } else if scans * 4 >= total {
            Some(LAYOUT_SORTED)
        } else {
            None // hysteresis band: keep whatever layout the leaf has
        }
    }
}

/// The RNTree (see crate docs). Construct with [`RnTree::create`],
/// [`RnTree::recover`] or [`RnTree::reopen_clean`].
pub struct RnTree {
    pub(crate) pool: Arc<PmemPool>,
    pub(crate) alloc: BlockAllocator,
    pub(crate) index: InnerIndex,
    pub(crate) journal: SplitJournal,
    pub(crate) cfg: RnConfig,
    pub(crate) fps: FpTable,
    pub(crate) leftmost: u64,
    pub(crate) splits: AtomicU64,
    pub(crate) compactions: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) wasted: AtomicU64,
    pub(crate) pool_exhausted: AtomicBool,
    /// Leaf-level head ties: searches in a variable-length leaf that had to
    /// fall back from the 4-byte key head to a full byte compare. Always 0
    /// in u64 mode (obs "keys" section).
    pub(crate) leaf_head_ties: AtomicU64,
    /// Per-leaf op-mix counters driving adaptive morphing (empty unless
    /// `leaf_policy == Adaptive`).
    pub(crate) opmix: OpMix,
    /// Morphs that rewrote a leaf into the hash layout.
    pub(crate) morphs_to_hash: AtomicU64,
    /// Morphs that rewrote a leaf back into the sorted layout.
    pub(crate) morphs_to_sorted: AtomicU64,
    /// Morph wishes dropped because the leaf lock was contended or the log
    /// area was not quiescent (the trigger is strictly opportunistic).
    pub(crate) morphs_skipped: AtomicU64,
    /// Hash-directory probe lengths on the read path (buckets inspected
    /// per point lookup in a hash leaf; obs "leaf_probes" section).
    pub(crate) probe_hist: obs::AtomicHistogram,
    /// Phase-breakdown timers (obs). Off by default; the modify path pays
    /// one relaxed load per op until [`RnTree::phase_timers`] enables them.
    pub(crate) timers: PhaseTimers,
    /// Structural heat attribution (obs): which *leaves* draw HTM
    /// aborts/fallbacks, splits and morphs. Fixed-capacity top-K
    /// sketches, fed only on the already-slow paths (abort deltas,
    /// splits, morphs) — never on a clean op.
    pub(crate) heat: LeafHeat,
}

/// Per-leaf heat sketches; see [`RnTree::leaf_heat`]. Keys are leaf pool
/// offsets throughout.
#[derive(Debug, Default)]
pub struct LeafHeat {
    /// HTM aborts + fallback acquisitions attributed to the leaf whose
    /// slot line the section edited (writes) or snapshotted (reads).
    pub conflicts: HeatSketch,
    /// Splits, keyed by the left (splitting) leaf.
    pub splits: HeatSketch,
    /// Layout morphs (either direction), keyed by the rewritten leaf.
    pub morphs: HeatSketch,
}

/// Decision taken for an allocated log entry under the leaf lock.
pub(crate) enum Decision {
    /// Slot array updated; carries the new slot image for the tslot copy.
    Applied(SlotBuf),
    /// Conditional insert: key already present.
    Exists,
    /// Conditional update: key absent.
    Missing,
    /// Slot array already holds `MAX_LIVE` entries; retry after the split.
    Overfull,
}

/// What kind of write a modify operation is.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteMode {
    /// Fail on duplicate key.
    InsertStrict,
    /// Fail on missing key.
    UpdateStrict,
    /// Insert-or-update.
    Upsert,
}

impl RnTree {
    // ---------------------------------------------------------------- plumbing

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// HTM counters of this tree's domain.
    pub fn htm_stats(&self) -> HtmStatsSnapshot {
        self.index.domain().stats().snapshot()
    }

    /// Operation counters.
    pub fn rn_stats(&self) -> RnStats {
        RnStats {
            splits: self.splits.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            wasted_entries: self.wasted.load(Ordering::Relaxed),
        }
    }

    /// True if a split could not allocate a leaf block (the tree still
    /// works, but stops splitting; size the pool generously).
    pub fn saw_pool_exhaustion(&self) -> bool {
        self.pool_exhausted.load(Ordering::Relaxed)
    }

    /// The phase-breakdown timers (descent / leaf critical section /
    /// log flush / slot persist). Disabled by default; call
    /// `phase_timers().set_enabled(true)` to start sampling.
    pub fn phase_timers(&self) -> &PhaseTimers {
        &self.timers
    }

    /// Page-cache counter snapshot, `None` when `cache_frames == 0`.
    pub fn cache_stats(&self) -> Option<nvm::CacheStats> {
        self.index.page_cache().map(|c| c.stats())
    }

    /// The per-leaf heat sketches (conflict / split / morph
    /// attribution).
    pub fn leaf_heat(&self) -> &LeafHeat {
        &self.heat
    }

    /// Top-`k` fallback-stripe heat of this tree's HTM domain (which
    /// stripes the tier-1 fallback path serialises on most often).
    pub fn stripe_heat_top_k(&self, k: usize) -> Vec<obs::HeatEntry> {
        self.index.domain().stats().stripe_heat.top_k(k)
    }

    /// Diagnostic: the pool offset of the leaf currently covering `key`
    /// (racy under concurrent splits — meant for correlating heat-table
    /// keys with planted workloads, not for navigation).
    pub fn leaf_of(&self, key: Key) -> u64 {
        self.traverse(key)
    }

    /// Restart taxonomy of the cached optimistic descent (zeros when the
    /// cache is disabled — the descent then never leaves the TM).
    pub fn descent_stats(&self) -> index_common::DescentStats {
        self.index.descent_stats()
    }

    fn traverse(&self, key: Key) -> u64 {
        if self.cfg.seq_traversal {
            self.index.traverse_seq(key)
        } else {
            // Cached optimistic descent when a page cache is attached
            // (cfg.cache_frames > 0); identical to traverse_tm otherwise.
            self.index.traverse_cached(key)
        }
    }

    pub(crate) fn read_slot_kind(&self) -> WhichSlot {
        if self.cfg.dual_slot {
            WhichSlot::Transient
        } else {
            WhichSlot::Persistent
        }
    }

    /// Readers of the single-slot variant must wait out the lock bit
    /// (seqlock); dual-slot readers only wait out splits (§4.4).
    pub(crate) fn reader_waits_lock(&self) -> bool {
        !self.cfg.dual_slot
    }

    // ---------------------------------------------------------------- modify

    fn modify(&self, key: Key, value: Value, mode: WriteMode) -> Result<(), OpError> {
        // Consecutive full-leaf retries; see `starved` for how this turns a
        // hopeless retry loop (full leaf + exhausted pool) into an error.
        let mut starved = 0u32;
        loop {
            // Phase breakdown (obs): one relaxed load when disabled; on a
            // sampled op, one timestamp per phase boundary.
            let mut clock = self.timers.clock();
            let leaf = Leaf::at(&self.pool, self.traverse(key));
            clock.lap(&self.timers, Phase::Descent);

            let Some(entry) = leaf.alloc_entry() else {
                // Log area exhausted: help the split along (Algorithm 1
                // line 5 re-traverses "hoping the split completes"; the
                // nlogs==plogs guard means someone must actually run it).
                self.help_split(leaf);
                if self.starved(&mut starved) {
                    return Err(OpError::PoolExhausted);
                }
                self.note_retry();
                continue;
            };

            // Warm the lines the locked phase will touch (slot arrays, the
            // live KV entries a search may compare, the fingerprint stripe)
            // while the persist below spins out the media latency.
            if self.cfg.leaf_prefetch {
                leaf.prefetch_hot(entry);
                self.fps.prefetch_stripe(leaf.off());
            }

            // Steps 2–3 of §4.2: write and flush the log entry with no lock
            // held. Parallel writers flush concurrently. The fingerprint is
            // a plain DRAM store (no persist) recorded before the entry can
            // be published through the slot array.
            leaf.write_kv(entry, key, value);
            if self.cfg.fingerprints {
                self.fps.set(leaf.off(), entry, fp_hash(key));
            }
            // §4.2's flush/work overlap, applied literally: issue the CLWB
            // now and let the lock acquisition and slot search run while
            // the line drains to media; the fence (`drain_kv` below) only
            // spins out whatever latency is left. The entry is exclusively
            // ours and never rewritten before the fence, so the durable
            // value is well-defined (see `PmemPool::flush_async`).
            let kv_flush = if self.cfg.async_flush {
                Some(leaf.flush_kv_async(entry))
            } else {
                clock.mark();
                leaf.persist_kv(entry);
                clock.lap(&self.timers, Phase::LogFlush);
                None
            };

            // The critical-section span wraps lock→unlock inclusive of the
            // nested drain/slot-persist spans; the report subtracts them.
            let mut cs = clock.fork();
            leaf.lock();

            // Coverage check: a split between traversal and lock may have
            // shrunk this leaf's range. The entry itself cannot be stale
            // (no split completes while it is undecided), so it is simply
            // wasted and counted as decided.
            if key > leaf.fence() {
                if let Some(h) = kv_flush {
                    leaf.drain_kv(h);
                }
                self.decide_and_maybe_split(leaf, false);
                leaf.unlock(false);
                self.wasted.fetch_add(1, Ordering::Relaxed);
                self.note_retry();
                continue;
            }

            // htmLeafUpdate: the slot line is edited inside a hardware
            // transaction, making the 64-byte line the atomic write unit
            // (§4.1) — as a sorted array or a hash directory per the
            // leaf's layout tag (stable under the lock we hold).
            // Conditional-write checks ride along for free either way. In
            // single-threaded (`seq_traversal`) mode the slot is edited
            // with plain stores instead — see `edit_slot` for why this is
            // faithful.
            // Heat attribution: the thread-local abort/fallback counters
            // are read before and after the slot-line sections; any delta
            // happened while this op held *this* leaf, so the leaf gets
            // the blame. Free on the no-abort path (two TLS reads).
            obs::note_leaf(leaf.off());
            let sm = obs::section_mark();

            let hashed = leaf.layout() == LAYOUT_HASH;
            let decision = if self.cfg.seq_traversal {
                let mut slot = leaf.read_slot_seq(WhichSlot::Persistent);
                match self.edit_any(&leaf, &mut slot, key, entry, mode, hashed) {
                    Decision::Applied(s) => {
                        leaf.write_slot_seq(WhichSlot::Persistent, &s);
                        Decision::Applied(s)
                    }
                    other => other,
                }
            } else {
                self.index.domain().atomic(|txn| {
                    let mut slot = leaf.read_slot_in(txn, WhichSlot::Persistent)?;
                    match self.edit_any(&leaf, &mut slot, key, entry, mode, hashed) {
                        Decision::Applied(s) => {
                            leaf.write_slot_in(txn, WhichSlot::Persistent, &s)?;
                            Ok(Decision::Applied(s))
                        }
                        other => Ok(other),
                    }
                })
            };

            // The fence for persistent instruction #1: the KV entry must be
            // durable before the slot line can be (publication order). On
            // the reject paths this is where the wasted entry's flush is
            // accounted, exactly like the seed's synchronous persist.
            if let Some(h) = kv_flush {
                clock.mark();
                leaf.drain_kv(h);
                clock.lap(&self.timers, Phase::LogFlush);
            }

            let applied = if let Decision::Applied(slot) = &decision {
                // Persistent instruction #2: the slot line. Atomic thanks
                // to the line-granular flush; both its old and new states
                // are consistent (§4.1).
                clock.mark();
                leaf.persist_pslot();
                clock.lap(&self.timers, Phase::SlotPersist);
                if self.cfg.dual_slot {
                    // htmLeafCopySlot: publish to readers only now, after
                    // the flush — readers can never return un-persisted
                    // data (§4.4).
                    let slot = *slot;
                    if self.cfg.seq_traversal {
                        leaf.write_slot_seq(WhichSlot::Transient, &slot);
                    } else {
                        self.index
                            .domain()
                            .atomic(|txn| leaf.write_slot_in(txn, WhichSlot::Transient, &slot));
                    }
                }
                true
            } else {
                self.wasted.fetch_add(1, Ordering::Relaxed);
                false
            };

            let d = sm.since();
            if d.aborts + d.fallbacks > 0 {
                self.heat.conflicts.record(leaf.off(), d.aborts + d.fallbacks);
            }

            let did_split = self.decide_and_maybe_split(leaf, applied);
            // Single-slot variant: version bump per modification (§5.2.2);
            // the split already bumped if it ran.
            leaf.unlock(!self.cfg.dual_slot && applied && !did_split);
            cs.lap(&self.timers, Phase::LeafCs);

            match decision {
                Decision::Applied(_) => {
                    self.note_point(&leaf);
                    return Ok(());
                }
                Decision::Exists => return Err(OpError::AlreadyExists),
                Decision::Missing => return Err(OpError::NotFound),
                Decision::Overfull => {
                    if self.starved(&mut starved) {
                        return Err(OpError::PoolExhausted);
                    }
                    self.note_retry();
                    continue;
                }
            }
        }
    }

    /// The slot-array edit shared by the transactional (`htmLeafUpdate`)
    /// and sequential paths. The sequential path exists because the
    /// simulator's software TM costs hundreds of nanoseconds where real
    /// RTM costs tens; in single-threaded benchmark mode we model the HTM
    /// section as near-free plain stores. Crash atomicity is unaffected in
    /// the simulation: the slot line reaches the durable image only
    /// through the (atomic, line-granular) flush that follows. Sequential
    /// mode therefore must not be combined with eviction-injection crash
    /// tests, which is exactly the real-HTM hazard the transactional path
    /// exists to prevent.
    fn edit_slot(&self, leaf: &Leaf<'_>, slot: &mut SlotBuf, key: Key, entry: usize, mode: WriteMode) -> Decision {
        // With fingerprints the hit/miss question is answered by the probe
        // (no key reads on a miss); the sorted insertion position is only
        // computed when an insert actually happens. Strict inserts skip the
        // probe: they need the binary search for the insertion point anyway,
        // and its duplicate check rides along for free (§3.3). Without
        // fingerprints, one binary search answers both questions, exactly as
        // in the paper.
        let found: Result<usize, Option<usize>> = if self.cfg.fingerprints && mode != WriteMode::InsertStrict {
            self.fps.probe(leaf, slot, key).ok_or(None)
        } else {
            leaf.search(slot, key).map_err(Some)
        };
        match found {
            Ok(pos) => {
                if mode == WriteMode::InsertStrict {
                    return Decision::Exists;
                }
                slot.set_entry(pos, entry);
            }
            Err(ins_pos) => {
                if mode == WriteMode::UpdateStrict {
                    return Decision::Missing;
                }
                if slot.len() == MAX_LIVE {
                    return Decision::Overfull;
                }
                let pos = ins_pos.unwrap_or_else(|| match leaf.search(slot, key) {
                    Ok(p) | Err(p) => p,
                });
                slot.insert_at(pos, entry);
            }
        }
        Decision::Applied(*slot)
    }

    /// Layout dispatch for the under-lock slot edit: `hashed` is the
    /// leaf's layout tag, read once under the lock (a morph needs the
    /// lock, so the tag cannot change while an edit runs).
    #[inline]
    fn edit_any(
        &self,
        leaf: &Leaf<'_>,
        slot: &mut SlotBuf,
        key: Key,
        entry: usize,
        mode: WriteMode,
        hashed: bool,
    ) -> Decision {
        if hashed {
            self.edit_hash(leaf, slot, key, entry, mode)
        } else {
            self.edit_slot(leaf, slot, key, entry, mode)
        }
    }

    /// The hash-directory twin of `edit_slot`: same slot-line-in,
    /// slot-line-out contract (so the persist counts are identical by
    /// construction), but the edit is an O(1)-expected bucket probe
    /// instead of a sorted insert. A full directory reports `Overfull`
    /// exactly like a full sorted array — the split trigger is shared.
    fn edit_hash(&self, leaf: &Leaf<'_>, slot: &mut SlotBuf, key: Key, entry: usize, mode: WriteMode) -> Decision {
        let fp = fp_hash(key);
        let mut dir = HashDir::from_slot(*slot);
        let mut steps = 0u32;
        let hit = dir.find(
            fp,
            |e| self.fps.check(leaf.off(), e, fp) && leaf.read_key(e) == key,
            &mut steps,
        );
        match hit {
            Some(p) => {
                if mode == WriteMode::InsertStrict {
                    return Decision::Exists;
                }
                dir.set_probe(p, entry);
            }
            None => {
                if mode == WriteMode::UpdateStrict {
                    return Decision::Missing;
                }
                if !dir.insert(fp, entry) {
                    return Decision::Overfull;
                }
            }
        }
        *slot = dir.to_slot();
        Decision::Applied(*slot)
    }

    /// Point-lookup position of `key` in `slot`: fingerprint probe when
    /// enabled, plain binary search otherwise.
    #[inline]
    fn lookup_pos(&self, leaf: &Leaf<'_>, slot: &SlotBuf, key: Key) -> Option<usize> {
        if self.cfg.fingerprints {
            self.fps.probe(leaf, slot, key)
        } else {
            leaf.search(slot, key).ok()
        }
    }

    /// Point lookup in a hash-directory slot line; records the probe
    /// length. The fingerprint table (when enabled) filters candidate
    /// buckets before the key compare, exactly as it filters sorted
    /// positions in `lookup_pos`.
    #[inline]
    fn lookup_hash(&self, leaf: &Leaf<'_>, slot: &SlotBuf, key: Key) -> Option<crate::hashleaf::Probe> {
        let fp = fp_hash(key);
        let dir = HashDir::from_slot(*slot);
        let mut steps = 0u32;
        let hit = dir.find(
            fp,
            |e| self.fps.check(leaf.off(), e, fp) && leaf.read_key(e) == key,
            &mut steps,
        );
        self.probe_hist.record(steps as u64);
        hit
    }

    /// Counts one decided log entry and runs the (possibly deferred) split
    /// when the log area is consumed and quiescent. Lock must be held.
    /// Returns true if a split/compaction ran.
    fn decide_and_maybe_split(&self, leaf: Leaf<'_>, _applied: bool) -> bool {
        let plogs = leaf.plogs() + 1;
        leaf.set_plogs(plogs);
        if plogs < (LEAF_CAPACITY - 1) as u64 {
            return false;
        }
        // Freeze allocation first (splitting bit and allocation counter
        // share one atomic word), then check quiescence: after the freeze,
        // `nlogs` cannot move, so the check cannot race a late allocation.
        leaf.set_split();
        if leaf.nlogs() == plogs {
            self.split_or_compact(leaf);
            true
        } else {
            // In-flight entries remain; their owners will re-trigger.
            leaf.unset_split_nobump();
            false
        }
    }

    /// Allocation-failure path: take the lock and split if the log area is
    /// exhausted *and* quiescent; otherwise just back off (in-flight
    /// writers will decide their entries and trigger the split).
    fn help_split(&self, leaf: Leaf<'_>) {
        leaf.lock();
        let nlogs = leaf.nlogs();
        if nlogs >= LEAF_CAPACITY as u64 && nlogs == leaf.plogs() {
            leaf.set_split();
            // The freeze cannot race new allocations (the counter is full
            // anyway), so the re-check under the frozen word is exact.
            if leaf.nlogs() == leaf.plogs() {
                self.split_or_compact(leaf);
            } else {
                leaf.unset_split_nobump();
            }
        }
        leaf.unlock(false);
        std::thread::yield_now();
    }

    pub(crate) fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Layout a newly built leaf is born with: the pool-wide hash policy
    /// starts every leaf hashed; sorted and adaptive start sorted (an
    /// adaptive leaf earns its hash tag through the op-mix window).
    pub(crate) fn natal_layout(&self) -> u64 {
        if self.cfg.leaf_policy == LeafPolicy::Hash {
            LAYOUT_HASH
        } else {
            LAYOUT_SORTED
        }
    }

    /// Full-leaf retry accounting. Returns true when retrying cannot ever
    /// succeed: a split has already failed for lack of blocks, no block has
    /// been freed since, and the condition has held for several consecutive
    /// retries (giving any deferred compaction or in-flight split every
    /// chance to drain the leaf first). Without this, an insert into a full
    /// leaf of an exhausted pool would retry forever.
    pub(crate) fn starved(&self, count: &mut u32) -> bool {
        *count += 1;
        *count >= 4 && self.pool_exhausted.load(Ordering::Relaxed) && !self.alloc.has_free()
    }

    // ---------------------------------------------------------------- split

    /// Splits (or, when mostly obsolete, compacts) the leaf. Caller holds
    /// the lock, has set the splitting bit (freezing allocation), and has
    /// verified `nlogs == plogs` (quiescent log area). Clears the
    /// splitting bit (with a version bump) before returning.
    fn split_or_compact(&self, leaf: Leaf<'_>) {
        debug_assert_eq!(leaf.nlogs(), leaf.plogs());
        let jslot = self.journal.acquire();
        // Undo-log the whole node (Algorithm 3 line 2).
        self.journal.log(&self.pool, jslot, leaf.off());

        // Both layouts split through this one path: gather the live pairs
        // in key order (hash leaves sort on gather), rewrite densely, and
        // rebuild the slot line in the leaf's own layout — splits and
        // compactions preserve the tag, only morphs change it.
        let layout = leaf.layout();
        let pairs = self.collect_sorted_pairs(&leaf, layout);
        let live = pairs.len();

        if live < LEAF_CAPACITY / 2 {
            // Mostly obsolete entries (update/remove churn): recycle the
            // log area by compacting in place (§5.2.3's special-purpose
            // split), journal-protected like a real split.
            for (i, &(k, v)) in pairs.iter().enumerate() {
                leaf.write_kv(i, k, v);
                if self.cfg.fingerprints {
                    self.fps.set(leaf.off(), i, fp_hash(k));
                }
            }
            let id = Self::slot_image(&pairs, layout);
            self.index.domain().atomic(|txn| {
                leaf.write_slot_in(txn, WhichSlot::Persistent, &id)?;
                leaf.write_slot_in(txn, WhichSlot::Transient, &id)
            });
            leaf.persist_all();
            leaf.set_nlogs(live as u64);
            leaf.set_plogs(live as u64);
            self.journal.clear(&self.pool, jslot);
            self.compactions.fetch_add(1, Ordering::Relaxed);
            self.pool.events().record(EventKind::Compaction, leaf.off(), live as u64);
            leaf.unset_split_bump();
            return;
        }

        let Some(right_off) = self.alloc.alloc() else {
            // Cannot grow: leave the leaf untouched (it still works, just
            // re-triggers). Surfaced via `saw_pool_exhaustion`.
            self.pool_exhausted.store(true, Ordering::Relaxed);
            self.pool.events().record(EventKind::PoolExhausted, leaf.off(), self.pool.len());
            self.journal.clear(&self.pool, jslot);
            leaf.unset_split_bump();
            return;
        };

        // Algorithm 3: divide the pairs; left keeps the lower half with
        // separator = its new maximum key.
        let mid = live / 2;
        debug_assert!(mid >= 1);
        let sep = pairs[mid - 1].0;
        let right = Leaf::at(&self.pool, right_off);

        // Build and persist the new right sibling first (it is private
        // until linked; a crash before the link leaks only the block,
        // which allocator rebuild reclaims). It inherits the layout tag.
        right.init_from_pairs(&pairs[mid..], leaf.fence(), leaf.next(), layout);
        if self.cfg.fingerprints {
            for (i, &(k, _)) in pairs[mid..].iter().enumerate() {
                self.fps.set(right_off, i, fp_hash(k));
            }
        }

        // Rewrite the left half in place, then link and persist. A crash
        // anywhere in here is undone by the journal image.
        for (i, &(k, v)) in pairs[..mid].iter().enumerate() {
            leaf.write_kv(i, k, v);
            if self.cfg.fingerprints {
                self.fps.set(leaf.off(), i, fp_hash(k));
            }
        }
        let id = Self::slot_image(&pairs[..mid], layout);
        self.index.domain().atomic(|txn| {
            leaf.write_slot_in(txn, WhichSlot::Persistent, &id)?;
            leaf.write_slot_in(txn, WhichSlot::Transient, &id)
        });
        leaf.set_fence(sep);
        leaf.set_next(right_off);
        leaf.persist_all();
        leaf.set_nlogs(mid as u64);
        leaf.set_plogs(mid as u64);
        self.journal.clear(&self.pool, jslot);

        // htmTreeUpdate — before clearing the splitting bit, so readers
        // spin until the volatile index routes the moved keys (this
        // closes the lost-key window between Algorithm 3's lines 15/16).
        self.index.tree_update(sep, leaf_ref(right_off));
        self.splits.fetch_add(1, Ordering::Relaxed);
        self.heat.splits.record(leaf.off(), 1);
        self.pool.events().record(EventKind::Split, leaf.off(), right_off);
        leaf.unset_split_bump();
    }

    // ---------------------------------------------------------------- read

    /// `htmLeafSnapshot`, with the sequential-mode fast path (see
    /// `edit_slot` for the rationale).
    fn snapshot_slot(&self, leaf: &Leaf<'_>, kind: WhichSlot) -> SlotBuf {
        if self.cfg.seq_traversal {
            leaf.read_slot_seq(kind)
        } else {
            // Reads aborting against a locked/contended leaf are the
            // paper's headline pathology: attribute them like writes.
            let sm = obs::section_mark();
            let slot = self.index.domain().atomic(|txn| leaf.read_slot_in(txn, kind));
            let d = sm.since();
            if d.aborts + d.fallbacks > 0 {
                self.heat.conflicts.record(leaf.off(), d.aborts + d.fallbacks);
            }
            slot
        }
    }

    fn find_impl(&self, key: Key) -> Option<Value> {
        loop {
            let leaf = Leaf::at(&self.pool, self.traverse(key));
            // Overlap the slot-array and fingerprint-stripe misses with the
            // header load that `stable_version` is about to issue.
            if self.cfg.leaf_prefetch {
                leaf.prefetch_hot(0);
                self.fps.prefetch_stripe(leaf.off());
            }
            // Algorithm 4: stable version before, snapshot, validate after.
            let v1 = leaf.stable_version(self.reader_waits_lock());
            if key > leaf.fence() {
                self.note_retry();
                continue; // stale route (split won the race); re-traverse
            }
            // htmLeafSnapshot: only the slot line is read transactionally;
            // the search stays outside the HTM section to keep the read set
            // (and abort probability) small (§5.2.2). With fingerprints the
            // search is a DRAM byte-probe that touches at most a handful of
            // keys; validity of whatever it reads is established by the
            // version re-check below, exactly as for the binary search.
            let layout = leaf.layout();
            let kind = self.read_slot_kind();
            let slot = self.snapshot_slot(&leaf, kind);
            // Adaptive pools only: a morph may have committed between the
            // tag load above and the snapshot, leaving a line whose
            // encoding disagrees with `layout` — decoding it could chase a
            // nonsense entry index. Revalidate *before* interpreting (both
            // reads happened after `v1`, so an unchanged version proves
            // they agree). Static policies never change tags: no check.
            if self.cfg.leaf_policy == LeafPolicy::Adaptive
                && leaf.stable_version(self.reader_waits_lock()) != v1
            {
                self.note_retry();
                continue;
            }
            let result = if layout == LAYOUT_HASH {
                self.lookup_hash(&leaf, &slot, key).map(|p| leaf.read_value(p.entry))
            } else {
                self.lookup_pos(&leaf, &slot, key)
                    .map(|pos| leaf.read_value(slot.entry(pos)))
            };
            if leaf.stable_version(self.reader_waits_lock()) != v1 {
                self.note_retry();
                continue;
            }
            self.note_point(&leaf);
            return result;
        }
    }

    fn scan_impl(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        if n == 0 {
            return 0;
        }
        let mut cursor = start;
        // Per-leaf staging buffer, reused across every leaf this scan
        // visits (and across validation retries): the capacity sticks, so
        // only the first leaf of a cold scan ever allocates.
        let mut tmp: Vec<(Key, Value)> = Vec::new();
        'traverse: loop {
            let mut leaf_off = self.traverse(cursor);
            loop {
                let leaf = Leaf::at(&self.pool, leaf_off);
                let v1 = leaf.stable_version(self.reader_waits_lock());
                let fence = leaf.fence();
                if cursor > fence {
                    self.note_retry();
                    continue 'traverse;
                }
                let next = leaf.next();
                let layout = leaf.layout();
                let kind = self.read_slot_kind();
                let slot = self.snapshot_slot(&leaf, kind);
                // Same pre-interpretation revalidation as `find_impl`:
                // only adaptive pools can have the tag and the snapshot
                // disagree, and only until the version moves.
                if self.cfg.leaf_policy == LeafPolicy::Adaptive
                    && leaf.stable_version(self.reader_waits_lock()) != v1
                {
                    self.note_retry();
                    continue 'traverse;
                }
                tmp.clear();
                if layout == LAYOUT_HASH {
                    // The directory keeps no order: materialize the whole
                    // leaf's in-range entries, validate, then sort (pure
                    // DRAM work on an already-validated snapshot).
                    for e in HashDir::from_slot(slot).iter() {
                        let k = leaf.read_key(e);
                        if k >= cursor {
                            tmp.push((k, leaf.read_value(e)));
                        }
                    }
                } else {
                    let from = match leaf.search(&slot, cursor) {
                        Ok(p) | Err(p) => p,
                    };
                    for pos in from..slot.len() {
                        let e = slot.entry(pos);
                        tmp.push((leaf.read_key(e), leaf.read_value(e)));
                    }
                }
                if leaf.stable_version(self.reader_waits_lock()) != v1 {
                    self.note_retry();
                    continue 'traverse;
                }
                if layout == LAYOUT_HASH {
                    tmp.sort_unstable_by_key(|p| p.0);
                }
                self.note_scan(&leaf);
                for &kv in &tmp {
                    out.push(kv);
                    if out.len() == n {
                        return n;
                    }
                }
                if next == 0 || fence == u64::MAX {
                    return out.len();
                }
                cursor = fence + 1;
                leaf_off = next;
            }
        }
    }

    // ---------------------------------------------------------------- remove

    fn remove_impl(&self, key: Key) -> Result<(), OpError> {
        loop {
            let leaf = Leaf::at(&self.pool, self.traverse(key));
            // Overlap the slot-array and fingerprint-stripe misses with the
            // lock RMW on the (also likely cold) header line.
            if self.cfg.leaf_prefetch {
                leaf.prefetch_hot(0);
                self.fps.prefetch_stripe(leaf.off());
            }
            leaf.lock();
            if key > leaf.fence() {
                leaf.unlock(false);
                self.note_retry();
                continue;
            }
            // Remove only edits the slot array (§5.2.3): one persistent
            // instruction — in both layouts (the hash directory's
            // backward shift stays inside the same 64-byte line).
            let hashed = leaf.layout() == LAYOUT_HASH;
            let removed = if self.cfg.seq_traversal {
                let mut slot = leaf.read_slot_seq(WhichSlot::Persistent);
                if self.remove_in_slot(&leaf, &mut slot, key, hashed) {
                    leaf.write_slot_seq(WhichSlot::Persistent, &slot);
                    Some(slot)
                } else {
                    None
                }
            } else {
                self.index.domain().atomic(|txn| {
                    let mut slot = leaf.read_slot_in(txn, WhichSlot::Persistent)?;
                    if self.remove_in_slot(&leaf, &mut slot, key, hashed) {
                        leaf.write_slot_in(txn, WhichSlot::Persistent, &slot)?;
                        Ok(Some(slot))
                    } else {
                        Ok(None)
                    }
                })
            };
            return match removed {
                None => {
                    leaf.unlock(false);
                    Err(OpError::NotFound)
                }
                Some(slot) => {
                    leaf.persist_pslot();
                    if self.cfg.dual_slot {
                        if self.cfg.seq_traversal {
                            leaf.write_slot_seq(WhichSlot::Transient, &slot);
                        } else {
                            self.index
                                .domain()
                                .atomic(|txn| leaf.write_slot_in(txn, WhichSlot::Transient, &slot));
                        }
                    }
                    leaf.unlock(!self.cfg.dual_slot);
                    self.note_point(&leaf);
                    Ok(())
                }
            };
        }
    }

    /// Removes `key` from the in-register slot-line image, layout-aware.
    /// Returns whether the key was present (callers write the image back
    /// and persist on `true`). Runs under the leaf lock.
    fn remove_in_slot(&self, leaf: &Leaf<'_>, slot: &mut SlotBuf, key: Key, hashed: bool) -> bool {
        if hashed {
            let Some(p) = self.lookup_hash(leaf, slot, key) else {
                return false;
            };
            let mut dir = HashDir::from_slot(*slot);
            // Home buckets for the backward shift come from rehashing the
            // stored keys — correct even with the fingerprint table
            // disabled (the directory always hashes, only the *filter* is
            // optional).
            dir.remove_at(p.bucket, |e| HashDir::home(fp_hash(leaf.read_key(e))));
            *slot = dir.to_slot();
            true
        } else {
            match self.lookup_pos(leaf, slot, key) {
                None => false,
                Some(pos) => {
                    slot.remove_at(pos);
                    true
                }
            }
        }
    }

    // ---------------------------------------------------------------- morph

    /// Counts a point op for the adaptive policy and opportunistically
    /// morphs the leaf when a window closes on a different layout wish.
    /// No-op (one empty-table check) outside `LeafPolicy::Adaptive`.
    #[inline]
    fn note_point(&self, leaf: &Leaf<'_>) {
        if let Some(target) = self.opmix.record_point(leaf.off()) {
            self.maybe_morph(leaf, target);
        }
    }

    /// Scan twin of [`Self::note_point`], counted once per leaf visited.
    #[inline]
    fn note_scan(&self, leaf: &Leaf<'_>) {
        if let Some(target) = self.opmix.record_scan(leaf.off()) {
            self.maybe_morph(leaf, target);
        }
    }

    /// Opportunistic morph trigger: a single `try_lock` attempt, never a
    /// spin — a read-path caller would rather skip the morph than queue
    /// behind a writer. Skips (and counts the skip) on contention.
    fn maybe_morph(&self, leaf: &Leaf<'_>, target: u64) {
        if leaf.layout() == target {
            return;
        }
        if !leaf.try_lock() {
            self.morphs_skipped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.morph_locked(*leaf, target);
        leaf.unlock(false);
    }

    /// Forces the leaf covering `key` into the given layout (testing and
    /// diagnostics — the production trigger is the op-mix window). Returns
    /// whether a rewrite ran. Only meaningful under
    /// [`LeafPolicy::Adaptive`]; static policies keep their tags immutable
    /// and readers rely on that.
    ///
    /// # Panics
    /// Panics when the pool's policy is not `Adaptive`.
    pub fn force_morph(&self, key: Key, to_hash: bool) -> bool {
        assert!(
            self.cfg.leaf_policy == LeafPolicy::Adaptive,
            "force_morph requires LeafPolicy::Adaptive"
        );
        let target = if to_hash { LAYOUT_HASH } else { LAYOUT_SORTED };
        loop {
            let leaf = Leaf::at(&self.pool, self.traverse(key));
            leaf.lock();
            if key > leaf.fence() {
                leaf.unlock(false);
                self.note_retry();
                continue;
            }
            let did = self.morph_locked(leaf, target);
            leaf.unlock(false);
            return did;
        }
    }

    /// Rewrites the leaf into `target` layout as a crash-atomic journaled
    /// rewrite — the same undo-journal discipline as a split: journal the
    /// whole node, rewrite KVs densely in key order, swap both slot lines
    /// transactionally, flip the tag, persist the block, clear the
    /// journal. Caller holds the lock; requires log-area quiescence
    /// (`nlogs == plogs`), else the morph is skipped (counted), exactly
    /// like a deferred split. Clears the splitting bit (with a version
    /// bump, invalidating every in-flight reader snapshot) when it ran.
    fn morph_locked(&self, leaf: Leaf<'_>, target: u64) -> bool {
        let source = leaf.layout();
        if source == target {
            return false;
        }
        // Freeze allocation first; the quiescence re-check under the
        // frozen word is then exact (same argument as the split path).
        leaf.set_split();
        if leaf.nlogs() != leaf.plogs() {
            leaf.unset_split_nobump();
            self.morphs_skipped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let jslot = self.journal.acquire();
        self.journal.log(&self.pool, jslot, leaf.off());

        let pairs = self.collect_sorted_pairs(&leaf, source);
        let live = pairs.len();
        for (i, &(k, v)) in pairs.iter().enumerate() {
            leaf.write_kv(i, k, v);
            if self.cfg.fingerprints {
                self.fps.set(leaf.off(), i, fp_hash(k));
            }
        }
        let img = Self::slot_image(&pairs, target);
        // A whole-node rewrite touches both slot lines plus the staged
        // buffers: a capacity-class body that an optimistic HTM attempt
        // cannot commit — go straight to the serialized fallback tier.
        self.index.domain().atomic_capacity(|txn| {
            leaf.write_slot_in(txn, WhichSlot::Persistent, &img)?;
            leaf.write_slot_in(txn, WhichSlot::Transient, &img)
        });
        leaf.set_layout(target);
        leaf.persist_all();
        leaf.set_nlogs(live as u64);
        leaf.set_plogs(live as u64);
        self.journal.clear(&self.pool, jslot);
        if target == LAYOUT_HASH {
            self.morphs_to_hash.fetch_add(1, Ordering::Relaxed);
        } else {
            self.morphs_to_sorted.fetch_add(1, Ordering::Relaxed);
        }
        self.heat.morphs.record(leaf.off(), 1);
        self.pool.events().record(EventKind::Morph, leaf.off(), target);
        leaf.unset_split_bump();
        true
    }

    /// Live `(key, value)` pairs of the leaf in key order regardless of
    /// layout (hash leaves gather their buckets and sort). Lock held or
    /// recovery quiescence.
    fn collect_sorted_pairs(&self, leaf: &Leaf<'_>, layout: u64) -> Vec<(u64, u64)> {
        let slot = leaf.read_slot_seq(WhichSlot::Persistent);
        if layout == LAYOUT_HASH {
            let mut v: Vec<(u64, u64)> = HashDir::from_slot(slot)
                .iter()
                .map(|e| (leaf.read_key(e), leaf.read_value(e)))
                .collect();
            v.sort_unstable_by_key(|p| p.0);
            v
        } else {
            leaf.collect_pairs(&slot)
        }
    }

    /// Slot-line image for `pairs` stored densely at entries `0..n` in key
    /// order: identity array (sorted layout) or rebuilt hash directory.
    fn slot_image(pairs: &[(u64, u64)], layout: u64) -> SlotBuf {
        if layout == LAYOUT_HASH {
            let fps: Vec<u8> = pairs.iter().map(|&(k, _)| fp_hash(k)).collect();
            HashDir::build(&fps).to_slot()
        } else {
            SlotBuf::identity(pairs.len())
        }
    }

    // ---------------------------------------------------------------- batch

    /// Bulk-loads `pairs` into an **empty** tree, building full leaves
    /// directly instead of replaying per-key inserts (DESIGN.md §5d).
    ///
    /// The input need not be sorted or unique: it is sorted here (stably)
    /// and deduplicated with the *last* occurrence of a key winning —
    /// upsert semantics, matching what replaying the pairs through
    /// `upsert` would produce.
    ///
    /// Persistence cost is 2 persistent instructions per **leaf** — one
    /// coalesced [`nvm::PmemPool::persist_many`] over the dirtied KV lines
    /// plus the header line, then the slot-array line, in the same
    /// KV-before-slot publication order as the per-op path — plus a
    /// constant 3 for the undo journal, instead of 2 per *key*.
    ///
    /// Crash safety: the pre-image of the (empty) head leaf is undo-logged
    /// before anything is rewritten, and leaves are built right-to-left so
    /// every persisted `next` pointer targets an already-durable sibling.
    /// A crash anywhere mid-load therefore recovers to the empty tree (the
    /// journal rollback cuts the chain at the head, and the allocator
    /// rebuild reclaims the unreachable part-built leaves): the load is
    /// all-or-nothing.
    ///
    /// # Errors
    /// [`OpError::PoolExhausted`] if the pool cannot hold the leaves; the
    /// tree is unchanged in that case.
    ///
    /// # Panics
    /// Panics if the tree is not empty. Quiescent phases only (warm-up,
    /// initial fill): the caller must guarantee no concurrent operations.
    pub fn load_sorted(&self, pairs: &[(Key, Value)]) -> Result<(), OpError> {
        let head = Leaf::at(&self.pool, self.leftmost);
        assert!(
            head.read_slot_seq(WhichSlot::Persistent).is_empty() && head.next() == 0,
            "load_sorted requires an empty tree"
        );
        if pairs.is_empty() {
            return Ok(());
        }
        let mut sorted: Vec<(Key, Value)> = pairs.to_vec();
        sorted.sort_by_key(|p| p.0); // stable: equal keys keep input order
        sorted.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1; // last occurrence wins (upsert)
                true
            } else {
                false
            }
        });
        let chunks: Vec<&[(Key, Value)]> = sorted.chunks(MAX_LIVE).collect();
        let mut blocks: Vec<u64> = Vec::with_capacity(chunks.len());
        blocks.push(self.leftmost);
        for _ in 1..chunks.len() {
            match self.alloc.alloc() {
                Some(b) => blocks.push(b),
                None => {
                    for &b in &blocks[1..] {
                        self.alloc.free(b);
                    }
                    self.pool_exhausted.store(true, Ordering::Relaxed);
                    self.pool.events().record(EventKind::PoolExhausted, self.leftmost, self.pool.len());
                    return Err(OpError::PoolExhausted);
                }
            }
        }
        // Undo-log the head before touching anything: the rollback image is
        // the empty leaf, so replaying the journal after a mid-load crash
        // restores an empty (chain-cut) tree.
        let jslot = self.journal.acquire();
        self.journal.log(&self.pool, jslot, self.leftmost);
        for i in (0..chunks.len()).rev() {
            let last = i == chunks.len() - 1;
            let max_key = chunks[i].last().expect("chunks are non-empty").0;
            let fence = if last { u64::MAX } else { max_key };
            let next = if last { 0 } else { blocks[i + 1] };
            self.init_leaf_batched(Leaf::at(&self.pool, blocks[i]), chunks[i], fence, next);
        }
        self.journal.clear(&self.pool, jslot);
        let routes: Vec<(Key, u64)> = chunks
            .iter()
            .zip(&blocks)
            .map(|(c, &b)| (c.last().expect("chunks are non-empty").0, leaf_ref(b)))
            .collect();
        self.index.bulk_build(&routes);
        Ok(())
    }

    /// Formats `leaf` with `pairs` stored densely in key order using
    /// exactly two persistent instructions: one coalesced flush of the
    /// header line + dirtied KV lines, then the slot-array line. The leaf
    /// must be private to the caller (bulk load under the quiescence
    /// contract).
    fn init_leaf_batched(&self, leaf: Leaf<'_>, pairs: &[(Key, Value)], fence: u64, next: u64) {
        debug_assert!(!pairs.is_empty() && pairs.len() <= MAX_LIVE);
        let layout = self.natal_layout();
        leaf.reset_lockver();
        for (i, &(k, v)) in pairs.iter().enumerate() {
            leaf.write_kv(i, k, v);
            if self.cfg.fingerprints {
                self.fps.set(leaf.off(), i, fp_hash(k));
            }
        }
        leaf.set_nlogs(pairs.len() as u64);
        leaf.set_plogs(pairs.len() as u64);
        leaf.set_next(next);
        leaf.set_fence(fence);
        leaf.set_layout(layout);
        // Persistent instruction #1: one CLWB batch + one fence covering
        // the header line (layout tag included) and every dirtied KV line.
        self.pool.persist_many(&[
            (leaf.off() + field::LOCKVER, 64),
            (leaf.off() + field::KV, pairs.len() as u64 * 16),
        ]);
        let slot = Self::slot_image(pairs, layout);
        leaf.write_slot_seq(WhichSlot::Persistent, &slot);
        leaf.write_slot_seq(WhichSlot::Transient, &slot);
        // Persistent instruction #2: the slot line, published only after
        // the KV entries it references are durable.
        leaf.persist_pslot();
    }

    /// Inserts every pair of `batch` (strict-insert semantics per key),
    /// amortising traversal, locking, and persists across *runs* of keys
    /// that land in the same leaf (DESIGN.md §5d).
    ///
    /// The batch is sorted in place first (stably, so the **first**
    /// occurrence of a duplicated key is the one applied; later
    /// occurrences report [`OpError::AlreadyExists`]). The returned vector
    /// aligns with the *sorted* batch — element `i` reports on `batch[i]`
    /// as the caller observes the slice after the call returns.
    ///
    /// Each run executes under a single leaf lock with a single slot-array
    /// persist (preceded by one coalesced KV-line persist), so a run of
    /// `r` fresh keys costs 2 persistent instructions instead of `2r`.
    /// When a run overflows its leaf, the applied prefix commits, the leaf
    /// splits through the normal journal-protected path, and the remainder
    /// re-traverses.
    ///
    /// Durability contract (DESIGN.md §5d): each run commits atomically at
    /// its slot-line persist, runs commit in sorted-key order, and every
    /// reported key is durable when the call returns. A crash mid-batch
    /// recovers to a run-granular prefix of the sorted batch.
    pub fn insert_batch(&self, batch: &mut [(Key, Value)]) -> Vec<Result<(), OpError>> {
        // Route through the mixed-class executor: a pure-insert batch takes
        // exactly the historical path (same runs, same persist shape). Both
        // sorts are stable by key over the same initial order, so copying
        // the sorted ops back gives the caller the permutation the contract
        // promises, with results aligned index-for-index.
        let mut ops: Vec<(Key, Value, WriteOp)> =
            batch.iter().map(|&(k, v)| (k, v, WriteOp::Insert)).collect();
        let results = RnTree::write_batch(self, &mut ops);
        for (dst, src) in batch.iter_mut().zip(&ops) {
            *dst = (src.0, src.1);
        }
        results
    }

    /// Batched mixed-class write ([`PersistentIndex::write_batch`]
    /// semantics): sorts the batch stably in place, then walks it in
    /// same-leaf runs exactly like [`RnTree::insert_batch`] — one leaf
    /// lock, one coalesced KV-line persist (when any op dirtied a KV
    /// line), one slot-line persist per touched leaf, whatever mix of
    /// inserts, updates, upserts and removes the run carries. Elements
    /// sharing a key compose in submission order against the in-register
    /// slot image, so an insert+remove pair in one batch leaves the key
    /// absent and both report `Ok`.
    ///
    /// A run containing **only** removes dirties no KV lines and commits
    /// with a *single* persistent instruction (the slot-line persist):
    /// `r` coalesced removes on one leaf cost 1 persist where the per-op
    /// path costs `r`.
    pub fn write_batch(&self, batch: &mut [(Key, Value, WriteOp)]) -> Vec<Result<(), OpError>> {
        batch.sort_by_key(|p| p.0);
        let mut results: Vec<Result<(), OpError>> = vec![Ok(()); batch.len()];
        let mut i = 0usize;
        let mut starved = 0u32;
        while i < batch.len() {
            let key = batch[i].0;
            let leaf = Leaf::at(&self.pool, self.traverse(key));
            if self.cfg.leaf_prefetch {
                leaf.prefetch_hot(0);
                self.fps.prefetch_stripe(leaf.off());
            }
            leaf.lock();
            if key > leaf.fence() {
                leaf.unlock(false);
                self.note_retry();
                continue; // stale route (split won the race); re-traverse
            }
            // Run formation: the maximal prefix of remaining keys covered
            // by this leaf's range. The traversal put `key` here, so every
            // following key up to the fence belongs here too.
            let fence = leaf.fence();
            let run_len = batch[i..].partition_point(|p| p.0 <= fence);
            let consumed =
                self.apply_run(leaf, &batch[i..i + run_len], &mut results[i..i + run_len]);
            if consumed > 0 {
                starved = 0;
                i += consumed;
                continue;
            }
            // No progress: the leaf is full. Help the (possibly deferred or
            // allocation-starved) split along, and fail the key instead of
            // spinning forever when the pool is exhausted — exactly the
            // per-op `modify` policy.
            self.help_split(leaf);
            if self.starved(&mut starved) {
                results[i] = Err(OpError::PoolExhausted);
                i += 1;
                starved = 0;
            }
            self.note_retry();
        }
        results
    }

    /// Applies one run of sorted mixed-class ops to `leaf` under its
    /// (already held) lock; unlocks before returning. Returns the number
    /// of elements consumed (applied or rejected by their conditional);
    /// on overflow the remainder is left for the caller to retry after
    /// the split this run triggers.
    fn apply_run(
        &self,
        leaf: Leaf<'_>,
        run: &[(Key, Value, WriteOp)],
        results: &mut [Result<(), OpError>],
    ) -> usize {
        // Layout dispatch, same shape as `edit_any`: the tag is stable
        // under the lock. In hash mode the run edits a directory image and
        // re-encodes it once at write-back.
        let hashed = leaf.layout() == LAYOUT_HASH;
        let mut slot = leaf.read_slot_seq(WhichSlot::Persistent);
        let mut dir = HashDir::from_slot(slot);
        let mut dirty: Vec<(u64, u64)> = Vec::with_capacity(run.len());
        let mut decided = 0u64;
        let mut consumed = 0usize;
        let mut changed = false;
        for (ri, &(k, v, op)) in run.iter().enumerate() {
            // Locate `k` in the in-register image. Edits land in that image
            // before the next element is examined, so elements sharing a
            // key compose in submission (stable-sort) order.
            let mut hit_probe = None;
            let mut hit_pos = None;
            let mut ins_pos = None;
            if hashed {
                let fp = fp_hash(k);
                let mut steps = 0u32;
                hit_probe = dir.find(
                    fp,
                    |e| self.fps.check(leaf.off(), e, fp) && leaf.read_key(e) == k,
                    &mut steps,
                );
            } else {
                match leaf.search(&slot, k) {
                    Ok(p) => hit_pos = Some(p),
                    Err(p) => ins_pos = Some(p),
                }
            }
            let present = hit_probe.is_some() || hit_pos.is_some();
            match op {
                WriteOp::Remove => {
                    // Slot-image-only edit: no log entry, no KV line. A run
                    // of removes shares the single slot-line persist below.
                    if present {
                        if hashed {
                            let p = hit_probe.expect("hashed hit carries a probe");
                            dir.remove_at(p.bucket, |e| HashDir::home(fp_hash(leaf.read_key(e))));
                        } else {
                            slot.remove_at(hit_pos.expect("sorted hit carries a position"));
                        }
                        changed = true;
                    } else {
                        results[ri] = Err(OpError::NotFound);
                    }
                    consumed += 1;
                }
                WriteOp::Insert if present => {
                    // Present in the leaf (or earlier in this run): strict
                    // insert rejects without consuming a log entry.
                    results[ri] = Err(OpError::AlreadyExists);
                    consumed += 1;
                }
                WriteOp::Update if !present => {
                    results[ri] = Err(OpError::NotFound);
                    consumed += 1;
                }
                WriteOp::Update | WriteOp::Upsert if present => {
                    // Overwrite through a fresh log entry, exactly the
                    // per-op `modify` shape (the old entry becomes garbage
                    // the next compaction reclaims).
                    let Some(entry) = leaf.alloc_entry() else {
                        break; // log area exhausted; split, then retry
                    };
                    decided += 1;
                    leaf.write_kv(entry, k, v);
                    if self.cfg.fingerprints {
                        self.fps.set(leaf.off(), entry, fp_hash(k));
                    }
                    dirty.push((leaf.off() + kv_off(entry), 16));
                    if hashed {
                        dir.set_probe(hit_probe.expect("hashed hit carries a probe"), entry);
                    } else {
                        slot.set_entry(hit_pos.expect("sorted hit carries a position"), entry);
                    }
                    changed = true;
                    consumed += 1;
                }
                WriteOp::Insert | WriteOp::Upsert => {
                    // Absent: fresh insert.
                    let full = if hashed { dir.len() == MAX_LIVE } else { slot.len() == MAX_LIVE };
                    if full {
                        // Slot array full. Deliberately waste one log entry:
                        // `plogs` counts decisions and decisions drive the
                        // split trigger, exactly like the per-op Overfull
                        // path — without this a full leaf whose log area
                        // still has room would never split.
                        if leaf.alloc_entry().is_some() {
                            decided += 1;
                            self.wasted.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                    let Some(entry) = leaf.alloc_entry() else {
                        break; // log area exhausted; split, then retry
                    };
                    decided += 1;
                    leaf.write_kv(entry, k, v);
                    if self.cfg.fingerprints {
                        self.fps.set(leaf.off(), entry, fp_hash(k));
                    }
                    dirty.push((leaf.off() + kv_off(entry), 16));
                    if hashed {
                        let ok = dir.insert(fp_hash(k), entry);
                        debug_assert!(ok, "directory had room");
                    } else {
                        slot.insert_at(ins_pos.expect("sorted path carries a position"), entry);
                    }
                    changed = true;
                    consumed += 1;
                }
                WriteOp::Update => unreachable!("guarded arms above cover update"),
            }
        }
        if hashed {
            slot = dir.to_slot();
        }
        if changed {
            // Persistent instruction #1 for the whole run: the dirtied KV
            // lines, coalesced (entries sharing a line flush once), durable
            // strictly before the slot line below (publication order).
            // A pure-remove run dirties no KV lines and skips straight to
            // the slot persist — one persistent instruction total.
            if !dirty.is_empty() {
                self.pool.persist_many(&dirty);
            }
            // One slot-array edit for the whole run. Transactional even
            // under the lock: single-slot readers snapshot this line
            // optimistically and must never observe a torn buffer.
            if self.cfg.seq_traversal {
                leaf.write_slot_seq(WhichSlot::Persistent, &slot);
            } else {
                self.index
                    .domain()
                    .atomic(|txn| leaf.write_slot_in(txn, WhichSlot::Persistent, &slot));
            }
            // Persistent instruction #2: the run commits here, atomically.
            leaf.persist_pslot();
            if self.cfg.dual_slot {
                if self.cfg.seq_traversal {
                    leaf.write_slot_seq(WhichSlot::Transient, &slot);
                } else {
                    self.index
                        .domain()
                        .atomic(|txn| leaf.write_slot_in(txn, WhichSlot::Transient, &slot));
                }
            }
        }
        // Count the run's decisions in one step and run the (possibly
        // deferred) split when they consumed the log area — the same
        // trigger and quiescence check as the per-op path.
        let mut did_split = false;
        if decided > 0 {
            let plogs = leaf.plogs() + decided;
            leaf.set_plogs(plogs);
            if plogs >= (LEAF_CAPACITY - 1) as u64 {
                leaf.set_split();
                if leaf.nlogs() == plogs {
                    self.split_or_compact(leaf);
                    did_split = true;
                } else {
                    leaf.unset_split_nobump();
                }
            }
        }
        leaf.unlock(!self.cfg.dual_slot && changed && !did_split);
        consumed
    }

    // ---------------------------------------------------------------- checks

    /// Walks the whole tree and checks every structural invariant; returns
    /// a description of the first violation. Quiescent phases only.
    pub fn verify_invariants(&self) -> Result<(), String> {
        if self.cfg.varlen_leaves {
            return self.vverify_invariants();
        }
        let mut off = self.leftmost;
        let mut last_key: Option<Key> = None;
        let mut last_fence = 0u64;
        let mut leaves = 0u64;
        while off != 0 {
            leaves += 1;
            let leaf = Leaf::at(&self.pool, off);
            let slot = leaf.read_slot_seq(WhichSlot::Persistent);
            if slot.len() > MAX_LIVE {
                return Err(format!("leaf {off}: slot count {} > {MAX_LIVE}", slot.len()));
            }
            let hashed = leaf.layout() == LAYOUT_HASH;
            if hashed {
                // Hash leaf: no intra-leaf order, but every key must sit
                // strictly between the previous leaf's maximum and this
                // leaf's fence, the directory's count byte must equal its
                // occupied buckets, and a probe must find every live key.
                let dir = HashDir::from_slot(slot);
                let prev_leaf_max = last_key;
                let mut seen = [false; LEAF_CAPACITY];
                let mut count = 0usize;
                for e in dir.iter() {
                    count += 1;
                    if seen[e] {
                        return Err(format!("leaf {off}: duplicate directory entry {e}"));
                    }
                    seen[e] = true;
                    if e as u64 >= leaf.nlogs() {
                        return Err(format!(
                            "leaf {off}: directory references unallocated entry {e} (nlogs={})",
                            leaf.nlogs()
                        ));
                    }
                    let k = leaf.read_key(e);
                    if let Some(prev) = prev_leaf_max {
                        if k <= prev {
                            return Err(format!("leaf {off}: key {k} not > previous leaf max {prev}"));
                        }
                    }
                    if k > leaf.fence() {
                        return Err(format!("leaf {off}: key {k} above fence {}", leaf.fence()));
                    }
                    if last_key.is_none_or(|m| k > m) {
                        last_key = Some(k);
                    }
                    let mut steps = 0u32;
                    let found = dir.find(fp_hash(k), |c| leaf.read_key(c) == k, &mut steps);
                    if found.map(|p| p.entry) != Some(e) {
                        return Err(format!("leaf {off}: directory probe misses live key {k}"));
                    }
                    let routed = self.index.traverse_seq(k);
                    if routed != off {
                        return Err(format!("index routes key {k} to {routed}, expected {off}"));
                    }
                }
                if count != dir.len() {
                    return Err(format!(
                        "leaf {off}: directory count byte {} != occupied buckets {count}",
                        dir.len()
                    ));
                }
            } else {
                let mut seen = [false; LEAF_CAPACITY];
                for pos in 0..slot.len() {
                    let e = slot.entry(pos);
                    if e >= LEAF_CAPACITY {
                        return Err(format!("leaf {off}: slot entry {e} out of range"));
                    }
                    if seen[e] {
                        return Err(format!("leaf {off}: duplicate slot entry {e}"));
                    }
                    seen[e] = true;
                    if e as u64 >= leaf.nlogs() {
                        return Err(format!(
                            "leaf {off}: slot references unallocated entry {e} (nlogs={})",
                            leaf.nlogs()
                        ));
                    }
                    let k = leaf.read_key(e);
                    if let Some(prev) = last_key {
                        if k <= prev {
                            return Err(format!("leaf {off}: key {k} not > previous {prev}"));
                        }
                    }
                    if k > leaf.fence() {
                        return Err(format!("leaf {off}: key {k} above fence {}", leaf.fence()));
                    }
                    last_key = Some(k);
                    // The fingerprint table may never produce a false negative
                    // for a live key (collisions only cost extra compares).
                    if self.cfg.fingerprints && self.fps.probe(&leaf, &slot, k) != Some(pos) {
                        return Err(format!("leaf {off}: fingerprint probe misses live key {k}"));
                    }
                    // The volatile index must route this key here.
                    let routed = self.index.traverse_seq(k);
                    if routed != off {
                        return Err(format!("index routes key {k} to {routed}, expected {off}"));
                    }
                }
            }
            if self.cfg.dual_slot {
                let t = leaf.read_slot_seq(WhichSlot::Transient);
                if t != slot {
                    return Err(format!("leaf {off}: transient slot diverges from persistent"));
                }
            }
            // Fence monotonicity holds across non-empty leaves. Empty
            // leaves keep stale fences: recovery excludes them from the
            // volatile index, so a neighbour can later absorb (part of)
            // their old range and split with a smaller fence — harmless,
            // because nothing ever routes to an index-excluded leaf.
            if !slot.is_empty() {
                if leaf.fence() < last_fence {
                    return Err(format!(
                        "leaf {off}: fence {} < predecessor {last_fence}",
                        leaf.fence()
                    ));
                }
                last_fence = leaf.fence();
            }
            let next = leaf.next();
            if next == 0 && leaf.fence() != u64::MAX {
                return Err(format!("last leaf {off} has fence {} != MAX", leaf.fence()));
            }
            off = next;
        }
        let _ = leaves;
        Ok(())
    }
}

impl PersistentIndex for RnTree {
    // The u64 API works on both layouts: in varlen mode a u64 key is its
    // 8-byte big-endian encoding ([`U64Key`] is order-preserving, so u64
    // order and byte order agree and scans return the same sequences).
    fn insert(&self, key: Key, value: Value) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            return self.vmodify(U64Key::encode(key).as_slice(), value, WriteMode::InsertStrict);
        }
        self.modify(key, value, WriteMode::InsertStrict)
    }

    fn update(&self, key: Key, value: Value) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            return self.vmodify(U64Key::encode(key).as_slice(), value, WriteMode::UpdateStrict);
        }
        self.modify(key, value, WriteMode::UpdateStrict)
    }

    fn upsert(&self, key: Key, value: Value) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            return self.vmodify(U64Key::encode(key).as_slice(), value, WriteMode::Upsert);
        }
        self.modify(key, value, WriteMode::Upsert)
    }

    fn remove(&self, key: Key) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            return self.vremove(U64Key::encode(key).as_slice());
        }
        self.remove_impl(key)
    }

    fn find(&self, key: Key) -> Option<Value> {
        if self.cfg.varlen_leaves {
            return self.vfind(U64Key::encode(key).as_slice());
        }
        self.find_impl(key)
    }

    fn scan_n(&self, start: Key, n: usize, out: &mut Vec<(Key, Value)>) -> usize {
        if self.cfg.varlen_leaves {
            // Non-8-byte keys (possible in a mixed tree) are skipped: they
            // have no u64 spelling. A u64 workload never stores any.
            out.clear();
            let mut tmp: Vec<(KeyBuf, Value)> = Vec::with_capacity(n);
            self.vscan(U64Key::encode(start).as_slice(), n, &mut tmp);
            out.extend(tmp.iter().filter_map(|(k, v)| Some((U64Key::decode(k.as_slice())?, *v))));
            return out.len();
        }
        self.scan_impl(start, n, out)
    }

    fn load_sorted(&self, pairs: &[(Key, Value)]) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            let kp: Vec<(KeyBuf, Value)> =
                pairs.iter().map(|&(k, v)| (U64Key::encode(k), v)).collect();
            return self.vload_sorted(&kp);
        }
        RnTree::load_sorted(self, pairs)
    }

    fn insert_batch(&self, batch: &mut [(Key, Value)]) -> Vec<Result<(), OpError>> {
        if self.cfg.varlen_leaves {
            // Sort the caller's slice the way the contract promises, then
            // run the (already sorted — the encoding is order-preserving)
            // byte-key batch; results align index-for-index.
            batch.sort_by_key(|p| p.0);
            let mut kb: Vec<(KeyBuf, Value)> =
                batch.iter().map(|&(k, v)| (U64Key::encode(k), v)).collect();
            return self.vinsert_batch(&mut kb);
        }
        RnTree::insert_batch(self, batch)
    }

    fn write_batch(&self, batch: &mut [(Key, Value, WriteOp)]) -> Vec<Result<(), OpError>> {
        if self.cfg.varlen_leaves {
            // Var leaves have no mixed-class run executor yet: sort (the
            // contract) and dispatch each element through the byte-key
            // point paths in order.
            batch.sort_by_key(|p| p.0);
            return batch
                .iter()
                .map(|&(k, v, op)| {
                    let kb = U64Key::encode(k);
                    match op {
                        WriteOp::Insert => self.vmodify(kb.as_slice(), v, WriteMode::InsertStrict),
                        WriteOp::Update => self.vmodify(kb.as_slice(), v, WriteMode::UpdateStrict),
                        WriteOp::Upsert => self.vmodify(kb.as_slice(), v, WriteMode::Upsert),
                        WriteOp::Remove => self.vremove(kb.as_slice()),
                    }
                })
                .collect();
        }
        RnTree::write_batch(self, batch)
    }

    fn supports_var_keys(&self) -> bool {
        self.cfg.varlen_leaves
    }

    fn insert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            return self.vmodify(key, value, WriteMode::InsertStrict);
        }
        self.modify(U64Key::decode(key).ok_or(OpError::UnsupportedKey)?, value, WriteMode::InsertStrict)
    }

    fn update_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            return self.vmodify(key, value, WriteMode::UpdateStrict);
        }
        self.modify(U64Key::decode(key).ok_or(OpError::UnsupportedKey)?, value, WriteMode::UpdateStrict)
    }

    fn upsert_k(&self, key: KeyRef<'_>, value: Value) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            return self.vmodify(key, value, WriteMode::Upsert);
        }
        self.modify(U64Key::decode(key).ok_or(OpError::UnsupportedKey)?, value, WriteMode::Upsert)
    }

    fn remove_k(&self, key: KeyRef<'_>) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            return self.vremove(key);
        }
        self.remove_impl(U64Key::decode(key).ok_or(OpError::UnsupportedKey)?)
    }

    fn find_k(&self, key: KeyRef<'_>) -> Option<Value> {
        if self.cfg.varlen_leaves {
            return self.vfind(key);
        }
        self.find_impl(U64Key::decode(key)?)
    }

    fn scan_k(&self, start: KeyRef<'_>, n: usize, out: &mut Vec<(KeyBuf, Value)>) -> usize {
        if self.cfg.varlen_leaves {
            return self.vscan(start, n, out);
        }
        out.clear();
        // The u64-backed round-up from the trait default: smallest u64
        // whose 8-byte encoding is >= `start` byte-wise.
        let from = if start.len() <= 8 {
            let mut p = [0u8; 8];
            p[..start.len()].copy_from_slice(start);
            u64::from_be_bytes(p)
        } else {
            let p = u64::from_be_bytes(start[..8].try_into().expect("8-byte prefix"));
            match p.checked_add(1) {
                Some(next) => next,
                None => return 0,
            }
        };
        let mut tmp = Vec::with_capacity(n);
        self.scan_impl(from, n, &mut tmp);
        out.extend(tmp.into_iter().map(|(k, v)| (U64Key::encode(k), v)));
        out.len()
    }

    fn load_sorted_k(&self, pairs: &[(KeyBuf, Value)]) -> Result<(), OpError> {
        if self.cfg.varlen_leaves {
            return self.vload_sorted(pairs);
        }
        // 8-byte-only index: decode the whole batch up front (failing
        // cleanly on an unrepresentable key) and take the bulk-load path
        // instead of the trait default's per-key upserts.
        let mut kp: Vec<(Key, Value)> = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            kp.push((U64Key::decode(k.as_slice()).ok_or(OpError::UnsupportedKey)?, *v));
        }
        RnTree::load_sorted(self, &kp)
    }

    fn insert_batch_k(&self, batch: &mut [(KeyBuf, Value)]) -> Vec<Result<(), OpError>> {
        if self.cfg.varlen_leaves {
            return self.vinsert_batch(batch);
        }
        batch.sort_by_key(|p| p.0);
        if let Ok(mut kp) = batch
            .iter()
            .map(|(k, v)| U64Key::decode(k.as_slice()).map(|k| (k, *v)).ok_or(()))
            .collect::<Result<Vec<_>, ()>>()
        {
            // Encoding preserves order, so `kp` is already sorted and the
            // batched path's result vector aligns with `batch`.
            return RnTree::insert_batch(self, &mut kp);
        }
        // Mixed-width batch (some keys not u64-encodable): per-key path.
        batch
            .iter()
            .map(|(k, v)| self.insert_k(k.as_slice(), *v))
            .collect()
    }

    fn name(&self) -> &'static str {
        if self.cfg.varlen_leaves {
            "RNTree+VK"
        } else if self.cfg.leaf_policy == LeafPolicy::Hash {
            "RNTree+HL"
        } else if self.cfg.leaf_policy == LeafPolicy::Adaptive {
            "RNTree+AD"
        } else if self.cfg.dual_slot {
            "RNTree+DS"
        } else {
            "RNTree"
        }
    }

    fn supports_concurrency(&self) -> bool {
        true
    }

    fn htm_abort_ratio(&self) -> Option<f64> {
        Some(self.htm_stats().abort_ratio())
    }

    fn stats(&self) -> TreeStats {
        let mut leaves = 0u64;
        let mut entries = 0u64;
        let mut off = self.leftmost;
        while off != 0 {
            let leaf = Leaf::at(&self.pool, off);
            leaves += 1;
            entries += leaf.read_slot_seq(WhichSlot::Persistent).len() as u64;
            off = leaf.next();
        }
        TreeStats {
            leaves,
            entries,
            splits: self.splits.load(Ordering::Relaxed),
            pool_exhausted: self.saw_pool_exhaustion(),
        }
    }
}

impl std::fmt::Debug for RnTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RnTree")
            .field("variant", &self.name())
            .field("stats", &self.rn_stats())
            .finish()
    }
}

impl ObsSource for RnTree {
    /// Sections: `tree` (structure + op counters), `pmem`
    /// (persistence-instruction counters), `htm` (abort taxonomy,
    /// including the fallback-tier split and stripe conflict/escape
    /// counters), `htm_retries` (the retries-to-commit distribution plus
    /// the adaptive policy's effective-retry-budget distribution),
    /// `phases` (the modify-path breakdown, present only while the timers
    /// are enabled), `cache` (page-cache hit/miss/eviction counters plus
    /// the optimistic-descent restart taxonomy, present only with a cache
    /// attached), `keys` (head-tie fallback counters, present only in
    /// byte-keyed mode), `leaf` (per-layout leaf census plus morph
    /// counters) with `leaf_probes` (the hash-directory probe-length
    /// distribution), and `events` (the pool's crash-forensics ring)
    /// with `events_meta` (recorded/dropped totals — a non-zero
    /// `events_dropped` means the dump is a suffix of the timeline).
    ///
    /// Heat attribution adds `heat.leaf_conflicts` (HTM aborts +
    /// fallbacks per leaf), `heat.leaf_splits`, `heat.leaf_morphs`,
    /// `heat.htm_stripes` (fallback serializations per stripe),
    /// `heat.cache_sets` (evictions + failed validations per cache set,
    /// with a cache attached), and `heat_meta` (each sketch's decayed
    /// error budget — how much count mass fell off the top-K tables).
    fn obs_sections(&self) -> Vec<(String, Section)> {
        let mut tree = self.stats().counters();
        let rn = self.rn_stats();
        tree.push(("compactions".into(), rn.compactions));
        tree.push(("retries".into(), rn.retries));
        tree.push(("wasted_entries".into(), rn.wasted_entries));

        let htm = self.htm_stats();
        let mut out = vec![
            ("tree".to_string(), Section::Counters(tree)),
            ("pmem".to_string(), Section::Counters(self.pool.stats().snapshot().counters())),
            ("htm".to_string(), Section::Counters(htm.counters())),
            (
                "htm_retries".to_string(),
                Section::Latencies(vec![
                    (
                        "retries_to_commit".to_string(),
                        self.index.domain().stats().retries_to_commit(),
                    ),
                    (
                        "retry_budget".to_string(),
                        self.index.domain().stats().retry_budget(),
                    ),
                ]),
            ),
        ];
        if self.timers.is_enabled() {
            let phases = Phase::ALL
                .iter()
                .map(|&p| (p.name().to_string(), self.timers.snapshot(p)))
                .collect();
            out.push(("phases".to_string(), Section::Latencies(phases)));
        }
        if let Some(cs) = self.cache_stats() {
            let ds = self.descent_stats();
            out.push((
                "cache".to_string(),
                Section::Counters(vec![
                    ("hits".into(), cs.hits),
                    ("misses".into(), cs.misses),
                    ("fills".into(), cs.fills),
                    ("evictions".into(), cs.evictions),
                    ("invalidations".into(), cs.invalidations),
                    ("read_restarts".into(), cs.read_restarts),
                    ("descent_restarts".into(), ds.restarts),
                    ("descent_tm_fallbacks".into(), ds.tm_fallbacks),
                ]),
            ));
        }
        if self.index.is_byte_keyed() {
            // How often the 4-byte key heads failed to decide a compare and
            // the search fell back to full key bytes — the cost model of
            // the head optimisation (DESIGN.md §5h).
            out.push((
                "keys".to_string(),
                Section::Counters(vec![
                    ("head_tie_fallbacks_inner".into(), self.index.head_tie_fallbacks()),
                    (
                        "head_tie_fallbacks_leaf".into(),
                        self.leaf_head_ties.load(Ordering::Relaxed),
                    ),
                ]),
            ));
        }
        // Per-layout leaf census plus the morph engine's counters
        // (DESIGN.md §5i). The census re-walks the chain; obs reporting is
        // off the hot path, and the header tag read is layout-agnostic.
        let mut sorted_leaves = 0u64;
        let mut hash_leaves = 0u64;
        let mut off = self.leftmost;
        while off != 0 {
            let leaf = Leaf::at(&self.pool, off);
            if leaf.layout() == LAYOUT_HASH {
                hash_leaves += 1;
            } else {
                sorted_leaves += 1;
            }
            off = leaf.next();
        }
        out.push((
            "leaf".to_string(),
            Section::Counters(vec![
                ("sorted_leaves".into(), sorted_leaves),
                ("hash_leaves".into(), hash_leaves),
                ("morphs_to_hash".into(), self.morphs_to_hash.load(Ordering::Relaxed)),
                ("morphs_to_sorted".into(), self.morphs_to_sorted.load(Ordering::Relaxed)),
                ("morphs_skipped".into(), self.morphs_skipped.load(Ordering::Relaxed)),
            ]),
        ));
        out.push((
            "leaf_probes".to_string(),
            Section::Latencies(vec![("probe_len".to_string(), self.probe_hist.snapshot())]),
        ));
        let ring = self.pool.events();
        out.push(("events".to_string(), Section::Events(ring.dump())));
        out.push((
            "events_meta".to_string(),
            Section::Counters(vec![
                ("events_recorded".into(), ring.recorded()),
                ("events_dropped".into(), ring.dropped()),
            ]),
        ));

        // Structural heat: top-K tables, hottest first.
        const HEAT_TOP_K: usize = 16;
        let domain_stats = self.index.domain().stats();
        out.push((
            "heat.leaf_conflicts".to_string(),
            Section::Heat(self.heat.conflicts.top_k(HEAT_TOP_K)),
        ));
        out.push((
            "heat.leaf_splits".to_string(),
            Section::Heat(self.heat.splits.top_k(HEAT_TOP_K)),
        ));
        out.push((
            "heat.leaf_morphs".to_string(),
            Section::Heat(self.heat.morphs.top_k(HEAT_TOP_K)),
        ));
        out.push((
            "heat.htm_stripes".to_string(),
            Section::Heat(domain_stats.stripe_heat.top_k(HEAT_TOP_K)),
        ));
        let mut heat_meta = vec![
            ("leaf_conflicts_decayed".into(), self.heat.conflicts.decayed()),
            ("leaf_splits_decayed".into(), self.heat.splits.decayed()),
            ("leaf_morphs_decayed".into(), self.heat.morphs.decayed()),
            ("htm_stripes_decayed".into(), domain_stats.stripe_heat.decayed()),
        ];
        if let Some(cache) = self.index.page_cache() {
            out.push((
                "heat.cache_sets".to_string(),
                Section::Heat(cache.set_heat().top_k(HEAT_TOP_K)),
            ));
            heat_meta.push(("cache_sets_decayed".into(), cache.set_heat().decayed()));
        }
        out.push(("heat_meta".to_string(), Section::Counters(heat_meta)));
        out
    }
}

// Construction / recovery live in recovery.rs; shared helpers are here so
// both files stay readable.
impl RnTree {
    /// The leaf block size this config's layout uses.
    pub(crate) fn leaf_block(cfg: &RnConfig) -> u64 {
        if cfg.varlen_leaves {
            VAR_LEAF_BLOCK
        } else {
            LEAF_BLOCK
        }
    }

    /// Layout bookkeeping shared by create/recover paths. The journal
    /// images and the leaf region are both sized by the config's leaf
    /// block, so the two layouts never mix on one pool.
    pub(crate) fn leaf_region_start(cfg: &RnConfig) -> u64 {
        RootTable::END + SplitJournal::region_bytes_sized(cfg.journal_slots, Self::leaf_block(cfg))
    }

    pub(crate) fn make_parts(pool: &Arc<PmemPool>, cfg: &RnConfig) -> (BlockAllocator, SplitJournal) {
        let block = Self::leaf_block(cfg);
        let leaf_region = Self::leaf_region_start(cfg);
        assert!(
            leaf_region + block <= pool.len(),
            "pool too small for journal + one leaf"
        );
        let alloc = BlockAllocator::new(leaf_region, pool.len(), block);
        let journal = SplitJournal::new_sized(RootTable::END, cfg.journal_slots, block);
        (alloc, journal)
    }
}
