//! Construction and recovery (paper §5.4).
//!
//! Internal nodes are volatile, so any (re)start rebuilds them from the
//! persistent leaf chain, whose head lives at a well-known root slot. Two
//! paths exist, matching the paper's Figure 7 distinction:
//!
//! * **Reconstruction** ([`RnTree::reopen_clean`]) after a clean shutdown:
//!   leaf headers (`nlogs`, `plogs`) were persisted by [`RnTree::close`],
//!   so the scan only reads each leaf's slot count and maximum key.
//! * **Crash recovery** ([`RnTree::recover`]): first replay the split undo
//!   journal, then scan the chain resetting the non-crash-consistent
//!   scratch per leaf — lock word cleared, `nlogs`/`plogs` recomputed from
//!   the slot array ("scan the slot array to find the max index of log
//!   entries"), transient slot array rebuilt from the persistent one.
//!
//! Both paths end by bulk-building the internal levels from the
//! `(max key, leaf)` pairs and rebuilding the block allocator's free list
//! from the set of chain-reachable blocks.

use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;

use index_common::{leaf_ref, InnerIndex, Key, KeyBuf};
use nvm::{PageCache, PmemPool, RootTable};
use obs::{EventKind, PhaseTimers};

use crate::fingerprint::{fp_hash, fp_hash_bytes, FpTable};
use crate::hashleaf::HashDir;
use crate::layout::varlen::{round8, vfield};
use crate::layout::{LAYOUT_HASH, LEAF_CAPACITY};
use crate::leaf::{Leaf, WhichSlot};
use crate::slots::SlotBuf;
use crate::tree::{roots, LeafPolicy, OpMix, RnConfig, RnTree, MAGIC};
use crate::varleaf::VarLeaf;
use crate::vartree::KEY_TOP;

/// A pool/config disagreement detected while opening or formatting a
/// pool: the layout-affecting `RnConfig` flags are recorded in the pool's
/// root table at create time, and every open validates them against the
/// config it was handed before touching a single leaf. The panicking
/// constructors ([`RnTree::create`], [`RnTree::recover`],
/// [`RnTree::reopen_clean`]) wrap the `try_` variants and panic with the
/// `Display` text below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The magic root word does not identify an RNTree pool.
    BadMagic {
        /// The word found where the RNTree magic was expected.
        found: u64,
    },
    /// The pool was formatted with a different journal-slot count; the
    /// journal region size (and thus the leaf region base) would differ.
    JournalSlotsMismatch {
        /// Slot count recorded in the pool.
        pool: u64,
        /// Slot count the config asked for.
        cfg: u64,
    },
    /// The pool's leaf block family (u64 vs variable-length) differs from
    /// the config's `varlen_leaves` flag.
    VarlenMismatch {
        /// True when the pool holds variable-length leaves.
        pool: bool,
        /// The config's `varlen_leaves` flag.
        cfg: bool,
    },
    /// The pool's recorded [`LeafPolicy`] differs from the config's (or is
    /// a word this build does not know). The policy decides how much
    /// defensive revalidation readers perform, so create and open must
    /// agree exactly.
    LeafPolicyMismatch {
        /// Raw root word recorded in the pool.
        pool: u64,
        /// Policy the config asked for.
        cfg: LeafPolicy,
    },
    /// The requested flag combination has no on-pool representation:
    /// variable-length leaves exist only in the sorted layout.
    PolicyUnsupported {
        /// The offending policy.
        policy: LeafPolicy,
    },
    /// `reopen_clean` on a pool whose clean-shutdown flag is unset.
    NotCleanlyClosed,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigError::BadMagic { found } => {
                write!(f, "pool is not an RNTree (magic word {found:#x})")
            }
            ConfigError::JournalSlotsMismatch { pool, cfg } => write!(
                f,
                "journal_slots mismatch with on-pool layout (pool {pool}, config {cfg})"
            ),
            ConfigError::VarlenMismatch { pool, cfg } => write!(
                f,
                "varlen_leaves mismatch with on-pool layout (pool {pool}, config {cfg})"
            ),
            ConfigError::LeafPolicyMismatch { pool, cfg } => write!(
                f,
                "leaf_policy mismatch with on-pool layout (pool word {pool}, config {cfg:?})"
            ),
            ConfigError::PolicyUnsupported { policy } => write!(
                f,
                "leaf_policy {policy:?} requires the u64 leaf family (varlen_leaves = false)"
            ),
            ConfigError::NotCleanlyClosed => {
                write!(f, "pool not cleanly closed; use RnTree::recover")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl RnTree {
    /// Formats `pool` with a fresh, empty RNTree.
    ///
    /// # Panics
    /// Panics on an unrepresentable flag combination (see
    /// [`RnTree::try_create`] for the typed-error variant).
    pub fn create(pool: Arc<PmemPool>, cfg: RnConfig) -> RnTree {
        Self::try_create(pool, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`RnTree::create`], returning configuration errors instead of
    /// panicking.
    pub fn try_create(pool: Arc<PmemPool>, cfg: RnConfig) -> Result<RnTree, ConfigError> {
        Self::validate_policy(&cfg)?;
        let (alloc, journal) = Self::make_parts(&pool, &cfg);
        journal.format(&pool);

        let first = alloc.alloc().expect("pool too small for one leaf");
        if cfg.varlen_leaves {
            // Empty low fence, +∞ high fence: the leaf covers everything.
            VarLeaf::at(&pool, first).init_empty(&[], None, 0);
        } else {
            let leaf = Leaf::at(&pool, first);
            leaf.init_empty(u64::MAX, 0);
            if cfg.leaf_policy == LeafPolicy::Hash {
                // Hash-policy pools are born hashed. An empty directory is
                // bit-identical to an empty slot array, so only the header
                // tag changes; re-persist the header line that carries it.
                leaf.set_layout(LAYOUT_HASH);
                leaf.persist_header();
            }
        }

        RootTable::set_volatile(&pool, roots::LEFTMOST, first);
        RootTable::set_volatile(&pool, roots::MAGIC, MAGIC);
        RootTable::set_volatile(&pool, roots::JOURNAL_SLOTS, cfg.journal_slots as u64);
        RootTable::set_volatile(&pool, roots::LEAF_REGION, Self::leaf_region_start(&cfg));
        RootTable::set_volatile(&pool, roots::VARLEN, cfg.varlen_leaves as u64);
        RootTable::set_volatile(&pool, roots::LEAF_POLICY, cfg.leaf_policy.as_root_word());
        RootTable::set_volatile(&pool, roots::CLEAN, 0);
        RootTable::persist(&pool);

        let fps = FpTable::new(Self::leaf_region_start(&cfg), pool.len(), Self::leaf_block(&cfg), cfg.fingerprints);
        let index = if cfg.varlen_leaves {
            InnerIndex::new_bytes(leaf_ref(first))
        } else {
            InnerIndex::new(leaf_ref(first))
        };
        index.set_legacy_seq_descent(cfg.legacy_seq_descent);
        index.domain().set_striped_fallback(cfg.striped_fallback);
        if cfg.cache_frames > 0 {
            // Always a fresh, empty cache: the DRAM tier is transient and
            // recovery must never trust (or rebuild from) its contents.
            index.attach_cache(Arc::new(PageCache::new(cfg.cache_frames, Some(pool.events_handle()))));
        }
        let opmix = Self::make_opmix(&pool, &cfg);
        Ok(RnTree {
            pool,
            alloc,
            index,
            journal,
            cfg,
            fps,
            leftmost: first,
            splits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            wasted: AtomicU64::new(0),
            pool_exhausted: AtomicBool::new(false),
            leaf_head_ties: AtomicU64::new(0),
            opmix,
            morphs_to_hash: AtomicU64::new(0),
            morphs_to_sorted: AtomicU64::new(0),
            morphs_skipped: AtomicU64::new(0),
            probe_hist: obs::AtomicHistogram::new(),
            timers: PhaseTimers::new(),
            heat: crate::tree::LeafHeat::default(),
        })
    }

    /// Flag combinations with no on-pool representation: the 4096-byte
    /// variable-length block family exists only in the sorted layout.
    fn validate_policy(cfg: &RnConfig) -> Result<(), ConfigError> {
        if cfg.varlen_leaves && cfg.leaf_policy != LeafPolicy::Sorted {
            return Err(ConfigError::PolicyUnsupported { policy: cfg.leaf_policy });
        }
        Ok(())
    }

    /// The adaptive policy's op-mix table; empty (no memory, record calls
    /// no-op) under every other policy.
    fn make_opmix(pool: &PmemPool, cfg: &RnConfig) -> OpMix {
        OpMix::new(
            Self::leaf_region_start(cfg),
            pool.len(),
            Self::leaf_block(cfg),
            cfg.leaf_policy == LeafPolicy::Adaptive && !cfg.varlen_leaves,
        )
    }

    /// Validates every layout-affecting config flag against the root words
    /// the pool was formatted with.
    fn check_config(pool: &PmemPool, cfg: &RnConfig) -> Result<(), ConfigError> {
        Self::validate_policy(cfg)?;
        let magic = RootTable::get(pool, roots::MAGIC);
        if magic != MAGIC {
            return Err(ConfigError::BadMagic { found: magic });
        }
        let slots = RootTable::get(pool, roots::JOURNAL_SLOTS);
        if slots != cfg.journal_slots as u64 {
            return Err(ConfigError::JournalSlotsMismatch { pool: slots, cfg: cfg.journal_slots as u64 });
        }
        let varlen = RootTable::get(pool, roots::VARLEN);
        if varlen != cfg.varlen_leaves as u64 {
            return Err(ConfigError::VarlenMismatch { pool: varlen != 0, cfg: cfg.varlen_leaves });
        }
        // Old pools predate the policy word and read 0 = Sorted, exactly
        // the layout their leaves have.
        let policy = RootTable::get(pool, roots::LEAF_POLICY);
        if LeafPolicy::from_root_word(policy) != Some(cfg.leaf_policy) {
            return Err(ConfigError::LeafPolicyMismatch { pool: policy, cfg: cfg.leaf_policy });
        }
        Ok(())
    }

    /// Reads a u64 leaf's persistent slot line and interprets it per the
    /// leaf's layout tag: yields the raw line (for the tslot copy), the
    /// recomputed `nlogs` (max referenced log index + 1, paper §6.2.6 —
    /// entries above it were never acknowledged and are safely reusable)
    /// and the maximum live key (the leaf's index route), re-deriving the
    /// transient fingerprints along the way. Shared by crash recovery and
    /// clean reopen.
    fn scan_u64_leaf(pool: &PmemPool, fps: &FpTable, off: u64) -> (SlotBuf, u64, Option<u64>) {
        let leaf = Leaf::at(pool, off);
        let slot = leaf.read_slot_seq(WhichSlot::Persistent);
        if leaf.layout() == LAYOUT_HASH {
            // Hash directory: entries live wherever their fingerprint
            // probed to, so both `nlogs` and the max key need a full walk.
            let mut nlogs = 0u64;
            let mut max_key = None;
            for e in HashDir::from_slot(slot).iter() {
                nlogs = nlogs.max(e as u64 + 1);
                let k = leaf.read_key(e);
                if max_key.is_none_or(|m| k > m) {
                    max_key = Some(k);
                }
                if !fps.is_disabled() {
                    fps.set(off, e, fp_hash(k));
                }
            }
            (slot, nlogs, max_key)
        } else {
            let nlogs = slot.iter().map(|e| e as u64 + 1).max().unwrap_or(0);
            if !fps.is_disabled() {
                fps.rebuild_leaf(&leaf, &slot);
            }
            let max_key = (!slot.is_empty()).then(|| leaf.read_key(slot.entry(slot.len() - 1)));
            (slot, nlogs, max_key)
        }
    }

    /// Crash recovery: journal replay + full per-leaf scratch reset +
    /// index and allocator rebuild.
    ///
    /// # Panics
    /// Panics when the pool's root words disagree with `cfg` (see
    /// [`RnTree::try_recover`] for the typed-error variant).
    pub fn recover(pool: Arc<PmemPool>, cfg: RnConfig) -> RnTree {
        Self::try_recover(pool, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`RnTree::recover`], returning configuration errors instead of
    /// panicking.
    pub fn try_recover(pool: Arc<PmemPool>, cfg: RnConfig) -> Result<RnTree, ConfigError> {
        Self::check_config(&pool, &cfg)?;
        let (alloc, journal) = Self::make_parts(&pool, &cfg);
        // Every recovery step lands in the pool's event ring, so a
        // post-crash `simulate_crash` forensics dump shows the full
        // timeline: trap → crash → rollbacks → chain scan → rebuilds.
        let rolled_back = journal.recover(&pool);
        for &leaf_off in &rolled_back {
            pool.events().record(EventKind::JournalRollback, leaf_off, 0);
        }
        pool.events().record(EventKind::RecoveryJournal, rolled_back.len() as u64, 0);

        let fps = FpTable::new(Self::leaf_region_start(&cfg), pool.len(), Self::leaf_block(&cfg), cfg.fingerprints);
        let leftmost = RootTable::get(&pool, roots::LEFTMOST);
        let mut reachable = Vec::new();
        let mut pairs: Vec<(Key, u64)> = Vec::new();
        let mut routes: Vec<(KeyBuf, u64)> = Vec::new();
        let mut off = leftmost;
        while off != 0 {
            reachable.push(off);
            if cfg.varlen_leaves {
                Self::recover_var_leaf(&pool, &fps, off, &mut routes);
                off = VarLeaf::at(&pool, off).next();
                continue;
            }
            let leaf = Leaf::at(&pool, off);
            leaf.reset_lockver();
            // The fingerprint table is transient scratch like the tslot:
            // the scan re-derives it from the recovered persistent line.
            let (slot, nlogs, max_key) = Self::scan_u64_leaf(&pool, &fps, off);
            debug_assert!(nlogs <= LEAF_CAPACITY as u64);
            leaf.set_nlogs(nlogs);
            leaf.set_plogs(nlogs);
            leaf.write_slot_seq(WhichSlot::Transient, &slot);
            if let Some(max_key) = max_key {
                pairs.push((max_key, leaf_ref(off)));
            }
            off = leaf.next();
        }
        let entries: u64 = (pairs.len() + routes.len()) as u64;
        pool.events().record(EventKind::RecoveryLeafChain, reachable.len() as u64, entries);
        alloc.rebuild(&reachable);
        pool.events().record(EventKind::RecoveryAlloc, reachable.len() as u64, 0);
        RootTable::set(&pool, roots::CLEAN, 0);

        let index = if cfg.varlen_leaves {
            InnerIndex::new_bytes(leaf_ref(leftmost))
        } else {
            InnerIndex::new(leaf_ref(leftmost))
        };
        index.set_legacy_seq_descent(cfg.legacy_seq_descent);
        index.domain().set_striped_fallback(cfg.striped_fallback);
        if cfg.cache_frames > 0 {
            // Always a fresh, empty cache: the DRAM tier is transient and
            // recovery must never trust (or rebuild from) its contents.
            index.attach_cache(Arc::new(PageCache::new(cfg.cache_frames, Some(pool.events_handle()))));
        }
        if !routes.is_empty() {
            index.bulk_build_k(&routes);
        } else if !pairs.is_empty() {
            index.bulk_build(&pairs);
        }
        pool.events().record(EventKind::RecoveryIndex, entries, 0);
        let opmix = Self::make_opmix(&pool, &cfg);
        Ok(RnTree {
            pool,
            alloc,
            index,
            journal,
            cfg,
            fps,
            leftmost,
            splits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            wasted: AtomicU64::new(0),
            pool_exhausted: AtomicBool::new(false),
            leaf_head_ties: AtomicU64::new(0),
            opmix,
            morphs_to_hash: AtomicU64::new(0),
            morphs_to_sorted: AtomicU64::new(0),
            morphs_skipped: AtomicU64::new(0),
            probe_hist: obs::AtomicHistogram::new(),
            timers: PhaseTimers::new(),
            heat: crate::tree::LeafHeat::default(),
        })
    }

    /// Per-leaf crash-recovery reset for the variable-length layout: the
    /// same scratch rebuild as the u64 path (lock word, `nlogs`/`plogs`
    /// from the persistent slot array, transient slot copy, fingerprints)
    /// plus a `heap_used` recompute — heap reservations are plain DRAM-side
    /// counter bumps, so after a crash the durable word may still count
    /// reservations whose records never published; the high-water mark of
    /// the *referenced* records (floored at the fence region) is the
    /// correct value and reclaims every unpublished reservation.
    ///
    /// Routing is by the **high fence**, and *empty* leaves are included:
    /// a var leaf's keys are prefix-truncated against its own fence
    /// metadata, so lookups must land on exactly the leaf whose range
    /// covers the key, not merely one whose max stored key is close. The
    /// rightmost (+∞-fenced) leaf routes under [`KEY_TOP`], the maximum
    /// representable key.
    fn recover_var_leaf(pool: &PmemPool, fps: &FpTable, off: u64, routes: &mut Vec<(KeyBuf, u64)>) {
        let leaf = VarLeaf::at(pool, off);
        leaf.reset_lockver();
        let slot = leaf.read_slot_seq(WhichSlot::Persistent);
        let nlogs = slot.iter().map(|e| e as u64 + 1).max().unwrap_or(0);
        leaf.set_nlogs(nlogs);
        leaf.set_plogs(nlogs);
        leaf.write_slot_seq(WhichSlot::Transient, &slot);
        let lf = leaf.low_fence();
        let hf = leaf.high_fence();
        let mut used = round8(lf.len() as u64) + hf.as_ref().map_or(0, |h| round8(h.len() as u64));
        for e in slot.iter() {
            let (_, rec_rel, suffix_len) = VarLeaf::decode_dir(leaf.dir_word(e));
            used = used.max(rec_rel - vfield::HEAP + 8 + round8(suffix_len as u64));
            if !fps.is_disabled() {
                fps.set(off, e, fp_hash_bytes(leaf.key_of_entry(e).as_slice()));
            }
        }
        leaf.set_heap_used(used);
        routes.push((hf.unwrap_or(KeyBuf::from_slice(&KEY_TOP)), leaf_ref(off)));
    }

    /// As [`RnTree::recover_var_leaf`] but trusting the persisted header
    /// (clean shutdown): only the transient scraps — tslot, fingerprints —
    /// are rebuilt, and the same fence-based route is emitted.
    fn reopen_var_leaf(pool: &PmemPool, fps: &FpTable, off: u64, routes: &mut Vec<(KeyBuf, u64)>) {
        let leaf = VarLeaf::at(pool, off);
        let slot = leaf.read_slot_seq(WhichSlot::Persistent);
        leaf.write_slot_seq(WhichSlot::Transient, &slot);
        if !fps.is_disabled() {
            for e in slot.iter() {
                fps.set(off, e, fp_hash_bytes(leaf.key_of_entry(e).as_slice()));
            }
        }
        routes.push((leaf.high_fence().unwrap_or(KeyBuf::from_slice(&KEY_TOP)), leaf_ref(off)));
    }

    /// Reconstruction after a clean shutdown ([`RnTree::close`]): trusts
    /// the persisted leaf headers and only rebuilds the volatile levels.
    ///
    /// # Panics
    /// Panics if the pool was not closed cleanly (use [`RnTree::recover`])
    /// or the root words disagree with `cfg` (see
    /// [`RnTree::try_reopen_clean`] for the typed-error variant).
    pub fn reopen_clean(pool: Arc<PmemPool>, cfg: RnConfig) -> RnTree {
        Self::try_reopen_clean(pool, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`RnTree::reopen_clean`], returning configuration errors instead
    /// of panicking.
    pub fn try_reopen_clean(pool: Arc<PmemPool>, cfg: RnConfig) -> Result<RnTree, ConfigError> {
        Self::check_config(&pool, &cfg)?;
        if RootTable::get(&pool, roots::CLEAN) != 1 {
            return Err(ConfigError::NotCleanlyClosed);
        }
        let (alloc, journal) = Self::make_parts(&pool, &cfg);

        let fps = FpTable::new(Self::leaf_region_start(&cfg), pool.len(), Self::leaf_block(&cfg), cfg.fingerprints);
        let leftmost = RootTable::get(&pool, roots::LEFTMOST);
        let mut reachable = Vec::new();
        let mut pairs: Vec<(Key, u64)> = Vec::new();
        let mut routes: Vec<(KeyBuf, u64)> = Vec::new();
        let mut off = leftmost;
        while off != 0 {
            reachable.push(off);
            if cfg.varlen_leaves {
                Self::reopen_var_leaf(&pool, &fps, off, &mut routes);
                off = VarLeaf::at(&pool, off).next();
                continue;
            }
            let leaf = Leaf::at(&pool, off);
            let (slot, _nlogs, max_key) = Self::scan_u64_leaf(&pool, &fps, off);
            leaf.write_slot_seq(WhichSlot::Transient, &slot);
            if let Some(max_key) = max_key {
                pairs.push((max_key, leaf_ref(off)));
            }
            off = leaf.next();
        }
        alloc.rebuild(&reachable);
        RootTable::set(&pool, roots::CLEAN, 0);

        let index = if cfg.varlen_leaves {
            InnerIndex::new_bytes(leaf_ref(leftmost))
        } else {
            InnerIndex::new(leaf_ref(leftmost))
        };
        index.set_legacy_seq_descent(cfg.legacy_seq_descent);
        index.domain().set_striped_fallback(cfg.striped_fallback);
        if cfg.cache_frames > 0 {
            // Always a fresh, empty cache: the DRAM tier is transient and
            // recovery must never trust (or rebuild from) its contents.
            index.attach_cache(Arc::new(PageCache::new(cfg.cache_frames, Some(pool.events_handle()))));
        }
        if !routes.is_empty() {
            index.bulk_build_k(&routes);
        } else if !pairs.is_empty() {
            index.bulk_build(&pairs);
        }
        let opmix = Self::make_opmix(&pool, &cfg);
        Ok(RnTree {
            pool,
            alloc,
            index,
            journal,
            cfg,
            fps,
            leftmost,
            splits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            wasted: AtomicU64::new(0),
            pool_exhausted: AtomicBool::new(false),
            leaf_head_ties: AtomicU64::new(0),
            opmix,
            morphs_to_hash: AtomicU64::new(0),
            morphs_to_sorted: AtomicU64::new(0),
            morphs_skipped: AtomicU64::new(0),
            probe_hist: obs::AtomicHistogram::new(),
            timers: PhaseTimers::new(),
            heat: crate::tree::LeafHeat::default(),
        })
    }

    /// Clean shutdown: persists every leaf's header line (making `nlogs`,
    /// `plogs` trustworthy) and sets the clean flag. The tree must be
    /// quiescent.
    pub fn close(&self) {
        let mut off = self.leftmost;
        while off != 0 {
            let leaf = Leaf::at(&self.pool, off);
            leaf.persist_header();
            off = leaf.next();
        }
        RootTable::set(&self.pool, roots::CLEAN, 1);
    }

    /// Offset of the leftmost leaf (diagnostics/benchmarks).
    pub fn leftmost(&self) -> u64 {
        self.leftmost
    }
}

/// The lifecycle methods above, exposed generically so a sharded composite
/// (`index_common::ShardedIndex`) can open and recover RNTree shards in
/// parallel without naming the concrete type.
impl index_common::RecoverableIndex for RnTree {
    type Config = RnConfig;

    fn create(pool: Arc<PmemPool>, cfg: RnConfig) -> Self {
        RnTree::create(pool, cfg)
    }

    fn recover(pool: Arc<PmemPool>, cfg: RnConfig) -> Self {
        RnTree::recover(pool, cfg)
    }

    fn reopen_clean(pool: Arc<PmemPool>, cfg: RnConfig) -> Self {
        RnTree::reopen_clean(pool, cfg)
    }

    fn close(&self) {
        RnTree::close(self)
    }

    fn try_create(pool: Arc<PmemPool>, cfg: RnConfig) -> Result<Self, String> {
        RnTree::try_create(pool, cfg).map_err(|e| e.to_string())
    }

    fn try_recover(pool: Arc<PmemPool>, cfg: RnConfig) -> Result<Self, String> {
        RnTree::try_recover(pool, cfg).map_err(|e| e.to_string())
    }

    fn try_reopen_clean(pool: Arc<PmemPool>, cfg: RnConfig) -> Result<Self, String> {
        RnTree::try_reopen_clean(pool, cfg).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use index_common::PersistentIndex;
    use nvm::PmemConfig;

    fn new_pool(bytes: usize) -> Arc<PmemPool> {
        Arc::new(PmemPool::new(PmemConfig::for_testing(bytes)))
    }

    fn cfg() -> RnConfig {
        RnConfig {
            journal_slots: 4,
            ..RnConfig::default()
        }
    }

    #[test]
    fn create_insert_find() {
        let tree = RnTree::create(new_pool(1 << 22), cfg());
        for k in (1..=500u64).rev() {
            tree.insert(k, k * 2).unwrap();
        }
        for k in 1..=500u64 {
            assert_eq!(tree.find(k), Some(k * 2), "key {k}");
        }
        assert_eq!(tree.find(0), None);
        assert_eq!(tree.find(501), None);
        tree.verify_invariants().unwrap();
        assert!(tree.rn_stats().splits > 0, "500 keys must split 63-cap leaves");
    }

    #[test]
    fn conditional_write_semantics() {
        let tree = RnTree::create(new_pool(1 << 22), cfg());
        tree.insert(5, 50).unwrap();
        assert_eq!(tree.insert(5, 51), Err(index_common::OpError::AlreadyExists));
        assert_eq!(tree.find(5), Some(50), "failed insert must not change data");
        assert_eq!(tree.update(6, 60), Err(index_common::OpError::NotFound));
        tree.update(5, 55).unwrap();
        assert_eq!(tree.find(5), Some(55));
        tree.upsert(6, 66).unwrap();
        tree.upsert(6, 67).unwrap();
        assert_eq!(tree.find(6), Some(67));
        assert_eq!(tree.remove(7), Err(index_common::OpError::NotFound));
        tree.remove(6).unwrap();
        assert_eq!(tree.find(6), None);
        tree.verify_invariants().unwrap();
    }

    #[test]
    fn update_churn_triggers_compaction() {
        let tree = RnTree::create(new_pool(1 << 22), cfg());
        for k in 1..=10u64 {
            tree.insert(k, 0).unwrap();
        }
        // 10 live keys, hundreds of updates: log areas must recycle.
        for round in 1..=60u64 {
            for k in 1..=10u64 {
                tree.update(k, round * 100 + k).unwrap();
            }
        }
        for k in 1..=10u64 {
            assert_eq!(tree.find(k), Some(6000 + k));
        }
        assert!(tree.rn_stats().compactions > 0, "expected compactions");
        tree.verify_invariants().unwrap();
    }

    #[test]
    fn remove_then_reinsert() {
        let tree = RnTree::create(new_pool(1 << 22), cfg());
        for k in 1..=200u64 {
            tree.insert(k, k).unwrap();
        }
        for k in (1..=200u64).step_by(2) {
            tree.remove(k).unwrap();
        }
        for k in 1..=200u64 {
            assert_eq!(tree.find(k), (k % 2 == 0).then_some(k), "key {k}");
        }
        for k in (1..=200u64).step_by(2) {
            tree.insert(k, k + 1).unwrap();
        }
        for k in (1..=200u64).step_by(2) {
            assert_eq!(tree.find(k), Some(k + 1));
        }
        tree.verify_invariants().unwrap();
    }

    #[test]
    fn scan_returns_sorted_ranges() {
        let tree = RnTree::create(new_pool(1 << 22), cfg());
        for k in 1..=300u64 {
            tree.insert(k * 2, k).unwrap(); // even keys 2..600
        }
        let mut out = Vec::new();
        assert_eq!(tree.scan_n(100, 10, &mut out), 10);
        let keys: Vec<u64> = out.iter().map(|kv| kv.0).collect();
        assert_eq!(keys, (50..60).map(|i| i * 2).collect::<Vec<_>>());
        // Start between keys.
        assert_eq!(tree.scan_n(101, 3, &mut out), 3);
        assert_eq!(out[0].0, 102);
        // Run off the end.
        assert_eq!(tree.scan_n(595, 100, &mut out), 3);
        assert_eq!(out.last().unwrap().0, 600);
        // Empty range.
        assert_eq!(tree.scan_n(601, 5, &mut out), 0);
    }

    #[test]
    fn crash_without_persist_loses_nothing_acknowledged() {
        let pool = new_pool(1 << 22);
        let tree = RnTree::create(Arc::clone(&pool), cfg());
        for k in 1..=300u64 {
            tree.insert(k, k * 7).unwrap();
        }
        drop(tree);
        pool.simulate_crash();
        let tree = RnTree::recover(Arc::clone(&pool), cfg());
        for k in 1..=300u64 {
            assert_eq!(tree.find(k), Some(k * 7), "key {k} lost in crash");
        }
        tree.verify_invariants().unwrap();
        // The recovered tree is fully writable.
        for k in 301..=400u64 {
            tree.insert(k, k).unwrap();
        }
        assert_eq!(tree.find(400), Some(400));
        tree.verify_invariants().unwrap();
    }

    #[test]
    fn clean_close_and_reopen() {
        let pool = new_pool(1 << 22);
        let tree = RnTree::create(Arc::clone(&pool), cfg());
        for k in 1..=300u64 {
            tree.insert(k, k + 1).unwrap();
        }
        tree.close();
        drop(tree);
        pool.simulate_crash(); // even a crash after close is fine
        let tree = RnTree::reopen_clean(Arc::clone(&pool), cfg());
        for k in 1..=300u64 {
            assert_eq!(tree.find(k), Some(k + 1));
        }
        tree.verify_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "not cleanly closed")]
    fn reopen_clean_rejects_dirty_pool() {
        let pool = new_pool(1 << 22);
        let tree = RnTree::create(Arc::clone(&pool), cfg());
        tree.insert(1, 1).unwrap();
        drop(tree);
        pool.simulate_crash();
        let _ = RnTree::reopen_clean(pool, cfg());
    }

    #[test]
    fn recovery_resets_scratch_counters() {
        let pool = new_pool(1 << 22);
        let tree = RnTree::create(Arc::clone(&pool), cfg());
        for k in 1..=50u64 {
            tree.insert(k, k).unwrap();
        }
        let leftmost = tree.leftmost();
        drop(tree);
        pool.simulate_crash();
        let tree = RnTree::recover(Arc::clone(&pool), cfg());
        let leaf = crate::leaf::Leaf::at(&pool, leftmost);
        let slot = leaf.read_slot_seq(crate::leaf::WhichSlot::Persistent);
        assert_eq!(leaf.nlogs(), slot.iter().map(|e| e as u64 + 1).max().unwrap());
        assert_eq!(leaf.nlogs(), leaf.plogs());
        let _ = tree;
    }

    #[test]
    fn dual_and_single_slot_variants_agree() {
        for dual in [true, false] {
            let c = RnConfig {
                dual_slot: dual,
                ..cfg()
            };
            let tree = RnTree::create(new_pool(1 << 22), c);
            for k in 1..=400u64 {
                tree.insert(k, k * 3).unwrap();
            }
            for k in (1..=400u64).step_by(3) {
                tree.remove(k).unwrap();
            }
            for k in 1..=400u64 {
                let expect = ((k - 1) % 3 != 0).then_some(k * 3);
                assert_eq!(tree.find(k), expect, "dual={dual} key={k}");
            }
            tree.verify_invariants().unwrap();
        }
    }

    #[test]
    fn seq_traversal_mode_matches_tm_mode() {
        let c = RnConfig {
            seq_traversal: true,
            ..cfg()
        };
        let tree = RnTree::create(new_pool(1 << 22), c);
        for k in 1..=500u64 {
            tree.insert(k, k).unwrap();
        }
        for k in 1..=500u64 {
            assert_eq!(tree.find(k), Some(k));
        }
        tree.verify_invariants().unwrap();
    }

    #[test]
    fn hash_policy_pool_survives_crash_and_clean_reopen() {
        let pool = new_pool(1 << 22);
        let c = RnConfig {
            leaf_policy: LeafPolicy::Hash,
            ..cfg()
        };
        let tree = RnTree::create(Arc::clone(&pool), c);
        for k in 1..=300u64 {
            tree.insert(k, k * 3).unwrap();
        }
        drop(tree);
        pool.simulate_crash();
        let tree = RnTree::recover(Arc::clone(&pool), c);
        for k in 1..=300u64 {
            assert_eq!(tree.find(k), Some(k * 3), "key {k} lost in crash");
        }
        tree.verify_invariants().unwrap();
        tree.close();
        drop(tree);
        let tree = RnTree::reopen_clean(pool, c);
        for k in 1..=300u64 {
            assert_eq!(tree.find(k), Some(k * 3));
        }
        tree.verify_invariants().unwrap();
    }

    #[test]
    fn leaf_policy_mismatch_is_a_typed_error() {
        let pool = new_pool(1 << 22);
        let c = RnConfig {
            leaf_policy: LeafPolicy::Hash,
            ..cfg()
        };
        let tree = RnTree::create(Arc::clone(&pool), c);
        tree.insert(1, 1).unwrap();
        drop(tree);
        pool.simulate_crash();
        let err = RnTree::try_recover(pool, cfg()).unwrap_err();
        assert_eq!(
            err,
            ConfigError::LeafPolicyMismatch { pool: 1, cfg: LeafPolicy::Sorted }
        );
    }

    #[test]
    fn varlen_pools_reject_hash_policies() {
        for policy in [LeafPolicy::Hash, LeafPolicy::Adaptive] {
            let c = RnConfig {
                varlen_leaves: true,
                leaf_policy: policy,
                ..cfg()
            };
            let err = RnTree::try_create(new_pool(1 << 22), c).unwrap_err();
            assert_eq!(err, ConfigError::PolicyUnsupported { policy });
        }
    }

    #[test]
    fn eviction_injection_cannot_corrupt_recovery() {
        let pool = new_pool(1 << 22);
        let tree = RnTree::create(Arc::clone(&pool), cfg());
        for k in 1..=300u64 {
            tree.insert(k, k).unwrap();
            if k % 7 == 0 {
                pool.evict_random_lines(8);
            }
        }
        drop(tree);
        pool.simulate_crash();
        let tree = RnTree::recover(pool, cfg());
        for k in 1..=300u64 {
            assert_eq!(tree.find(k), Some(k));
        }
        tree.verify_invariants().unwrap();
    }
}
