//! Typed accessor over a persistent leaf block.
//!
//! `Leaf` is a copyable `(pool, offset)` handle exposing the layout of
//! [`crate::layout`] with the right access discipline per field:
//!
//! * `lockver` — plain atomics + CAS (the spin lock / version protocol of
//!   paper Figure 2; never transactional in RNTree).
//! * `nlogs` — lock-free CAS allocation (paper Algorithm 2).
//! * `plogs`, `next`, `fence` — plain atomic loads/stores under the leaf
//!   lock or during recovery.
//! * slot arrays — transactional words (`htmLeafUpdate`,
//!   `htmLeafCopySlot`, `htmLeafSnapshot` of paper Table 2), plus
//!   sequential access for recovery.
//! * KV log entries — plain atomic word access: each entry has exactly one
//!   writer before it is published via the slot array, and splits that
//!   rewrite entries are fenced off by the version protocol.

use htm::{TmWord, TxResult, Txn};
use nvm::PmemPool;

use crate::layout::{field, kv_off, LEAF_BLOCK, LEAF_CAPACITY};
use crate::slots::SlotBuf;
use crate::version::LeafVersion;

/// Which of the two slot arrays to access (the dual-slot design, §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WhichSlot {
    /// The crash-consistent slot array (flushed to NVM).
    Persistent,
    /// The reader-facing transient copy (semantically DRAM).
    Transient,
}

impl WhichSlot {
    fn base(self) -> u64 {
        match self {
            WhichSlot::Persistent => field::PSLOT,
            WhichSlot::Transient => field::TSLOT,
        }
    }
}

/// A handle to one persistent leaf node.
#[derive(Clone, Copy)]
pub(crate) struct Leaf<'p> {
    pool: &'p PmemPool,
    off: u64,
}

impl<'p> Leaf<'p> {
    pub(crate) fn at(pool: &'p PmemPool, off: u64) -> Self {
        debug_assert!(off.is_multiple_of(64) && off + LEAF_BLOCK <= pool.len());
        Leaf { pool, off }
    }

    pub(crate) fn off(&self) -> u64 {
        self.off
    }

    // ---- lock / version protocol (Figure 2) ------------------------------

    fn lockver(&self) -> &std::sync::atomic::AtomicU64 {
        self.pool.atomic_u64(self.off + field::LOCKVER)
    }

    /// Single-shot lock attempt (no spin): used by the opportunistic morph
    /// trigger, which would rather skip a morph than serialize behind a
    /// writer on the read path.
    pub(crate) fn try_lock(&self) -> bool {
        use std::sync::atomic::Ordering;
        let cur = self.lockver().load(Ordering::Acquire);
        !LeafVersion::locked(cur)
            && self
                .lockver()
                .compare_exchange(cur, cur | LeafVersion::LOCK, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
    }

    /// Acquires the leaf spin lock.
    pub(crate) fn lock(&self) {
        use std::sync::atomic::Ordering;
        loop {
            let cur = self.lockver().load(Ordering::Acquire);
            if !LeafVersion::locked(cur)
                && self
                    .lockver()
                    .compare_exchange_weak(cur, cur | LeafVersion::LOCK, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Releases the leaf lock; bumps the version counter when `bump` (the
    /// single-slot variant bumps on every modification, §5.2.2).
    ///
    /// RMW, not a plain store: concurrent allocators CAS the same word.
    pub(crate) fn unlock(&self, bump: bool) {
        use std::sync::atomic::Ordering;
        self.lockver()
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                debug_assert!(LeafVersion::locked(cur), "unlocking an unlocked leaf");
                let next = cur & !LeafVersion::LOCK;
                Some(if bump { LeafVersion::bump(next) } else { next })
            })
            .expect("fetch_update with Some never fails");
    }

    /// Sets the splitting bit (lock must be held). After this RMW commits,
    /// every allocation attempt observes the bit and fails: the log area
    /// is frozen (see `version.rs` module docs).
    pub(crate) fn set_split(&self) {
        use std::sync::atomic::Ordering;
        let prev = self.lockver().fetch_or(LeafVersion::SPLIT, Ordering::AcqRel);
        debug_assert!(LeafVersion::locked(prev));
    }

    /// Clears the splitting bit without a version bump (split deferred:
    /// in-flight log entries still undecided).
    pub(crate) fn unset_split_nobump(&self) {
        use std::sync::atomic::Ordering;
        let prev = self.lockver().fetch_and(!LeafVersion::SPLIT, Ordering::AcqRel);
        debug_assert!(LeafVersion::splitting(prev));
    }

    /// Clears the splitting bit and bumps the version (split finished).
    pub(crate) fn unset_split_bump(&self) {
        use std::sync::atomic::Ordering;
        self.lockver()
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                debug_assert!(LeafVersion::splitting(cur));
                Some(LeafVersion::bump(cur & !LeafVersion::SPLIT))
            })
            .expect("fetch_update with Some never fails");
    }

    /// `stableVersion` (paper §5.1): spins until the leaf is not splitting
    /// — and, when `wait_lock` (the single-slot variant), until it is not
    /// locked — then returns the version counter.
    pub(crate) fn stable_version(&self, wait_lock: bool) -> u64 {
        use std::sync::atomic::Ordering;
        loop {
            let cur = self.lockver().load(Ordering::Acquire);
            let busy = LeafVersion::splitting(cur) || (wait_lock && LeafVersion::locked(cur));
            if !busy {
                return LeafVersion::version(cur);
            }
            std::hint::spin_loop();
        }
    }

    /// Clears the whole lock/version word (recovery).
    pub(crate) fn reset_lockver(&self) {
        self.lockver().store(0, std::sync::atomic::Ordering::Relaxed);
    }

    // ---- scalar header fields -------------------------------------------

    /// Allocation counter (packed in the lock/version word).
    pub(crate) fn nlogs(&self) -> u64 {
        LeafVersion::nlogs(self.lockver().load(std::sync::atomic::Ordering::Acquire))
    }

    /// Rewrites the allocation counter (lock held with allocations frozen
    /// by the splitting bit, or quiescent recovery).
    pub(crate) fn set_nlogs(&self, v: u64) {
        use std::sync::atomic::Ordering;
        self.lockver()
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(LeafVersion::with_nlogs(cur, v))
            })
            .expect("fetch_update with Some never fails");
    }

    pub(crate) fn plogs(&self) -> u64 {
        self.pool.load_u64(self.off + field::PLOGS)
    }

    pub(crate) fn set_plogs(&self, v: u64) {
        self.pool.store_u64(self.off + field::PLOGS, v);
    }

    pub(crate) fn next(&self) -> u64 {
        self.pool.load_u64_acquire(self.off + field::NEXT)
    }

    pub(crate) fn set_next(&self, v: u64) {
        self.pool.store_u64_release(self.off + field::NEXT, v);
    }

    pub(crate) fn fence(&self) -> u64 {
        self.pool.load_u64_acquire(self.off + field::FENCE)
    }

    pub(crate) fn set_fence(&self, v: u64) {
        self.pool.store_u64_release(self.off + field::FENCE, v);
    }

    /// Per-leaf layout tag (`LAYOUT_SORTED` / `LAYOUT_HASH`). Readers load
    /// it after `stable_version` and revalidate, so a tag mid-morph is
    /// discarded the same way a torn slot snapshot is.
    pub(crate) fn layout(&self) -> u64 {
        self.pool.load_u64_acquire(self.off + field::LAYOUT)
    }

    /// Rewrites the layout tag. Only called inside journaled rewrites
    /// (morph, split, bulk load) with the leaf private or lock+split held,
    /// and made durable by the rewrite's own header/block persist.
    pub(crate) fn set_layout(&self, v: u64) {
        self.pool.store_u64_release(self.off + field::LAYOUT, v);
    }

    // ---- log-entry allocation (Algorithm 2) ------------------------------

    /// Lock-free log-entry allocation: CAS-bumps the `nlogs` field of the
    /// lock/version word; `None` when the log area is exhausted or a
    /// split/compaction is in progress (the caller re-traverses, hoping
    /// the split completes — paper Algorithm 1 line 5).
    ///
    /// Because the counter shares its word with the splitting bit, a
    /// successful CAS proves no split was running at that instant, and a
    /// split that starts afterwards will observe the incremented counter
    /// in its quiescence check.
    pub(crate) fn alloc_entry(&self) -> Option<usize> {
        use std::sync::atomic::Ordering;
        let word = self.lockver();
        let mut cur = word.load(Ordering::Acquire);
        loop {
            if LeafVersion::splitting(cur) {
                return None;
            }
            let n = LeafVersion::nlogs(cur);
            if n >= LEAF_CAPACITY as u64 {
                return None;
            }
            match word.compare_exchange_weak(
                cur,
                cur + LeafVersion::NLOGS_ONE,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(n as usize),
                Err(seen) => cur = seen,
            }
        }
    }

    // ---- KV log entries ---------------------------------------------------

    pub(crate) fn read_key(&self, entry: usize) -> u64 {
        debug_assert!(entry < LEAF_CAPACITY);
        self.pool.load_u64(self.off + kv_off(entry))
    }

    pub(crate) fn read_value(&self, entry: usize) -> u64 {
        debug_assert!(entry < LEAF_CAPACITY);
        self.pool.load_u64(self.off + kv_off(entry) + 8)
    }

    pub(crate) fn write_kv(&self, entry: usize, key: u64, value: u64) {
        debug_assert!(entry < LEAF_CAPACITY);
        self.pool.store_u64(self.off + kv_off(entry), key);
        self.pool.store_u64(self.off + kv_off(entry) + 8, value);
    }

    /// Persistent instruction #1 of a modify operation: flush the KV entry
    /// (one line; issued *outside* the leaf lock).
    pub(crate) fn persist_kv(&self, entry: usize) {
        debug_assert!(!htm::in_transaction(), "flush inside an HTM transaction");
        self.pool.persist(self.off + kv_off(entry), 16);
    }

    /// Asynchronous variant of [`Leaf::persist_kv`]: issues the CLWB and
    /// returns immediately so the caller can overlap the media latency with
    /// the locked phase (§4.2). Must be completed with [`Leaf::drain_kv`]
    /// before the slot line is persisted — KV-before-slot durability order.
    pub(crate) fn flush_kv_async(&self, entry: usize) -> nvm::FlushHandle {
        debug_assert!(!htm::in_transaction(), "flush inside an HTM transaction");
        self.pool.flush_async(self.off + kv_off(entry), 16)
    }

    /// The fence paired with [`Leaf::flush_kv_async`].
    pub(crate) fn drain_kv(&self, h: nvm::FlushHandle) {
        debug_assert!(!htm::in_transaction(), "fence inside an HTM transaction");
        self.pool.drain(h);
    }

    // ---- slot arrays -------------------------------------------------------

    fn slot_word(&self, which: WhichSlot, i: usize) -> &'p TmWord {
        debug_assert!(i < 8);
        TmWord::from_atomic(self.pool.atomic_u64(self.off + which.base() + (i as u64) * 8))
    }

    /// Transactional slot-array read (`htmLeafSnapshot` body).
    pub(crate) fn read_slot_in<'t>(&self, txn: &mut Txn<'t>, which: WhichSlot) -> TxResult<SlotBuf>
    where
        'p: 't,
    {
        let mut words = [0u64; 8];
        for (i, w) in words.iter_mut().enumerate() {
            *w = txn.read(self.slot_word(which, i))?;
        }
        Ok(SlotBuf::from_words(words))
    }

    /// Transactional slot-array write (`htmLeafUpdate` tail).
    pub(crate) fn write_slot_in<'t>(&self, txn: &mut Txn<'t>, which: WhichSlot, slot: &SlotBuf) -> TxResult<()>
    where
        'p: 't,
    {
        for (i, w) in slot.to_words().into_iter().enumerate() {
            txn.write(self.slot_word(which, i), w)?;
        }
        Ok(())
    }

    /// Sequential slot read (recovery / verification / under-lock phases).
    pub(crate) fn read_slot_seq(&self, which: WhichSlot) -> SlotBuf {
        let words = std::array::from_fn(|i| self.slot_word(which, i).load_seq());
        SlotBuf::from_words(words)
    }

    /// Sequential slot write (initialisation / recovery only).
    pub(crate) fn write_slot_seq(&self, which: WhichSlot, slot: &SlotBuf) {
        for (i, w) in slot.to_words().into_iter().enumerate() {
            self.slot_word(which, i).store_seq(w);
        }
    }

    /// Persistent instruction #2 of a modify operation: flush the
    /// persistent slot array line.
    pub(crate) fn persist_pslot(&self) {
        debug_assert!(!htm::in_transaction(), "flush inside an HTM transaction");
        self.pool.persist(self.off + field::PSLOT, 64);
    }

    /// Persists the header line (`next`, `fence`, counters).
    pub(crate) fn persist_header(&self) {
        self.pool.persist(self.off + field::LOCKVER, 64);
    }

    /// Persists the entire block (split/compaction tail).
    pub(crate) fn persist_all(&self) {
        self.pool.persist(self.off, LEAF_BLOCK);
    }

    // ---- prefetch ----------------------------------------------------------

    /// Prefetch hints for the lines an operation on this leaf is about to
    /// touch: the header (lock/version word), both slot-array lines, and —
    /// when `entries > 0` — the KV lines holding log entries `0..entries`.
    /// Issued as early as the addresses are known so the misses overlap the
    /// persist spin / lock acquisition instead of serializing behind them.
    /// Semantically free: hints only.
    pub(crate) fn prefetch_hot(&self, entries: usize) {
        self.pool.prefetch(self.off + field::LOCKVER, 8);
        self.pool.prefetch(self.off + field::PSLOT, 128);
        if entries > 0 {
            let end = kv_off(entries.min(LEAF_CAPACITY) - 1) + 16;
            self.pool.prefetch(self.off + field::KV, end - field::KV);
        }
    }

    // ---- search ------------------------------------------------------------

    /// Binary search for `key` among the live entries of `slot`.
    /// `Ok(pos)` = found at sorted position `pos`; `Err(pos)` = not found,
    /// would insert at `pos`. Key loads are plain atomic reads: entries
    /// referenced by a slot array are immutable until a split, and every
    /// caller revalidates with the version protocol.
    pub(crate) fn search(&self, slot: &SlotBuf, key: u64) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, slot.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = self.read_key(slot.entry(mid));
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    // ---- initialisation ------------------------------------------------------

    /// Formats this block as an empty leaf and persists it. The layout tag
    /// is explicitly cleared to `LAYOUT_SORTED`: blocks can be recycled and
    /// must not inherit a stale hash tag.
    pub(crate) fn init_empty(&self, fence: u64, next: u64) {
        self.reset_lockver();
        self.set_plogs(0);
        self.set_next(next);
        self.set_fence(fence);
        self.set_layout(crate::layout::LAYOUT_SORTED);
        self.write_slot_seq(WhichSlot::Persistent, &SlotBuf::new());
        self.write_slot_seq(WhichSlot::Transient, &SlotBuf::new());
        self.pool.persist(self.off, field::TSLOT); // header + pslot lines
    }

    /// Formats this block with `pairs` stored densely in key order under
    /// the given layout tag (`LAYOUT_SORTED` → identity slot array,
    /// `LAYOUT_HASH` → rebuilt hash directory) and persists the whole node.
    /// Used for the right half of a split while the node is still private
    /// to the splitting thread.
    pub(crate) fn init_from_pairs(&self, pairs: &[(u64, u64)], fence: u64, next: u64, layout: u64) {
        debug_assert!(pairs.len() <= crate::layout::MAX_LIVE);
        self.reset_lockver();
        for (i, &(k, v)) in pairs.iter().enumerate() {
            self.write_kv(i, k, v);
        }
        let slot = if layout == crate::layout::LAYOUT_HASH {
            let fps: Vec<u8> = pairs.iter().map(|&(k, _)| crate::fingerprint::fp_hash(k)).collect();
            crate::hashleaf::HashDir::build(&fps).to_slot()
        } else {
            SlotBuf::identity(pairs.len())
        };
        self.write_slot_seq(WhichSlot::Persistent, &slot);
        self.write_slot_seq(WhichSlot::Transient, &slot);
        self.set_nlogs(pairs.len() as u64);
        self.set_plogs(pairs.len() as u64);
        debug_assert_eq!(self.nlogs(), pairs.len() as u64);
        self.set_next(next);
        self.set_fence(fence);
        self.set_layout(layout);
        self.persist_all();
    }

    /// Collects the live `(key, value)` pairs in key order (callers hold
    /// the lock or run during recovery).
    pub(crate) fn collect_pairs(&self, slot: &SlotBuf) -> Vec<(u64, u64)> {
        slot.iter().map(|e| (self.read_key(e), self.read_value(e))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::PmemConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PmemConfig::for_testing(1 << 16))
    }

    #[test]
    fn lock_protocol_roundtrip() {
        let p = pool();
        let l = Leaf::at(&p, 1024);
        l.init_empty(u64::MAX, 0);
        l.lock();
        assert!(LeafVersion::locked(p.load_u64(1024)));
        l.unlock(true);
        assert_eq!(LeafVersion::version(p.load_u64(1024)), 1);
        assert_eq!(l.stable_version(true), 1);
    }

    #[test]
    fn split_bit_blocks_stable_version_until_cleared() {
        let p = pool();
        let l = Leaf::at(&p, 1024);
        l.init_empty(u64::MAX, 0);
        l.lock();
        l.set_split();
        // stable_version would spin; just verify the raw state.
        assert!(LeafVersion::splitting(p.load_u64(1024)));
        l.unset_split_bump();
        l.unlock(false);
        assert_eq!(l.stable_version(false), 1);
    }

    #[test]
    fn alloc_entry_is_exhaustible_and_unique() {
        let p = pool();
        let l = Leaf::at(&p, 1024);
        l.init_empty(u64::MAX, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..LEAF_CAPACITY {
            assert!(seen.insert(l.alloc_entry().unwrap()));
        }
        assert_eq!(l.alloc_entry(), None);
    }

    #[test]
    fn kv_roundtrip_and_persist() {
        let p = pool();
        let l = Leaf::at(&p, 1024);
        l.init_empty(u64::MAX, 0);
        l.write_kv(3, 77, 770);
        l.persist_kv(3);
        p.simulate_crash();
        assert_eq!(l.read_key(3), 77);
        assert_eq!(l.read_value(3), 770);
    }

    #[test]
    fn slot_seq_roundtrip_and_search() {
        let p = pool();
        let l = Leaf::at(&p, 1024);
        l.init_empty(u64::MAX, 0);
        // keys 10,20,30 at entries 2,0,1
        l.write_kv(2, 10, 1);
        l.write_kv(0, 20, 2);
        l.write_kv(1, 30, 3);
        let mut s = SlotBuf::new();
        s.insert_at(0, 2);
        s.insert_at(1, 0);
        s.insert_at(2, 1);
        l.write_slot_seq(WhichSlot::Persistent, &s);
        let r = l.read_slot_seq(WhichSlot::Persistent);
        assert_eq!(r, s);
        assert_eq!(l.search(&r, 20), Ok(1));
        assert_eq!(l.search(&r, 15), Err(1));
        assert_eq!(l.search(&r, 35), Err(3));
        assert_eq!(l.search(&r, 5), Err(0));
        assert_eq!(l.collect_pairs(&r), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn transactional_slot_update_is_atomic_and_persistable() {
        let p = pool();
        let l = Leaf::at(&p, 1024);
        l.init_empty(u64::MAX, 0);
        let domain = htm::HtmDomain::new();
        domain.atomic(|txn| {
            let mut s = l.read_slot_in(txn, WhichSlot::Persistent)?;
            s.insert_at(0, 7);
            l.write_slot_in(txn, WhichSlot::Persistent, &s)
        });
        // Committed but not flushed: a crash loses it.
        p.simulate_crash();
        assert_eq!(l.read_slot_seq(WhichSlot::Persistent).len(), 0);
        // Again, with the flush.
        domain.atomic(|txn| {
            let mut s = l.read_slot_in(txn, WhichSlot::Persistent)?;
            s.insert_at(0, 7);
            l.write_slot_in(txn, WhichSlot::Persistent, &s)
        });
        l.persist_pslot();
        p.simulate_crash();
        assert_eq!(l.read_slot_seq(WhichSlot::Persistent).len(), 1);
    }

    #[test]
    fn init_from_pairs_builds_sorted_identity_leaf() {
        let p = pool();
        let l = Leaf::at(&p, 2048);
        let pairs: Vec<(u64, u64)> = (0..10).map(|i| (i * 5 + 5, i)).collect();
        l.init_from_pairs(&pairs, 999, 4096, crate::layout::LAYOUT_SORTED);
        let s = l.read_slot_seq(WhichSlot::Persistent);
        assert_eq!(s.len(), 10);
        assert_eq!(l.collect_pairs(&s), pairs);
        assert_eq!(l.fence(), 999);
        assert_eq!(l.next(), 4096);
        assert_eq!(l.nlogs(), 10);
        // Fully durable.
        p.simulate_crash();
        let s = l.read_slot_seq(WhichSlot::Persistent);
        assert_eq!(l.collect_pairs(&s), pairs);
    }

    #[test]
    fn init_from_pairs_hash_layout_builds_directory() {
        use crate::hashleaf::HashDir;
        let p = pool();
        let l = Leaf::at(&p, 2048);
        let pairs: Vec<(u64, u64)> = (0..10).map(|i| (i * 5 + 5, i)).collect();
        l.init_from_pairs(&pairs, 999, 4096, crate::layout::LAYOUT_HASH);
        assert_eq!(l.layout(), crate::layout::LAYOUT_HASH);
        let d = HashDir::from_slot(l.read_slot_seq(WhichSlot::Persistent));
        assert_eq!(d.len(), 10);
        for (e, &(k, v)) in pairs.iter().enumerate() {
            let mut steps = 0;
            let hit = d
                .find(crate::fingerprint::fp_hash(k), |c| l.read_key(c) == k, &mut steps)
                .expect("key present");
            assert_eq!(hit.entry, e);
            assert_eq!(l.read_value(hit.entry), v);
        }
        // Tag survives a crash (it sits in the persisted header line).
        p.simulate_crash();
        assert_eq!(l.layout(), crate::layout::LAYOUT_HASH);
    }
}
