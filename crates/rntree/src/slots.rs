//! [`SlotBuf`]: an in-register copy of the 64-byte slot array.
//!
//! Byte 0 holds the live-entry count; bytes `1..=count` hold log-entry
//! indices in ascending key order (paper Figure 1). A `SlotBuf` is read
//! from / written to the leaf's slot-array cache line as eight
//! transactional words; all the sorted-order editing happens on this plain
//! copy, keeping HTM read/write sets minimal.

use crate::layout::MAX_LIVE;

/// A decoded slot array: count + ordered entry indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBuf(pub [u8; 64]);

impl Default for SlotBuf {
    fn default() -> Self {
        SlotBuf([0u8; 64])
    }
}

impl SlotBuf {
    /// Empty slot array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes from eight 64-bit words (little-endian), as read from the
    /// slot-array cache line.
    pub fn from_words(words: [u64; 8]) -> Self {
        let mut b = [0u8; 64];
        for (i, w) in words.iter().enumerate() {
            b[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        SlotBuf(b)
    }

    /// Encodes into eight 64-bit words for transactional write-back.
    pub fn to_words(&self) -> [u64; 8] {
        std::array::from_fn(|i| u64::from_le_bytes(self.0[i * 8..(i + 1) * 8].try_into().unwrap()))
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.0[0] as usize
    }

    /// True when no entry is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Log-entry index stored at sorted position `pos`.
    #[inline]
    pub fn entry(&self, pos: usize) -> usize {
        debug_assert!(pos < self.len());
        self.0[1 + pos] as usize
    }

    /// Overwrites the log-entry index at sorted position `pos` (update
    /// in place: the key keeps its position, the data moves to a new log).
    #[inline]
    pub fn set_entry(&mut self, pos: usize, entry: usize) {
        debug_assert!(pos < self.len() && entry < crate::layout::LEAF_CAPACITY);
        self.0[1 + pos] = entry as u8;
    }

    /// Inserts log-entry index `entry` at sorted position `pos`, shifting
    /// later positions right.
    ///
    /// # Panics
    /// Panics if the slot array is full (callers split before that).
    pub fn insert_at(&mut self, pos: usize, entry: usize) {
        let n = self.len();
        assert!(n < MAX_LIVE, "slot array overflow");
        assert!(pos <= n && entry < crate::layout::LEAF_CAPACITY);
        self.0.copy_within(1 + pos..1 + n, 1 + pos + 1);
        self.0[1 + pos] = entry as u8;
        self.0[0] = (n + 1) as u8;
    }

    /// Removes the entry at sorted position `pos`, shifting later positions
    /// left.
    pub fn remove_at(&mut self, pos: usize) {
        let n = self.len();
        assert!(pos < n);
        self.0.copy_within(1 + pos + 1..1 + n, 1 + pos);
        self.0[0] = (n - 1) as u8;
    }

    /// Iterates the live log-entry indices in key order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(move |p| self.entry(p))
    }

    /// Builds the identity slot array `0, 1, …, n-1` (used after
    /// split/compaction rewrites entries densely in key order).
    pub fn identity(n: usize) -> Self {
        assert!(n <= MAX_LIVE);
        let mut s = SlotBuf::new();
        s.0[0] = n as u8;
        for i in 0..n {
            s.0[1 + i] = i as u8;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_roundtrip() {
        let mut s = SlotBuf::new();
        s.insert_at(0, 5);
        s.insert_at(1, 9);
        s.insert_at(0, 2);
        let t = SlotBuf::from_words(s.to_words());
        assert_eq!(s, t);
    }

    #[test]
    fn insert_keeps_order_and_count() {
        let mut s = SlotBuf::new();
        s.insert_at(0, 10);
        s.insert_at(0, 20);
        s.insert_at(2, 30);
        s.insert_at(1, 40);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![20, 40, 10, 30]);
    }

    #[test]
    fn remove_shifts_left() {
        let mut s = SlotBuf::identity(5);
        s.remove_at(1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 3, 4]);
        s.remove_at(3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 3]);
        s.remove_at(0);
        s.remove_at(0);
        s.remove_at(0);
        assert!(s.is_empty());
    }

    #[test]
    fn set_entry_replaces_in_place() {
        let mut s = SlotBuf::identity(3);
        s.set_entry(1, 9);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 9, 2]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn identity_shape() {
        let s = SlotBuf::identity(MAX_LIVE);
        assert_eq!(s.len(), MAX_LIVE);
        assert_eq!(s.entry(MAX_LIVE - 1), MAX_LIVE - 1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut s = SlotBuf::identity(MAX_LIVE);
        s.insert_at(0, 63);
    }

    #[test]
    fn full_cycle_insert_all_positions() {
        // Insert 63 entries at alternating front/back positions and verify
        // count and contents survive a words roundtrip.
        let mut s = SlotBuf::new();
        for i in 0..MAX_LIVE {
            let pos = if i % 2 == 0 { 0 } else { s.len() };
            s.insert_at(pos, i);
        }
        assert_eq!(s.len(), MAX_LIVE);
        let t = SlotBuf::from_words(s.to_words());
        assert_eq!(t.iter().count(), MAX_LIVE);
    }
}
