//! DRAM-side key fingerprints for the transient leaf view.
//!
//! One byte per KV log entry, FPTree-style (Oukid et al., SIGMOD'16): a
//! point lookup probes the fingerprint array first and touches a key only
//! on a fingerprint hit, replacing the binary search's ~log₂(63) dependent,
//! branch-mispredicting NVM key reads with a short predictable scan over
//! one or two DRAM cache lines plus (almost always) a single key compare.
//!
//! The table is part of the *transient* leaf view, like the transient slot
//! array of §4.4: it lives outside the pool, the persistence layout is
//! unchanged, and recovery rebuilds it from the persistent slot arrays. The
//! Table 1 persist counts (insert/update 2, remove 1) are untouched —
//! fingerprint writes are plain DRAM stores.
//!
//! Concurrency: `fps[e]` is written by the single owner of log entry `e`
//! *before* the entry is published through the slot-array HTM commit (a
//! release), and readers load it only after snapshotting the slot array (an
//! acquire), so a published entry's fingerprint is always visible. Entry
//! reuse (split/compaction) rewrites fingerprints under the leaf lock with
//! the splitting bit set; the reader version protocol already discards any
//! snapshot that overlaps such a phase. A torn read is therefore impossible
//! for a validated snapshot, and a *stale* fingerprint can only be probed
//! for an unreferenced entry, which no validated slot array points at.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::layout::LEAF_CAPACITY;
use crate::leaf::Leaf;
use crate::slots::SlotBuf;

/// One-byte key fingerprint: top byte of a Fibonacci hash, so nearby keys
/// still spread over the full byte range.
#[inline]
pub(crate) fn fp_hash(key: u64) -> u8 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
}

/// Byte-string fingerprint (variable-length keys): FNV-1a over the bytes,
/// then the same Fibonacci fold down to the top byte. Deliberately *not*
/// `fp_hash(key_head(k))`: string workloads share 4-byte heads heavily,
/// and the fingerprint's whole job is to disambiguate beyond the head.
#[inline]
pub(crate) fn fp_hash_bytes(key: &[u8]) -> u8 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
}

/// Per-tree fingerprint table: `LEAF_CAPACITY` bytes for every leaf block
/// in the pool's leaf region, indexed by block offset.
pub(crate) struct FpTable {
    /// First byte of the leaf region (block offsets are relative to this).
    base: u64,
    /// Leaf block stride (`LEAF_BLOCK` or `VAR_LEAF_BLOCK`).
    block: u64,
    bytes: Box<[AtomicU8]>,
}

impl FpTable {
    /// Table covering `block`-sized leaf blocks in `[base, pool_len)`. With
    /// `enabled` false an empty table is built (no memory, no probes).
    pub(crate) fn new(base: u64, pool_len: u64, block: u64, enabled: bool) -> FpTable {
        let blocks = if enabled {
            ((pool_len - base) / block) as usize
        } else {
            0
        };
        let mut v = Vec::with_capacity(blocks * LEAF_CAPACITY);
        v.resize_with(blocks * LEAF_CAPACITY, || AtomicU8::new(0));
        FpTable {
            base,
            block,
            bytes: v.into_boxed_slice(),
        }
    }

    #[inline]
    fn idx(&self, leaf_off: u64, entry: usize) -> usize {
        debug_assert!(leaf_off >= self.base && entry < LEAF_CAPACITY);
        debug_assert_eq!((leaf_off - self.base) % self.block, 0);
        ((leaf_off - self.base) / self.block) as usize * LEAF_CAPACITY + entry
    }

    /// Records the fingerprint of the key now stored in `entry`. Called by
    /// the entry's owner before the entry is published via the slot array.
    #[inline]
    pub(crate) fn set(&self, leaf_off: u64, entry: usize, fp: u8) {
        // Ordering: Relaxed. Publication order is carried by the slot-array
        // commit (Release) that follows; see the module docs.
        self.bytes[self.idx(leaf_off, entry)].store(fp, Ordering::Relaxed);
    }

    /// Point lookup: sorted position of the live entry holding `key`, or
    /// `None`. Probes fingerprints first; keys are only read on a hit
    /// (fingerprint equality has no false negatives for a validated
    /// snapshot, so a miss needs zero key reads).
    #[inline]
    pub(crate) fn probe(&self, leaf: &Leaf<'_>, slot: &SlotBuf, key: u64) -> Option<usize> {
        self.probe_with(leaf.off(), slot, fp_hash(key), |e| leaf.read_key(e) == key)
    }

    /// The probe loop with an arbitrary key-equality check on the entry
    /// index — the variable-length leaf confirms hits by reconstructing
    /// the stored key from its heap instead of one `read_key` word.
    #[inline]
    pub(crate) fn probe_with(
        &self,
        leaf_off: u64,
        slot: &SlotBuf,
        want: u8,
        key_eq: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let base = self.idx(leaf_off, 0);
        let fps: &[AtomicU8; LEAF_CAPACITY] = self.bytes[base..base + LEAF_CAPACITY]
            .try_into()
            .expect("leaf fingerprint stripe");
        for pos in 0..slot.len() {
            let e = slot.entry(pos);
            // Masked index: entries are < LEAF_CAPACITY by leaf invariant,
            // and the fixed-size array + mask lets the scan run without a
            // bounds-check branch per probe.
            if fps[e & (LEAF_CAPACITY - 1)].load(Ordering::Relaxed) == want && key_eq(e) {
                return Some(pos);
            }
        }
        None
    }

    /// Single-entry filter for the hash-leaf directory probe: `true` when
    /// `entry`'s recorded fingerprint matches `want` (or the table is
    /// disabled, in which case the caller falls through to a key compare).
    #[inline]
    pub(crate) fn check(&self, leaf_off: u64, entry: usize, want: u8) -> bool {
        if self.bytes.is_empty() {
            return true;
        }
        self.bytes[self.idx(leaf_off, entry)].load(Ordering::Relaxed) == want
    }

    /// Prefetch hint for this leaf's fingerprint stripe (one cache line).
    /// The table is sized in whole-stripe units, so the stripe is
    /// contiguous; at bench scale it is too large to stay cached, making
    /// the probe's first byte load a miss worth overlapping.
    #[inline]
    pub(crate) fn prefetch_stripe(&self, leaf_off: u64) {
        if self.bytes.is_empty() {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = self.bytes.as_ptr().add(self.idx(leaf_off, 0)) as *const i8;
            _mm_prefetch::<_MM_HINT_T0>(p);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = leaf_off;
    }

    /// True when the table was built disabled.
    pub(crate) fn is_disabled(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Re-derives the fingerprints of every entry referenced by `slot`
    /// (recovery path: the table is transient and starts zeroed).
    pub(crate) fn rebuild_leaf(&self, leaf: &Leaf<'_>, slot: &SlotBuf) {
        for e in slot.iter() {
            self.set(leaf.off(), e, fp_hash(leaf.read_key(e)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LEAF_BLOCK;
    use nvm::{PmemConfig, PmemPool};

    #[test]
    fn fp_hash_spreads_dense_keys() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..256u64 {
            seen.insert(fp_hash(k));
        }
        // A good byte hash of 256 consecutive keys hits most buckets.
        assert!(seen.len() > 150, "only {} distinct fingerprints", seen.len());
    }

    #[test]
    fn probe_finds_exactly_the_live_position() {
        let pool = PmemPool::new(PmemConfig::for_testing(1 << 16));
        let leaf = Leaf::at(&pool, 0);
        leaf.init_empty(u64::MAX, 0);
        // keys 10,20,30 at entries 2,0,1 (same shape as the leaf tests).
        leaf.write_kv(2, 10, 1);
        leaf.write_kv(0, 20, 2);
        leaf.write_kv(1, 30, 3);
        let mut slot = SlotBuf::new();
        slot.insert_at(0, 2);
        slot.insert_at(1, 0);
        slot.insert_at(2, 1);
        let t = FpTable::new(0, 1 << 16, LEAF_BLOCK, true);
        t.rebuild_leaf(&leaf, &slot);
        assert_eq!(t.probe(&leaf, &slot, 10), Some(0));
        assert_eq!(t.probe(&leaf, &slot, 20), Some(1));
        assert_eq!(t.probe(&leaf, &slot, 30), Some(2));
        assert_eq!(t.probe(&leaf, &slot, 15), None);
        assert_eq!(t.probe(&leaf, &slot, 0), None);
    }

    #[test]
    fn probe_survives_fingerprint_collisions() {
        // Force every fingerprint byte to collide: probe must fall through
        // to key compares and still answer exactly.
        let pool = PmemPool::new(PmemConfig::for_testing(1 << 16));
        let leaf = Leaf::at(&pool, 0);
        leaf.init_empty(u64::MAX, 0);
        let mut slot = SlotBuf::new();
        for (i, k) in [5u64, 7, 9].iter().enumerate() {
            leaf.write_kv(i, *k, k * 10);
            slot.insert_at(i, i);
        }
        let t = FpTable::new(0, 1 << 16, LEAF_BLOCK, true);
        let clash = fp_hash(7);
        for e in 0..3 {
            t.set(0, e, clash);
        }
        assert_eq!(t.probe(&leaf, &slot, 7), Some(1));
        assert_eq!(t.probe(&leaf, &slot, 6), None);
    }

    #[test]
    fn disabled_table_is_empty() {
        let t = FpTable::new(0, 1 << 20, LEAF_BLOCK, false);
        assert!(t.is_disabled());
    }

    #[test]
    fn fp_hash_bytes_disambiguates_shared_heads() {
        // Keys sharing a 4-byte head must still spread over the byte
        // range — the head is exactly what the fingerprint must beat.
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            seen.insert(fp_hash_bytes(format!("user00000000{i:03}").as_bytes()));
        }
        assert!(seen.len() > 150, "only {} distinct fingerprints", seen.len());
        assert_eq!(fp_hash_bytes(b""), fp_hash_bytes(b""));
        assert_ne!(fp_hash_bytes(b"a"), fp_hash_bytes(b"b"));
    }
}
