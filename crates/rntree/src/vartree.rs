//! Variable-length-key operation paths (`RnConfig::varlen_leaves`).
//!
//! Every function here mirrors its u64 counterpart in `tree.rs` — same
//! protocol, same persist schedule, same split/quiescence discipline —
//! over the [`crate::varleaf::VarLeaf`] layout:
//!
//! * Persistent instruction #1 of a modify is **one coalesced
//!   [`nvm::PmemPool::persist_many`]** covering the freshly written heap
//!   record and its directory word (one fence, lines deduplicated), where
//!   the u64 path flushes its 16-byte KV entry. Persistent instruction #2
//!   is the slot-array line, unchanged. The Table 1 persist counts per
//!   operation are identical to the u64 layout.
//! * The var path always uses the synchronous coalesced flush —
//!   `RnConfig::async_flush` is a u64-path knob; a record can span
//!   several lines, and `persist_many`'s single fence is already the
//!   batched equivalent.
//! * The prefix/fence metadata a writer needs is read *after* its log
//!   entry allocation succeeds: an undecided entry blocks split/compaction
//!   completion (the `nlogs == plogs` quiescence guard), and only those
//!   rewrite the metadata, so what the writer reads cannot change until
//!   its entry is decided. An out-of-range key is caught by the fence
//!   check under the lock and wastes the entry, exactly like the u64
//!   path.
//! * Splits trigger on log-area consumption **or heap pressure**: when
//!   the free heap drops below one worst-case record
//!   ([`crate::layout::varlen::VAR_SPLIT_RESERVE`]), the next decided
//!   entry splits the leaf even though the slot array still has room. A
//!   failed heap reservation always ends in a decided (wasted) entry, so
//!   the trigger cannot starve.

use std::sync::atomic::Ordering;

use index_common::{key_head, KeyBuf, OpError, Value, MAX_KEY_LEN};
use obs::{EventKind, Phase};

use crate::fingerprint::fp_hash_bytes;
use crate::layout::varlen::{
    dir_off, round8, vfield, VAR_LEAF_CAPACITY, VAR_MAX_LIVE, VAR_SPLIT_RESERVE,
};
use crate::leaf::WhichSlot;
use crate::slots::SlotBuf;
use crate::tree::{Decision, RnTree, WriteMode};
use crate::varleaf::VarLeaf;

/// A `KeyBuf` strictly greater than every storable key: recovery's route
/// for the rightmost (+∞-fenced) leaf. Every split separator is a real
/// stored key, hence `<` this by at least its final byte.
pub(crate) const KEY_TOP: [u8; MAX_KEY_LEN] = [0xFF; MAX_KEY_LEN];

impl RnTree {
    fn vtraverse(&self, key: &[u8]) -> u64 {
        if self.cfg.seq_traversal {
            self.index.traverse_seq_k(key)
        } else {
            self.index.traverse_cached_k(key)
        }
    }

    /// `htmLeafSnapshot` over a var leaf (same dual-slot selection).
    fn vsnapshot_slot(&self, leaf: &VarLeaf<'_>, kind: WhichSlot) -> SlotBuf {
        if self.cfg.seq_traversal {
            leaf.read_slot_seq(kind)
        } else {
            self.index.domain().atomic(|txn| leaf.read_slot_in(txn, kind))
        }
    }

    /// Fingerprint-guided point lookup over a var leaf: probe bytes first,
    /// reconstructed-key confirmation only on fingerprint hits.
    fn vprobe(&self, leaf: &VarLeaf<'_>, slot: &SlotBuf, key: &[u8]) -> Option<usize> {
        let mut pbuf = [0u8; MAX_KEY_LEN];
        let p = leaf.prefix_into(&mut pbuf);
        let qhead = key_head(key);
        self.fps.probe_with(leaf.off(), slot, fp_hash_bytes(key), |e| {
            leaf.key_matches(key, qhead, &pbuf[..p], e, &self.leaf_head_ties)
        })
    }

    fn vlookup_pos(&self, leaf: &VarLeaf<'_>, slot: &SlotBuf, key: &[u8]) -> Option<usize> {
        if self.cfg.fingerprints {
            self.vprobe(leaf, slot, key)
        } else {
            leaf.search_k(slot, key, &self.leaf_head_ties).ok()
        }
    }

    // ---------------------------------------------------------------- modify

    pub(crate) fn vmodify(&self, key: &[u8], value: Value, mode: WriteMode) -> Result<(), OpError> {
        if key.len() > MAX_KEY_LEN {
            return Err(OpError::UnsupportedKey);
        }
        let mut starved = 0u32;
        loop {
            let mut clock = self.timers.clock();
            let leaf = VarLeaf::at(&self.pool, self.vtraverse(key));
            clock.lap(&self.timers, Phase::Descent);

            let Some(entry) = leaf.alloc_entry() else {
                // Log area exhausted or a split is running: help it along.
                self.vhelp_split(leaf);
                if self.starved(&mut starved) {
                    return Err(OpError::PoolExhausted);
                }
                self.note_retry();
                continue;
            };

            if self.cfg.leaf_prefetch {
                leaf.prefetch_hot();
                self.fps.prefetch_stripe(leaf.off());
            }

            // The allocated (undecided) entry freezes the fence metadata —
            // see module docs — so this prefix read is stable until we
            // decide the entry. If a pre-allocation split moved `key` out
            // of range, the fence check under the lock wastes the entry
            // before the suffix below could ever be published.
            let mut pbuf = [0u8; MAX_KEY_LEN];
            let p = leaf.prefix_into(&mut pbuf);
            let suffix = key.get(p..).unwrap_or(&[]);
            let rec_len = 8 + round8(suffix.len() as u64);

            let Some(rec_abs) = leaf.reserve_heap(rec_len) else {
                // Heap full: decide the entry wasted under the lock. The
                // failed reservation implies free heap < one worst-case
                // record, so the decision triggers the split.
                leaf.lock();
                self.vdecide_and_maybe_split(leaf);
                leaf.unlock(false);
                self.wasted.fetch_add(1, Ordering::Relaxed);
                if self.starved(&mut starved) {
                    return Err(OpError::PoolExhausted);
                }
                self.note_retry();
                continue;
            };

            // Write record + directory word with no lock held, then make
            // both durable with ONE coalesced flush: persistent
            // instruction #1 (the u64 path's KV flush).
            leaf.write_record(rec_abs, value, suffix);
            leaf.set_dir_word(entry, key_head(key), rec_abs - leaf.off(), suffix.len());
            if self.cfg.fingerprints {
                self.fps.set(leaf.off(), entry, fp_hash_bytes(key));
            }
            clock.mark();
            self.pool
                .persist_many(&[(rec_abs, rec_len), (leaf.off() + dir_off(entry), 8)]);
            clock.lap(&self.timers, Phase::LogFlush);

            let mut cs = clock.fork();
            leaf.lock();

            // Coverage check (split between traversal and lock).
            if leaf.key_above_fence(key) {
                self.vdecide_and_maybe_split(leaf);
                leaf.unlock(false);
                self.wasted.fetch_add(1, Ordering::Relaxed);
                self.note_retry();
                continue;
            }

            // htmLeafUpdate: slot-array edit inside a transaction (plain
            // stores in single-threaded mode, as in the u64 path).
            let decision = if self.cfg.seq_traversal {
                let mut slot = leaf.read_slot_seq(WhichSlot::Persistent);
                match self.vedit_slot(&leaf, &mut slot, key, entry, mode) {
                    Decision::Applied(s) => {
                        leaf.write_slot_seq(WhichSlot::Persistent, &s);
                        Decision::Applied(s)
                    }
                    other => other,
                }
            } else {
                self.index.domain().atomic(|txn| {
                    let mut slot = leaf.read_slot_in(txn, WhichSlot::Persistent)?;
                    match self.vedit_slot(&leaf, &mut slot, key, entry, mode) {
                        Decision::Applied(s) => {
                            leaf.write_slot_in(txn, WhichSlot::Persistent, &s)?;
                            Ok(Decision::Applied(s))
                        }
                        other => Ok(other),
                    }
                })
            };

            let applied = if let Decision::Applied(slot) = &decision {
                // Persistent instruction #2: the slot line.
                clock.mark();
                leaf.persist_pslot();
                clock.lap(&self.timers, Phase::SlotPersist);
                if self.cfg.dual_slot {
                    let slot = *slot;
                    if self.cfg.seq_traversal {
                        leaf.write_slot_seq(WhichSlot::Transient, &slot);
                    } else {
                        self.index
                            .domain()
                            .atomic(|txn| leaf.write_slot_in(txn, WhichSlot::Transient, &slot));
                    }
                }
                true
            } else {
                self.wasted.fetch_add(1, Ordering::Relaxed);
                false
            };

            let did_split = self.vdecide_and_maybe_split(leaf);
            leaf.unlock(!self.cfg.dual_slot && applied && !did_split);
            cs.lap(&self.timers, Phase::LeafCs);

            match decision {
                Decision::Applied(_) => return Ok(()),
                Decision::Exists => return Err(OpError::AlreadyExists),
                Decision::Missing => return Err(OpError::NotFound),
                Decision::Overfull => {
                    if self.starved(&mut starved) {
                        return Err(OpError::PoolExhausted);
                    }
                    self.note_retry();
                    continue;
                }
            }
        }
    }

    /// The var-leaf slot edit: fingerprint probe for non-strict-insert
    /// modes, head-first binary search otherwise (its duplicate check
    /// rides along for free, exactly like the u64 `edit_slot`).
    fn vedit_slot(
        &self,
        leaf: &VarLeaf<'_>,
        slot: &mut SlotBuf,
        key: &[u8],
        entry: usize,
        mode: WriteMode,
    ) -> Decision {
        let found: Result<usize, Option<usize>> =
            if self.cfg.fingerprints && mode != WriteMode::InsertStrict {
                self.vprobe(leaf, slot, key).ok_or(None)
            } else {
                leaf.search_k(slot, key, &self.leaf_head_ties).map_err(Some)
            };
        match found {
            Ok(pos) => {
                if mode == WriteMode::InsertStrict {
                    return Decision::Exists;
                }
                slot.set_entry(pos, entry);
            }
            Err(ins_pos) => {
                if mode == WriteMode::UpdateStrict {
                    return Decision::Missing;
                }
                if slot.len() == VAR_MAX_LIVE {
                    return Decision::Overfull;
                }
                let pos = ins_pos.unwrap_or_else(|| {
                    match leaf.search_k(slot, key, &self.leaf_head_ties) {
                        Ok(p) | Err(p) => p,
                    }
                });
                slot.insert_at(pos, entry);
            }
        }
        Decision::Applied(*slot)
    }

    /// Counts one decided log entry and runs the (possibly deferred) split
    /// when the log area is consumed — or the heap is nearly full — and
    /// the log is quiescent. Lock must be held. Returns true if a
    /// split/compaction ran.
    fn vdecide_and_maybe_split(&self, leaf: VarLeaf<'_>) -> bool {
        let plogs = leaf.plogs() + 1;
        leaf.set_plogs(plogs);
        if plogs < (VAR_LEAF_CAPACITY - 1) as u64 && leaf.heap_free() >= VAR_SPLIT_RESERVE {
            return false;
        }
        leaf.set_split();
        if leaf.nlogs() == plogs {
            self.vsplit_or_compact(leaf);
            true
        } else {
            leaf.unset_split_nobump();
            false
        }
    }

    /// Allocation-failure path: split if the leaf is consumed (log area
    /// *or* heap) and quiescent; otherwise back off.
    fn vhelp_split(&self, leaf: VarLeaf<'_>) {
        leaf.lock();
        let nlogs = leaf.nlogs();
        let consumed = nlogs >= VAR_LEAF_CAPACITY as u64 || leaf.heap_free() < VAR_SPLIT_RESERVE;
        if consumed && nlogs == leaf.plogs() {
            leaf.set_split();
            if leaf.nlogs() == leaf.plogs() {
                self.vsplit_or_compact(leaf);
            } else {
                leaf.unset_split_nobump();
            }
        }
        leaf.unlock(false);
        std::thread::yield_now();
    }

    // ---------------------------------------------------------------- split

    /// Splits (or compacts) a var leaf. Same contract as the u64
    /// `split_or_compact`: lock held, splitting bit set, `nlogs == plogs`.
    ///
    /// The journaled image is the whole 4096-byte block, so heap, fences
    /// and directory roll back together. Post-split fit is guaranteed by
    /// construction: each half holds at most 32 records of at most
    /// [`crate::layout::varlen::VAR_REC_MAX`] bytes (2304 B) plus at most
    /// [`crate::layout::varlen::VAR_FENCE_RESERVE`] fence bytes — under
    /// the 3392-byte heap. Prefixes only grow across a split (each half's
    /// fence pair brackets a subrange), so re-truncated suffixes never
    /// grow either.
    fn vsplit_or_compact(&self, leaf: VarLeaf<'_>) {
        debug_assert_eq!(leaf.nlogs(), leaf.plogs());
        let jslot = self.journal.acquire();
        self.journal.log(&self.pool, jslot, leaf.off());

        let slot = leaf.read_slot_seq(WhichSlot::Persistent);
        let pairs = leaf.collect_pairs(&slot);
        let live = pairs.len();
        let lf = leaf.low_fence();
        let hf = leaf.high_fence();

        if live < VAR_LEAF_CAPACITY / 2 {
            // Mostly obsolete entries or heap churn: compact in place under
            // the same fences (records re-truncate to the same suffixes;
            // the dense rewrite reclaims dead records' heap space).
            leaf.rewrite_records(&pairs, lf.as_slice(), hf.as_ref().map(|h| h.as_slice()));
            if self.cfg.fingerprints {
                for (i, (k, _)) in pairs.iter().enumerate() {
                    self.fps.set(leaf.off(), i, fp_hash_bytes(k.as_slice()));
                }
            }
            let id = SlotBuf::identity(live);
            self.index.domain().atomic(|txn| {
                leaf.write_slot_in(txn, WhichSlot::Persistent, &id)?;
                leaf.write_slot_in(txn, WhichSlot::Transient, &id)
            });
            leaf.persist_all();
            leaf.set_nlogs(live as u64);
            leaf.set_plogs(live as u64);
            self.journal.clear(&self.pool, jslot);
            self.compactions.fetch_add(1, Ordering::Relaxed);
            self.pool.events().record(EventKind::Compaction, leaf.off(), live as u64);
            leaf.unset_split_bump();
            return;
        }

        let Some(right_off) = self.alloc.alloc() else {
            self.pool_exhausted.store(true, Ordering::Relaxed);
            self.pool.events().record(EventKind::PoolExhausted, leaf.off(), self.pool.len());
            self.journal.clear(&self.pool, jslot);
            leaf.unset_split_bump();
            return;
        };

        // Divide; the separator is the left half's new maximum key — a
        // real stored key, so both fence pairs stay real keys and the
        // prefix lemma keeps holding on both sides.
        let mid = live / 2;
        debug_assert!(mid >= 1);
        let sep = pairs[mid - 1].0;
        let right = VarLeaf::at(&self.pool, right_off);

        // Build and persist the private right sibling first.
        right.init_from_pairs(&pairs[mid..], sep.as_slice(), hf.as_ref().map(|h| h.as_slice()), leaf.next());
        if self.cfg.fingerprints {
            for (i, (k, _)) in pairs[mid..].iter().enumerate() {
                self.fps.set(right_off, i, fp_hash_bytes(k.as_slice()));
            }
        }

        // Rewrite the left half in place (journal-protected): new fences
        // (low unchanged, high = sep), re-truncated records, fresh
        // directory.
        leaf.rewrite_records(&pairs[..mid], lf.as_slice(), Some(sep.as_slice()));
        if self.cfg.fingerprints {
            for (i, (k, _)) in pairs[..mid].iter().enumerate() {
                self.fps.set(leaf.off(), i, fp_hash_bytes(k.as_slice()));
            }
        }
        let id = SlotBuf::identity(mid);
        self.index.domain().atomic(|txn| {
            leaf.write_slot_in(txn, WhichSlot::Persistent, &id)?;
            leaf.write_slot_in(txn, WhichSlot::Transient, &id)
        });
        leaf.set_next(right_off);
        leaf.persist_all();
        leaf.set_nlogs(mid as u64);
        leaf.set_plogs(mid as u64);
        self.journal.clear(&self.pool, jslot);

        // Route the moved keys before readers may run again.
        self.index.tree_update_k(sep.as_slice(), index_common::leaf_ref(right_off));
        self.splits.fetch_add(1, Ordering::Relaxed);
        self.pool.events().record(EventKind::Split, leaf.off(), right_off);
        leaf.unset_split_bump();
    }

    // ---------------------------------------------------------------- read

    pub(crate) fn vfind(&self, key: &[u8]) -> Option<Value> {
        if key.len() > MAX_KEY_LEN {
            return None;
        }
        loop {
            let leaf = VarLeaf::at(&self.pool, self.vtraverse(key));
            if self.cfg.leaf_prefetch {
                leaf.prefetch_hot();
                self.fps.prefetch_stripe(leaf.off());
            }
            let v1 = leaf.stable_version(self.reader_waits_lock());
            if leaf.key_above_fence(key) {
                self.note_retry();
                continue;
            }
            let kind = self.read_slot_kind();
            let slot = self.vsnapshot_slot(&leaf, kind);
            let result = self
                .vlookup_pos(&leaf, &slot, key)
                .map(|pos| leaf.read_value_entry(slot.entry(pos)));
            if leaf.stable_version(self.reader_waits_lock()) != v1 {
                self.note_retry();
                continue;
            }
            return result;
        }
    }

    pub(crate) fn vscan(&self, start: &[u8], n: usize, out: &mut Vec<(KeyBuf, Value)>) -> usize {
        out.clear();
        if n == 0 {
            return 0;
        }
        // Clamp over-long start keys: for any storable key `k` (≤ 64 B),
        // `k ≥ start ⟺ k ≥ successor(start[..64])` — `start` is longer
        // than its own 64-byte prefix, so nothing storable sits between.
        let mut cursor = if start.len() > MAX_KEY_LEN {
            match KeyBuf::from_slice(&start[..MAX_KEY_LEN]).successor() {
                Some(s) => s,
                None => return 0,
            }
        } else {
            KeyBuf::from_slice(start)
        };
        let mut tmp: Vec<(KeyBuf, Value)> = Vec::new();
        'traverse: loop {
            let mut leaf_off = self.vtraverse(cursor.as_slice());
            loop {
                let leaf = VarLeaf::at(&self.pool, leaf_off);
                let v1 = leaf.stable_version(self.reader_waits_lock());
                if leaf.key_above_fence(cursor.as_slice()) {
                    self.note_retry();
                    continue 'traverse;
                }
                let hf = leaf.high_fence();
                let next = leaf.next();
                let kind = self.read_slot_kind();
                let slot = self.vsnapshot_slot(&leaf, kind);
                let from = match leaf.search_k(&slot, cursor.as_slice(), &self.leaf_head_ties) {
                    Ok(p) | Err(p) => p,
                };
                tmp.clear();
                for pos in from..slot.len() {
                    let e = slot.entry(pos);
                    tmp.push((leaf.key_of_entry(e), leaf.read_value_entry(e)));
                }
                if leaf.stable_version(self.reader_waits_lock()) != v1 {
                    self.note_retry();
                    continue 'traverse;
                }
                for kv in &tmp {
                    out.push(*kv);
                    if out.len() == n {
                        return n;
                    }
                }
                let Some(hf) = hf else {
                    return out.len(); // rightmost (+∞) leaf
                };
                if next == 0 {
                    return out.len();
                }
                // Advance past this leaf's inclusive upper bound.
                let Some(succ) = hf.successor() else {
                    return out.len(); // fence is the maximum storable key
                };
                cursor = succ;
                leaf_off = next;
            }
        }
    }

    // ---------------------------------------------------------------- remove

    pub(crate) fn vremove(&self, key: &[u8]) -> Result<(), OpError> {
        if key.len() > MAX_KEY_LEN {
            return Err(OpError::UnsupportedKey);
        }
        loop {
            let leaf = VarLeaf::at(&self.pool, self.vtraverse(key));
            if self.cfg.leaf_prefetch {
                leaf.prefetch_hot();
                self.fps.prefetch_stripe(leaf.off());
            }
            leaf.lock();
            if leaf.key_above_fence(key) {
                leaf.unlock(false);
                self.note_retry();
                continue;
            }
            // Remove edits only the slot array: one persistent instruction.
            let removed = if self.cfg.seq_traversal {
                let mut slot = leaf.read_slot_seq(WhichSlot::Persistent);
                match self.vlookup_pos(&leaf, &slot, key) {
                    None => None,
                    Some(pos) => {
                        slot.remove_at(pos);
                        leaf.write_slot_seq(WhichSlot::Persistent, &slot);
                        Some(slot)
                    }
                }
            } else {
                self.index.domain().atomic(|txn| {
                    let mut slot = leaf.read_slot_in(txn, WhichSlot::Persistent)?;
                    match self.vlookup_pos(&leaf, &slot, key) {
                        None => Ok(None),
                        Some(pos) => {
                            slot.remove_at(pos);
                            leaf.write_slot_in(txn, WhichSlot::Persistent, &slot)?;
                            Ok(Some(slot))
                        }
                    }
                })
            };
            return match removed {
                None => {
                    leaf.unlock(false);
                    Err(OpError::NotFound)
                }
                Some(slot) => {
                    leaf.persist_pslot();
                    if self.cfg.dual_slot {
                        if self.cfg.seq_traversal {
                            leaf.write_slot_seq(WhichSlot::Transient, &slot);
                        } else {
                            self.index
                                .domain()
                                .atomic(|txn| leaf.write_slot_in(txn, WhichSlot::Transient, &slot));
                        }
                    }
                    leaf.unlock(!self.cfg.dual_slot);
                    Ok(())
                }
            };
        }
    }

    // ---------------------------------------------------------------- batch

    /// Bulk-loads `pairs` into an empty var tree (the byte-key
    /// [`RnTree::load_sorted`]): sorted + deduplicated (last wins), then
    /// built right-to-left as full leaves at 2 persistent instructions per
    /// leaf. Chunk boundaries double as fences — chunk `i`'s low fence is
    /// chunk `i-1`'s maximum key — so prefix truncation applies from the
    /// first lookup on.
    pub(crate) fn vload_sorted(&self, pairs: &[(KeyBuf, Value)]) -> Result<(), OpError> {
        let head = VarLeaf::at(&self.pool, self.leftmost);
        assert!(
            head.read_slot_seq(WhichSlot::Persistent).is_empty() && head.next() == 0,
            "load_sorted requires an empty tree"
        );
        if pairs.is_empty() {
            return Ok(());
        }
        let mut sorted: Vec<(KeyBuf, Value)> = pairs.to_vec();
        sorted.sort_by_key(|p| p.0); // stable
        sorted.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1; // last occurrence wins (upsert)
                true
            } else {
                false
            }
        });
        // Greedy chunking under both budgets: slot count, and heap bytes
        // computed conservatively with *full* key lengths (suffixes can
        // only be shorter) plus the worst-case fence reserve.
        let heap_budget = crate::layout::varlen::VAR_HEAP_CAP - crate::layout::varlen::VAR_FENCE_RESERVE;
        let mut chunks: Vec<&[(KeyBuf, Value)]> = Vec::new();
        let mut at = 0usize;
        while at < sorted.len() {
            let mut end = at;
            let mut heap = 0u64;
            while end < sorted.len() && end - at < VAR_MAX_LIVE {
                let rec = 8 + round8(sorted[end].0.len() as u64);
                if heap + rec > heap_budget {
                    break;
                }
                heap += rec;
                end += 1;
            }
            debug_assert!(end > at, "one record always fits an empty heap");
            chunks.push(&sorted[at..end]);
            at = end;
        }
        let mut blocks: Vec<u64> = Vec::with_capacity(chunks.len());
        blocks.push(self.leftmost);
        for _ in 1..chunks.len() {
            match self.alloc.alloc() {
                Some(b) => blocks.push(b),
                None => {
                    for &b in &blocks[1..] {
                        self.alloc.free(b);
                    }
                    self.pool_exhausted.store(true, Ordering::Relaxed);
                    self.pool.events().record(EventKind::PoolExhausted, self.leftmost, self.pool.len());
                    return Err(OpError::PoolExhausted);
                }
            }
        }
        // Undo-log the (empty) head, then build right-to-left so every
        // persisted `next` targets a durable sibling: all-or-nothing.
        let jslot = self.journal.acquire();
        self.journal.log(&self.pool, jslot, self.leftmost);
        for i in (0..chunks.len()).rev() {
            let last = i == chunks.len() - 1;
            let lf = if i == 0 { KeyBuf::MIN } else { chunks[i - 1].last().expect("chunks are non-empty").0 };
            let hf = chunks[i].last().expect("chunks are non-empty").0;
            let hf = if last { None } else { Some(hf) };
            let next = if last { 0 } else { blocks[i + 1] };
            self.vinit_leaf_batched(VarLeaf::at(&self.pool, blocks[i]), chunks[i], &lf, hf.as_ref(), next);
        }
        self.journal.clear(&self.pool, jslot);
        let routes: Vec<(KeyBuf, u64)> = chunks
            .iter()
            .zip(&blocks)
            .map(|(c, &b)| (c.last().expect("chunks are non-empty").0, index_common::leaf_ref(b)))
            .collect();
        self.index.bulk_build_k(&routes);
        Ok(())
    }

    /// Formats a var leaf with `chunk` using exactly two persistent
    /// instructions: one coalesced flush of the header line + directory
    /// words + used heap (fences and records), then the slot-array line.
    fn vinit_leaf_batched(
        &self,
        leaf: VarLeaf<'_>,
        chunk: &[(KeyBuf, Value)],
        lf: &KeyBuf,
        hf: Option<&KeyBuf>,
        next: u64,
    ) {
        debug_assert!(!chunk.is_empty() && chunk.len() <= VAR_MAX_LIVE);
        leaf.reset_lockver();
        leaf.rewrite_records(chunk, lf.as_slice(), hf.map(|h| h.as_slice()));
        if self.cfg.fingerprints {
            for (i, (k, _)) in chunk.iter().enumerate() {
                self.fps.set(leaf.off(), i, fp_hash_bytes(k.as_slice()));
            }
        }
        leaf.set_nlogs(chunk.len() as u64);
        leaf.set_plogs(chunk.len() as u64);
        leaf.set_next(next);
        // Persistent instruction #1: one CLWB batch + one fence covering
        // the header line, the dirtied directory words, and the used heap.
        self.pool.persist_many(&[
            (leaf.off() + vfield::LOCKVER, 64),
            (leaf.off() + vfield::DIR, chunk.len() as u64 * 8),
            (leaf.off() + vfield::HEAP, leaf.heap_used()),
        ]);
        let slot = SlotBuf::identity(chunk.len());
        leaf.write_slot_seq(WhichSlot::Persistent, &slot);
        leaf.write_slot_seq(WhichSlot::Transient, &slot);
        // Persistent instruction #2: publish after the records are durable.
        leaf.persist_pslot();
    }

    /// Byte-key [`RnTree::insert_batch`]: strict-insert per key, runs
    /// amortised per leaf at 2 persistent instructions per touched leaf.
    pub(crate) fn vinsert_batch(&self, batch: &mut [(KeyBuf, Value)]) -> Vec<Result<(), OpError>> {
        batch.sort_by_key(|p| p.0); // stable: first duplicate wins
        let mut results: Vec<Result<(), OpError>> = vec![Ok(()); batch.len()];
        let mut i = 0usize;
        let mut starved = 0u32;
        while i < batch.len() {
            let key = batch[i].0;
            let leaf = VarLeaf::at(&self.pool, self.vtraverse(key.as_slice()));
            if self.cfg.leaf_prefetch {
                leaf.prefetch_hot();
                self.fps.prefetch_stripe(leaf.off());
            }
            leaf.lock();
            if leaf.key_above_fence(key.as_slice()) {
                leaf.unlock(false);
                self.note_retry();
                continue;
            }
            // Run formation: the maximal prefix of remaining keys covered
            // by this leaf's range (everything ≤ its high fence).
            let hf = leaf.high_fence();
            let run_len = batch[i..].partition_point(|p| match &hf {
                None => true,
                Some(h) => p.0.as_slice() <= h.as_slice(),
            });
            let consumed = self.vapply_run(leaf, &batch[i..i + run_len], &mut results[i..i + run_len]);
            if consumed > 0 {
                starved = 0;
                i += consumed;
                continue;
            }
            self.vhelp_split(leaf);
            if self.starved(&mut starved) {
                results[i] = Err(OpError::PoolExhausted);
                i += 1;
                starved = 0;
            }
            self.note_retry();
        }
        results
    }

    /// Applies one run of sorted keys to a var leaf under its (held) lock;
    /// unlocks before returning. Returns the number of keys consumed.
    fn vapply_run(
        &self,
        leaf: VarLeaf<'_>,
        run: &[(KeyBuf, Value)],
        results: &mut [Result<(), OpError>],
    ) -> usize {
        let mut slot = leaf.read_slot_seq(WhichSlot::Persistent);
        // The prefix is stable for the whole run: metadata changes only
        // inside split/compaction, and we hold the lock.
        let mut pbuf = [0u8; MAX_KEY_LEN];
        let p = leaf.prefix_into(&mut pbuf);
        let mut dirty: Vec<(u64, u64)> = Vec::with_capacity(2 * run.len());
        let mut decided = 0u64;
        let mut consumed = 0usize;
        let mut changed = false;
        for (ri, (k, v)) in run.iter().enumerate() {
            let key = k.as_slice();
            match leaf.search_k(&slot, key, &self.leaf_head_ties) {
                Ok(_) => {
                    results[ri] = Err(OpError::AlreadyExists);
                    consumed += 1;
                }
                Err(pos) => {
                    if slot.len() == VAR_MAX_LIVE {
                        // Waste one entry so `plogs` drives the split,
                        // exactly like the u64 run path.
                        if leaf.alloc_entry().is_some() {
                            decided += 1;
                            self.wasted.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                    let Some(entry) = leaf.alloc_entry() else {
                        break; // log area exhausted; split, then retry
                    };
                    let suffix = key.get(p..).unwrap_or(&[]);
                    let rec_len = 8 + round8(suffix.len() as u64);
                    let Some(rec_abs) = leaf.reserve_heap(rec_len) else {
                        // Heap full: the entry is decided wasted; the
                        // heap-pressure trigger below runs the split.
                        decided += 1;
                        self.wasted.fetch_add(1, Ordering::Relaxed);
                        break;
                    };
                    decided += 1;
                    leaf.write_record(rec_abs, *v, suffix);
                    leaf.set_dir_word(entry, key_head(key), rec_abs - leaf.off(), suffix.len());
                    if self.cfg.fingerprints {
                        self.fps.set(leaf.off(), entry, fp_hash_bytes(key));
                    }
                    dirty.push((rec_abs, rec_len));
                    dirty.push((leaf.off() + dir_off(entry), 8));
                    slot.insert_at(pos, entry);
                    changed = true;
                    consumed += 1;
                }
            }
        }
        if changed {
            // Persistent instruction #1 for the whole run: records +
            // directory words, coalesced into one fence.
            self.pool.persist_many(&dirty);
            if self.cfg.seq_traversal {
                leaf.write_slot_seq(WhichSlot::Persistent, &slot);
            } else {
                self.index
                    .domain()
                    .atomic(|txn| leaf.write_slot_in(txn, WhichSlot::Persistent, &slot));
            }
            // Persistent instruction #2: the run commits here.
            leaf.persist_pslot();
            if self.cfg.dual_slot {
                if self.cfg.seq_traversal {
                    leaf.write_slot_seq(WhichSlot::Transient, &slot);
                } else {
                    self.index
                        .domain()
                        .atomic(|txn| leaf.write_slot_in(txn, WhichSlot::Transient, &slot));
                }
            }
        }
        let mut did_split = false;
        if decided > 0 {
            let plogs = leaf.plogs() + decided;
            leaf.set_plogs(plogs);
            if plogs >= (VAR_LEAF_CAPACITY - 1) as u64 || leaf.heap_free() < VAR_SPLIT_RESERVE {
                leaf.set_split();
                if leaf.nlogs() == plogs {
                    self.vsplit_or_compact(leaf);
                    did_split = true;
                } else {
                    leaf.unset_split_nobump();
                }
            }
        }
        leaf.unlock(!self.cfg.dual_slot && changed && !did_split);
        consumed
    }

    // ---------------------------------------------------------------- checks

    /// Structural invariants of the var-leaf chain (quiescent phases only;
    /// the byte-key counterpart of [`RnTree::verify_invariants`]).
    pub(crate) fn vverify_invariants(&self) -> Result<(), String> {
        let mut off = self.leftmost;
        let mut last_key: Option<KeyBuf> = None;
        let mut prev_hf: Option<KeyBuf> = Some(KeyBuf::MIN); // next leaf's expected low fence
        while off != 0 {
            let leaf = VarLeaf::at(&self.pool, off);
            // Var leaves never morph: the hash directory encodes u64
            // fingerprint buckets and the adaptive policy is rejected at
            // config validation, so any non-sorted tag here is corruption.
            if leaf.layout() != crate::layout::LAYOUT_SORTED {
                return Err(format!("var leaf {off}: layout tag {} != sorted", leaf.layout()));
            }
            let slot = leaf.read_slot_seq(WhichSlot::Persistent);
            if slot.len() > VAR_MAX_LIVE {
                return Err(format!("leaf {off}: slot count {} > {VAR_MAX_LIVE}", slot.len()));
            }
            let lf = leaf.low_fence();
            let hf = leaf.high_fence();
            match &prev_hf {
                Some(expect) => {
                    if lf != *expect {
                        return Err(format!(
                            "leaf {off}: low fence {lf:?} != predecessor's high fence {expect:?}"
                        ));
                    }
                }
                None => return Err(format!("leaf {off}: follows a +∞-fenced leaf")),
            }
            let want_p = hf
                .as_ref()
                .map_or(0, |h| index_common::lcp(lf.as_slice(), h.as_slice()));
            if leaf.prefix_len() != want_p {
                return Err(format!(
                    "leaf {off}: prefix_len {} != lcp(fences) {want_p}",
                    leaf.prefix_len()
                ));
            }
            let mut seen = [false; VAR_LEAF_CAPACITY];
            for pos in 0..slot.len() {
                let e = slot.entry(pos);
                if e >= VAR_LEAF_CAPACITY {
                    return Err(format!("leaf {off}: slot entry {e} out of range"));
                }
                if seen[e] {
                    return Err(format!("leaf {off}: duplicate slot entry {e}"));
                }
                seen[e] = true;
                if e as u64 >= leaf.nlogs() {
                    return Err(format!(
                        "leaf {off}: slot references unallocated entry {e} (nlogs={})",
                        leaf.nlogs()
                    ));
                }
                let k = leaf.key_of_entry(e);
                if let Some(prev) = &last_key {
                    if k <= *prev {
                        return Err(format!("leaf {off}: key {k:?} not > previous {prev:?}"));
                    }
                }
                // Range is (lf, hf], except the leftmost leaf's empty low
                // fence also admits the empty key (nothing sorts below it,
                // and p = lcp("", hf) = 0 so truncation stays sound).
                if k.as_slice() < lf.as_slice() || (k == lf && !lf.is_empty()) {
                    return Err(format!("leaf {off}: key {k:?} not above low fence {lf:?}"));
                }
                if let Some(h) = &hf {
                    if k.as_slice() > h.as_slice() {
                        return Err(format!("leaf {off}: key {k:?} above high fence {h:?}"));
                    }
                }
                if self.cfg.fingerprints && self.vprobe(&leaf, &slot, k.as_slice()) != Some(pos) {
                    return Err(format!("leaf {off}: fingerprint probe misses live key {k:?}"));
                }
                let routed = self.index.traverse_seq_k(k.as_slice());
                if routed != off {
                    return Err(format!("index routes key {k:?} to {routed}, expected {off}"));
                }
                last_key = Some(k);
            }
            if self.cfg.dual_slot {
                let t = leaf.read_slot_seq(WhichSlot::Transient);
                if t != slot {
                    return Err(format!("leaf {off}: transient slot diverges from persistent"));
                }
            }
            let next = leaf.next();
            if next == 0 && hf.is_some() {
                return Err(format!("last leaf {off} has a finite high fence {hf:?}"));
            }
            if next != 0 && hf.is_none() {
                return Err(format!("leaf {off}: +∞ fence but a successor exists"));
            }
            prev_hf = hf;
            off = next;
        }
        Ok(())
    }
}
