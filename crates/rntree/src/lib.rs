//! # rntree — RNTree: a scalable NVM-based B+tree built with HTM
//!
//! Reference Rust implementation of the data structure from *Building
//! Scalable NVM-based B+tree with HTM* (Liu, Xing, Chen, Wu — ICPP 2019),
//! on the simulated substrates of the `nvm` (persistent memory) and `htm`
//! (hardware transactional memory) crates.
//!
//! ## The two ideas
//!
//! **1. A cache-line-sized slot array (§4.1).** Leaf entries are append-only
//! logs; a 64-byte *slot array* (1 count byte + 63 entry indices) records
//! their sorted order. Because all slot-array mutations run inside a
//! hardware transaction, the whole line updates atomically — the transaction
//! either commits (and the later line flush is itself atomic) or leaves the
//! old line intact. A modify operation therefore needs only **two persistent
//! instructions** — one for the KV log entry, one for the slot line — while
//! keeping the leaf sorted, beating wB+Tree's four (valid-bit dance) and
//! matching NVTree's two (which gives up sorting).
//!
//! **2. Overlapping persistency and concurrency (§4.2, §4.3).** Of a modify
//! operation's four steps, only log allocation and metadata update need
//! concurrency control, and only the log flush is slow. RNTree allocates
//! log entries with a lock-free CAS, flushes them **outside** the leaf lock
//! (concurrent flushes proceed in parallel), and keeps only the slot-array
//! update inside the lock. The **dual slot array** (§4.4) adds a transient
//! copy of the slot array, updated after the persistent copy is flushed;
//! readers snapshot the transient copy, so they can never observe
//! un-persisted data (the *read-uncommitted anomaly*, §3.5) and never
//! conflict with writers except during the tiny copy transaction. With dual
//! slots, the leaf version — the readers' retry trigger — changes only on
//! splits instead of on every modification.
//!
//! Internal nodes are volatile (shared `index-common` layer); recovery
//! rebuilds them from the persistent leaf chain (§5.4).
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use nvm::{PmemConfig, PmemPool};
//! use rntree::{RnConfig, RnTree};
//! use index_common::PersistentIndex;
//!
//! let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 22)));
//! let tree = RnTree::create(Arc::clone(&pool), RnConfig::default());
//! tree.insert(42, 4200).unwrap();
//! assert_eq!(tree.find(42), Some(4200));
//!
//! // Un-persisted state never leaks: crash and recover.
//! pool.simulate_crash();
//! let tree = RnTree::recover(pool, RnConfig::default());
//! assert_eq!(tree.find(42), Some(4200));
//! ```

#![deny(missing_docs)]

mod fingerprint;
mod hashleaf;
mod journal;
mod layout;
mod leaf;
mod recovery;
mod report;
mod slots;
mod tree;
mod varleaf;
mod vartree;
mod version;

pub use hashleaf::HashDir;
pub use journal::SplitJournal;
pub use report::SpaceReport;
pub use layout::{LAYOUT_HASH, LAYOUT_SORTED, LEAF_BLOCK, LEAF_CAPACITY, MAX_LIVE};
pub use recovery::ConfigError;
pub use slots::SlotBuf;
pub use tree::{LeafHeat, LeafPolicy, RnConfig, RnStats, RnTree};
pub use version::LeafVersion;
