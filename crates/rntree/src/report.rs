//! Structural introspection: space accounting and fill statistics.
//!
//! Useful for capacity planning (how big must the pool be?) and for
//! observing the log-churn dynamics the paper describes (§5.2.3):
//! obsolete log entries accumulate between compactions, so the *log fill*
//! is always ≥ the *live fill*.

use crate::layout::{LEAF_BLOCK, LEAF_CAPACITY, MAX_LIVE};
use crate::leaf::{Leaf, WhichSlot};
use crate::tree::RnTree;

/// A point-in-time space/structure report. Produce with
/// [`RnTree::space_report`] on a quiescent tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceReport {
    /// Leaves in the chain.
    pub leaves: u64,
    /// Live key-value pairs.
    pub live_entries: u64,
    /// Log entries allocated (live + obsolete + wasted).
    pub allocated_entries: u64,
    /// Bytes of pool space occupied by leaf blocks.
    pub leaf_bytes: u64,
    /// Mean live entries per leaf (0 when empty).
    pub mean_live_fill: f64,
    /// Mean allocated log entries per leaf.
    pub mean_log_fill: f64,
    /// Leaves with zero live entries (drained ranges awaiting reuse).
    pub empty_leaves: u64,
    /// Histogram of live fill in eighths of `MAX_LIVE` (index 0 = 0–12.5%,
    /// …, index 7 = 87.5–100%).
    pub fill_histogram: [u64; 8],
    /// Depth of the volatile index (1 = root is a leaf).
    pub index_depth: usize,
}

impl SpaceReport {
    /// Live bytes (16 B per live pair) / leaf bytes: the space efficiency.
    pub fn utilization(&self) -> f64 {
        if self.leaf_bytes == 0 {
            0.0
        } else {
            (self.live_entries * 16) as f64 / self.leaf_bytes as f64
        }
    }
}

impl RnTree {
    /// Walks the leaf chain and produces a [`SpaceReport`]. Quiescent
    /// phases only (uses sequential reads).
    pub fn space_report(&self) -> SpaceReport {
        let mut r = SpaceReport {
            leaves: 0,
            live_entries: 0,
            allocated_entries: 0,
            leaf_bytes: 0,
            mean_live_fill: 0.0,
            mean_log_fill: 0.0,
            empty_leaves: 0,
            fill_histogram: [0; 8],
            index_depth: self.index.depth(),
        };
        let mut off = self.leftmost;
        while off != 0 {
            let leaf = Leaf::at(&self.pool, off);
            let live = leaf.read_slot_seq(WhichSlot::Persistent).len() as u64;
            r.leaves += 1;
            r.live_entries += live;
            r.allocated_entries += leaf.nlogs();
            r.leaf_bytes += LEAF_BLOCK;
            if live == 0 {
                r.empty_leaves += 1;
            }
            let bucket = ((live as usize * 8) / (MAX_LIVE + 1)).min(7);
            r.fill_histogram[bucket] += 1;
            off = leaf.next();
        }
        if r.leaves > 0 {
            r.mean_live_fill = r.live_entries as f64 / r.leaves as f64;
            r.mean_log_fill = r.allocated_entries as f64 / r.leaves as f64;
        }
        debug_assert!(r.allocated_entries <= r.leaves * LEAF_CAPACITY as u64);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RnConfig;
    use index_common::PersistentIndex;
    use nvm::{PmemConfig, PmemPool};
    use std::sync::Arc;

    fn tree() -> RnTree {
        let pool = Arc::new(PmemPool::new(PmemConfig::for_testing(1 << 23)));
        RnTree::create(pool, RnConfig::default())
    }

    #[test]
    fn empty_tree_report() {
        let t = tree();
        let r = t.space_report();
        assert_eq!(r.leaves, 1);
        assert_eq!(r.live_entries, 0);
        assert_eq!(r.empty_leaves, 1);
        assert_eq!(r.index_depth, 1);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn fill_statistics_track_inserts() {
        let t = tree();
        for k in 1..=5_000u64 {
            t.insert(k, k).unwrap();
        }
        let r = t.space_report();
        assert_eq!(r.live_entries, 5_000);
        assert!(r.leaves >= 5_000 / 63);
        assert!(r.mean_live_fill > 20.0, "fill {}", r.mean_live_fill);
        assert!(r.index_depth >= 2);
        assert!(r.utilization() > 0.2, "util {}", r.utilization());
        assert_eq!(r.fill_histogram.iter().sum::<u64>(), r.leaves);
        assert!(r.allocated_entries >= r.live_entries);
    }

    #[test]
    fn churn_inflates_log_fill_until_compaction() {
        let t = tree();
        for k in 1..=30u64 {
            t.insert(k, 0).unwrap();
        }
        for round in 1..=10u64 {
            for k in 1..=30u64 {
                t.update(k, round).unwrap();
            }
        }
        let r = t.space_report();
        assert_eq!(r.live_entries, 30);
        // Updates consume log entries beyond the live count.
        assert!(
            r.allocated_entries > r.live_entries,
            "log fill {} vs live {}",
            r.allocated_entries,
            r.live_entries
        );
    }

    #[test]
    fn drained_ranges_show_as_empty_leaves() {
        let t = tree();
        for k in 1..=1_000u64 {
            t.insert(k, k).unwrap();
        }
        for k in 300..=700u64 {
            t.remove(k).unwrap();
        }
        let r = t.space_report();
        assert!(r.empty_leaves > 0);
        assert_eq!(r.live_entries, 1_000 - 401);
    }
}
