//! Persistent leaf-node layout (paper Figure 1, extended with the dual
//! slot array and a fence key).
//!
//! Each leaf is one fixed 1280-byte block (20 cache lines):
//!
//! ```text
//! line 0   header: lockver | nlogs | plogs | next | fence | (reserved)
//! line 1   persistent slot array  (count byte + 63 entry indices)
//! line 2   transient slot array   (semantically DRAM; rebuilt on recovery)
//! line 3+  64 KV log entries × 16 B (key u64, value u64), line-aligned
//! ```
//!
//! Crash-consistent state is exactly: the slot array line and the KV
//! entries it references, plus `next` and `fence` (which only change inside
//! the journaled split). `lockver`, `nlogs`, `plogs` and the transient slot
//! array are scratch that recovery recomputes (paper §5.4).

/// Log entries per leaf (paper's best-performing leaf size, §6.2).
pub const LEAF_CAPACITY: usize = 64;

/// Maximum live (slot-array-referenced) entries: the slot array has one
/// count byte, leaving 63 index bytes.
pub const MAX_LIVE: usize = 63;

/// Leaf block size in bytes (multiple of the cache line): one header line,
/// two slot-array lines, and 16 lines of KV log entries.
pub const LEAF_BLOCK: u64 = 1216;

/// Byte offsets of leaf fields within the block.
pub mod field {
    /// Combined lock/splitting/version word (paper Figure 2).
    pub const LOCKVER: u64 = 0;
    // (Offset 8 is reserved; the allocation counter lives inside the
    // lock/version word — see `version.rs` for why.)
    /// Number of log entries whose fate was decided under the leaf lock.
    pub const PLOGS: u64 = 16;
    /// Pool offset of the next leaf (0 = none).
    pub const NEXT: u64 = 24;
    /// Inclusive upper bound of this leaf's key range (`u64::MAX` for the
    /// rightmost leaf). Only changes inside the journaled split.
    pub const FENCE: u64 = 32;
    /// Per-leaf layout tag ([`super::LAYOUT_SORTED`] / [`super::LAYOUT_HASH`]):
    /// how the 64-byte slot line is organised. Sits in the reserved tail of
    /// the header line — the *same* offset in the u64 and var layouts — and
    /// changes only inside a journaled rewrite (split, compaction, morph),
    /// so it is crash-consistent with the slot line it describes.
    pub const LAYOUT: u64 = 40;
    /// Persistent slot array (one cache line).
    pub const PSLOT: u64 = 64;
    /// Transient slot array (one cache line; dual-slot design).
    pub const TSLOT: u64 = 128;
    /// First KV log entry.
    pub const KV: u64 = 192;
}

/// Layout tag value: the slot line is a sorted slot array (`slots.rs`).
/// This is the all-zeroes default, so pools created before the tag existed
/// read back as sorted.
pub const LAYOUT_SORTED: u64 = 0;

/// Layout tag value: the slot line is a fingerprint-bucketed hash directory
/// (`hashleaf.rs`) — O(1) expected point ops, no sorted order maintained.
pub const LAYOUT_HASH: u64 = 1;

/// Byte offset of log entry `i`'s key within the leaf block.
#[inline]
pub const fn kv_off(i: usize) -> u64 {
    field::KV + (i as u64) * 16
}

/// Layout of the **variable-length-key** leaf (`RnConfig::varlen_leaves`).
///
/// Each leaf is one fixed 4096-byte block (64 cache lines):
///
/// ```text
/// line 0      header: lockver | heap_used | plogs | next | meta
/// line 1      persistent slot array  (identical protocol to the u64 leaf)
/// line 2      transient slot array
/// lines 3–10  record directory: 64 × 8-byte words
///             word = key head (u32, bits 63..32)
///                  | record offset within the block (u16, bits 31..16)
///                  | stored suffix length (u16, bits 15..0)
/// lines 11+   key/value heap: low fence bytes, high fence bytes, then
///             8-aligned records [value u64][key suffix, zero-padded to 8]
/// ```
///
/// Keys are stored **prefix-truncated** against the leaf's fences: with
/// `p = lcp(low_fence, high_fence)` every in-range key starts with that
/// common prefix (see `varleaf.rs` for the lemma), so only `key[p..]` goes
/// to the heap and reconstruction is `low_fence[..p] ++ suffix`. The
/// 4-byte key *head* in the directory word is over the **full** key, so
/// searches compare heads first and touch heap bytes only on head ties.
///
/// Crash-consistent state is exactly the same shape as the u64 leaf: the
/// slot-array line plus the records (and directory words) it references,
/// plus `next` and the `meta`/fence region (which change only inside the
/// journaled split). `lockver`, `heap_used`, `plogs` and the transient
/// slot array are scratch that recovery recomputes.
pub mod varlen {
    /// Var-leaf block size in bytes (64 cache lines).
    pub const VAR_LEAF_BLOCK: u64 = 4096;

    /// Log entries (directory words) per var leaf — same count as the u64
    /// leaf, so the slot-array protocol carries over unchanged.
    pub const VAR_LEAF_CAPACITY: usize = super::LEAF_CAPACITY;

    /// Maximum live entries (the slot array has 63 index bytes).
    pub const VAR_MAX_LIVE: usize = super::MAX_LIVE;

    /// Byte offsets of var-leaf fields within the block. `LOCKVER`,
    /// `PLOGS`, `NEXT`, `PSLOT` and `TSLOT` sit at the *same* offsets as
    /// the u64 layout on purpose: the lock/version/slot protocol of
    /// `leaf.rs` is reused verbatim.
    pub mod vfield {
        /// Combined lock/splitting/version/nlogs word (shared protocol).
        pub const LOCKVER: u64 = 0;
        /// Heap bytes consumed (fences + records), from `HEAP`. Scratch:
        /// recovery recomputes it from the slot-referenced records.
        pub const HEAP_USED: u64 = 8;
        /// Decided log entries (shared protocol).
        pub const PLOGS: u64 = 16;
        /// Pool offset of the next leaf (0 = none).
        pub const NEXT: u64 = 24;
        /// Packed fence metadata: `prefix_len` (bits 15..0), `lf_len`
        /// (bits 31..16), `hf_len` (bits 47..32, `0xFFFF` = +∞ fence).
        /// Changes only inside the journaled split.
        pub const META: u64 = 32;
        /// Per-leaf layout tag — same offset as the u64 leaf so generic
        /// header handling (recovery, morph dispatch) reads one place.
        /// Var leaves are always [`crate::layout::LAYOUT_SORTED`]: the
        /// 4096-byte block family cannot morph into the 1216-byte one
        /// under a fixed-stride allocator.
        pub const LAYOUT: u64 = 40;
        /// Persistent slot array (one cache line).
        pub const PSLOT: u64 = 64;
        /// Transient slot array (one cache line).
        pub const TSLOT: u64 = 128;
        /// Record directory: 64 packed words.
        pub const DIR: u64 = 192;
        /// First heap byte.
        pub const HEAP: u64 = 704;
    }

    /// Heap capacity in bytes.
    pub const VAR_HEAP_CAP: u64 = VAR_LEAF_BLOCK - vfield::HEAP;

    /// `hf_len` sentinel for the rightmost leaf's +∞ fence.
    pub const HF_INF: u16 = 0xFFFF;

    /// Worst-case heap cost of one record: value word + a 64-byte suffix.
    pub const VAR_REC_MAX: u64 = 8 + index_common::MAX_KEY_LEN as u64;

    /// Worst-case heap cost of the two fences after a split (each a real
    /// key of at most 64 bytes, stored 8-aligned).
    pub const VAR_FENCE_RESERVE: u64 = 2 * index_common::MAX_KEY_LEN as u64;

    /// Split trigger: when the free heap falls below one worst-case
    /// record, the next decided entry splits the leaf even though the
    /// slot array still has room.
    pub const VAR_SPLIT_RESERVE: u64 = VAR_REC_MAX;

    /// Rounds a byte count up to the 8-byte heap granule.
    #[inline]
    pub const fn round8(n: u64) -> u64 {
        (n + 7) & !7
    }

    /// Byte offset of directory word `i` within the leaf block.
    #[inline]
    pub const fn dir_off(i: usize) -> u64 {
        vfield::DIR + (i as u64) * 8
    }

    // The var leaf reuses `leaf.rs`'s lock/version/slot machinery verbatim
    // (`varleaf.rs` delegates); that is only sound while the shared words
    // sit at the same offsets in both layouts.
    const _: () = {
        assert!(vfield::LOCKVER == super::field::LOCKVER);
        assert!(vfield::PLOGS == super::field::PLOGS);
        assert!(vfield::NEXT == super::field::NEXT);
        assert!(vfield::LAYOUT == super::field::LAYOUT);
        assert!(vfield::PSLOT == super::field::PSLOT);
        assert!(vfield::TSLOT == super::field::TSLOT);
        // A split's halves always fit the heap: at most 32 worst-case
        // records plus the two post-split fences.
        assert!(32 * VAR_REC_MAX + VAR_FENCE_RESERVE <= VAR_HEAP_CAP);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_line_aligned_and_fits() {
        assert_eq!(LEAF_BLOCK % 64, 0);
        assert_eq!(field::PSLOT % 64, 0);
        assert_eq!(field::TSLOT % 64, 0);
        assert_eq!(field::KV % 64, 0);
        assert_eq!(kv_off(LEAF_CAPACITY - 1) + 16, LEAF_BLOCK);
    }

    #[test]
    fn layout_tag_lives_in_header_line() {
        // The tag must share the header line so split/compact/morph can
        // change it crash-consistently under the existing journal image,
        // and must stay clear of every named header field.
        const { assert!(field::LAYOUT < 64) };
        const { assert!(field::LAYOUT >= field::FENCE + 8) };
        assert_ne!(LAYOUT_SORTED, LAYOUT_HASH);
        assert_eq!(LAYOUT_SORTED, 0, "all-zero blocks must read as sorted");
    }

    #[test]
    fn kv_entries_never_straddle_lines() {
        for i in 0..LEAF_CAPACITY {
            let start = kv_off(i);
            assert_eq!(start / 64, (start + 15) / 64, "entry {i} straddles");
        }
    }

    #[test]
    fn var_layout_shares_protocol_offsets_and_fits() {
        // The var leaf reuses `leaf.rs`'s lock/version/slot machinery
        // verbatim; that is only sound while the shared words sit at the
        // same offsets in both layouts.
        assert_eq!(varlen::vfield::LOCKVER, field::LOCKVER);
        assert_eq!(varlen::vfield::PLOGS, field::PLOGS);
        assert_eq!(varlen::vfield::NEXT, field::NEXT);
        assert_eq!(varlen::vfield::LAYOUT, field::LAYOUT);
        assert_eq!(varlen::vfield::PSLOT, field::PSLOT);
        assert_eq!(varlen::vfield::TSLOT, field::TSLOT);
        assert_eq!(varlen::VAR_LEAF_BLOCK % 64, 0);
        assert_eq!(varlen::vfield::DIR % 64, 0);
        assert_eq!(varlen::vfield::HEAP % 64, 0);
        assert_eq!(varlen::dir_off(varlen::VAR_LEAF_CAPACITY), varlen::vfield::HEAP);
    }
}
