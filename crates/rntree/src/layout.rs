//! Persistent leaf-node layout (paper Figure 1, extended with the dual
//! slot array and a fence key).
//!
//! Each leaf is one fixed 1280-byte block (20 cache lines):
//!
//! ```text
//! line 0   header: lockver | nlogs | plogs | next | fence | (reserved)
//! line 1   persistent slot array  (count byte + 63 entry indices)
//! line 2   transient slot array   (semantically DRAM; rebuilt on recovery)
//! line 3+  64 KV log entries × 16 B (key u64, value u64), line-aligned
//! ```
//!
//! Crash-consistent state is exactly: the slot array line and the KV
//! entries it references, plus `next` and `fence` (which only change inside
//! the journaled split). `lockver`, `nlogs`, `plogs` and the transient slot
//! array are scratch that recovery recomputes (paper §5.4).

/// Log entries per leaf (paper's best-performing leaf size, §6.2).
pub const LEAF_CAPACITY: usize = 64;

/// Maximum live (slot-array-referenced) entries: the slot array has one
/// count byte, leaving 63 index bytes.
pub const MAX_LIVE: usize = 63;

/// Leaf block size in bytes (multiple of the cache line): one header line,
/// two slot-array lines, and 16 lines of KV log entries.
pub const LEAF_BLOCK: u64 = 1216;

/// Byte offsets of leaf fields within the block.
pub mod field {
    /// Combined lock/splitting/version word (paper Figure 2).
    pub const LOCKVER: u64 = 0;
    // (Offset 8 is reserved; the allocation counter lives inside the
    // lock/version word — see `version.rs` for why.)
    /// Number of log entries whose fate was decided under the leaf lock.
    pub const PLOGS: u64 = 16;
    /// Pool offset of the next leaf (0 = none).
    pub const NEXT: u64 = 24;
    /// Inclusive upper bound of this leaf's key range (`u64::MAX` for the
    /// rightmost leaf). Only changes inside the journaled split.
    pub const FENCE: u64 = 32;
    /// Persistent slot array (one cache line).
    pub const PSLOT: u64 = 64;
    /// Transient slot array (one cache line; dual-slot design).
    pub const TSLOT: u64 = 128;
    /// First KV log entry.
    pub const KV: u64 = 192;
}

/// Byte offset of log entry `i`'s key within the leaf block.
#[inline]
pub const fn kv_off(i: usize) -> u64 {
    field::KV + (i as u64) * 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_line_aligned_and_fits() {
        assert_eq!(LEAF_BLOCK % 64, 0);
        assert_eq!(field::PSLOT % 64, 0);
        assert_eq!(field::TSLOT % 64, 0);
        assert_eq!(field::KV % 64, 0);
        assert_eq!(kv_off(LEAF_CAPACITY - 1) + 16, LEAF_BLOCK);
    }

    #[test]
    fn kv_entries_never_straddle_lines() {
        for i in 0..LEAF_CAPACITY {
            let start = kv_off(i);
            assert_eq!(start / 64, (start + 15) / 64, "entry {i} straddles");
        }
    }
}
