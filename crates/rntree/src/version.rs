//! The leaf lock/version word (paper Figure 2, Masstree-style), extended
//! with the `nlogs` allocation counter.
//!
//! ```text
//! bits 40..33   nlogs      — log entries allocated (CAS-bumped)
//! bit  32       lock       — held by the modify critical section
//! bit  31       splitting  — set while the leaf is split or compacted
//! bits 30..0    version    — bumped when a split/compaction finishes,
//!                            and additionally on every modification in
//!                            the single-slot (non-dual) variant
//! ```
//!
//! `stableVersion` (paper §5.1) spins until the node is not splitting and
//! returns the version bits. In the non-dual variant readers must also wait
//! out the lock bit — that is precisely the §4.3 "version based" scheme
//! whose reader/writer contention the dual slot array then removes.
//!
//! **Why `nlogs` lives in this word.** The paper's Algorithm 2 allocates
//! log entries with a lock-free CAS while splits run under the leaf lock.
//! If the counter were a separate word, an allocation could slip in
//! *between* the splitter's "log area quiescent?" check and its counter
//! reset, racing the split's KV compaction. Packing the counter beside the
//! splitting bit closes that window exactly: `set_split` is an atomic RMW
//! on the same word the allocator CASes, so after it succeeds every
//! allocation attempt observes the splitting bit and backs off — the log
//! area is provably frozen for the whole split.

/// Bit masks and helpers for the leaf version word.
#[derive(Debug, Clone, Copy)]
pub struct LeafVersion;

impl LeafVersion {
    /// The lock bit (bit 32).
    pub const LOCK: u64 = 1 << 32;
    /// The splitting bit (bit 31).
    pub const SPLIT: u64 = 1 << 31;
    /// Mask of the version counter bits (30..0).
    pub const VERSION_MASK: u64 = (1 << 31) - 1;
    /// Shift of the `nlogs` allocation counter.
    pub const NLOGS_SHIFT: u32 = 33;
    /// Mask of the `nlogs` field (8 bits: values 0..=64 fit).
    pub const NLOGS_MASK: u64 = 0xFF << Self::NLOGS_SHIFT;
    /// One allocation, as an addend on the packed word.
    pub const NLOGS_ONE: u64 = 1 << Self::NLOGS_SHIFT;

    /// Extracts the allocation counter.
    #[inline]
    pub fn nlogs(word: u64) -> u64 {
        (word & Self::NLOGS_MASK) >> Self::NLOGS_SHIFT
    }

    /// Replaces the allocation counter field.
    #[inline]
    pub fn with_nlogs(word: u64, n: u64) -> u64 {
        debug_assert!(n <= 0xFF);
        (word & !Self::NLOGS_MASK) | (n << Self::NLOGS_SHIFT)
    }

    /// Extracts the version counter.
    #[inline]
    pub fn version(word: u64) -> u64 {
        word & Self::VERSION_MASK
    }

    /// True if the lock bit is set.
    #[inline]
    pub fn locked(word: u64) -> bool {
        word & Self::LOCK != 0
    }

    /// True if the splitting bit is set.
    #[inline]
    pub fn splitting(word: u64) -> bool {
        word & Self::SPLIT != 0
    }

    /// Increment the version counter, wrapping within its 31 bits and
    /// preserving the flag bits.
    #[inline]
    pub fn bump(word: u64) -> u64 {
        let flags = word & !Self::VERSION_MASK;
        let v = (Self::version(word) + 1) & Self::VERSION_MASK;
        flags | v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_disjoint_from_version() {
        assert_eq!(LeafVersion::LOCK & LeafVersion::VERSION_MASK, 0);
        assert_eq!(LeafVersion::SPLIT & LeafVersion::VERSION_MASK, 0);
        assert_eq!(LeafVersion::LOCK & LeafVersion::SPLIT, 0);
    }

    #[test]
    fn bump_preserves_flags_and_wraps() {
        let w = LeafVersion::LOCK | LeafVersion::SPLIT | 5;
        let b = LeafVersion::bump(w);
        assert!(LeafVersion::locked(b));
        assert!(LeafVersion::splitting(b));
        assert_eq!(LeafVersion::version(b), 6);

        let max = LeafVersion::VERSION_MASK;
        assert_eq!(LeafVersion::version(LeafVersion::bump(max)), 0);
    }

    #[test]
    fn accessors() {
        assert!(!LeafVersion::locked(0));
        assert!(LeafVersion::locked(LeafVersion::LOCK));
        assert!(!LeafVersion::splitting(LeafVersion::LOCK));
        assert_eq!(LeafVersion::version(LeafVersion::LOCK | 9), 9);
    }

    #[test]
    fn nlogs_field_is_independent() {
        let w = LeafVersion::LOCK | LeafVersion::SPLIT | 7;
        let w = LeafVersion::with_nlogs(w, 64);
        assert_eq!(LeafVersion::nlogs(w), 64);
        assert!(LeafVersion::locked(w));
        assert!(LeafVersion::splitting(w));
        assert_eq!(LeafVersion::version(w), 7);
        let w2 = w + LeafVersion::NLOGS_ONE;
        assert_eq!(LeafVersion::nlogs(w2), 65);
        assert_eq!(LeafVersion::version(w2), 7);
        let w3 = LeafVersion::with_nlogs(w2, 3);
        assert_eq!(LeafVersion::nlogs(w3), 3);
        // bump must preserve the counter.
        assert_eq!(LeafVersion::nlogs(LeafVersion::bump(w3)), 3);
    }
}
