//! Typed accessor over a **variable-length-key** leaf block
//! (`RnConfig::varlen_leaves`; layout in [`crate::layout::varlen`]).
//!
//! `VarLeaf` wraps [`Leaf`] for everything the two layouts share — the
//! lock/version word, log-entry allocation, `plogs`, `next`, and the
//! dual slot arrays all sit at the same offsets with the same access
//! discipline — and adds the var-specific pieces: the fence/prefix
//! metadata word, the packed record directory, and the in-leaf key heap.
//!
//! ## The prefix-truncation lemma
//!
//! A leaf covers the key range `(low_fence, high_fence]`. Let
//! `p = lcp(low_fence, high_fence)`. Every key `k` with
//! `low_fence < k ≤ high_fence` starts with that common prefix: if `k`
//! differed from it at byte `i < p`, then `k` would compare against both
//! fences identically at byte `i` (they agree there), contradicting
//! `low < k ≤ high`; and `k` cannot be a *proper* prefix of the common
//! prefix, because such a string sorts ≤ `low_fence`. Hence storing only
//! `k[p..]` is lossless: reconstruction is `low_fence[..p] ++ suffix`.
//! (For the leftmost leaf `low_fence` is empty and for the rightmost
//! `high_fence` is +∞, so `p = 0` there and no truncation happens.)
//!
//! ## Concurrency discipline for the heap
//!
//! Heap space is reserved with a lock-free bump (`reserve_heap`) *after*
//! the entry's `nlogs` CAS succeeded — and a successful allocation blocks
//! splits until the entry is decided (the quiescence guard), so the
//! reserved region, the prefix length, and the fence bytes are all stable
//! until the owner publishes or wastes the entry. All heap access is by
//! 8-byte **atomic words** (records and fences are 8-aligned and
//! zero-padded), so optimistic readers racing a split's rewrite read
//! well-defined (possibly torn) values that the leaf version re-check
//! then discards — exactly the u64 leaf's `read_key` discipline.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, Ordering};

use htm::{TxResult, Txn};
use index_common::{key_head, KeyBuf, MAX_KEY_LEN};
use nvm::PmemPool;

use crate::layout::varlen::{dir_off, round8, vfield, HF_INF, VAR_HEAP_CAP, VAR_LEAF_BLOCK, VAR_LEAF_CAPACITY, VAR_MAX_LIVE};
use crate::leaf::{Leaf, WhichSlot};
use crate::slots::SlotBuf;

/// A handle to one variable-length-key leaf node.
#[derive(Clone, Copy)]
pub(crate) struct VarLeaf<'p> {
    /// Shared-protocol accessor (lock/version word, slot arrays, `plogs`,
    /// `next` — all at identical offsets in both layouts).
    base: Leaf<'p>,
    pool: &'p PmemPool,
    off: u64,
}

impl<'p> VarLeaf<'p> {
    pub(crate) fn at(pool: &'p PmemPool, off: u64) -> Self {
        debug_assert!(off.is_multiple_of(64) && off + VAR_LEAF_BLOCK <= pool.len());
        VarLeaf { base: Leaf::at(pool, off), pool, off }
    }

    pub(crate) fn off(&self) -> u64 {
        self.off
    }

    // ---- shared protocol, delegated ---------------------------------------

    pub(crate) fn lock(&self) {
        self.base.lock();
    }
    pub(crate) fn unlock(&self, bump: bool) {
        self.base.unlock(bump);
    }
    pub(crate) fn set_split(&self) {
        self.base.set_split();
    }
    pub(crate) fn unset_split_nobump(&self) {
        self.base.unset_split_nobump();
    }
    pub(crate) fn unset_split_bump(&self) {
        self.base.unset_split_bump();
    }
    pub(crate) fn stable_version(&self, wait_lock: bool) -> u64 {
        self.base.stable_version(wait_lock)
    }
    pub(crate) fn reset_lockver(&self) {
        self.base.reset_lockver();
    }
    pub(crate) fn nlogs(&self) -> u64 {
        self.base.nlogs()
    }
    pub(crate) fn set_nlogs(&self, v: u64) {
        self.base.set_nlogs(v);
    }
    pub(crate) fn plogs(&self) -> u64 {
        self.base.plogs()
    }
    pub(crate) fn set_plogs(&self, v: u64) {
        self.base.set_plogs(v);
    }
    pub(crate) fn next(&self) -> u64 {
        self.base.next()
    }
    pub(crate) fn layout(&self) -> u64 {
        self.base.layout()
    }
    pub(crate) fn set_next(&self, v: u64) {
        self.base.set_next(v);
    }
    pub(crate) fn alloc_entry(&self) -> Option<usize> {
        self.base.alloc_entry()
    }
    pub(crate) fn read_slot_in<'t>(&self, txn: &mut Txn<'t>, which: WhichSlot) -> TxResult<SlotBuf>
    where
        'p: 't,
    {
        self.base.read_slot_in(txn, which)
    }
    pub(crate) fn write_slot_in<'t>(&self, txn: &mut Txn<'t>, which: WhichSlot, slot: &SlotBuf) -> TxResult<()>
    where
        'p: 't,
    {
        self.base.write_slot_in(txn, which, slot)
    }
    pub(crate) fn read_slot_seq(&self, which: WhichSlot) -> SlotBuf {
        self.base.read_slot_seq(which)
    }
    pub(crate) fn write_slot_seq(&self, which: WhichSlot, slot: &SlotBuf) {
        self.base.write_slot_seq(which, slot);
    }
    pub(crate) fn persist_pslot(&self) {
        self.base.persist_pslot();
    }
    /// Persists the entire var block (split/compaction tail).
    pub(crate) fn persist_all(&self) {
        self.pool.persist(self.off, VAR_LEAF_BLOCK);
    }

    // ---- fence / prefix metadata ------------------------------------------

    fn meta(&self) -> u64 {
        self.pool.load_u64_acquire(self.off + vfield::META)
    }

    fn set_meta(&self, prefix_len: usize, lf_len: usize, hf_len: u16) {
        debug_assert!(prefix_len <= MAX_KEY_LEN && lf_len <= MAX_KEY_LEN);
        let w = (prefix_len as u64) | ((lf_len as u64) << 16) | ((hf_len as u64) << 32);
        self.pool.store_u64_release(self.off + vfield::META, w);
    }

    /// Shared-prefix length of this leaf's key range.
    pub(crate) fn prefix_len(&self) -> usize {
        (self.meta() & 0xFFFF) as usize
    }

    fn lf_len(&self) -> usize {
        ((self.meta() >> 16) & 0xFFFF) as usize
    }

    /// Raw `hf_len` field; [`HF_INF`] encodes the +∞ fence.
    fn hf_len_raw(&self) -> u16 {
        ((self.meta() >> 32) & 0xFFFF) as u16
    }

    /// Heap-relative offset where records start (past the fence bytes).
    fn fence_bytes(&self) -> u64 {
        let hf = self.hf_len_raw();
        let hf_bytes = if hf == HF_INF { 0 } else { hf as u64 };
        round8(self.lf_len() as u64) + round8(hf_bytes)
    }

    /// The exclusive lower bound of this leaf's range.
    pub(crate) fn low_fence(&self) -> KeyBuf {
        let mut buf = [0u8; MAX_KEY_LEN];
        let n = self.lf_len();
        self.load_heap_bytes(self.off + vfield::HEAP, n, &mut buf);
        KeyBuf::from_slice(&buf[..n])
    }

    /// The inclusive upper bound; `None` is the rightmost leaf's +∞.
    pub(crate) fn high_fence(&self) -> Option<KeyBuf> {
        let raw = self.hf_len_raw();
        if raw == HF_INF {
            return None;
        }
        let mut buf = [0u8; MAX_KEY_LEN];
        let n = raw as usize;
        let at = self.off + vfield::HEAP + round8(self.lf_len() as u64);
        self.load_heap_bytes(at, n, &mut buf);
        Some(KeyBuf::from_slice(&buf[..n]))
    }

    /// True when `key` lies above this leaf's range (the stale-route
    /// check; mirrors the u64 leaf's `key > fence()`).
    pub(crate) fn key_above_fence(&self, key: &[u8]) -> bool {
        match self.high_fence() {
            None => false,
            Some(hf) => key > hf.as_slice(),
        }
    }

    /// Copies the shared prefix into `buf`, returning its length.
    pub(crate) fn prefix_into(&self, buf: &mut [u8; MAX_KEY_LEN]) -> usize {
        let p = self.prefix_len();
        self.load_heap_bytes(self.off + vfield::HEAP, p, buf);
        p
    }

    // ---- heap -------------------------------------------------------------

    fn heap_used_word(&self) -> &AtomicU64 {
        self.pool.atomic_u64(self.off + vfield::HEAP_USED)
    }

    pub(crate) fn heap_used(&self) -> u64 {
        self.heap_used_word().load(Ordering::Acquire)
    }

    pub(crate) fn set_heap_used(&self, v: u64) {
        self.heap_used_word().store(v, Ordering::Release);
    }

    /// Free heap bytes (split-trigger input).
    pub(crate) fn heap_free(&self) -> u64 {
        VAR_HEAP_CAP - self.heap_used().min(VAR_HEAP_CAP)
    }

    /// Lock-free heap reservation of `bytes` (8-aligned). Returns the
    /// **pool-absolute** offset of the reserved region, or `None` when the
    /// heap cannot hold it (the caller wastes the entry and triggers a
    /// split). Call only while owning an undecided log entry, which is
    /// what fences off concurrent heap rewrites (see module docs).
    pub(crate) fn reserve_heap(&self, bytes: u64) -> Option<u64> {
        debug_assert!(bytes.is_multiple_of(8));
        self.heap_used_word()
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                (used + bytes <= VAR_HEAP_CAP).then_some(used + bytes)
            })
            .ok()
            .map(|old| self.off + vfield::HEAP + old)
    }

    /// Word-atomic byte store into the heap: `at` must be 8-aligned; the
    /// tail of the last word is zero-padded. The region must be exclusively
    /// owned (a fresh reservation or a split-frozen rewrite).
    fn store_heap_bytes(&self, at: u64, bytes: &[u8]) {
        debug_assert!(at.is_multiple_of(8));
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(8);
            let mut w = [0u8; 8];
            w[..take].copy_from_slice(&bytes[i..i + take]);
            self.pool.store_u64(at + i as u64, u64::from_le_bytes(w));
            i += 8;
        }
    }

    /// Word-atomic byte load from the heap into `buf[..len]`.
    fn load_heap_bytes(&self, at: u64, len: usize, buf: &mut [u8; MAX_KEY_LEN]) {
        debug_assert!(at.is_multiple_of(8) && len <= MAX_KEY_LEN);
        let mut i = 0;
        while i < len {
            let w = self.pool.load_u64(at + i as u64).to_le_bytes();
            let take = (len - i).min(8);
            buf[i..i + take].copy_from_slice(&w[..take]);
            i += 8;
        }
    }

    // ---- record directory --------------------------------------------------

    pub(crate) fn dir_word(&self, entry: usize) -> u64 {
        debug_assert!(entry < VAR_LEAF_CAPACITY);
        self.pool.load_u64(self.off + dir_off(entry))
    }

    /// Packs and stores the directory word for `entry`. Single-writer
    /// before publication, exactly like the u64 leaf's `write_kv`.
    pub(crate) fn set_dir_word(&self, entry: usize, head: u32, rec_rel: u64, suffix_len: usize) {
        debug_assert!(entry < VAR_LEAF_CAPACITY && rec_rel < VAR_LEAF_BLOCK && suffix_len <= MAX_KEY_LEN);
        let w = ((head as u64) << 32) | (rec_rel << 16) | suffix_len as u64;
        self.pool.store_u64(self.off + dir_off(entry), w);
    }

    /// Decodes a directory word into (head, block-relative record offset,
    /// stored suffix length).
    pub(crate) fn decode_dir(w: u64) -> (u32, u64, usize) {
        ((w >> 32) as u32, (w >> 16) & 0xFFFF, (w & 0xFFFF) as usize)
    }

    // ---- records ------------------------------------------------------------

    /// Writes one record (`[value][suffix]`) at the reserved absolute
    /// offset `rec_abs`.
    pub(crate) fn write_record(&self, rec_abs: u64, value: u64, suffix: &[u8]) {
        self.pool.store_u64(rec_abs, value);
        self.store_heap_bytes(rec_abs + 8, suffix);
    }

    /// Value of the record behind `entry`.
    pub(crate) fn read_value_entry(&self, entry: usize) -> u64 {
        let (_, rec_rel, _) = Self::decode_dir(self.dir_word(entry));
        self.pool.load_u64(self.off + rec_rel)
    }

    /// Reconstructs the full key of `entry`: shared prefix + heap suffix.
    pub(crate) fn key_of_entry(&self, entry: usize) -> KeyBuf {
        let (_, rec_rel, klen) = Self::decode_dir(self.dir_word(entry));
        let mut buf = [0u8; MAX_KEY_LEN];
        let p = self.prefix_into(&mut buf);
        let mut sfx = [0u8; MAX_KEY_LEN];
        self.load_heap_bytes(self.off + rec_rel + 8, klen.min(MAX_KEY_LEN - p), &mut sfx);
        let n = p + klen.min(MAX_KEY_LEN - p);
        buf[p..n].copy_from_slice(&sfx[..klen.min(MAX_KEY_LEN - p)]);
        KeyBuf::from_slice(&buf[..n])
    }

    /// Compares a full query key against the stored key of `entry`,
    /// heads first (one directory-word read; heap bytes only on a tie).
    /// Returns the ordering of `key` relative to the stored key, and
    /// whether the comparison had to fall through to heap bytes.
    pub(crate) fn cmp_key_entry(&self, key: &[u8], qhead: u32, prefix: &[u8], entry: usize) -> (CmpOrdering, bool) {
        let w = self.dir_word(entry);
        let (ehead, rec_rel, klen) = Self::decode_dir(w);
        match qhead.cmp(&ehead) {
            CmpOrdering::Equal => {
                let mut sfx = [0u8; MAX_KEY_LEN];
                let n = klen.min(MAX_KEY_LEN);
                self.load_heap_bytes(self.off + rec_rel + 8, n, &mut sfx);
                (cmp_concat(key, prefix, &sfx[..n]), true)
            }
            o => (o, false),
        }
    }

    /// Binary search for `key` among the live entries of `slot`, 4-byte
    /// heads first. `ties` counts probes that had to read heap bytes.
    pub(crate) fn search_k(&self, slot: &SlotBuf, key: &[u8], ties: &AtomicU64) -> Result<usize, usize> {
        let mut pbuf = [0u8; MAX_KEY_LEN];
        let p = self.prefix_into(&mut pbuf);
        let qhead = key_head(key);
        let mut tie_count = 0u64;
        let (mut lo, mut hi) = (0usize, slot.len());
        let mut found = None;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (ord, tied) = self.cmp_key_entry(key, qhead, &pbuf[..p], slot.entry(mid));
            tie_count += tied as u64;
            match ord {
                CmpOrdering::Less => hi = mid,
                CmpOrdering::Greater => lo = mid + 1,
                CmpOrdering::Equal => {
                    found = Some(mid);
                    break;
                }
            }
        }
        if tie_count > 0 {
            ties.fetch_add(tie_count, Ordering::Relaxed);
        }
        match found {
            Some(pos) => Ok(pos),
            None => Err(lo),
        }
    }

    /// Exact-match check of `key` against `entry` (fingerprint-probe
    /// confirmation; counts a head-tie when heap bytes were read).
    pub(crate) fn key_matches(&self, key: &[u8], qhead: u32, prefix: &[u8], entry: usize, ties: &AtomicU64) -> bool {
        let (ord, tied) = self.cmp_key_entry(key, qhead, prefix, entry);
        if tied {
            ties.fetch_add(1, Ordering::Relaxed);
        }
        ord == CmpOrdering::Equal
    }

    // ---- prefetch ------------------------------------------------------------

    /// Prefetch hints for the header, both slot lines, and the directory.
    pub(crate) fn prefetch_hot(&self) {
        self.pool.prefetch(self.off + vfield::LOCKVER, 8);
        self.pool.prefetch(self.off + vfield::PSLOT, 128);
        self.pool.prefetch(self.off + vfield::DIR, vfield::HEAP - vfield::DIR);
    }

    // ---- initialisation --------------------------------------------------------

    /// Formats this block as an empty var leaf and persists the header +
    /// fence + slot lines.
    pub(crate) fn init_empty(&self, lf: &[u8], hf: Option<&[u8]>, next: u64) {
        self.reset_lockver();
        self.set_plogs(0);
        self.set_next(next);
        self.write_fences_and_meta(lf, hf);
        self.write_slot_seq(WhichSlot::Persistent, &SlotBuf::new());
        self.write_slot_seq(WhichSlot::Transient, &SlotBuf::new());
        self.persist_all();
    }

    /// Writes the fence bytes + meta word and resets `heap_used` to the
    /// fence region. Caller must own the leaf exclusively (init, or a
    /// split/compaction with the splitting bit set).
    fn write_fences_and_meta(&self, lf: &[u8], hf: Option<&[u8]>) {
        debug_assert!(lf.len() <= MAX_KEY_LEN && hf.is_none_or(|h| h.len() <= MAX_KEY_LEN));
        let p = hf.map_or(0, |h| index_common::lcp(lf, h));
        self.store_heap_bytes(self.off + vfield::HEAP, lf);
        if let Some(h) = hf {
            self.store_heap_bytes(self.off + vfield::HEAP + round8(lf.len() as u64), h);
        }
        self.set_meta(p, lf.len(), hf.map_or(HF_INF, |h| h.len() as u16));
        self.set_heap_used(round8(lf.len() as u64) + hf.map_or(0, |h| round8(h.len() as u64)));
    }

    /// Rewrites this leaf's heap with `pairs` stored densely in key order
    /// under fresh fences, setting directory words for entries `0..n`.
    /// Slot arrays, counters and persists are the caller's job (they
    /// differ between split, compaction and batched load). The leaf must
    /// be private to the caller or split-frozen.
    ///
    /// # Panics
    /// Panics if the records do not fit the heap — callers guarantee fit
    /// by the split size argument (≤ 32 worst-case records + fences).
    pub(crate) fn rewrite_records(&self, pairs: &[(KeyBuf, u64)], lf: &[u8], hf: Option<&[u8]>) {
        debug_assert!(pairs.len() <= VAR_MAX_LIVE);
        self.write_fences_and_meta(lf, hf);
        let p = self.prefix_len();
        let mut used = self.fence_bytes();
        for (i, (k, v)) in pairs.iter().enumerate() {
            let key = k.as_slice();
            debug_assert!(key.len() >= p && key[..p] == lf[..p]);
            let suffix = key.get(p..).unwrap_or(&[]);
            let rec_len = 8 + round8(suffix.len() as u64);
            assert!(used + rec_len <= VAR_HEAP_CAP, "var-leaf rewrite overflows heap");
            let rec_abs = self.off + vfield::HEAP + used;
            self.write_record(rec_abs, *v, suffix);
            self.set_dir_word(i, key_head(key), rec_abs - self.off, suffix.len());
            used += rec_len;
        }
        self.set_heap_used(used);
    }

    /// Formats this block with `pairs` in key order and persists the whole
    /// node (right half of a split, private to the splitting thread).
    pub(crate) fn init_from_pairs(&self, pairs: &[(KeyBuf, u64)], lf: &[u8], hf: Option<&[u8]>, next: u64) {
        self.reset_lockver();
        self.rewrite_records(pairs, lf, hf);
        let slot = SlotBuf::identity(pairs.len());
        self.write_slot_seq(WhichSlot::Persistent, &slot);
        self.write_slot_seq(WhichSlot::Transient, &slot);
        self.set_nlogs(pairs.len() as u64);
        self.set_plogs(pairs.len() as u64);
        self.set_next(next);
        self.persist_all();
    }

    /// Collects the live `(key, value)` pairs in key order (lock held or
    /// quiescent recovery).
    pub(crate) fn collect_pairs(&self, slot: &SlotBuf) -> Vec<(KeyBuf, u64)> {
        slot.iter().map(|e| (self.key_of_entry(e), self.read_value_entry(e))).collect()
    }
}

/// Lexicographic comparison of `q` against the concatenation `a ++ b`
/// without materialising it.
pub(crate) fn cmp_concat(q: &[u8], a: &[u8], b: &[u8]) -> CmpOrdering {
    let n = q.len().min(a.len());
    let c = q[..n].cmp(&a[..n]);
    if c != CmpOrdering::Equal {
        return c;
    }
    if q.len() < a.len() {
        return CmpOrdering::Less; // q is a proper prefix of a
    }
    q[a.len()..].cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::PmemConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PmemConfig::for_testing(1 << 16))
    }

    #[test]
    fn cmp_concat_is_lexicographic() {
        use CmpOrdering::*;
        assert_eq!(cmp_concat(b"abc", b"ab", b"c"), Equal);
        assert_eq!(cmp_concat(b"abb", b"ab", b"c"), Less);
        assert_eq!(cmp_concat(b"abd", b"ab", b"c"), Greater);
        assert_eq!(cmp_concat(b"a", b"ab", b"c"), Less);
        assert_eq!(cmp_concat(b"abcd", b"ab", b"c"), Greater);
        assert_eq!(cmp_concat(b"", b"", b""), Equal);
        assert_eq!(cmp_concat(b"x", b"", b""), Greater);
    }

    #[test]
    fn fences_and_meta_roundtrip() {
        let p = pool();
        let l = VarLeaf::at(&p, 0);
        l.init_empty(b"apple", Some(b"apricot"), 77);
        assert_eq!(l.low_fence().as_slice(), b"apple");
        assert_eq!(l.high_fence().unwrap().as_slice(), b"apricot");
        assert_eq!(l.prefix_len(), 2); // "ap"
        assert_eq!(l.next(), 77);
        assert!(l.key_above_fence(b"apz"));
        assert!(!l.key_above_fence(b"apricot"));
        // +∞ fence
        let r = VarLeaf::at(&p, 4096);
        r.init_empty(b"", None, 0);
        assert_eq!(r.high_fence(), None);
        assert_eq!(r.prefix_len(), 0);
        assert!(!r.key_above_fence(&[0xFF; 64]));
    }

    #[test]
    fn records_reconstruct_and_search() {
        let p = pool();
        let l = VarLeaf::at(&p, 0);
        l.init_empty(b"app", Some(b"apz"), 0);
        let ties = AtomicU64::new(0);
        // In-range keys share prefix "ap".
        let keys: [&[u8]; 4] = [b"apple", b"apples", b"apricot", b"apt"];
        let mut slot = SlotBuf::new();
        for (i, k) in keys.iter().enumerate() {
            let e = l.alloc_entry().unwrap();
            let suffix = &k[l.prefix_len()..];
            let rec = l.reserve_heap(8 + round8(suffix.len() as u64)).unwrap();
            l.write_record(rec, 100 + i as u64, suffix);
            l.set_dir_word(e, key_head(k), rec - l.off(), suffix.len());
            slot.insert_at(i, e);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(l.key_of_entry(slot.entry(i)).as_slice(), *k);
            assert_eq!(l.search_k(&slot, k, &ties), Ok(i), "key {k:?}");
            assert_eq!(l.read_value_entry(slot.entry(i)), 100 + i as u64);
        }
        assert_eq!(l.search_k(&slot, b"apportion", &ties), Err(2));
        assert_eq!(l.search_k(&slot, b"aq", &ties), Err(4));
        assert_eq!(l.search_k(&slot, b"aa", &ties), Err(0));
        // "apple" vs "apples" and "apt" share 4-byte heads → ties counted.
        assert!(ties.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn rewrite_records_retruncates_against_new_fences() {
        let p = pool();
        let l = VarLeaf::at(&p, 0);
        l.init_empty(b"", None, 0);
        let pairs: Vec<(KeyBuf, u64)> = [&b"key:0001"[..], b"key:0002", b"key:0003"]
            .iter()
            .enumerate()
            .map(|(i, k)| (KeyBuf::from_slice(k), i as u64))
            .collect();
        l.rewrite_records(&pairs, b"key:0000", Some(b"key:0003"));
        assert_eq!(l.prefix_len(), 7); // "key:000"
        for (i, (k, v)) in pairs.iter().enumerate() {
            assert_eq!(l.key_of_entry(i), *k);
            assert_eq!(l.read_value_entry(i), *v);
        }
        // Suffixes are 1 byte → records are 16 bytes each.
        assert_eq!(l.heap_used(), round8(8) + round8(8) + 3 * 16);
    }

    #[test]
    fn reserve_heap_exhausts_exactly() {
        let p = pool();
        let l = VarLeaf::at(&p, 0);
        l.init_empty(b"", None, 0);
        let mut total = 0u64;
        while l.reserve_heap(72).is_some() {
            total += 72;
        }
        assert!(total <= VAR_HEAP_CAP && total + 72 > VAR_HEAP_CAP);
        assert!(l.heap_free() < 72);
    }

    #[test]
    fn init_from_pairs_is_durable() {
        let p = pool();
        let l = VarLeaf::at(&p, 4096);
        let pairs: Vec<(KeyBuf, u64)> = (0..10)
            .map(|i| (KeyBuf::from_slice(format!("user{i:04}").as_bytes()), i))
            .collect();
        l.init_from_pairs(&pairs, b"user0000", Some(b"user0009"), 8192);
        p.simulate_crash();
        let slot = l.read_slot_seq(WhichSlot::Persistent);
        assert_eq!(slot.len(), 10);
        assert_eq!(l.collect_pairs(&slot), pairs);
        assert_eq!(l.next(), 8192);
        assert_eq!(l.nlogs(), 10);
    }
}
