//! The split undo journal (paper §5.2.1: *"we first log the whole leaf
//! node in a pre-defined thread-local storage (undo logs)"*) — RNTree's
//! instantiation of [`nvm::UndoJournal`] at the leaf block size.

use nvm::{PmemPool, UndoJournal};

use crate::layout::LEAF_BLOCK;

/// The RNTree split-undo journal: whole-leaf pre-images, one slot per
/// concurrent splitter.
pub struct SplitJournal {
    inner: UndoJournal,
}

impl SplitJournal {
    /// Creates the runtime handle for a journal region (leaf-block-sized
    /// images). Call [`SplitJournal::format`] once at pool creation.
    pub fn new(region: u64, slots: usize) -> Self {
        Self::new_sized(region, slots, LEAF_BLOCK)
    }

    /// As [`SplitJournal::new`], but with an explicit image size — the
    /// variable-length leaf layout journals 4096-byte nodes.
    pub fn new_sized(region: u64, slots: usize, image: u64) -> Self {
        SplitJournal {
            inner: UndoJournal::new(region, slots, image),
        }
    }

    /// Total bytes the journal occupies for `slots` entries.
    pub fn region_bytes(slots: usize) -> u64 {
        UndoJournal::region_bytes(slots, LEAF_BLOCK)
    }

    /// As [`SplitJournal::region_bytes`] with an explicit image size.
    pub fn region_bytes_sized(slots: usize, image: u64) -> u64 {
        UndoJournal::region_bytes(slots, image)
    }

    /// Formats (invalidates) every slot; pool creation only.
    pub fn format(&self, pool: &PmemPool) {
        self.inner.format(pool);
    }

    /// Acquires a free slot, blocking while all are in use (bounded by the
    /// number of concurrent splits).
    pub fn acquire(&self) -> usize {
        self.inner.acquire()
    }

    /// Writes and persists the undo image of the leaf at `leaf_off`, then
    /// marks the slot valid.
    pub fn log(&self, pool: &PmemPool, slot: usize, leaf_off: u64) {
        self.inner.log(pool, slot, leaf_off);
    }

    /// Invalidates the slot and returns it to the free list.
    pub fn clear(&self, pool: &PmemPool, slot: usize) {
        self.inner.clear(pool, slot);
    }

    /// Recovery: restores every valid slot's leaf image. Returns restored
    /// leaf offsets.
    pub fn recover(&self, pool: &PmemPool) -> Vec<u64> {
        self.inner.recover(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::PmemConfig;

    #[test]
    fn leaf_image_roundtrip_through_crash() {
        let pool = PmemPool::new(PmemConfig::for_testing(1 << 18));
        let j = SplitJournal::new(64, 2);
        j.format(&pool);
        let leaf = 0x8000u64;
        for w in 0..(LEAF_BLOCK / 8) {
            pool.store_u64(leaf + w * 8, w);
        }
        pool.persist(leaf, LEAF_BLOCK);
        let s = j.acquire();
        j.log(&pool, s, leaf);
        pool.store_u64(leaf, 0xBAD);
        pool.persist(leaf, 8);
        pool.simulate_crash();
        assert_eq!(j.recover(&pool), vec![leaf]);
        assert_eq!(pool.load_u64(leaf), 0);
        assert_eq!(pool.load_u64(leaf + 8), 1);
    }
}
