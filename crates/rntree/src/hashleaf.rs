//! [`HashDir`]: the hash-organized encoding of the 64-byte slot line.
//!
//! A leaf tagged [`crate::layout::LAYOUT_HASH`] keeps the exact same block
//! layout as the sorted leaf — header line, persistent + transient slot
//! lines, KV log — but reinterprets the slot line as an open-addressing
//! directory instead of a sorted array:
//!
//! ```text
//! byte 0        live-entry count (same position/meaning as SlotBuf)
//! bytes 1..=63  63 buckets; 0 = empty, v = log entry index v-1
//! ```
//!
//! A key's *home bucket* is its one-byte fingerprint (`fp_hash`) modulo 63;
//! collisions probe linearly with wraparound. Because the directory has
//! exactly [`MAX_LIVE`] buckets and a leaf holds at most [`MAX_LIVE`] live
//! entries, an insert below capacity always finds an empty bucket and every
//! probe terminates within 63 steps. Deletion backward-shifts the chain
//! (Knuth 6.4 Algorithm R), so the invariant "a lookup may stop at the
//! first empty bucket" holds without tombstones.
//!
//! Point ops are O(1) expected instead of O(log n) binary search; the
//! price is that no sorted order is maintained — scans and splits gather
//! the occupied buckets and sort on demand. Crucially the directory is
//! still one cache line read/written through the same eight transactional
//! words as [`SlotBuf`], so the lock/version/HTM protocol and the persist
//! counts (insert/update 2, remove 1, find 0) carry over verbatim.

use crate::layout::MAX_LIVE;
use crate::slots::SlotBuf;

/// Number of buckets in the directory (63: one line minus the count byte).
pub const N_BUCKETS: usize = MAX_LIVE;

/// A decoded hash directory: count byte + 63 open-addressing buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashDir(pub [u8; 64]);

/// A successful directory probe: where the match sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Bucket index holding the match (needed by remove's backward shift).
    pub bucket: usize,
    /// KV log entry index of the matching record.
    pub entry: usize,
}

impl Default for HashDir {
    fn default() -> Self {
        HashDir([0u8; 64])
    }
}

impl HashDir {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reinterprets a slot-line image as a hash directory (the line was
    /// read through the same eight transactional words either way; only
    /// the leaf's layout tag says which decoding is meaningful).
    #[inline]
    pub fn from_slot(s: SlotBuf) -> Self {
        HashDir(s.0)
    }

    /// Re-encodes for write-back through the [`SlotBuf`] word path.
    #[inline]
    pub fn to_slot(&self) -> SlotBuf {
        SlotBuf(self.0)
    }

    /// Number of live entries (== number of occupied buckets).
    #[inline]
    pub fn len(&self) -> usize {
        self.0[0] as usize
    }

    /// True when no entry is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Home bucket for a key with fingerprint `fp`.
    #[inline]
    pub fn home(fp: u8) -> usize {
        fp as usize % N_BUCKETS
    }

    /// Log entry stored in bucket `b`, or `None` if the bucket is empty.
    #[inline]
    pub fn bucket(&self, b: usize) -> Option<usize> {
        debug_assert!(b < N_BUCKETS);
        match self.0[1 + b] {
            0 => None,
            v => Some(v as usize - 1),
        }
    }

    #[inline]
    fn set_bucket(&mut self, b: usize, entry: Option<usize>) {
        debug_assert!(b < N_BUCKETS);
        self.0[1 + b] = match entry {
            None => 0,
            Some(e) => {
                debug_assert!(e < crate::layout::LEAF_CAPACITY);
                e as u8 + 1
            }
        };
    }

    /// Probes for a key with fingerprint `fp`, confirming candidate
    /// entries through `matches` (typically a fingerprint-table filter
    /// plus a KV key compare). Returns the hit and adds the number of
    /// buckets inspected to `steps` (the probe-length signal exported via
    /// the `leaf` obs section).
    #[inline]
    pub fn find(
        &self,
        fp: u8,
        mut matches: impl FnMut(usize) -> bool,
        steps: &mut u32,
    ) -> Option<Probe> {
        let mut b = Self::home(fp);
        for _ in 0..N_BUCKETS {
            *steps += 1;
            match self.bucket(b) {
                None => return None,
                Some(entry) => {
                    if matches(entry) {
                        return Some(Probe { bucket: b, entry });
                    }
                }
            }
            b = (b + 1) % N_BUCKETS;
        }
        // Directory completely full and no match anywhere on the cycle.
        None
    }

    /// Inserts a new entry for a key with fingerprint `fp` (caller has
    /// already established the key is absent). Returns `false` when the
    /// directory is full — the caller splits, exactly like a sorted-slot
    /// overflow.
    #[inline]
    pub fn insert(&mut self, fp: u8, entry: usize) -> bool {
        let n = self.len();
        if n >= MAX_LIVE {
            return false;
        }
        let mut b = Self::home(fp);
        // n < MAX_LIVE occupied buckets out of N_BUCKETS == MAX_LIVE
        // guarantees an empty one on the probe cycle.
        while self.bucket(b).is_some() {
            b = (b + 1) % N_BUCKETS;
        }
        self.set_bucket(b, Some(entry));
        self.0[0] = (n + 1) as u8;
        true
    }

    /// Redirects the bucket found by [`Self::find`] at a new log entry
    /// (update in place: the key keeps its bucket, the data moves to a
    /// fresh log entry — the hash twin of `SlotBuf::set_entry`).
    #[inline]
    pub fn set_probe(&mut self, p: Probe, entry: usize) {
        self.set_bucket(p.bucket, Some(entry));
    }

    /// Removes the entry in bucket `b` and backward-shifts the collision
    /// chain so probes may keep stopping at the first empty bucket.
    /// `home_of` maps a log entry to its home bucket (the caller rehashes
    /// the stored key or consults the fingerprint table).
    pub fn remove_at(&mut self, b: usize, mut home_of: impl FnMut(usize) -> usize) {
        debug_assert!(self.bucket(b).is_some());
        let mut hole = b;
        self.set_bucket(hole, None);
        let mut j = (hole + 1) % N_BUCKETS;
        while let Some(e) = self.bucket(j) {
            // Entry `e` probed from home(e) forward to j; it may fill the
            // hole iff the hole lies on that path, i.e. cyclically in
            // [home, j).
            let h = home_of(e);
            let on_path = if h <= j {
                h <= hole && hole < j
            } else {
                h <= hole || hole < j
            };
            if on_path {
                self.set_bucket(hole, Some(e));
                self.set_bucket(j, None);
                hole = j;
            }
            j = (j + 1) % N_BUCKETS;
            if j == b {
                break; // full cycle (directory was completely full)
            }
        }
        self.0[0] = (self.len() - 1) as u8;
    }

    /// Iterates the live log-entry indices in bucket order (NOT key
    /// order — scans, splits, and morphs sort by key after gathering).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..N_BUCKETS).filter_map(move |b| self.bucket(b))
    }

    /// Builds a directory over densely-rewritten entries `0..n` with the
    /// given per-entry fingerprints (used by morph, split, and bulk load
    /// after a key-ordered rewrite).
    pub fn build(fps: &[u8]) -> Self {
        assert!(fps.len() <= MAX_LIVE);
        let mut d = HashDir::new();
        for (e, &fp) in fps.iter().enumerate() {
            let ok = d.insert(fp, e);
            debug_assert!(ok);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fp_hash;

    fn dir_of(keys: &[u64]) -> (HashDir, Vec<u64>) {
        // Entry e holds keys[e].
        let mut d = HashDir::new();
        for (e, &k) in keys.iter().enumerate() {
            assert!(d.insert(fp_hash(k), e));
        }
        (d, keys.to_vec())
    }

    fn lookup(d: &HashDir, keys: &[u64], k: u64) -> Option<usize> {
        let mut steps = 0;
        d.find(fp_hash(k), |e| keys[e] == k, &mut steps).map(|p| p.entry)
    }

    #[test]
    fn insert_find_roundtrip() {
        let keys: Vec<u64> = (0..40).map(|i| i * 977 + 13).collect();
        let (d, ks) = dir_of(&keys);
        assert_eq!(d.len(), 40);
        for (e, &k) in keys.iter().enumerate() {
            assert_eq!(lookup(&d, &ks, k), Some(e), "key {k}");
        }
        for k in [1u64, 2, 999_999] {
            assert_eq!(lookup(&d, &ks, k), None);
        }
    }

    #[test]
    fn full_directory_still_answers() {
        let keys: Vec<u64> = (0..MAX_LIVE as u64).map(|i| i * 31 + 7).collect();
        let (mut d, ks) = dir_of(&keys);
        assert_eq!(d.len(), MAX_LIVE);
        assert!(!d.insert(fp_hash(12345), 63), "full dir must refuse");
        for (e, &k) in keys.iter().enumerate() {
            assert_eq!(lookup(&d, &ks, k), Some(e));
        }
        // Misses on a full directory walk the whole cycle but terminate.
        assert_eq!(lookup(&d, &ks, 123_456_789), None);
    }

    #[test]
    fn remove_backward_shift_preserves_probes() {
        // Remove every other key and re-verify all survivors after each
        // removal — this is exactly the case tombstone-free deletion gets
        // wrong if the cyclic range check is off.
        let keys: Vec<u64> = (0..50).map(|i| i * 7919 + 3).collect();
        let (mut d, ks) = dir_of(&keys);
        let mut live: Vec<usize> = (0..keys.len()).collect();
        for victim in (0..keys.len()).step_by(2) {
            let mut steps = 0;
            let p = d
                .find(fp_hash(keys[victim]), |e| ks[e] == keys[victim], &mut steps)
                .expect("victim present");
            d.remove_at(p.bucket, |e| HashDir::home(fp_hash(ks[e])));
            live.retain(|&e| e != victim);
            for &e in &live {
                assert_eq!(lookup(&d, &ks, keys[e]), Some(e), "after removing {victim}");
            }
            assert_eq!(lookup(&d, &ks, keys[victim]), None);
        }
        assert_eq!(d.len(), live.len());
    }

    #[test]
    fn update_redirects_bucket() {
        let keys = [100u64, 200, 300];
        let (mut d, mut ks) = dir_of(&keys);
        let mut steps = 0;
        let p = d.find(fp_hash(200), |e| ks[e] == 200, &mut steps).unwrap();
        // Data for key 200 moves to fresh log entry 7.
        ks.resize(8, 0);
        ks[7] = 200;
        d.set_probe(p, 7);
        assert_eq!(lookup(&d, &ks, 200), Some(7));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn build_matches_incremental_inserts() {
        let keys: Vec<u64> = (0..MAX_LIVE as u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        let fps: Vec<u8> = keys.iter().map(|&k| fp_hash(k)).collect();
        let d = HashDir::build(&fps);
        assert_eq!(d.len(), MAX_LIVE);
        for (e, &k) in keys.iter().enumerate() {
            assert_eq!(lookup(&d, &keys, k), Some(e));
        }
        let mut entries: Vec<usize> = d.iter().collect();
        entries.sort_unstable();
        assert_eq!(entries, (0..MAX_LIVE).collect::<Vec<_>>());
    }

    #[test]
    fn slot_line_roundtrip() {
        let keys = [9u64, 8, 7, 6];
        let (d, ks) = dir_of(&keys);
        let d2 = HashDir::from_slot(d.to_slot());
        assert_eq!(d, d2);
        assert_eq!(lookup(&d2, &ks, 7), Some(2));
        // Count byte occupies the same position as SlotBuf's, so generic
        // "is this leaf empty" checks work without tag dispatch.
        assert_eq!(d.to_slot().len(), 4);
    }

    #[test]
    fn adversarial_same_home_chain() {
        // All keys share one home bucket: worst-case linear chain. Insert,
        // verify, then delete from the middle of the chain.
        let mut d = HashDir::new();
        let mut ks = vec![0u64; 10];
        let mut picked = Vec::new();
        let mut k = 0u64;
        while picked.len() < 10 {
            if HashDir::home(fp_hash(k)) == 5 {
                let e = picked.len();
                ks[e] = k;
                assert!(d.insert(fp_hash(k), e));
                picked.push(k);
            }
            k += 1;
        }
        for (e, &key) in picked.iter().enumerate() {
            assert_eq!(lookup(&d, &ks, key), Some(e));
        }
        let victim = picked[4];
        let mut steps = 0;
        let p = d.find(fp_hash(victim), |e| ks[e] == victim, &mut steps).unwrap();
        assert!(steps >= 5, "chained probe must walk the chain");
        d.remove_at(p.bucket, |e| HashDir::home(fp_hash(ks[e])));
        for (e, &key) in picked.iter().enumerate() {
            if key == victim {
                assert_eq!(lookup(&d, &ks, key), None);
            } else {
                assert_eq!(lookup(&d, &ks, key), Some(e));
            }
        }
    }
}
