//! A generic undo journal for whole-block rewrites.
//!
//! NVM tree structures rewrite multi-line regions (leaf splits, in-place
//! compactions) that cannot be made atomic by ordering alone. The standard
//! fix — used by RNTree (§5.2.1 "log the whole leaf node … undo logs") and
//! FPTree's µLog — is an undo image: persist a copy of the victim block,
//! mark it valid, rewrite freely, invalidate. Crash recovery restores every
//! valid image, rolling any half-done rewrite back to its pre-image.
//!
//! The journal occupies a fixed pool region of `slots` entries, each one
//! header line plus a block image. Slot acquisition is an in-DRAM free
//! list guarded by a mutex + condvar (bounded by concurrent rewriters).
//!
//! Write ordering is the classic undo discipline: image (persisted), then
//! header-valid (persisted); invalidation persists the header again.
//! Restoration is idempotent.

use std::sync::{Condvar, Mutex};

use crate::{PmemPool, CACHE_LINE};

const VALID: u64 = 0x4A4E_4C56_414C_4944; // "JNLVALID"-ish magic

/// A persistent undo journal for fixed-size block images.
pub struct UndoJournal {
    region: u64,
    slots: usize,
    block: u64,
    free: Mutex<Vec<usize>>,
    available: Condvar,
}

impl UndoJournal {
    /// Creates the runtime handle for a journal region starting at `region`
    /// with `slots` entries of `block`-byte images. The region is plain
    /// pool space; call [`UndoJournal::format`] once at pool creation.
    ///
    /// # Panics
    /// Panics if `slots == 0` or `block` is not a positive multiple of 64.
    pub fn new(region: u64, slots: usize, block: u64) -> Self {
        assert!(slots > 0, "journal needs at least one slot");
        assert!(block > 0 && block.is_multiple_of(CACHE_LINE as u64), "block must be line-aligned");
        assert_eq!(region % CACHE_LINE as u64, 0, "region must be line-aligned");
        UndoJournal {
            region,
            slots,
            block,
            free: Mutex::new((0..slots).collect()),
            available: Condvar::new(),
        }
    }

    /// Total bytes a journal with `slots` entries of `block`-byte images
    /// occupies.
    pub fn region_bytes(slots: usize, block: u64) -> u64 {
        slots as u64 * (CACHE_LINE as u64 + block)
    }

    /// Start offset of the region.
    pub fn region(&self) -> u64 {
        self.region
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    fn header_off(&self, slot: usize) -> u64 {
        self.region + slot as u64 * (CACHE_LINE as u64 + self.block)
    }

    fn image_off(&self, slot: usize) -> u64 {
        self.header_off(slot) + CACHE_LINE as u64
    }

    /// Formats (invalidates) every slot; pool creation only.
    pub fn format(&self, pool: &PmemPool) {
        for s in 0..self.slots {
            pool.store_u64(self.header_off(s), 0);
            pool.store_u64(self.header_off(s) + 8, 0);
            pool.persist(self.header_off(s), 16);
        }
    }

    /// Acquires a free slot, blocking while all are in use.
    pub fn acquire(&self) -> usize {
        let mut free = self.free.lock().unwrap();
        loop {
            if let Some(s) = free.pop() {
                return s;
            }
            free = self.available.wait(free).unwrap();
        }
    }

    /// Writes and persists the undo image of the block at `block_off`, then
    /// marks the slot valid (persisted). The image is captured with atomic
    /// word loads, so concurrent atomic writers elsewhere in the block
    /// cannot cause data races.
    pub fn log(&self, pool: &PmemPool, slot: usize, block_off: u64) {
        debug_assert!(slot < self.slots);
        let img = self.image_off(slot);
        for w in 0..(self.block / 8) {
            let v = pool.load_u64(block_off + w * 8);
            pool.store_u64(img + w * 8, v);
        }
        pool.persist(img, self.block);
        pool.store_u64(self.header_off(slot), VALID);
        pool.store_u64(self.header_off(slot) + 8, block_off);
        pool.persist(self.header_off(slot), 16);
    }

    /// Invalidates the slot (persisted) and returns it to the free list.
    pub fn clear(&self, pool: &PmemPool, slot: usize) {
        debug_assert!(slot < self.slots);
        pool.store_u64(self.header_off(slot), 0);
        pool.persist(self.header_off(slot), 16);
        self.free.lock().unwrap().push(slot);
        self.available.notify_one();
    }

    /// Recovery: restores every valid slot's image (persisted) and
    /// invalidates the slot. Returns the restored block offsets.
    pub fn recover(&self, pool: &PmemPool) -> Vec<u64> {
        let mut restored = Vec::new();
        for s in 0..self.slots {
            if pool.load_u64(self.header_off(s)) != VALID {
                continue;
            }
            let block_off = pool.load_u64(self.header_off(s) + 8);
            let img = self.image_off(s);
            for w in 0..(self.block / 8) {
                let v = pool.load_u64(img + w * 8);
                pool.store_u64(block_off + w * 8, v);
            }
            pool.persist(block_off, self.block);
            pool.store_u64(self.header_off(s), 0);
            pool.persist(self.header_off(s), 16);
            restored.push(block_off);
        }
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PmemConfig;

    const BLOCK: u64 = 256;

    fn setup() -> (PmemPool, UndoJournal) {
        let pool = PmemPool::new(PmemConfig::for_testing(1 << 18));
        let j = UndoJournal::new(64, 4, BLOCK);
        j.format(&pool);
        (pool, j)
    }

    #[test]
    fn log_and_restore_roundtrip() {
        let (pool, j) = setup();
        let blk = 0x8000u64;
        for w in 0..(BLOCK / 8) {
            pool.store_u64(blk + w * 8, w + 1);
        }
        pool.persist(blk, BLOCK);
        let s = j.acquire();
        j.log(&pool, s, blk);
        for w in 0..(BLOCK / 8) {
            pool.store_u64(blk + w * 8, 0xDEAD);
        }
        pool.persist(blk, BLOCK);
        pool.simulate_crash();
        assert_eq!(j.recover(&pool), vec![blk]);
        for w in 0..(BLOCK / 8) {
            assert_eq!(pool.load_u64(blk + w * 8), w + 1);
        }
        assert!(j.recover(&pool).is_empty(), "recovery must be idempotent");
    }

    #[test]
    fn cleared_slot_is_not_restored() {
        let (pool, j) = setup();
        let blk = 0x8000u64;
        pool.store_u64(blk, 42);
        pool.persist(blk, 8);
        let s = j.acquire();
        j.log(&pool, s, blk);
        j.clear(&pool, s);
        pool.store_u64(blk, 43);
        pool.persist(blk, 8);
        pool.simulate_crash();
        assert!(j.recover(&pool).is_empty());
        assert_eq!(pool.load_u64(blk), 43);
    }

    #[test]
    fn acquire_blocks_until_clear() {
        use std::sync::Arc;
        let (pool, j) = setup();
        let pool = Arc::new(pool);
        let j = Arc::new(j);
        let mut held: Vec<usize> = (0..4).map(|_| j.acquire()).collect();
        let j2 = Arc::clone(&j);
        let p2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let s = j2.acquire();
            j2.clear(&p2, s);
            s
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        j.clear(&pool, held.pop().unwrap());
        assert!(waiter.join().unwrap() < 4);
        for s in held {
            j.clear(&pool, s);
        }
    }

    #[test]
    fn region_bytes_matches_layout() {
        assert_eq!(UndoJournal::region_bytes(4, BLOCK), 4 * (64 + BLOCK));
    }
}
