//! The persistent-memory pool: arena ("cache view") + durable image
//! ("NVM view"), persist instructions, eviction injection and crash
//! simulation. See the crate docs for the hardware model.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use obs::{EventKind, EventRing};

use crate::buffer::Buffer;
use crate::latency::busy_wait_ns;
use crate::rng::SplitMix64;
use crate::stats::PmemStats;
use crate::{line_of, CACHE_LINE};

/// Number of stripe locks guarding durable-image line copies. Power of two.
const STRIPES: usize = 256;

/// Configuration for a [`PmemPool`].
#[derive(Debug, Clone)]
pub struct PmemConfig {
    /// Pool capacity in bytes (rounded up to a cache line).
    pub size: usize,
    /// Nanoseconds one persisted cache line stalls the issuing core.
    /// The paper's NVDIMM write latency is 140 ns.
    pub write_latency_ns: u64,
    /// Whether to maintain the durable image ("shadow mode"). Required for
    /// crash simulation and eviction injection; costs one line copy per
    /// flush. Benchmarks that only need counters + latency can disable it.
    pub shadow: bool,
}

impl PmemConfig {
    /// Shadow mode on, latency off: the configuration for correctness and
    /// crash-consistency tests.
    pub fn for_testing(size: usize) -> Self {
        PmemConfig {
            size,
            write_latency_ns: 0,
            shadow: true,
        }
    }

    /// Shadow mode off, paper latency on: the configuration for benchmarks.
    pub fn for_benchmarks(size: usize) -> Self {
        PmemConfig {
            size,
            write_latency_ns: 140,
            shadow: false,
        }
    }

    /// Everything off: pure functional runs (fastest; no crash support).
    pub fn fast(size: usize) -> Self {
        PmemConfig {
            size,
            write_latency_ns: 0,
            shadow: false,
        }
    }
}

/// An in-flight asynchronous flush: CLWBs issued, fence still pending.
/// Created by [`PmemPool::flush_async`], consumed by [`PmemPool::drain`].
#[derive(Debug)]
pub struct FlushHandle {
    off: u64,
    len: u64,
    /// When the media write completes; the drain spins out the remainder.
    ready_at: std::time::Instant,
}

/// A simulated persistent-memory device. See the crate docs.
///
/// Offsets are `u64` byte positions from the base of the pool. Offset-based
/// addressing mirrors how PM-aware filesystems expose NVM (a DAX mapping at
/// a fixed base) and guarantees that a stale "pointer" can never be a
/// memory-safety hazard — only a logical one that version validation
/// catches, exactly as in the paper.
pub struct PmemPool {
    arena: Buffer,
    durable: Option<Buffer>,
    stripe_locks: Vec<Mutex<()>>,
    stats: PmemStats,
    cfg: PmemConfig,
    evict_rng: Mutex<SplitMix64>,
    /// Crash-point injection: counts down on every persist; the call that
    /// takes it from 1 to 0 panics *before* flushing. ≤ 0 = disarmed.
    persist_trap: AtomicI64,
    /// Crash-forensics event ring. Lives on the pool (not the tree) so the
    /// timeline survives tree teardown/re-creation across crash/recover
    /// cycles; upper layers record splits, rollbacks and recovery steps
    /// here through [`PmemPool::events`]. `Arc`-shared so transient DRAM
    /// components (e.g. the page cache) can keep recording into the same
    /// timeline without holding the pool itself.
    events: Arc<EventRing>,
}

impl PmemPool {
    /// Creates a zeroed pool with the given configuration.
    pub fn new(cfg: PmemConfig) -> Self {
        let arena = Buffer::zeroed(cfg.size);
        let durable = cfg.shadow.then(|| Buffer::zeroed(cfg.size));
        let stripe_locks = (0..STRIPES).map(|_| Mutex::new(())).collect();
        PmemPool {
            arena,
            durable,
            stripe_locks,
            stats: PmemStats::default(),
            cfg,
            evict_rng: Mutex::new(SplitMix64::new(0x5EED_CAFE)),
            persist_trap: AtomicI64::new(0),
            events: Arc::new(EventRing::new()),
        }
    }

    /// Pool capacity in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.arena.len() as u64
    }

    /// True if the pool has zero capacity (never true in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arena.len() == 0
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &PmemConfig {
        &self.cfg
    }

    /// Persistence counters.
    #[inline]
    pub fn stats(&self) -> &PmemStats {
        &self.stats
    }

    /// The pool's crash-forensics event ring. Components above the pool
    /// (trees, recovery) record their rare diagnostic events here; the
    /// pool itself records crash injections and fired persist traps.
    #[inline]
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// A shared handle to the event ring, for components whose lifetime is
    /// not tied to the pool borrow (the DRAM page cache records eviction
    /// and invalidation events through this).
    #[inline]
    pub fn events_handle(&self) -> Arc<EventRing> {
        Arc::clone(&self.events)
    }

    /// The shared persist-trap check: the armed call dies *before*
    /// flushing anything — and before touching any counter — so a
    /// trapped compound instruction never half-counts. Records the trap
    /// in the event ring first (the ring is volatile DRAM and the panic
    /// is caught by the test harness, so the record survives).
    #[inline]
    fn trap_check(&self) {
        if self.persist_trap.load(Ordering::Relaxed) > 0
            && self.persist_trap.fetch_sub(1, Ordering::Relaxed) == 1
        {
            self.events.record(
                EventKind::TrapFired,
                self.stats.persists.load(Ordering::Relaxed),
                0,
            );
            panic!("pmem persist trap fired (simulated crash point)");
        }
    }

    #[inline]
    fn check(&self, off: u64, len: u64) {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len()),
            "pmem access out of bounds: off={off} len={len} pool={}",
            self.len()
        );
    }

    /// Raw arena pointer for `off`. Bounds-checked.
    ///
    /// # Safety contract (for callers)
    /// Dereferencing the pointer must follow the crate's concurrency model:
    /// shared-mutable words must be accessed as atomics.
    #[inline]
    pub fn base_ptr(&self, off: u64) -> *mut u8 {
        self.check(off, 0);
        // SAFETY: `off <= len` checked above.
        unsafe { self.arena.base().add(off as usize) }
    }

    /// Best-effort prefetch hint for the cache lines covering
    /// `[off, off + len)`. Purely a performance hint: no ordering effects,
    /// no stats, no simulated latency (prefetches are free on real NVM
    /// reads too — only persists pay the media write latency).
    #[inline]
    pub fn prefetch(&self, off: u64, len: u64) {
        self.check(off, len.max(1));
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let base = self.arena.base();
            let mut line = off & !63;
            while line < off + len.max(1) {
                _mm_prefetch::<_MM_HINT_T0>(base.add(line as usize) as *const i8);
                line += 64;
            }
        }
    }

    /// Returns the arena word at `off` as an `&AtomicU64`.
    /// `off` must be 8-byte aligned.
    #[inline]
    pub fn atomic_u64(&self, off: u64) -> &AtomicU64 {
        self.check(off, 8);
        assert_eq!(off % 8, 0, "unaligned atomic access at {off}");
        // SAFETY: in-bounds, aligned, and AtomicU64 has no invalid bit
        // patterns; the arena outlives the returned reference via `&self`.
        unsafe { &*(self.arena.base().add(off as usize) as *const AtomicU64) }
    }

    /// Relaxed atomic load of the arena word at `off`.
    #[inline]
    pub fn load_u64(&self, off: u64) -> u64 {
        self.atomic_u64(off).load(Ordering::Relaxed)
    }

    /// Acquire atomic load of the arena word at `off`.
    #[inline]
    pub fn load_u64_acquire(&self, off: u64) -> u64 {
        self.atomic_u64(off).load(Ordering::Acquire)
    }

    /// Relaxed atomic store to the arena word at `off`.
    #[inline]
    pub fn store_u64(&self, off: u64, val: u64) {
        self.atomic_u64(off).store(val, Ordering::Relaxed);
    }

    /// Release atomic store to the arena word at `off`.
    #[inline]
    pub fn store_u64_release(&self, off: u64, val: u64) {
        self.atomic_u64(off).store(val, Ordering::Release);
    }

    /// Copies `src` into the arena at `off` **non-atomically**.
    ///
    /// Only valid while no other thread can access `[off, off+src.len())`
    /// (initialisation, recovery, data private to the writing thread).
    pub fn write_bytes(&self, off: u64, src: &[u8]) {
        self.check(off, src.len() as u64);
        // SAFETY: in-bounds; exclusivity is the caller's contract above.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.arena.base().add(off as usize), src.len());
        }
    }

    /// Copies arena bytes `[off, off+dst.len())` into `dst` **non-atomically**.
    ///
    /// Only valid while no other thread writes that range.
    pub fn read_bytes(&self, off: u64, dst: &mut [u8]) {
        self.check(off, dst.len() as u64);
        // SAFETY: in-bounds; exclusivity is the caller's contract above.
        unsafe {
            std::ptr::copy_nonoverlapping(self.arena.base().add(off as usize), dst.as_mut_ptr(), dst.len());
        }
    }

    /// The persistent instruction: flush every cache line overlapping
    /// `[off, off+len)` (CLWB per line) and fence (SFENCE).
    ///
    /// Each flushed line stalls for the configured NVM write latency and, in
    /// shadow mode, is copied into the durable image with atomic word loads
    /// (so racing relaxed writers are captured without data races — some
    /// still-in-flight value of each word is persisted, like real hardware).
    pub fn persist(&self, off: u64, len: u64) {
        // Crash-point injection (tests): the armed persist call dies
        // before flushing anything, modelling a power failure at exactly
        // this persistent instruction. See `arm_persist_trap`.
        self.trap_check();
        if len == 0 {
            self.stats.fences.fetch_add(1, Ordering::Relaxed);
            self.stats.persists.fetch_add(1, Ordering::Relaxed);
            obs::note_persist(1);
            return;
        }
        self.check(off, len);
        let first = line_of(off);
        let last = line_of(off + len - 1);
        let mut line = first;
        loop {
            self.flush_line(line);
            if line == last {
                break;
            }
            line += CACHE_LINE as u64;
        }
        self.stats.fences.fetch_add(1, Ordering::Relaxed);
        self.stats.persists.fetch_add(1, Ordering::Relaxed);
        obs::note_persist(1);
    }

    /// The coalesced persistent instruction: flush the cache lines covering
    /// *all* of `ranges` (one CLWB per **unique** line) and fence once.
    ///
    /// This is what CLWB batching does on real hardware — a store sequence
    /// that dirties N lines needs N CLWBs but only one trailing SFENCE, and
    /// two stores to the *same* line need only one CLWB. The accounting
    /// follows: `lines_flushed` grows by the number of unique lines spanned
    /// (each paying the media write latency), while `persists`/`fences` grow
    /// by one for the whole batch. Batched writers (bulk load, per-leaf run
    /// apply) use this so same-line persists within one apply are deduped
    /// instead of each paying a full flush+fence round trip.
    ///
    /// Empty ranges (`len == 0`) contribute no lines; a call whose ranges
    /// are all empty degenerates to a bare fence, exactly like
    /// `persist(off, 0)`. The crash trap treats the whole call as a single
    /// crash point, firing before any line is flushed.
    pub fn persist_many(&self, ranges: &[(u64, u64)]) {
        self.trap_check();
        let mut lines: Vec<u64> = Vec::with_capacity(ranges.len() * 2);
        for &(off, len) in ranges {
            if len == 0 {
                continue;
            }
            self.check(off, len);
            let last = line_of(off + len - 1);
            let mut line = line_of(off);
            loop {
                lines.push(line);
                if line == last {
                    break;
                }
                line += CACHE_LINE as u64;
            }
        }
        lines.sort_unstable();
        lines.dedup();
        for &line in &lines {
            self.flush_line(line);
        }
        self.stats.fences.fetch_add(1, Ordering::Relaxed);
        self.stats.persists.fetch_add(1, Ordering::Relaxed);
        obs::note_persist(1);
    }

    /// Issues the CLWBs for `[off, off+len)` without the trailing fence:
    /// the media write-latency clock starts now, but the calling thread
    /// keeps running. Pass the handle to [`PmemPool::drain`] — the SFENCE —
    /// which spins out only whatever latency the intervening work did not
    /// already cover, then performs the durable-image copy, crash-trap
    /// check and persist accounting exactly as [`PmemPool::persist`] would.
    ///
    /// This models the flush/work overlap of a `clwb; ...work...; sfence`
    /// sequence. Two caveats, both matching hardware: the lines are not
    /// durable until the drain (a crash in between may lose them), and a
    /// store to a flushed line *after* `flush_async` may still reach the
    /// durable image at drain time (redirtying after CLWB leaves what gets
    /// home to the media unspecified) — callers overlap only lines they
    /// exclusively own and do not rewrite.
    #[must_use = "an async flush is not durable until drained (the fence)"]
    pub fn flush_async(&self, off: u64, len: u64) -> FlushHandle {
        debug_assert!(len > 0);
        self.check(off, len);
        let lines = (line_of(off + len - 1) - line_of(off)) / CACHE_LINE as u64 + 1;
        FlushHandle {
            off,
            len,
            ready_at: std::time::Instant::now()
                + std::time::Duration::from_nanos(lines * self.cfg.write_latency_ns),
        }
    }

    /// The fence paired with [`PmemPool::flush_async`]: waits out the
    /// remaining media latency (often none), then applies the durable-image
    /// copies and counts the persist instruction. The crash trap fires here
    /// — at the fence — because that is the point where the seed's
    /// synchronous `persist` made the lines durable.
    pub fn drain(&self, h: FlushHandle) {
        self.trap_check();
        while std::time::Instant::now() < h.ready_at {
            std::hint::spin_loop();
        }
        let first = line_of(h.off);
        let last = line_of(h.off + h.len - 1);
        let mut line = first;
        loop {
            self.stats.lines_flushed.fetch_add(1, Ordering::Relaxed);
            self.copy_line_to_durable(line);
            if line == last {
                break;
            }
            line += CACHE_LINE as u64;
        }
        self.stats.fences.fetch_add(1, Ordering::Relaxed);
        self.stats.persists.fetch_add(1, Ordering::Relaxed);
        obs::note_persist(1);
    }

    /// Flushes a single line: latency stall + durable-image copy.
    fn flush_line(&self, line: u64) {
        debug_assert_eq!(line % CACHE_LINE as u64, 0);
        busy_wait_ns(self.cfg.write_latency_ns);
        self.stats.lines_flushed.fetch_add(1, Ordering::Relaxed);
        self.copy_line_to_durable(line);
    }

    /// Eviction injection: copies `count` pseudo-random cache lines from the
    /// arena to the durable image, modelling uncontrolled cache evictions.
    ///
    /// No-op unless shadow mode is on. Returns the offsets of evicted lines.
    pub fn evict_random_lines(&self, count: usize) -> Vec<u64> {
        if self.durable.is_none() {
            return Vec::new();
        }
        let lines = self.len() / CACHE_LINE as u64;
        let mut out = Vec::with_capacity(count);
        let mut rng = self.evict_rng.lock().unwrap();
        for _ in 0..count {
            let line = rng.next_below(lines) * CACHE_LINE as u64;
            out.push(line);
        }
        drop(rng);
        for &line in &out {
            self.evict_line(line);
        }
        out
    }

    /// Evicts the line containing `off`: the line reaches the durable image,
    /// but no persist instruction is accounted and no latency is charged —
    /// evictions happen off the program's critical path on real hardware.
    pub fn evict_line(&self, off: u64) {
        self.check(off, 1);
        if self.durable.is_some() {
            self.copy_line_to_durable(line_of(off));
            self.stats.lines_evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn copy_line_to_durable(&self, line: u64) {
        if let Some(durable) = &self.durable {
            let stripe = (line as usize / CACHE_LINE) & (STRIPES - 1);
            let _g = self.stripe_locks[stripe].lock().unwrap();
            for w in 0..(CACHE_LINE as u64 / 8) {
                let v = self.load_u64(line + w * 8);
                // SAFETY: in-bounds; durable-image writes are serialised per
                // line by the stripe lock; the durable image is only read at
                // quiescence (crash) or under the same stripe lock.
                unsafe {
                    let dst = durable.base().add((line + w * 8) as usize) as *mut u64;
                    dst.write(v);
                }
            }
        }
    }

    /// Simulates a power failure followed by reboot: the arena (cache) is
    /// replaced wholesale by the durable image (NVM). Un-persisted stores
    /// vanish.
    ///
    /// Requires quiescence: the caller must guarantee no concurrent pool
    /// access (all tests/benches join worker threads first).
    ///
    /// # Panics
    /// Panics if the pool was created without shadow mode.
    pub fn simulate_crash(&self) {
        let durable = self
            .durable
            .as_ref()
            .expect("simulate_crash requires PmemConfig::shadow = true");
        // SAFETY: quiescence is the documented caller contract; both buffers
        // are in-bounds and equally sized.
        unsafe {
            std::ptr::copy_nonoverlapping(durable.base(), self.arena.base(), self.arena.len());
        }
        let crashes = self.stats.crashes.fetch_add(1, Ordering::Relaxed) + 1;
        self.events.record(EventKind::CrashInjection, crashes, 0);
    }

    /// Copies `[off, off+len)` to the durable image without latency,
    /// counters, or trap interaction (snapshot restore only).
    pub(crate) fn persist_region_quiet(&self, off: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.check(off, len);
        let first = line_of(off);
        let last = line_of(off + len - 1);
        let mut line = first;
        loop {
            self.copy_line_to_durable(line);
            if line == last {
                break;
            }
            line += CACHE_LINE as u64;
        }
    }

    /// Arms the persist trap: the `nth` subsequent [`PmemPool::persist`]
    /// call (1-based) panics before flushing, simulating a power failure
    /// at exactly that persistent instruction. Together with
    /// `catch_unwind` + [`PmemPool::simulate_crash`], this lets tests
    /// sweep *every* inter-persist crash point of an operation sequence
    /// (see `tests/crash_points.rs`).
    pub fn arm_persist_trap(&self, nth: u64) {
        assert!(nth > 0 && nth <= i64::MAX as u64);
        self.persist_trap.store(nth as i64, Ordering::Relaxed);
    }

    /// Disarms the persist trap.
    pub fn disarm_persist_trap(&self) {
        self.persist_trap.store(0, Ordering::Relaxed);
    }

    /// Reads the durable-image word at `off` (test/diagnostic helper).
    ///
    /// # Panics
    /// Panics if shadow mode is off.
    pub fn read_durable_u64(&self, off: u64) -> u64 {
        self.check(off, 8);
        assert_eq!(off % 8, 0, "unaligned durable read at {off}");
        let durable = self.durable.as_ref().expect("shadow mode required");
        let stripe = (line_of(off) as usize / CACHE_LINE) & (STRIPES - 1);
        let _g = self.stripe_locks[stripe].lock().unwrap();
        // SAFETY: in-bounds and aligned; serialised with flushes by the
        // stripe lock.
        unsafe { (durable.base().add(off as usize) as *const u64).read() }
    }
}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemPool")
            .field("len", &self.len())
            .field("shadow", &self.durable.is_some())
            .field("write_latency_ns", &self.cfg.write_latency_ns)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PmemPool {
        PmemPool::new(PmemConfig::for_testing(1 << 16))
    }

    #[test]
    fn store_then_load_roundtrip() {
        let p = pool();
        p.store_u64(128, 0xDEAD_BEEF);
        assert_eq!(p.load_u64(128), 0xDEAD_BEEF);
    }

    #[test]
    fn unpersisted_store_dies_in_crash() {
        let p = pool();
        p.store_u64(128, 7);
        p.simulate_crash();
        assert_eq!(p.load_u64(128), 0);
    }

    #[test]
    fn persisted_store_survives_crash() {
        let p = pool();
        p.store_u64(128, 7);
        p.store_u64(136, 9);
        p.persist(128, 16);
        p.simulate_crash();
        assert_eq!(p.load_u64(128), 7);
        assert_eq!(p.load_u64(136), 9);
    }

    #[test]
    fn persist_is_line_granular() {
        let p = pool();
        // Two words on the SAME line: persisting one word drags the other.
        p.store_u64(192, 1);
        p.store_u64(200, 2);
        p.persist(192, 8);
        assert_eq!(p.read_durable_u64(200), 2);
        // A word on a DIFFERENT line is not dragged.
        p.store_u64(256, 3);
        assert_eq!(p.read_durable_u64(256), 0);
    }

    #[test]
    fn persist_counters_count_lines_and_fences() {
        let p = pool();
        p.persist(0, 8);
        p.persist(60, 8); // straddles two lines
        let s = p.stats().snapshot();
        assert_eq!(s.persists, 2);
        assert_eq!(s.fences, 2);
        assert_eq!(s.lines_flushed, 3);
    }

    #[test]
    fn persist_many_dedupes_lines_and_fences_once() {
        let p = pool();
        p.store_u64(128, 1);
        p.store_u64(136, 2); // same line as 128
        p.store_u64(256, 3); // different line
        // Three ranges, two on the same line: 2 unique lines, 1 instruction.
        p.persist_many(&[(128, 8), (136, 8), (256, 8)]);
        let s = p.stats().snapshot();
        assert_eq!(s.persists, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.lines_flushed, 2);
        assert_eq!(p.read_durable_u64(128), 1);
        assert_eq!(p.read_durable_u64(136), 2);
        assert_eq!(p.read_durable_u64(256), 3);
    }

    #[test]
    fn persist_many_straddling_range_counts_each_line_once() {
        let p = pool();
        p.store_u64(56, 1);
        p.store_u64(64, 2);
        // One straddling range plus a redundant second range on line 64.
        p.persist_many(&[(56, 16), (64, 8)]);
        let s = p.stats().snapshot();
        assert_eq!(s.persists, 1);
        assert_eq!(s.lines_flushed, 2);
        p.simulate_crash();
        assert_eq!(p.load_u64(56), 1);
        assert_eq!(p.load_u64(64), 2);
    }

    #[test]
    fn persist_many_empty_is_a_bare_fence() {
        let p = pool();
        p.persist_many(&[]);
        p.persist_many(&[(128, 0)]);
        let s = p.stats().snapshot();
        assert_eq!(s.persists, 2);
        assert_eq!(s.fences, 2);
        assert_eq!(s.lines_flushed, 0);
    }

    #[test]
    fn persist_many_is_one_crash_point() {
        let p = pool();
        p.store_u64(128, 7);
        p.store_u64(256, 9);
        p.arm_persist_trap(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.persist_many(&[(128, 8), (256, 8)])
        }));
        assert!(r.is_err(), "trap must fire on the batched persist");
        // Died before any line was flushed: the whole batch is lost.
        assert_eq!(p.read_durable_u64(128), 0);
        assert_eq!(p.read_durable_u64(256), 0);
        p.disarm_persist_trap();
        p.persist_many(&[(128, 8), (256, 8)]);
        assert_eq!(p.read_durable_u64(128), 7);
        assert_eq!(p.read_durable_u64(256), 9);
    }

    #[test]
    fn trapped_compound_counts_nothing() {
        // The counter-consistency contract of the single-fence compound
        // (`persist_many`): counters move exactly once per *completed*
        // compound, and a trapped compound — which dies before flushing —
        // moves none of them. Pinned here so a future reordering of the
        // trap check cannot silently half-count a crashed batch.
        let p = pool();
        p.store_u64(128, 7);
        p.store_u64(256, 9);
        p.arm_persist_trap(1);
        let before = p.stats().snapshot();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.persist_many(&[(128, 8), (256, 8)])
        }));
        assert!(r.is_err());
        let after = p.stats().snapshot();
        assert_eq!(after, before, "a trapped compound must not touch any counter");
        p.disarm_persist_trap();
        // The next compound counts exactly once: +1 persist, +1 fence,
        // one line flush per unique line.
        p.persist_many(&[(128, 8), (136, 8), (256, 8)]);
        let done = p.stats().snapshot().since(&after);
        assert_eq!(done.persists, 1);
        assert_eq!(done.fences, 1);
        assert_eq!(done.lines_flushed, 2);
    }

    #[test]
    fn persists_equal_fences_across_mixed_traps() {
        // Every persist path (sync, compound, async drain) issues exactly
        // one fence per accounted persist, trapped calls issue neither.
        let p = pool();
        p.store_u64(128, 1);
        p.persist(128, 8);
        p.persist_many(&[(128, 8), (256, 8)]);
        for nth in [1u64, 2] {
            p.arm_persist_trap(nth);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.persist(128, 8);
                p.persist_many(&[(128, 8)]);
            }));
            assert!(r.is_err());
            p.disarm_persist_trap();
        }
        let h = p.flush_async(128, 8);
        p.drain(h);
        let s = p.stats().snapshot();
        assert_eq!(s.persists, s.fences, "one fence per accounted persist");
        // 2 clean + 1 surviving from each trap sweep (nth=2 lets the
        // first call through) + 1 drain.
        assert_eq!(s.persists, 4);
    }

    #[test]
    #[cfg(feature = "record")] // asserts recording, which is compiled out otherwise
    fn trap_and_crash_land_in_the_event_ring() {
        let p = pool();
        p.store_u64(128, 1);
        p.persist(128, 8);
        p.arm_persist_trap(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.persist(128, 8)));
        assert!(r.is_err());
        p.disarm_persist_trap();
        p.simulate_crash();
        let dump = p.events().dump();
        let kinds: Vec<_> = dump.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![obs::EventKind::TrapFired, obs::EventKind::CrashInjection]);
        assert_eq!(dump[0].a, 1, "one persist completed before the trap");
        assert_eq!(dump[1].a, 1, "first crash on this pool");
    }

    #[test]
    fn async_flush_is_durable_only_after_drain() {
        let p = pool();
        p.store_u64(128, 7);
        let h = p.flush_async(128, 16);
        // CLWB issued, fence pending: a crash here loses the line.
        assert_eq!(p.read_durable_u64(128), 0);
        assert_eq!(p.stats().snapshot().persists, 0);
        p.drain(h);
        assert_eq!(p.read_durable_u64(128), 7);
        let s = p.stats().snapshot();
        assert_eq!(s.persists, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.lines_flushed, 1);
        p.simulate_crash();
        assert_eq!(p.load_u64(128), 7);
    }

    #[test]
    fn async_flush_straddling_lines_counts_like_persist() {
        let p = pool();
        p.store_u64(56, 1);
        p.store_u64(64, 2);
        let h = p.flush_async(56, 16); // straddles the line boundary at 64
        p.drain(h);
        let s = p.stats().snapshot();
        assert_eq!(s.persists, 1);
        assert_eq!(s.lines_flushed, 2);
        assert_eq!(p.read_durable_u64(56), 1);
        assert_eq!(p.read_durable_u64(64), 2);
    }

    #[test]
    fn persist_trap_fires_at_the_drain() {
        let p = pool();
        p.store_u64(128, 7);
        let h = p.flush_async(128, 8);
        p.arm_persist_trap(1);
        let fence = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.drain(h)));
        assert!(fence.is_err(), "trap must fire at the fence");
        // Died before the durable copy: the line is lost, like a power
        // failure between CLWB and SFENCE.
        assert_eq!(p.read_durable_u64(128), 0);
        p.disarm_persist_trap();
    }

    #[test]
    fn eviction_persists_without_persist_instruction() {
        let p = pool();
        p.store_u64(512, 42);
        p.evict_line(512);
        assert_eq!(p.read_durable_u64(512), 42);
        let s = p.stats().snapshot();
        assert_eq!(s.persists, 0);
        assert_eq!(s.lines_evicted, 1);
    }

    #[test]
    fn random_evictions_stay_in_bounds_and_are_durable() {
        let p = pool();
        for i in 0..100u64 {
            p.store_u64(i * 8, i + 1);
        }
        let lines = p.evict_random_lines(16);
        assert_eq!(lines.len(), 16);
        for l in lines {
            assert!(l < p.len());
            assert_eq!(l % CACHE_LINE as u64, 0);
        }
    }

    #[test]
    fn write_read_bytes_roundtrip() {
        let p = pool();
        let data = [1u8, 2, 3, 4, 5];
        p.write_bytes(1000, &data);
        let mut out = [0u8; 5];
        p.read_bytes(1000, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        let p = pool();
        p.load_u64(p.len());
    }

    #[test]
    #[should_panic(expected = "shadow")]
    fn crash_without_shadow_panics() {
        let p = PmemPool::new(PmemConfig::fast(4096));
        p.simulate_crash();
    }

    #[test]
    fn concurrent_persists_do_not_corrupt() {
        use std::sync::Arc;
        let p = Arc::new(pool());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let off = 4096 + t * 4096 + (i % 64) * 8;
                    p.store_u64(off, t * 1000 + i);
                    p.persist(off, 8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Last write per offset must be durable.
        for t in 0..4u64 {
            for s in 0..64u64 {
                let off = 4096 + t * 4096 + s * 8;
                let v = p.read_durable_u64(off);
                assert_eq!(v % 1000 % 64, s % 64 % 64, "slot mismatch at {off}: {v}");
            }
        }
    }
}
