//! The root table: a well-known cache line of durable root pointers.
//!
//! The paper stores "the pointer to the left-most leaf node … in a
//! well-known static address for starting the recovery" (§5.4). We reserve
//! the pool's first cache line as eight named `u64` root slots; writers
//! persist the line after each update.

use crate::{PmemPool, CACHE_LINE};

/// Number of root slots in the root table.
pub const ROOT_SLOTS: usize = 8;

/// Accessor for the durable root-pointer table at pool offset 0.
///
/// Slot 0 is conventionally the leftmost-leaf offset; the remaining slots
/// are free for per-structure metadata (journal region offset, etc.).
#[derive(Debug, Clone, Copy)]
pub struct RootTable;

impl RootTable {
    /// Byte offset of the first usable pool byte above the root table.
    pub const END: u64 = CACHE_LINE as u64;

    /// Reads root slot `idx`.
    pub fn get(pool: &PmemPool, idx: usize) -> u64 {
        assert!(idx < ROOT_SLOTS, "root slot out of range");
        pool.load_u64_acquire((idx * 8) as u64)
    }

    /// Writes root slot `idx` and persists the root line (one persistent
    /// instruction).
    pub fn set(pool: &PmemPool, idx: usize, val: u64) {
        assert!(idx < ROOT_SLOTS, "root slot out of range");
        pool.store_u64_release((idx * 8) as u64, val);
        pool.persist((idx * 8) as u64, 8);
    }

    /// Writes root slot `idx` without persisting (callers batching several
    /// slot updates persist the line once themselves).
    pub fn set_volatile(pool: &PmemPool, idx: usize, val: u64) {
        assert!(idx < ROOT_SLOTS, "root slot out of range");
        pool.store_u64_release((idx * 8) as u64, val);
    }

    /// Persists the whole root line.
    pub fn persist(pool: &PmemPool) {
        pool.persist(0, CACHE_LINE as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PmemConfig;

    #[test]
    fn roots_survive_crash() {
        let pool = PmemPool::new(PmemConfig::for_testing(1 << 12));
        RootTable::set(&pool, 0, 4096);
        RootTable::set(&pool, 3, 77);
        pool.simulate_crash();
        assert_eq!(RootTable::get(&pool, 0), 4096);
        assert_eq!(RootTable::get(&pool, 3), 77);
        assert_eq!(RootTable::get(&pool, 1), 0);
    }

    #[test]
    fn volatile_set_needs_explicit_persist() {
        let pool = PmemPool::new(PmemConfig::for_testing(1 << 12));
        RootTable::set_volatile(&pool, 2, 9);
        pool.simulate_crash();
        assert_eq!(RootTable::get(&pool, 2), 0);
        RootTable::set_volatile(&pool, 2, 9);
        RootTable::persist(&pool);
        pool.simulate_crash();
        assert_eq!(RootTable::get(&pool, 2), 9);
    }

    #[test]
    #[should_panic(expected = "root slot")]
    fn out_of_range_slot_panics() {
        let pool = PmemPool::new(PmemConfig::for_testing(1 << 12));
        RootTable::get(&pool, ROOT_SLOTS);
    }
}
