//! # nvm — simulated byte-addressable persistent memory
//!
//! This crate is the persistent-memory substrate for the RNTree reproduction.
//! The paper's testbed attaches NVDIMM-N modules to the memory bus and
//! persists CPU-cache state with `CLWB` + `SFENCE`. We model that hardware
//! with two buffers:
//!
//! * the **arena** — the working memory every load/store touches. It plays
//!   the role of *the CPU cache hierarchy*: fast, transient, lost on a crash.
//! * the **durable image** — updated only by [`PmemPool::persist`] (the
//!   explicit flush+fence "persistent instruction") and by injected cache
//!   evictions. It plays the role of *the NVM medium*: whatever is here
//!   survives a crash.
//!
//! This split captures exactly the three properties every claim in the paper
//! reduces to:
//!
//! 1. **How many persistent instructions** an operation issues — counted in
//!    [`PmemStats`] and the basis of Table 1 / Figure 4.
//! 2. **Where persists sit relative to critical sections** — persists spin
//!    for a configurable NVM write latency (140 ns by default, the paper's
//!    measured number), so holding a lock across a persist is visibly more
//!    expensive than persisting outside it (Figures 8–10).
//! 3. **Which stores are durable at a crash point** — un-persisted stores
//!    die with the arena; [`PmemPool::evict_random_lines`] models the
//!    *uncontrolled* cache evictions that force real NVM code to be correct
//!    for any subset of dirty lines reaching the medium early.
//!
//! All persistence is cache-line (64 B) granular, like real hardware.
//!
//! ## Concurrency model
//!
//! The arena is shared mutable memory. All accesses that may race go through
//! the atomic accessors ([`PmemPool::atomic_u64`], [`PmemPool::load_u64`],
//! [`PmemPool::store_u64`]); [`PmemPool::persist`] snapshots lines with
//! atomic word loads, so the simulator itself is data-race free. The typed
//! volatile accessors are reserved for single-writer or quiesced phases
//! (initialisation, recovery) and say so in their docs.
//!
//! ## Quick example
//!
//! ```
//! use nvm::{PmemConfig, PmemPool};
//!
//! let pool = PmemPool::new(PmemConfig::for_testing(1 << 20));
//! let off = 4096;
//! pool.store_u64(off, 0xfeed);
//! // Not yet durable: a crash would lose it.
//! assert_eq!(pool.read_durable_u64(off), 0);
//! pool.persist(off, 8);
//! assert_eq!(pool.read_durable_u64(off), 0xfeed);
//! pool.simulate_crash();
//! assert_eq!(pool.load_u64(off), 0xfeed);
//! ```

#![deny(missing_docs)]

mod alloc;
mod buffer;
mod cache;
mod file;
mod journal;
mod latency;
mod pool;
mod poolset;
mod rng;
mod root;
mod stats;

pub use alloc::BlockAllocator;
pub use cache::{CacheStats, FillGuard, FrameView, PageCache, CACHE_WAYS, FRAME_WORDS};
pub use journal::UndoJournal;
pub use latency::busy_wait_ns;
pub use pool::{FlushHandle, PmemConfig, PmemPool};
pub use poolset::PoolSet;
pub use rng::SplitMix64;
pub use root::{RootTable, ROOT_SLOTS};
pub use stats::{PmemStats, PmemStatsSnapshot};

/// Cache-line size in bytes. All persistence is tracked at this granularity,
/// matching the flush granularity of `CLWB`/`CLFLUSH` on x86.
pub const CACHE_LINE: usize = 64;

/// Returns the first byte offset of the cache line containing `off`.
#[inline]
pub const fn line_of(off: u64) -> u64 {
    off & !(CACHE_LINE as u64 - 1)
}

/// Number of cache lines touched by the byte range `[off, off + len)`.
#[inline]
pub const fn lines_spanned(off: u64, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = line_of(off);
    let last = line_of(off + len - 1);
    (last - first) / CACHE_LINE as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_rounds_down() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(130), 128);
    }

    #[test]
    fn lines_spanned_counts_partial_lines() {
        assert_eq!(lines_spanned(0, 0), 0);
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(0, 64), 1);
        assert_eq!(lines_spanned(0, 65), 2);
        assert_eq!(lines_spanned(63, 2), 2);
        assert_eq!(lines_spanned(60, 8), 2);
        assert_eq!(lines_spanned(64, 128), 2);
    }
}
