//! Persistence-instruction accounting.
//!
//! The paper's Table 1 characterises every tree by the number of *persistent
//! instructions* (a cache-line flush followed by a fence) each modify
//! operation issues, and its Figure 4 analysis attributes single-thread
//! throughput differences almost entirely to this count. These counters make
//! that number directly observable in benchmarks and enforceable in tests.

use std::sync::atomic::{AtomicU64, Ordering};

use obs::{Json, ToJson};

/// Live (atomic) persistence counters attached to a [`crate::PmemPool`].
#[derive(Debug, Default)]
pub struct PmemStats {
    /// Compound persistent instructions (`persist` calls = CLWB…CLWB+SFENCE).
    pub persists: AtomicU64,
    /// Individual cache-line flushes (CLWBs) issued by those persists.
    pub lines_flushed: AtomicU64,
    /// Memory fences issued (one per `persist` call).
    pub fences: AtomicU64,
    /// Cache lines copied to the durable image by eviction injection.
    pub lines_evicted: AtomicU64,
    /// Simulated crashes executed on this pool.
    pub crashes: AtomicU64,
}

impl PmemStats {
    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            persists: self.persists.load(Ordering::Relaxed),
            lines_flushed: self.lines_flushed.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            lines_evicted: self.lines_evicted.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero. Intended for benchmark phase boundaries.
    pub fn reset(&self) {
        self.persists.store(0, Ordering::Relaxed);
        self.lines_flushed.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.lines_evicted.store(0, Ordering::Relaxed);
        self.crashes.store(0, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of [`PmemStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmemStatsSnapshot {
    /// Compound persistent instructions.
    pub persists: u64,
    /// Individual cache-line flushes.
    pub lines_flushed: u64,
    /// Memory fences.
    pub fences: u64,
    /// Evicted lines.
    pub lines_evicted: u64,
    /// Simulated crashes.
    pub crashes: u64,
}

impl PmemStatsSnapshot {
    /// The counters as `(name, value)` pairs, in export order — the
    /// payload of an `obs::Section::Counters`.
    pub fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("persists".into(), self.persists),
            ("lines_flushed".into(), self.lines_flushed),
            ("fences".into(), self.fences),
            ("lines_evicted".into(), self.lines_evicted),
            ("crashes".into(), self.crashes),
        ]
    }

    /// Counter deltas `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &PmemStatsSnapshot) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            persists: self.persists.saturating_sub(earlier.persists),
            lines_flushed: self.lines_flushed.saturating_sub(earlier.lines_flushed),
            fences: self.fences.saturating_sub(earlier.fences),
            lines_evicted: self.lines_evicted.saturating_sub(earlier.lines_evicted),
            crashes: self.crashes.saturating_sub(earlier.crashes),
        }
    }
}

impl ToJson for PmemStatsSnapshot {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        for (name, v) in self.counters() {
            o.set(&name, Json::U64(v));
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let s = PmemStats::default();
        s.persists.fetch_add(5, Ordering::Relaxed);
        s.lines_flushed.fetch_add(7, Ordering::Relaxed);
        let a = s.snapshot();
        s.persists.fetch_add(2, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.persists, 2);
        assert_eq!(d.lines_flushed, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = PmemStats::default();
        s.fences.fetch_add(3, Ordering::Relaxed);
        s.reset();
        assert_eq!(s.snapshot(), PmemStatsSnapshot::default());
    }
}
