//! Partitioned pools: one capacity budget carved into independent shards.
//!
//! A [`PoolSet`] is the persistent substrate for a *sharded* index: it takes
//! one total capacity and splits it into `n` equally sized regions, each
//! backed by its own [`PmemPool`]. Every shard therefore has an independent
//! root table (at its own offset 0), an independent allocator bump/free-list
//! (owned by the tree layered on top), and independent [`PmemStats`]
//! counters — nothing an operation on shard *i* does can touch shard *j*'s
//! persistent state. That isolation is what makes per-shard recovery
//! embarrassingly parallel (one rebuild thread per shard) and keeps the
//! crash-consistency argument per-shard: a crash point observed by one shard
//! cannot leave another shard mid-modify.
//!
//! Each shard remains an ordinary `Arc<PmemPool>`, so everything downstream
//! (trees, journals, crash simulation, persist traps) works unchanged on a
//! shard.
//!
//! ## One backing file
//!
//! [`PoolSet::save`] serialises the durable images of *all* shards into a
//! single snapshot file — header, per-shard region table, then the regions —
//! written to a temp file and renamed, so a crash mid-save never corrupts a
//! previous snapshot (same discipline as [`PmemPool::save_durable`]).
//! [`PoolSet::load`] restores the whole set in the post-crash state.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::pool::{PmemConfig, PmemPool};
use crate::stats::PmemStatsSnapshot;
use crate::CACHE_LINE;

const SET_MAGIC: u64 = 0x504D_454D_5345_5421; // "PMEMSET!"
const SET_VERSION: u64 = 1;

/// A fixed-cardinality set of independent persistent-memory shards.
///
/// See the module-level docs for the isolation argument. The shard count
/// is fixed at creation; repartitioning is a higher-level (re-insert)
/// concern, exactly as in a sharded service.
pub struct PoolSet {
    shards: Vec<Arc<PmemPool>>,
}

impl PoolSet {
    /// Carves `cfg.size` bytes into `shards` equal regions and builds one
    /// pool per region. Latency and shadow settings apply to every shard.
    ///
    /// The per-shard size is rounded down to a whole number of cache lines;
    /// `cfg.size` must leave each shard at least one line.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the per-shard size rounds to zero.
    pub fn new(cfg: PmemConfig, shards: usize) -> PoolSet {
        assert!(shards > 0, "PoolSet needs at least one shard");
        let per = (cfg.size / shards) & !(CACHE_LINE - 1);
        assert!(per >= CACHE_LINE, "PoolSet: {} bytes is too small for {} shards", cfg.size, shards);
        let pools = (0..shards)
            .map(|_| {
                Arc::new(PmemPool::new(PmemConfig { size: per, ..cfg }))
            })
            .collect();
        PoolSet { shards: pools }
    }

    /// Number of shards in the set.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The `i`-th shard's pool.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> &Arc<PmemPool> {
        &self.shards[i]
    }

    /// Iterates over the shard pools in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<PmemPool>> {
        self.shards.iter()
    }

    /// Clones the shard handles into a plain vector (the shape the sharded
    /// index constructors consume).
    pub fn handles(&self) -> Vec<Arc<PmemPool>> {
        self.shards.clone()
    }

    /// Sums the persistence counters of every shard into one snapshot.
    /// Persist/flush/fence counts add naturally; so do eviction and crash
    /// counts.
    pub fn stats_snapshot(&self) -> PmemStatsSnapshot {
        let mut total = PmemStatsSnapshot::default();
        for s in &self.shards {
            let snap = s.stats().snapshot();
            total.persists += snap.persists;
            total.lines_flushed += snap.lines_flushed;
            total.fences += snap.fences;
            total.lines_evicted += snap.lines_evicted;
            total.crashes += snap.crashes;
        }
        total
    }

    /// Crashes every shard: each arena is replaced by its durable image,
    /// exactly as a power failure would hit all partitions of one machine
    /// at once. Requires shadow mode on every shard.
    pub fn simulate_crash(&self) {
        for s in &self.shards {
            s.simulate_crash();
        }
    }

    /// Saves the durable images of all shards into one snapshot file
    /// (atomically: temp file + rename).
    ///
    /// Requires shadow mode and quiescence on every shard.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("pmemset.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&SET_MAGIC.to_le_bytes())?;
            f.write_all(&SET_VERSION.to_le_bytes())?;
            f.write_all(&(self.shards.len() as u64).to_le_bytes())?;
            // Region table: one length per shard, so the format stays valid
            // if a future version allows heterogeneous shard sizes.
            for s in &self.shards {
                f.write_all(&s.len().to_le_bytes())?;
            }
            for s in &self.shards {
                let len = s.len();
                let mut buf = vec![0u8; len as usize];
                for w in 0..(len / 8) {
                    buf[(w * 8) as usize..(w * 8 + 8) as usize]
                        .copy_from_slice(&s.read_durable_u64(w * 8).to_le_bytes());
                }
                f.write_all(&buf)?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a set from a file written by [`PoolSet::save`]. Every shard
    /// comes up in the post-crash state (arena == durable image) with the
    /// testing configuration; use [`PoolSet::load_with`] to choose latency
    /// or shadow settings.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<PoolSet> {
        Self::load_with(path, PmemConfig::for_testing)
    }

    /// Loads a set, building each shard's configuration from its recorded
    /// region size.
    pub fn load_with<P: AsRef<Path>>(
        path: P,
        make_cfg: impl Fn(usize) -> PmemConfig,
    ) -> io::Result<PoolSet> {
        let mut f = File::open(path.as_ref())?;
        let mut hdr = [0u8; 24];
        f.read_exact(&mut hdr)?;
        let magic = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
        let version = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
        let count = u64::from_le_bytes(hdr[16..24].try_into().unwrap());
        if magic != SET_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a pmem set snapshot"));
        }
        if version != SET_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported set snapshot version {version}"),
            ));
        }
        if count == 0 || count > 4096 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad shard count"));
        }
        let mut lens = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut b = [0u8; 8];
            f.read_exact(&mut b)?;
            let len = u64::from_le_bytes(b);
            if len == 0 || len % CACHE_LINE as u64 != 0 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad shard size"));
            }
            lens.push(len);
        }
        let mut shards = Vec::with_capacity(count as usize);
        for len in lens {
            let mut buf = vec![0u8; len as usize];
            f.read_exact(&mut buf)?;
            let mut cfg = make_cfg(len as usize);
            cfg.size = len as usize;
            let pool = PmemPool::new(cfg);
            pool.write_bytes(0, &buf);
            if pool.config().shadow {
                pool.persist_region_quiet(0, len);
            }
            shards.push(Arc::new(pool));
        }
        Ok(PoolSet { shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nvm_poolset_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn carves_budget_into_equal_shards() {
        let set = PoolSet::new(PmemConfig::for_testing(1 << 20), 4);
        assert_eq!(set.shards(), 4);
        for s in set.iter() {
            assert_eq!(s.len(), (1 << 18) as u64);
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_unsatisfiable_partitioning() {
        PoolSet::new(PmemConfig::for_testing(64), 2);
    }

    #[test]
    fn shards_are_independent() {
        let set = PoolSet::new(PmemConfig::for_testing(1 << 16), 2);
        set.shard(0).store_u64(4096, 11);
        set.shard(0).persist(4096, 8);
        set.shard(1).store_u64(4096, 22); // same offset, different shard; not persisted
        set.simulate_crash();
        assert_eq!(set.shard(0).load_u64(4096), 11);
        assert_eq!(set.shard(1).load_u64(4096), 0, "crash leaked across shards");
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let set = PoolSet::new(PmemConfig::for_testing(1 << 16), 2);
        set.shard(0).store_u64(0, 1);
        set.shard(0).persist(0, 8);
        set.shard(1).store_u64(0, 1);
        set.shard(1).persist(0, 8);
        set.shard(1).persist(64, 8);
        let snap = set.stats_snapshot();
        assert_eq!(snap.persists, 3);
        assert_eq!(snap.fences, 3);
    }

    #[test]
    fn save_load_roundtrip_is_crash_equivalent() {
        let set = PoolSet::new(PmemConfig::for_testing(1 << 16), 3);
        for (i, s) in set.iter().enumerate() {
            s.store_u64(4096, 100 + i as u64);
            s.persist(4096, 8);
            s.store_u64(4104, 999); // unpersisted: must not survive
        }
        let path = tmp("roundtrip");
        set.save(&path).unwrap();

        let back = PoolSet::load(&path).unwrap();
        assert_eq!(back.shards(), 3);
        for (i, s) in back.iter().enumerate() {
            assert_eq!(s.load_u64(4096), 100 + i as u64);
            assert_eq!(s.load_u64(4104), 0, "unpersisted data leaked into snapshot");
        }
        // Loaded shards support crash simulation immediately.
        back.shard(1).store_u64(8192, 5);
        back.simulate_crash();
        assert_eq!(back.shard(1).load_u64(8192), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage_and_plain_pool_files() {
        let garbage = tmp("garbage");
        std::fs::write(&garbage, b"nope").unwrap();
        assert!(PoolSet::load(&garbage).is_err());
        std::fs::remove_file(&garbage).ok();

        // A single-pool snapshot has a different magic and must be rejected.
        let single = tmp("single");
        let p = PmemPool::new(PmemConfig::for_testing(1 << 14));
        p.save_durable(&single).unwrap();
        assert!(PoolSet::load(&single).is_err());
        std::fs::remove_file(&single).ok();
    }
}
