//! Bounded DRAM page cache over the NVM capacity tier.
//!
//! The paper's testbed reads inner nodes straight from NVM on every
//! descent; real systems front the capacity tier with a DRAM cache.
//! This module is that tier, shaped after LeanStore's *vmcache*: each
//! frame carries one atomic **PageState** word packing a 56-bit version
//! and an 8-bit state, and every protocol — optimistic read, exclusive
//! fill, clock eviction, invalidation — is a single-word CAS dance on
//! that atom.
//!
//! ```text
//!   63      56 55                                         0
//!   +--------+-------------------------------------------+
//!   | state  |                 version                   |
//!   +--------+-------------------------------------------+
//!   state: 0 = Unlocked (readable)   253 = Locked (filler inside)
//!          254 = Marked (clock hand passed; still readable)
//!          255 = Evicted (empty / dropped)
//! ```
//!
//! The version is bumped by **every** transition out of `Locked` and by
//! every invalidation, so an optimistic reader that re-reads the word
//! and sees the same value knows the frame payload was untouched for
//! the whole window (56 bits cannot wrap in any realistic run, so ABA
//! is off the table).
//!
//! ## Protocols
//!
//! * **Optimistic read** ([`PageCache::optimistic_read`]): locate a
//!   readable frame whose tag matches, snapshot `sv`, read the payload
//!   with relaxed loads, fence, re-read `sv`; equal ⇒ the closure saw a
//!   consistent payload. This is the Boehm seqlock-reader recipe — the
//!   filler's release ordering on its final `sv` store pairs with the
//!   reader's acquire fence.
//! * **Fill** ([`PageCache::begin_fill`]): claim a frame exclusively
//!   (`CAS` to `Locked`), *publish the tag with a `SeqCst` store before
//!   returning*, then let the caller copy the node words and
//!   [`commit`](FillGuard::commit) (or [`abandon`](FillGuard::abandon)).
//!   The early `SeqCst` tag publish is load-bearing: an invalidator
//!   scanning after its structure modification either sees the tag (and
//!   waits out the `Locked` frame, then evicts whatever was committed)
//!   or, by the `SeqCst` total order, the filler's snapshot provably
//!   began after the modification retired — so a stale fill can never
//!   survive an invalidation. See `index-common`'s descent for the full
//!   argument.
//! * **Eviction**: per-set second-chance clock. The hand downgrades
//!   `Unlocked → Marked`; a frame still `Marked` when the hand returns
//!   is claimed (`Marked → Locked`) and refilled. Hits promote
//!   `Marked → Unlocked`, giving hot frames their second chance.
//! * **Invalidation** ([`PageCache::invalidate`]): drop every frame
//!   holding a tag by CASing it to `Evicted` with a bumped version;
//!   concurrent optimistic readers of the old payload fail validation.
//!
//! The cache is purely transient DRAM: recovery constructs a fresh empty
//! cache and never writes a byte of it to the pool, so the tree's
//! persistent-instruction counts are untouched by anything here.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use obs::{EventKind, EventRing, HeatSketch};

/// Associativity: frames per set. Four ways keeps the fill-time victim
/// search and the invalidation scan at a handful of loads.
pub const CACHE_WAYS: usize = 4;

/// Payload words per frame — sized for one inner node (count word +
/// 31 keys + 32 children = 64 words = 512 B, one node exactly).
pub const FRAME_WORDS: usize = 64;

/// PageState states, packed into the top 8 bits of the state-version
/// word (values follow the vmcache convention).
const ST_UNLOCKED: u64 = 0;
const ST_LOCKED: u64 = 253;
const ST_MARKED: u64 = 254;
const ST_EVICTED: u64 = 255;

const VERSION_BITS: u32 = 56;
const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;

#[inline]
const fn pack(state: u64, version: u64) -> u64 {
    (state << VERSION_BITS) | (version & VERSION_MASK)
}

#[inline]
const fn state_of(sv: u64) -> u64 {
    sv >> VERSION_BITS
}

#[inline]
const fn version_of(sv: u64) -> u64 {
    sv & VERSION_MASK
}

/// Readable = a reader may snapshot the payload under version checks.
#[inline]
const fn readable(sv: u64) -> bool {
    state_of(sv) == ST_UNLOCKED || state_of(sv) == ST_MARKED
}

/// One cache frame: PageState word, node tag, payload.
struct Frame {
    /// Packed state + version (see module docs).
    sv: AtomicU64,
    /// Which node this frame caches (an inner-index node reference);
    /// meaningful whenever the state is not freshly `Evicted`-at-init.
    tag: AtomicU64,
    /// The cached node image.
    payload: [AtomicU64; FRAME_WORDS],
}

impl Frame {
    fn empty() -> Frame {
        Frame {
            sv: AtomicU64::new(pack(ST_EVICTED, 0)),
            tag: AtomicU64::new(0),
            payload: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A validated-snapshot view of a frame's payload, handed to the
/// closure of [`PageCache::optimistic_read`]. Loads are relaxed; the
/// surrounding version check makes the whole snapshot consistent (or
/// the closure's result is discarded).
pub struct FrameView<'a> {
    frame: &'a Frame,
}

impl FrameView<'_> {
    /// Reads payload word `i` (relaxed; see type docs).
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.frame.payload[i].load(Ordering::Relaxed)
    }
}

/// Exclusive claim on a frame being (re)filled. Either
/// [`commit`](FillGuard::commit) a full payload image or
/// [`abandon`](FillGuard::abandon); dropping the guard abandons.
pub struct FillGuard<'a> {
    cache: &'a PageCache,
    frame: &'a Frame,
    /// Version the frame was claimed at; the release transition
    /// publishes `version + 1`.
    version: u64,
    done: bool,
}

impl FillGuard<'_> {
    /// Publishes `words` as the frame's payload and makes the frame
    /// readable. The release store on the state word pairs with
    /// readers' acquire fences (seqlock writer side).
    pub fn commit(mut self, words: &[u64; FRAME_WORDS]) {
        fence(Ordering::Release);
        for (slot, &w) in self.frame.payload.iter().zip(words.iter()) {
            slot.store(w, Ordering::Relaxed);
        }
        let next = pack(ST_UNLOCKED, version_of(self.version).wrapping_add(1) & VERSION_MASK);
        self.frame.sv.store(next, Ordering::Release);
        self.cache.fills.fetch_add(1, Ordering::Relaxed);
        self.done = true;
    }

    /// Releases the claim without publishing anything; the frame goes
    /// back to `Evicted` with a bumped version (any concurrent
    /// optimistic reader of the old payload fails validation).
    pub fn abandon(mut self) {
        self.release_evicted();
        self.done = true;
    }

    fn release_evicted(&self) {
        let next = pack(ST_EVICTED, version_of(self.version).wrapping_add(1) & VERSION_MASK);
        self.frame.sv.store(next, Ordering::Release);
    }
}

impl Drop for FillGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.release_evicted();
        }
    }
}

/// Point-in-time cache counter snapshot (all counts monotonic since
/// construction). Obtain via [`PageCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Optimistic reads that validated against a cached frame.
    pub hits: u64,
    /// Reads that found no readable matching frame.
    pub misses: u64,
    /// Frames filled (initial fills and refills after eviction).
    pub fills: u64,
    /// Frames reclaimed by the clock hand to make room.
    pub evictions: u64,
    /// Frames dropped by structure-modification invalidation.
    pub invalidations: u64,
    /// Optimistic reads that found a matching frame but failed version
    /// validation (concurrent fill/eviction/invalidation).
    pub read_restarts: u64,
}

impl CacheStats {
    /// Counter-wise difference `self - earlier` (both from the same
    /// cache, `earlier` taken first).
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            fills: self.fills - earlier.fills,
            evictions: self.evictions - earlier.evictions,
            invalidations: self.invalidations - earlier.invalidations,
            read_restarts: self.read_restarts - earlier.read_restarts,
        }
    }

    /// Hits over (hits + misses), 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Set-associative bounded DRAM page cache; see module docs for the
/// PageState protocols.
pub struct PageCache {
    frames: Box<[Frame]>,
    /// Number of sets (power of two); frame index = set * WAYS + way.
    sets: usize,
    /// Per-set clock hands for second-chance eviction.
    hands: Box<[AtomicUsize]>,
    /// Eviction/invalidation forensics sink (usually the pool's ring).
    events: Option<Arc<EventRing>>,
    hits: AtomicU64,
    misses: AtomicU64,
    fills: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    read_restarts: AtomicU64,
    /// Structural heat keyed by cache *set* index: which sets thrash.
    /// Fed on evictions and failed optimistic validations only (both
    /// already off the hit path), weight 1 each.
    set_heat: HeatSketch,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("frames", &self.frames.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl PageCache {
    /// Creates an empty cache of at most `frame_budget` frames (rounded
    /// down to a power-of-two number of [`CACHE_WAYS`]-frame sets, with
    /// a one-set floor), optionally wired to an event ring for
    /// eviction/invalidation forensics.
    pub fn new(frame_budget: usize, events: Option<Arc<EventRing>>) -> PageCache {
        let want_sets = (frame_budget / CACHE_WAYS).max(1);
        // Round *down* to a power of two so the budget is an upper bound.
        let sets = 1usize << (usize::BITS - 1 - want_sets.leading_zeros());
        let frames: Box<[Frame]> = (0..sets * CACHE_WAYS).map(|_| Frame::empty()).collect();
        let hands: Box<[AtomicUsize]> = (0..sets).map(|_| AtomicUsize::new(0)).collect();
        PageCache {
            frames,
            sets,
            hands,
            events,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fills: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            read_restarts: AtomicU64::new(0),
            set_heat: HeatSketch::default(),
        }
    }

    /// Actual frame capacity after rounding.
    pub fn frames(&self) -> usize {
        self.frames.len()
    }

    /// The per-set pressure sketch (evictions + failed optimistic
    /// validations, keyed by set index).
    pub fn set_heat(&self) -> &HeatSketch {
        &self.set_heat
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fills: self.fills.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            read_restarts: self.read_restarts.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn set_of(&self, tag: u64) -> usize {
        // splitmix64 finaliser: node refs are aligned (low bits dead),
        // so mix before masking.
        let mut x = tag;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as usize) & (self.sets - 1)
    }

    #[inline]
    fn set_frames(&self, set: usize) -> &[Frame] {
        &self.frames[set * CACHE_WAYS..(set + 1) * CACHE_WAYS]
    }

    /// Optimistic seqlock read of the cached image of `tag`. The
    /// closure runs against a possibly-torn payload; its result is
    /// returned only if the frame's version validates, i.e. the payload
    /// was stable for the whole window. `None` = miss or validation
    /// failure (caller falls back to the authoritative copy).
    pub fn optimistic_read<T>(&self, tag: u64, read: impl FnOnce(&FrameView<'_>) -> T) -> Option<T> {
        let set = self.set_of(tag);
        for frame in self.set_frames(set) {
            let sv1 = frame.sv.load(Ordering::Acquire);
            if !readable(sv1) || frame.tag.load(Ordering::Relaxed) != tag {
                continue;
            }
            let out = read(&FrameView { frame });
            fence(Ordering::Acquire);
            let sv2 = frame.sv.load(Ordering::Relaxed);
            if sv2 != sv1 {
                self.read_restarts.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.set_heat.record(set as u64, 1);
                return None;
            }
            // Second chance: a hit on a Marked frame un-marks it (best
            // effort; losing the CAS means someone else resolved it).
            if state_of(sv1) == ST_MARKED {
                let _ = frame.sv.compare_exchange(
                    sv1,
                    pack(ST_UNLOCKED, version_of(sv1)),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(out);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Claims a frame for filling `tag`, publishing the tag (with
    /// `SeqCst`, see module docs) before returning. `None` when the tag
    /// is already cached or being filled, or when every candidate
    /// victim is busy — callers then read the authoritative copy
    /// directly; they must never block on the cache.
    pub fn begin_fill(&self, tag: u64) -> Option<FillGuard<'_>> {
        let set = self.set_of(tag);
        let frames = self.set_frames(set);

        // Pass 1: tag already present? Reclaim its Evicted frame (keeps
        // duplicates rare) or back off if readable/being-filled.
        for frame in frames {
            if frame.tag.load(Ordering::SeqCst) != tag {
                continue;
            }
            let sv = frame.sv.load(Ordering::Acquire);
            match state_of(sv) {
                ST_EVICTED => {
                    if self
                        .claim(frame, sv)
                        .is_some()
                    {
                        // Tag unchanged, but re-store SeqCst so the
                        // claim is ordered like a fresh publish.
                        frame.tag.store(tag, Ordering::SeqCst);
                        return Some(FillGuard {
                            cache: self,
                            frame,
                            version: sv,
                            done: false,
                        });
                    }
                }
                _ => return None, // readable (someone filled) or being filled
            }
        }

        // Pass 2: any empty frame.
        for frame in frames {
            let sv = frame.sv.load(Ordering::Acquire);
            if state_of(sv) == ST_EVICTED && self.claim(frame, sv).is_some() {
                frame.tag.store(tag, Ordering::SeqCst);
                return Some(FillGuard {
                    cache: self,
                    frame,
                    version: sv,
                    done: false,
                });
            }
        }

        // Pass 3: second-chance clock, bounded to two sweeps.
        let hand = &self.hands[set];
        for _ in 0..2 * CACHE_WAYS {
            let way = hand.fetch_add(1, Ordering::Relaxed) % CACHE_WAYS;
            let frame = &frames[way];
            let sv = frame.sv.load(Ordering::Acquire);
            match state_of(sv) {
                ST_UNLOCKED => {
                    // First pass of the hand: mark, don't evict.
                    let _ = frame.sv.compare_exchange(
                        sv,
                        pack(ST_MARKED, version_of(sv)),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
                ST_MARKED if self.claim(frame, sv).is_some() => {
                    let old_tag = frame.tag.load(Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.set_heat.record(set as u64, 1);
                    if let Some(ev) = &self.events {
                        ev.record(EventKind::CacheEvict, old_tag, version_of(sv));
                    }
                    frame.tag.store(tag, Ordering::SeqCst);
                    return Some(FillGuard {
                        cache: self,
                        frame,
                        version: sv,
                        done: false,
                    });
                }
                _ => {} // Locked, claim-raced, or Evicted-raced: skip
            }
        }
        None
    }

    /// CAS `sv → Locked` at the same version. `Some(())` on success.
    #[inline]
    fn claim(&self, frame: &Frame, sv: u64) -> Option<()> {
        frame
            .sv
            .compare_exchange(
                sv,
                pack(ST_LOCKED, version_of(sv)),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .ok()
            .map(|_| ())
    }

    /// Drops every cached copy of `tag` (all ways — concurrent fills can
    /// briefly duplicate a tag). Spins out `Locked` frames holding the
    /// tag: fillers hold the lock only across a 64-word copy, and an
    /// in-flight filler may be about to commit a *stale* image, so the
    /// invalidator must outlast it. Returns frames dropped.
    pub fn invalidate(&self, tag: u64) -> usize {
        let set = self.set_of(tag);
        let mut dropped = 0;
        for frame in self.set_frames(set) {
            loop {
                if frame.tag.load(Ordering::SeqCst) != tag {
                    break;
                }
                let sv = frame.sv.load(Ordering::Acquire);
                match state_of(sv) {
                    ST_EVICTED => break,
                    ST_LOCKED => std::hint::spin_loop(), // filler resolves in O(64 stores)
                    _ => {
                        if frame
                            .sv
                            .compare_exchange(
                                sv,
                                pack(ST_EVICTED, version_of(sv).wrapping_add(1) & VERSION_MASK),
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            dropped += 1;
                            break;
                        }
                    }
                }
            }
        }
        if dropped > 0 {
            self.invalidations.fetch_add(dropped as u64, Ordering::Relaxed);
            if let Some(ev) = &self.events {
                ev.record(EventKind::CacheInvalidate, tag, dropped as u64);
            }
        }
        dropped
    }

    /// Drops every frame (bulk structure changes). Spins out in-flight
    /// fillers like [`invalidate`](PageCache::invalidate).
    pub fn invalidate_all(&self) {
        let mut dropped = 0u64;
        for frame in self.frames.iter() {
            loop {
                let sv = frame.sv.load(Ordering::Acquire);
                match state_of(sv) {
                    ST_EVICTED => break,
                    ST_LOCKED => std::hint::spin_loop(),
                    _ => {
                        if frame
                            .sv
                            .compare_exchange(
                                sv,
                                pack(ST_EVICTED, version_of(sv).wrapping_add(1) & VERSION_MASK),
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            dropped += 1;
                            break;
                        }
                    }
                }
            }
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        if let Some(ev) = &self.events {
            ev.record(EventKind::CacheInvalidate, 0, dropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(cache: &PageCache, tag: u64, base: u64) -> bool {
        match cache.begin_fill(tag) {
            Some(guard) => {
                let words: [u64; FRAME_WORDS] = std::array::from_fn(|i| base + i as u64);
                guard.commit(&words);
                true
            }
            None => false,
        }
    }

    #[test]
    fn packing_roundtrips() {
        for st in [ST_UNLOCKED, ST_LOCKED, ST_MARKED, ST_EVICTED] {
            for v in [0u64, 1, VERSION_MASK, 0xDEAD_BEEF] {
                let sv = pack(st, v);
                assert_eq!(state_of(sv), st);
                assert_eq!(version_of(sv), v & VERSION_MASK);
            }
        }
        assert!(readable(pack(ST_UNLOCKED, 7)));
        assert!(readable(pack(ST_MARKED, 7)));
        assert!(!readable(pack(ST_LOCKED, 7)));
        assert!(!readable(pack(ST_EVICTED, 7)));
    }

    #[test]
    fn budget_rounds_down_to_power_of_two_sets() {
        assert_eq!(PageCache::new(1024, None).frames(), 1024);
        assert_eq!(PageCache::new(1000, None).frames(), 512);
        assert_eq!(PageCache::new(32, None).frames(), 32);
        assert_eq!(PageCache::new(0, None).frames(), CACHE_WAYS);
        assert_eq!(PageCache::new(5, None).frames(), CACHE_WAYS);
    }

    #[test]
    fn fill_then_read_roundtrips() {
        let cache = PageCache::new(64, None);
        assert!(cache.optimistic_read(42, |_| ()).is_none(), "cold miss");
        assert!(fill(&cache, 42, 1000));
        let got = cache
            .optimistic_read(42, |v| (v.word(0), v.word(63)))
            .expect("hit after fill");
        assert_eq!(got, (1000, 1063));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 1, 1));
    }

    #[test]
    fn refill_of_cached_tag_backs_off() {
        let cache = PageCache::new(64, None);
        assert!(fill(&cache, 7, 0));
        assert!(cache.begin_fill(7).is_none(), "tag already readable");
    }

    #[test]
    fn abandon_leaves_frame_empty_and_bumps_version() {
        let cache = PageCache::new(64, None);
        let guard = cache.begin_fill(9).unwrap();
        guard.abandon();
        assert!(cache.optimistic_read(9, |_| ()).is_none());
        // The frame is reusable.
        assert!(fill(&cache, 9, 5));
        assert_eq!(cache.optimistic_read(9, |v| v.word(0)), Some(5));
    }

    #[test]
    fn dropping_guard_abandons() {
        let cache = PageCache::new(64, None);
        drop(cache.begin_fill(9).unwrap());
        assert!(cache.optimistic_read(9, |_| ()).is_none());
        assert!(cache.begin_fill(9).is_some(), "frame reclaimable");
    }

    #[test]
    fn invalidate_drops_and_fails_readers() {
        let cache = PageCache::new(64, None);
        assert!(fill(&cache, 11, 100));
        assert_eq!(cache.invalidate(11), 1);
        assert!(cache.optimistic_read(11, |_| ()).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.invalidate(11), 0, "second invalidate is a no-op");
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let cache = PageCache::new(64, None);
        let mut filled = 0;
        for t in 1..=40u64 {
            if fill(&cache, t * 8, t) {
                filled += 1;
            }
        }
        assert!(filled > 10);
        cache.invalidate_all();
        for t in 1..=40u64 {
            assert!(cache.optimistic_read(t * 8, |_| ()).is_none(), "tag {t}");
        }
        // Every successful fill is either still resident (dropped now)
        // or was recycled by the clock along the way.
        let s = cache.stats();
        assert_eq!(s.invalidations + s.evictions, filled);
    }

    #[test]
    fn eviction_under_pressure_recycles_frames() {
        // One set (4 frames), many tags: the clock must evict.
        let cache = PageCache::new(CACHE_WAYS, None);
        let mut filled = Vec::new();
        for t in 1..=64u64 {
            let tag = t * 16;
            // The first clock sweep only marks; retry once so pressure
            // actually evicts.
            if fill(&cache, tag, t) || fill(&cache, tag, t) {
                filled.push((tag, t));
            }
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "no evictions under pressure: {s:?}");
        assert!(filled.len() > CACHE_WAYS, "fills kept failing");
        // Whatever is still readable must be consistent.
        let mut resident = 0;
        for &(tag, base) in &filled {
            if let Some((a, b)) = cache.optimistic_read(tag, |v| (v.word(0), v.word(63))) {
                assert_eq!((a, b), (base, base + 63), "torn survivor for tag {tag}");
                resident += 1;
            }
        }
        assert!(resident <= CACHE_WAYS);
    }

    #[test]
    fn eviction_records_events() {
        let ring = Arc::new(EventRing::new());
        let cache = PageCache::new(CACHE_WAYS, Some(Arc::clone(&ring)));
        for t in 1..=64u64 {
            let _ = fill(&cache, t * 16, t);
            let _ = fill(&cache, t * 16, t);
        }
        cache.invalidate_all();
        #[cfg(feature = "record")]
        {
            let dump = ring.dump();
            assert!(
                dump.iter().any(|e| e.kind == EventKind::CacheEvict),
                "no evict event"
            );
            assert!(
                dump.iter().any(|e| e.kind == EventKind::CacheInvalidate),
                "no invalidate event"
            );
        }
    }

    #[test]
    fn marked_frames_get_second_chance_on_hit() {
        let cache = PageCache::new(CACHE_WAYS, None);
        assert!(fill(&cache, 16, 1));
        // Sweep the hand once: everything Unlocked becomes Marked.
        // (A fill of a colliding tag that fails on a full set of marked
        // frames would evict; here the set has empties so the mark pass
        // is driven directly.)
        for frame in cache.set_frames(cache.set_of(16)) {
            let sv = frame.sv.load(Ordering::Acquire);
            if state_of(sv) == ST_UNLOCKED {
                frame
                    .sv
                    .compare_exchange(
                        sv,
                        pack(ST_MARKED, version_of(sv)),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .unwrap();
            }
        }
        // A hit revives the frame to Unlocked.
        assert_eq!(cache.optimistic_read(16, |v| v.word(0)), Some(1));
        let set = cache.set_of(16);
        let revived = cache.set_frames(set).iter().any(|f| {
            let sv = f.sv.load(Ordering::Acquire);
            state_of(sv) == ST_UNLOCKED && f.tag.load(Ordering::Relaxed) == 16
        });
        assert!(revived, "hit did not un-mark the frame");
    }

    #[test]
    fn concurrent_fill_read_invalidate_never_tears() {
        use std::sync::atomic::AtomicBool;
        let cache = Arc::new(PageCache::new(16, None));
        let stop = Arc::new(AtomicBool::new(false));
        let tags: Vec<u64> = (1..=24u64).map(|t| t * 8).collect();

        let writers: Vec<_> = (0..2)
            .map(|w| {
                let (cache, stop, tags) = (cache.clone(), stop.clone(), tags.clone());
                std::thread::spawn(move || {
                    let mut i = w;
                    while !stop.load(Ordering::Relaxed) {
                        let tag = tags[i % tags.len()];
                        if let Some(g) = cache.begin_fill(tag) {
                            // Payload invariant: word[j] = tag * 1000 + j.
                            let words: [u64; FRAME_WORDS] =
                                std::array::from_fn(|j| tag * 1000 + j as u64);
                            g.commit(&words);
                        }
                        if i % 7 == 0 {
                            cache.invalidate(tag);
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (cache, stop, tags) = (cache.clone(), stop.clone(), tags.clone());
                std::thread::spawn(move || {
                    let mut hits = 0u64;
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let tag = tags[i % tags.len()];
                        if let Some((w0, w63)) =
                            cache.optimistic_read(tag, |v| (v.word(0), v.word(63)))
                        {
                            assert_eq!(w0, tag * 1000, "torn word 0 for tag {tag}");
                            assert_eq!(w63, tag * 1000 + 63, "torn word 63 for tag {tag}");
                            hits += 1;
                        }
                        i += 1;
                    }
                    hits
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        let hits: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(hits > 0, "readers never hit");
    }
}
