//! Fixed-size block allocator over a pmem region.
//!
//! Leaf nodes of every tree in this reproduction are fixed-size blocks, so a
//! bump pointer plus a free list is sufficient (the paper does not describe
//! a general persistent allocator). Allocator *metadata* is volatile, as in
//! most NVM systems that rebuild allocation state during recovery by
//! scanning reachable structures: [`BlockAllocator::rebuild`] reconstructs
//! the bump pointer and free list from the set of reachable block offsets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Allocator for fixed-size, cache-line-aligned blocks inside `[start, end)`
/// of a [`crate::PmemPool`].
#[derive(Debug)]
pub struct BlockAllocator {
    start: u64,
    end: u64,
    block_size: u64,
    /// Next never-allocated block offset.
    bump: AtomicU64,
    /// Previously freed blocks available for reuse.
    free: Mutex<Vec<u64>>,
}

impl BlockAllocator {
    /// Creates an allocator for `block_size`-byte blocks in `[start, end)`.
    ///
    /// # Panics
    /// Panics if the region is empty, misaligned to 64 B, or smaller than one
    /// block.
    pub fn new(start: u64, end: u64, block_size: u64) -> Self {
        assert!(block_size > 0 && block_size.is_multiple_of(64), "block size must be a positive multiple of 64");
        assert!(start.is_multiple_of(64), "region start must be line-aligned");
        assert!(end >= start + block_size, "region must hold at least one block");
        BlockAllocator {
            start,
            end,
            block_size,
            bump: AtomicU64::new(start),
            free: Mutex::new(Vec::new()),
        }
    }

    /// Block size in bytes.
    #[inline]
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Start of the managed region.
    #[inline]
    pub fn region_start(&self) -> u64 {
        self.start
    }

    /// End (exclusive) of the managed region.
    #[inline]
    pub fn region_end(&self) -> u64 {
        self.end
    }

    /// Allocates one block, returning its pool offset, or `None` when the
    /// region is exhausted.
    pub fn alloc(&self) -> Option<u64> {
        if let Some(off) = self.free.lock().unwrap().pop() {
            return Some(off);
        }
        let mut cur = self.bump.load(Ordering::Relaxed);
        loop {
            if cur + self.block_size > self.end {
                return None;
            }
            match self.bump.compare_exchange_weak(
                cur,
                cur + self.block_size,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(cur),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns a block to the free list.
    ///
    /// # Panics
    /// Panics (in debug builds) if `off` is not a block boundary inside the
    /// region.
    pub fn free(&self, off: u64) {
        debug_assert!(off >= self.start && off + self.block_size <= self.end);
        debug_assert_eq!((off - self.start) % self.block_size, 0);
        self.free.lock().unwrap().push(off);
    }

    /// True if an allocation would succeed right now (free-list entry or
    /// bump headroom available). Advisory under concurrency: another thread
    /// may take the last block between this check and an `alloc` call.
    pub fn has_free(&self) -> bool {
        if !self.free.lock().unwrap().is_empty() {
            return true;
        }
        self.bump.load(Ordering::Relaxed) + self.block_size <= self.end
    }

    /// Number of blocks currently handed out (allocated minus freed).
    pub fn live_blocks(&self) -> u64 {
        let bumped = (self.bump.load(Ordering::Relaxed) - self.start) / self.block_size;
        bumped - self.free.lock().unwrap().len() as u64
    }

    /// Total block capacity of the region.
    pub fn capacity_blocks(&self) -> u64 {
        (self.end - self.start) / self.block_size
    }

    /// Recovery: resets allocator state so that exactly the blocks in
    /// `reachable` are considered live. Blocks below the new bump pointer
    /// that are not reachable become free-list entries.
    ///
    /// `reachable` offsets must be valid block boundaries.
    pub fn rebuild(&self, reachable: &[u64]) {
        let mut max_end = self.start;
        let mut live: Vec<u64> = reachable.to_vec();
        live.sort_unstable();
        for &off in &live {
            assert!(off >= self.start && off + self.block_size <= self.end, "unreachable offset {off}");
            assert_eq!((off - self.start) % self.block_size, 0, "misaligned block {off}");
            max_end = max_end.max(off + self.block_size);
        }
        self.bump.store(max_end, Ordering::Relaxed);
        let mut free = self.free.lock().unwrap();
        free.clear();
        let mut it = live.iter().peekable();
        let mut off = self.start;
        while off < max_end {
            match it.peek() {
                Some(&&r) if r == off => {
                    it.next();
                }
                _ => free.push(off),
            }
            off += self.block_size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn alloc_returns_distinct_aligned_blocks() {
        let a = BlockAllocator::new(1024, 1024 + 10 * 256, 256);
        let mut seen = HashSet::new();
        for _ in 0..10 {
            let off = a.alloc().unwrap();
            assert_eq!((off - 1024) % 256, 0);
            assert!(seen.insert(off));
        }
        assert!(a.alloc().is_none(), "region exhausted");
    }

    #[test]
    fn freed_blocks_are_reused() {
        let a = BlockAllocator::new(0, 2 * 256, 256);
        let x = a.alloc().unwrap();
        let y = a.alloc().unwrap();
        assert!(a.alloc().is_none());
        a.free(x);
        assert_eq!(a.alloc(), Some(x));
        a.free(y);
        a.free(x);
        assert_eq!(a.live_blocks(), 0);
    }

    #[test]
    fn rebuild_reconstructs_holes() {
        let a = BlockAllocator::new(0, 8 * 128, 128);
        let offs: Vec<u64> = (0..6).map(|_| a.alloc().unwrap()).collect();
        // Pretend a crash: only blocks 0, 2, 5 are reachable.
        a.rebuild(&[offs[0], offs[2], offs[5]]);
        assert_eq!(a.live_blocks(), 3);
        // Holes (1, 3, 4) must be re-allocatable, then fresh blocks (6, 7).
        let mut recovered = HashSet::new();
        while let Some(off) = a.alloc() {
            assert!(recovered.insert(off));
        }
        assert_eq!(recovered.len(), 5); // 3 holes + 2 fresh
        assert!(recovered.contains(&offs[1]));
        assert!(recovered.contains(&offs[3]));
        assert!(recovered.contains(&offs[4]));
    }

    #[test]
    fn concurrent_alloc_hands_out_unique_blocks() {
        use std::sync::Arc;
        let a = Arc::new(BlockAllocator::new(0, 4096 * 64, 64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| a.alloc().unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for off in h.join().unwrap() {
                assert!(all.insert(off), "duplicate block {off}");
            }
        }
        assert_eq!(all.len(), 4000);
    }

    #[test]
    #[should_panic]
    fn region_too_small_panics() {
        let _ = BlockAllocator::new(0, 63, 64);
    }
}
