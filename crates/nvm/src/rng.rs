//! Tiny dependency-free PRNG for eviction injection.
//!
//! The substrate deliberately avoids external dependencies; SplitMix64 is
//! small, fast, and more than random enough for choosing which cache lines
//! an injected eviction pushes to the durable image.

/// SplitMix64 pseudo-random generator (public domain construction).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // eviction choice does not need perfect uniformity.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[1, n]` — the YCSB key-space convention.
    #[inline]
    pub fn next_key(&mut self, n: u64) -> u64 {
        1 + self.next_below(n)
    }

    /// Fisher–Yates shuffle (used by bench warm-up; replaces `rand`'s
    /// `SliceRandom::shuffle` so the workspace stays dependency-free).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(97) < 97);
        }
    }

    #[test]
    fn next_below_covers_range_roughly_uniformly() {
        let mut r = SplitMix64::new(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
