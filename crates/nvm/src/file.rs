//! File persistence for pools: carry the durable image across process
//! restarts.
//!
//! Real deployments map NVM through a DAX file; this simulator's durable
//! image can likewise be saved to and loaded from an ordinary file, so
//! programs built on the library survive process restarts, not just
//! simulated crashes:
//!
//! ```no_run
//! # use nvm::{PmemConfig, PmemPool};
//! let pool = PmemPool::new(PmemConfig::for_testing(1 << 20));
//! // … run a workload, persist what matters …
//! pool.save_durable("store.pmem").unwrap();
//! // next process:
//! let pool = PmemPool::load_durable("store.pmem").unwrap();
//! ```
//!
//! `save_durable` snapshots the **durable image** (not the arena):
//! exactly the bytes a power failure would leave behind, so a
//! save/load cycle is semantically a crash + reboot. The file starts
//! with a small header (magic, version, pool size) and is written to a
//! temp file and renamed, so a crash mid-save never corrupts a previous
//! snapshot.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;

use crate::pool::{PmemConfig, PmemPool};
use crate::CACHE_LINE;

const FILE_MAGIC: u64 = 0x504D_454D_4649_4C45; // "PMEMFILE"
const FILE_VERSION: u64 = 1;

impl PmemPool {
    /// Saves the durable image to `path` (atomically: temp file + rename).
    ///
    /// Requires shadow mode and quiescence (no concurrent flushes).
    pub fn save_durable<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        let len = self.len();
        let mut buf = vec![0u8; len as usize];
        // Read through the durable accessor word by word; this serialises
        // with any straggler flushes via the stripe locks.
        for w in 0..(len / 8) {
            buf[(w * 8) as usize..(w * 8 + 8) as usize]
                .copy_from_slice(&self.read_durable_u64(w * 8).to_le_bytes());
        }
        let tmp = path.with_extension("pmem.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&FILE_MAGIC.to_le_bytes())?;
            f.write_all(&FILE_VERSION.to_le_bytes())?;
            f.write_all(&len.to_le_bytes())?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a pool from a file written by [`PmemPool::save_durable`].
    ///
    /// The pool comes up in the post-crash state: arena == durable image
    /// (shadow mode on, latency off — reconfigure by saving and loading
    /// with a different config via [`PmemPool::load_durable_with`]).
    pub fn load_durable<P: AsRef<Path>>(path: P) -> io::Result<PmemPool> {
        Self::load_durable_with(path, PmemConfig::for_testing)
    }

    /// Loads a pool from a file, building the configuration from the
    /// recorded pool size (lets callers choose latency/shadow settings).
    pub fn load_durable_with<P: AsRef<Path>>(
        path: P,
        make_cfg: impl FnOnce(usize) -> PmemConfig,
    ) -> io::Result<PmemPool> {
        let mut f = File::open(path.as_ref())?;
        let mut hdr = [0u8; 24];
        f.read_exact(&mut hdr)?;
        let magic = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
        let version = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
        let len = u64::from_le_bytes(hdr[16..24].try_into().unwrap());
        if magic != FILE_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a pmem snapshot"));
        }
        if version != FILE_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported snapshot version {version}"),
            ));
        }
        if len == 0 || len % CACHE_LINE as u64 != 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad pool size"));
        }
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;

        let mut cfg = make_cfg(len as usize);
        cfg.size = len as usize;
        let pool = PmemPool::new(cfg);
        // Restore into the arena, then persist everything so the durable
        // image matches (the snapshot is, by construction, durable state).
        pool.write_bytes(0, &buf);
        if pool.config().shadow {
            pool.persist_region_quiet(0, len);
        }
        Ok(pool)
    }
}

#[cfg(test)]
mod tests {
    
    use crate::{PmemConfig, PmemPool};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nvm_file_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip_preserves_durable_state() {
        let p = PmemPool::new(PmemConfig::for_testing(1 << 14));
        p.store_u64(4096, 77);
        p.persist(4096, 8);
        p.store_u64(4104, 88); // not persisted: must NOT survive
        let path = tmp("roundtrip");
        p.save_durable(&path).unwrap();

        let q = PmemPool::load_durable(&path).unwrap();
        assert_eq!(q.len(), p.len());
        assert_eq!(q.load_u64(4096), 77);
        assert_eq!(q.load_u64(4104), 0, "unpersisted data leaked into snapshot");
        // The loaded pool supports crash simulation immediately.
        q.store_u64(8192, 5);
        q.simulate_crash();
        assert_eq!(q.load_u64(8192), 0);
        assert_eq!(q.load_u64(4096), 77);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a pool snapshot").unwrap();
        assert!(PmemPool::load_durable(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tree_survives_process_style_restart() {
        use crate::RootTable;
        // Simulate "process 1": write root metadata, persist, save.
        let p = PmemPool::new(PmemConfig::for_testing(1 << 14));
        RootTable::set(&p, 0, 4242);
        let path = tmp("restart");
        p.save_durable(&path).unwrap();
        drop(p);
        // "Process 2": load and read the root back.
        let q = PmemPool::load_durable(&path).unwrap();
        assert_eq!(RootTable::get(&q, 0), 4242);
        std::fs::remove_file(&path).ok();
    }
}
