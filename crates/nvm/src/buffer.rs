//! Raw 64-byte-aligned heap buffer underlying the arena and the durable
//! image. Kept deliberately tiny: allocation, zeroing, and raw pointer
//! access; all access policy lives in [`crate::pool`].

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

use crate::CACHE_LINE;

/// An owned, zero-initialised, cache-line-aligned byte buffer.
pub(crate) struct Buffer {
    ptr: NonNull<u8>,
    len: usize,
    layout: Layout,
}

impl Buffer {
    /// Allocates `len` zeroed bytes aligned to a cache line. `len` is rounded
    /// up to a multiple of [`CACHE_LINE`].
    pub(crate) fn zeroed(len: usize) -> Self {
        assert!(len > 0, "pmem buffer must be non-empty");
        let len = len.div_ceil(CACHE_LINE) * CACHE_LINE;
        let layout = Layout::from_size_align(len, CACHE_LINE).expect("valid pmem layout");
        // SAFETY: layout has non-zero size (asserted above).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout)
        };
        Buffer { ptr, len, layout }
    }

    /// Buffer length in bytes (multiple of the cache-line size).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Raw base pointer. Callers are responsible for staying in bounds and
    /// for synchronising conflicting accesses.
    #[inline]
    pub(crate) fn base(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        // SAFETY: allocated with exactly this layout in `zeroed`.
        unsafe { dealloc(self.ptr.as_ptr(), self.layout) }
    }
}

// SAFETY: the buffer is plain memory; all synchronisation of concurrent
// access is enforced by the pool's accessors (atomics / stripe locks).
unsafe impl Send for Buffer {}
unsafe impl Sync for Buffer {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_aligned_and_zero() {
        let b = Buffer::zeroed(100);
        assert_eq!(b.len() % CACHE_LINE, 0);
        assert_eq!(b.base() as usize % CACHE_LINE, 0);
        for i in 0..b.len() {
            // SAFETY: in bounds, exclusive access.
            assert_eq!(unsafe { *b.base().add(i) }, 0);
        }
    }

    #[test]
    fn len_rounds_up_to_line() {
        assert_eq!(Buffer::zeroed(1).len(), CACHE_LINE);
        assert_eq!(Buffer::zeroed(65).len(), 2 * CACHE_LINE);
    }
}
