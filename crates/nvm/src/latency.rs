//! Busy-wait latency model for NVM media access.
//!
//! The paper's interleaved NVDIMM sets measure 84 ns read / 140 ns write
//! latency. Persist instructions stall the issuing core until data reaches
//! the medium, so we model the stall with a calibrated busy-wait: the CPU
//! time is genuinely consumed, which is what makes "flush while holding a
//! lock" expensive in the concurrent experiments (Figures 8–10).

use std::sync::OnceLock;
use std::time::Instant;

/// Spins for approximately `ns` nanoseconds. `ns == 0` returns immediately.
///
/// For very short waits the `Instant::now` overhead (tens of ns on Linux)
/// would dominate, so waits below the calibrated clock overhead fall back to
/// a calibrated `spin_loop` iteration count.
#[inline]
pub fn busy_wait_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let per_iter = spin_ns_per_iter();
    if ns <= 4 * clock_overhead_ns() {
        let iters = (ns as f64 / per_iter).ceil() as u64;
        for _ in 0..iters.max(1) {
            std::hint::spin_loop();
        }
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Calibrated cost of one `spin_loop` iteration, in nanoseconds.
fn spin_ns_per_iter() -> f64 {
    static CAL: OnceLock<f64> = OnceLock::new();
    *CAL.get_or_init(|| {
        let iters = 200_000u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::spin_loop();
        }
        let ns = start.elapsed().as_nanos() as f64;
        (ns / iters as f64).max(0.1)
    })
}

/// Calibrated cost of an `Instant::now` + `elapsed` pair, in nanoseconds.
fn clock_overhead_ns() -> u64 {
    static CAL: OnceLock<u64> = OnceLock::new();
    *CAL.get_or_init(|| {
        let iters = 20_000u32;
        let start = Instant::now();
        let mut acc = 0u128;
        for _ in 0..iters {
            acc = acc.wrapping_add(Instant::now().elapsed().as_nanos());
        }
        std::hint::black_box(acc);
        ((start.elapsed().as_nanos() as u64) / iters as u64).max(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_wait_is_free() {
        let start = Instant::now();
        for _ in 0..1_000_000 {
            busy_wait_ns(0);
        }
        // Generous bound: a million no-op calls should take well under 100 ms.
        assert!(start.elapsed().as_millis() < 100);
    }

    #[test]
    fn long_wait_reaches_target() {
        let start = Instant::now();
        busy_wait_ns(2_000_000); // 2 ms, far above clock overhead
        assert!(start.elapsed().as_nanos() >= 2_000_000);
    }

    #[test]
    fn short_wait_costs_something_but_not_everything() {
        // 140 ns × 10_000 ≈ 1.4 ms of pure spin; allow a wide envelope for
        // virtualised clocks but require it to be non-trivially > 0.
        let start = Instant::now();
        for _ in 0..10_000 {
            busy_wait_ns(140);
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        assert!(elapsed > 100_000, "spin too cheap: {elapsed}ns");
    }
}
