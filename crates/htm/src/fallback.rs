//! The fallback lock of the lock-elision pattern.
//!
//! Real RTM code cannot retry forever: after a few aborts it acquires a
//! global mutex and runs the critical section non-transactionally. For that
//! to be safe, every hardware transaction *subscribes* to the mutex — reads
//! its state inside the transaction — so acquiring it aborts them all.
//!
//! Our fallback lock's state word is itself a [`TmWord`]: acquisition and
//! release are conflict-visible stores, so subscribing is literally
//! `txn.read(&lock.word)`, and validation at commit kills any transaction
//! that overlapped a fallback period. [`crate::HtmDomain`] does the
//! subscription automatically.
//!
//! State encoding: even = free, odd = held; the value increases on every
//! transition, so it doubles as an acquisition counter.

use crate::word::TmWord;

/// A global (per-domain) fallback mutex with transaction subscription.
#[derive(Debug, Default)]
pub struct FallbackLock {
    pub(crate) word: TmWord,
}

impl FallbackLock {
    /// Creates a free lock.
    pub fn new() -> Self {
        FallbackLock {
            word: TmWord::new(0),
        }
    }

    /// True while some thread holds the fallback lock.
    #[inline]
    pub fn is_held(&self) -> bool {
        self.word.load_direct() % 2 == 1
    }

    /// Acquires the lock, spinning until free. Returns a guard that releases
    /// on drop (panic-safe: a poisoned fallback would otherwise wedge every
    /// transaction in the domain forever).
    pub fn acquire(&self) -> FallbackGuard<'_> {
        loop {
            let cur = self.word.load_direct();
            if cur.is_multiple_of(2) && self.word.cas_nontx(cur, cur + 1).is_ok() {
                return FallbackGuard { lock: self };
            }
            std::hint::spin_loop();
        }
    }

    /// Spins until the lock is observed free (used before starting an
    /// optimistic transaction, like the `while (lock_is_held) pause;` loop
    /// in real elision code).
    #[inline]
    pub fn wait_until_free(&self) {
        while self.is_held() {
            std::hint::spin_loop();
        }
    }
}

/// RAII guard for [`FallbackLock`].
pub struct FallbackGuard<'l> {
    lock: &'l FallbackLock,
}

impl Drop for FallbackGuard<'_> {
    fn drop(&mut self) {
        let cur = self.lock.word.load_direct();
        debug_assert_eq!(cur % 2, 1, "releasing a free fallback lock");
        self.lock.word.store_nontx(cur + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_counts_transitions() {
        let l = FallbackLock::new();
        assert!(!l.is_held());
        {
            let _g = l.acquire();
            assert!(l.is_held());
        }
        assert!(!l.is_held());
        assert_eq!(l.word.load_direct(), 2);
    }

    #[test]
    fn guard_releases_on_panic() {
        let l = Arc::new(FallbackLock::new());
        let l2 = Arc::clone(&l);
        let res = std::thread::spawn(move || {
            let _g = l2.acquire();
            panic!("boom");
        })
        .join();
        assert!(res.is_err());
        assert!(!l.is_held(), "lock must be released by unwinding");
    }

    #[test]
    fn mutual_exclusion() {
        let l = Arc::new(FallbackLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let _g = l.acquire();
                    // Non-atomic-looking RMW under the lock.
                    let v = c.load(std::sync::atomic::Ordering::Relaxed);
                    c.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 2000);
    }
}
