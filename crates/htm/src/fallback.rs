//! Fallback locking for the lock-elision pattern: one global last-resort
//! lock plus an address-striped table of fine-grained fallback locks.
//!
//! Real RTM code cannot retry forever: after a few aborts it acquires a
//! fallback mutex and runs the critical section non-transactionally. For
//! that to be safe, every hardware transaction *subscribes* to the mutex —
//! reads its state inside the transaction — so acquiring it aborts them.
//!
//! A single domain-wide mutex makes that safety cheap but brutal: one
//! capacity-prone writer taking the fallback serialises *every* in-flight
//! transaction in the domain, even ones touching unrelated data. This
//! module therefore provides two tiers:
//!
//! * **Tier 1 — [`StripeTable`]**: [`STRIPES`] fallback locks, each an
//!   independently subscribable [`TmWord`], indexed by a hash of the cache
//!   line. A conflict-driven fallback acquires only the stripes covering
//!   the footprint its optimistic attempts actually observed, so fallbacks
//!   on disjoint stripes run in parallel with each other *and* with
//!   optimistic transactions whose footprints miss those stripes.
//! * **Tier 2 — [`FallbackLock`]**: the global lock, kept as the escalation
//!   tier for bodies whose footprint cannot be predicted (capacity/flush
//!   aborts, or a tier-1 run that touched a line outside its predicted
//!   stripe set). Tier 2 additionally acquires **all** stripes, so the two
//!   tiers exclude each other through the stripe words alone.
//!
//! # Two-tier subscription safety argument
//!
//! Let *O* be an optimistic transaction, *S* a tier-1 (striped) fallback,
//! and *G* a tier-2 (global) fallback (*F* for either fallback kind).
//!
//! **Subscription is two-point.** At *begin*, *O* samples `rv` and then
//! loads the **global word**, re-sampling until it is observed free:
//! since tier-2 publishes are in-place stores with no single commit
//! version, this is what guarantees `rv` never falls *inside* an
//! irrevocable write window (a publish at version v ≤ rv happened before
//! the clock reached `rv`; clock bumps form a release sequence, so
//! reading `rv ≥ v` synchronizes-with that publisher's bump, whose
//! word-acquisition precedes it — the post-`rv` word load must still see
//! it odd). During the body, *O* merely ORs the covering stripe of each
//! new cache line ([`stripe_of_line`]) into a footprint bitmask — no
//! loads, no read-set entries — and, if it commits writes, checks once
//! *after its write locks are held* that the global word and every
//! footprint stripe are free (even). Lazy stripe subscription is a known
//! soundness trap on real RTM: a hardware transaction can act on a torn
//! read long before reaching `XEND`. This STM cannot produce that zombie:
//!
//! **Lemma (opacity).** Every optimistic read is sandwich-validated
//! against the start snapshot `rv`, and every fallback write set is
//! published **`rv`-indivisibly**: tier 1 buffers its writes and commits
//! them under the word version-locks at a *single* commit version `wv`
//! (entries locked across the whole apply, all released at `wv`, exactly
//! like an optimistic commit), and tier 2's in-place `store_nontx`
//! publishes are fenced off from every `rv` by the begin-time global-word
//! subscription above. So an in-flight *O* either reads pre-*F* values,
//! reads the whole published set, or aborts at the offending read — it
//! can never *observe* a fallback's writes torn, not even across the
//! multiple words of one fallback's write set.
//!
//! The one hazard left is the reverse direction: *F*'s reads are never
//! validated, so an *O* that commits writes **into *F*'s window** would
//! hand *F* a stale snapshot. *F*'s reads are confined to its held
//! stripes (tier 1 re-checks coverage on every access and escalates with
//! nothing published on a miss — its writes are buffered until the whole
//! body proves in-bounds; tier 2 holds everything), so it suffices that
//! *O* never commits writes into a held footprint-overlapping stripe.
//! Case split on *F*'s window vs *O*'s commit, using two facts: *O*
//! holds its write-set lock entries from phase 1 through apply, and both
//! fallback reads *and* `store_nontx` spin out held lock entries
//! word-by-word:
//!
//! * *F* in flight at *O*'s commit check → a shared stripe (or the
//!   global word) is odd → *O* aborts. This case is a store-buffering
//!   shape (*O* stores lock entries then loads fallback words; *F* CASes
//!   a fallback word then loads lock entries before its first data
//!   access), so both sides carry a **`SeqCst` fence** — *O* between
//!   phase-1 acquisition and the check, *F* in [`acquire_word`] between
//!   acquisition and the body — guaranteeing at least one side observes
//!   the other's store on non-TSO hardware too.
//! * *F* ended before *O*'s read validation → *F*'s publishes bumped
//!   versions, so any read overlap aborts *O*; pure write-into-*F*-reads
//!   overlap serialises *F* before *O*.
//! * *F*'s window falls between *O*'s validation and its check → *F*
//!   cannot have read any *O*-written word (those lock entries were
//!   already held; *F* would still be spinning), so *O* → *F* is a
//!   consistent order: *F* read only words *O* left untouched.
//! * *F* began after *O*'s check → *F*'s reads of *O*-written words spin
//!   until *O*'s release and see the fully applied state: *O* → *F*.
//!
//! A read-only *O* commits nothing and perturbs no window, so the only
//! obligation is its own snapshot — and the opacity lemma now covers it
//! **across** a fallback's write set, not just per word: tier 1's
//! single-`wv` publish makes the set indivisible under sandwich
//! validation, and the begin-time global-word subscription pins `rv`
//! outside every tier-2 window. It therefore skips the commit-time
//! check entirely; without those two mechanisms (per-word tier-1
//! publish versions, or `rv` sampled mid-tier-2-window) it could commit
//! a torn slice of an atomic fallback section.
//!
//! **O vs G.** The same argument with "all stripes + the global word" as
//! the footprint; the global-word check keeps it valid verbatim when
//! striping is disabled and the footprint mask is not consulted.
//!
//! **S vs S.** Footprint-overlapping fallbacks share a stripe and exclude
//! each other on it; disjoint ones commute because each buffers its
//! writes and touches only lines it holds stripes for. All acquirers take
//! stripes in ascending index order, and tier 2 orders the global word
//! before every stripe, so the total lock order `global < stripe 0 < … <
//! stripe 63` rules out deadlock.
//!
//! State encoding (both tiers): even = free, odd = held; the value
//! increases on every transition, so it doubles as an acquisition counter.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::word::TmWord;

/// Number of fine-grained fallback stripes per domain.
///
/// 64 keeps the per-transaction stripe set a single `u64` bitmask (so
/// footprint capture stays allocation-free) while making accidental
/// stripe sharing between two random leaves ~1.6% per line pair.
pub const STRIPES: usize = 64;

/// Bounded spin iterations before yielding to the OS while waiting on a
/// fallback word. Oversubscribed thread counts (threads > cores, the
/// common CI case) would otherwise livelock-degrade on pure `spin_loop`.
const SPIN_LIMIT: u32 = 64;

/// Stripe index covering a cache line (`addr >> 6`).
///
/// Fibonacci hash of the line number, top bits: uniformly distributed,
/// and line-granular so the stripes a transaction subscribes to are
/// exactly the stripes a fallback with the same footprint acquires.
/// Hashed in `u64` so 32-bit targets compile (the multiplier does not
/// fit in a 32-bit `usize`) and the mixing quality argument holds.
#[inline]
pub(crate) fn stripe_of_line(line: usize) -> usize {
    (((line as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize) & (STRIPES - 1)
}

/// Stripe index covering a word (diagnostic; used by stress tests and the
/// contention benchmark to construct stripe-disjoint / stripe-colliding
/// working sets deterministically).
#[inline]
pub fn stripe_of(w: &TmWord) -> usize {
    stripe_of_line(w.addr() >> 6)
}

/// Acquires an even/odd fallback word with bounded spin, yielding to the
/// OS past [`SPIN_LIMIT`]. If `contended` is given, it is bumped once at
/// the first attempt that finds the word held (or loses the CAS) — i.e.
/// *when* the contention happens, so observers can detect an in-progress
/// contended acquisition, not just a completed one.
#[inline]
fn acquire_word(word: &TmWord, contended: Option<&AtomicU64>) {
    let mut counted = false;
    let mut spins = 0u32;
    loop {
        let cur = word.load_direct();
        if cur.is_multiple_of(2) && word.cas_nontx(cur, cur + 1).is_ok() {
            // Ordering: SeqCst fence between acquiring the fallback word
            // and the fallback's first data access. Pairs with the fence
            // in optimistic commit (between its phase-1 lock stores and
            // its fallback-word loads): the two sides form a
            // store-buffering pattern, and without a total order both
            // could read stale — the committer seeing this word free
            // while this fallback sees the commit's word locks free and
            // reads pre-commit data. x86's locked RMWs mask this; on
            // weaker architectures the fence is required. See the proof
            // in the module docs.
            std::sync::atomic::fence(Ordering::SeqCst);
            return;
        }
        if !counted {
            counted = true;
            if let Some(c) = contended {
                c.fetch_add(1, Ordering::Relaxed);
            }
        }
        spins += 1;
        if spins >= SPIN_LIMIT {
            spins = 0;
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Releases an even/odd fallback word.
#[inline]
fn release_word(word: &TmWord) {
    let cur = word.load_direct();
    debug_assert_eq!(cur % 2, 1, "releasing a free fallback word");
    word.store_nontx(cur + 1);
}

/// The global (per-domain, tier-2) fallback mutex with transaction
/// subscription.
#[derive(Debug, Default)]
pub struct FallbackLock {
    pub(crate) word: TmWord,
}

impl FallbackLock {
    /// Creates a free lock.
    pub fn new() -> Self {
        FallbackLock {
            word: TmWord::new(0),
        }
    }

    /// True while some thread holds the fallback lock.
    #[inline]
    pub fn is_held(&self) -> bool {
        self.word.load_direct() % 2 == 1
    }

    /// Acquires the lock (bounded spin, then `yield_now`). Returns a guard
    /// that releases on drop (panic-safe: a poisoned fallback would
    /// otherwise wedge every transaction in the domain forever).
    pub fn acquire(&self) -> FallbackGuard<'_> {
        acquire_word(&self.word, None);
        FallbackGuard { lock: self }
    }

    /// Waits until the lock is observed free, like the
    /// `while (lock_is_held) pause;` loop in real elision code. Bounded
    /// spin, then `yield_now`. This is a plain pre-start wait, **not** a
    /// subscription — the software TM's begin-time subscription (which
    /// must re-sample `rv` after each observation of this word) lives in
    /// `Txn::optimistic`; only the native-RTM elision path, where the
    /// in-transaction `is_held` read is the real subscription, uses this.
    #[inline]
    pub fn wait_until_free(&self) {
        let mut spins = 0u32;
        while self.is_held() {
            spins += 1;
            if spins >= SPIN_LIMIT {
                spins = 0;
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// RAII guard for [`FallbackLock`].
pub struct FallbackGuard<'l> {
    lock: &'l FallbackLock,
}

impl Drop for FallbackGuard<'_> {
    fn drop(&mut self) {
        release_word(&self.lock.word);
    }
}

/// One stripe, padded to its own cache line so stripe acquisitions by
/// different threads never false-share (and so a transaction's data lines
/// can never alias a stripe word's line in the capacity model).
#[repr(align(64))]
#[derive(Debug, Default)]
struct StripeWord(TmWord);

/// Tier-1 fallback: [`STRIPES`] independently subscribable fallback locks.
#[derive(Debug)]
pub struct StripeTable {
    stripes: [StripeWord; STRIPES],
}

impl Default for StripeTable {
    fn default() -> Self {
        StripeTable {
            stripes: std::array::from_fn(|_| StripeWord::default()),
        }
    }
}

impl StripeTable {
    /// Creates a table of free stripes.
    pub fn new() -> Self {
        StripeTable::default()
    }

    /// The subscription word of stripe `i`.
    #[inline]
    pub(crate) fn word(&self, i: usize) -> &TmWord {
        &self.stripes[i & (STRIPES - 1)].0
    }

    /// True while stripe `i` is held by some fallback.
    #[inline]
    pub fn is_held(&self, i: usize) -> bool {
        self.word(i).load_direct() % 2 == 1
    }

    /// Acquires every stripe whose bit is set in `mask`, in ascending
    /// index order (deadlock freedom: all acquirers use this order, and
    /// tier 2 orders the global word first). `conflicts` is bumped once
    /// per stripe whose acquisition was contended — the stripe-conflict
    /// counter exported through [`crate::HtmStats`].
    pub(crate) fn acquire_mask<'t>(
        &'t self,
        mask: u64,
        conflicts: &AtomicU64,
    ) -> StripeGuard<'t> {
        let mut rest = mask;
        let mut held = 0u64;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            acquire_word(self.word(i), Some(conflicts));
            held |= 1u64 << i;
            rest &= rest - 1;
        }
        StripeGuard { table: self, held }
    }

    /// Acquires **all** stripes (the tier-2 escalation path; caller must
    /// already hold the global [`FallbackLock`], which fixes the lock
    /// order `global < stripe 0 < … < stripe 63`).
    pub(crate) fn acquire_all<'t>(&'t self, conflicts: &AtomicU64) -> StripeGuard<'t> {
        self.acquire_mask(u64::MAX, conflicts)
    }
}

/// RAII guard over a set of held stripes. Releases on drop (panic-safe).
pub struct StripeGuard<'t> {
    table: &'t StripeTable,
    held: u64,
}

impl Drop for StripeGuard<'_> {
    fn drop(&mut self) {
        let mut rest = self.held;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            release_word(self.table.word(i));
            rest &= rest - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_counts_transitions() {
        let l = FallbackLock::new();
        assert!(!l.is_held());
        {
            let _g = l.acquire();
            assert!(l.is_held());
        }
        assert!(!l.is_held());
        assert_eq!(l.word.load_direct(), 2);
    }

    #[test]
    fn guard_releases_on_panic() {
        let l = Arc::new(FallbackLock::new());
        let l2 = Arc::clone(&l);
        let res = std::thread::spawn(move || {
            let _g = l2.acquire();
            panic!("boom");
        })
        .join();
        assert!(res.is_err());
        assert!(!l.is_held(), "lock must be released by unwinding");
    }

    #[test]
    fn mutual_exclusion() {
        let l = Arc::new(FallbackLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let _g = l.acquire();
                    // Non-atomic-looking RMW under the lock.
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn stripe_mask_acquires_exactly_the_set_bits() {
        let t = StripeTable::new();
        let conflicts = AtomicU64::new(0);
        let mask = (1u64 << 3) | (1u64 << 17) | (1u64 << 63);
        {
            let _g = t.acquire_mask(mask, &conflicts);
            assert!(t.is_held(3) && t.is_held(17) && t.is_held(63));
            assert!(!t.is_held(0) && !t.is_held(16) && !t.is_held(62));
        }
        for i in 0..STRIPES {
            assert!(!t.is_held(i), "stripe {i} leaked");
        }
        assert_eq!(conflicts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn contended_stripe_counts_a_conflict() {
        let t = Arc::new(StripeTable::new());
        let conflicts = Arc::new(AtomicU64::new(0));
        let (t2, c2) = (Arc::clone(&t), Arc::clone(&conflicts));
        let hold = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hold);
        let th = std::thread::spawn(move || {
            let _g = t2.acquire_mask(1 << 5, &c2);
            h2.store(1, Ordering::Release);
            while h2.load(Ordering::Acquire) != 2 {
                std::thread::yield_now();
            }
        });
        while hold.load(Ordering::Acquire) != 1 {
            std::thread::yield_now();
        }
        // Racing acquisition of the same stripe must record a conflict —
        // at contention time, while the waiter is still blocked: release
        // the holder only after the counter moves.
        let c3 = Arc::clone(&conflicts);
        let t3 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || {
            let _g = t3.acquire_mask(1 << 5, &c3);
        });
        while conflicts.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        hold.store(2, Ordering::Release);
        th.join().unwrap();
        waiter.join().unwrap();
        assert!(conflicts.load(Ordering::Relaxed) >= 1);
        assert!(!t.is_held(5));
    }

    #[test]
    fn disjoint_stripe_sets_do_not_block_each_other() {
        let t = StripeTable::new();
        let conflicts = AtomicU64::new(0);
        let _a = t.acquire_mask(0x0F, &conflicts);
        // Must return immediately: no shared bits with the held set.
        let _b = t.acquire_mask(0xF0, &conflicts);
        assert_eq!(conflicts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn stripe_of_is_line_granular_and_in_range() {
        let words: Vec<TmWord> = (0..512).map(TmWord::new).collect();
        for w in &words {
            assert!(stripe_of(w) < STRIPES);
        }
        // Words on the same cache line map to the same stripe.
        for pair in words.chunks(2) {
            if pair.len() == 2 && pair[0].addr() >> 6 == pair[1].addr() >> 6 {
                assert_eq!(stripe_of(&pair[0]), stripe_of(&pair[1]));
            }
        }
    }
}
